// seltrig-lint: repo-specific static analyzer. Walks src/, tests/, and
// tools/ under --root and enforces the five invariant families described in
// docs/STATIC_ANALYSIS.md (fault-registry, layering, lock-order, status
// discipline, dispatch exhaustiveness). Warnings are errors: any finding
// not matched by <root>/.lint-suppressions exits nonzero, and a suppression
// that matches nothing is itself a finding.
//
//   seltrig_lint --root /path/to/repo
//
// Runs in CI's analyze job and as `ctest -L lint`.

#include <cstring>
#include <iostream>
#include <string>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: seltrig_lint [--root DIR]\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }

  const std::vector<seltrig::lint::Diagnostic> diags =
      seltrig::lint::LintTree(root);
  for (const auto& d : diags) {
    std::cerr << seltrig::lint::FormatDiagnostic(d) << "\n";
  }
  if (!diags.empty()) {
    std::cerr << diags.size() << " lint finding(s)\n";
    return 1;
  }
  std::cout << "seltrig_lint: clean\n";
  return 0;
}
