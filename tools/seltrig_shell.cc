// seltrig interactive SQL shell.
//
// Reads ';'-terminated statements from stdin and prints results. Dot
// commands:
//   .help                 this message
//   .tables               list tables with row counts
//   .audit                list audit expressions with view sizes
//   .schema               per-table columns, schema versions, trigger binds
//   .triggers             list triggers with quarantine/stale-version flags
//   .user NAME            set the session user (USER_ID())
//   .profile on|off       per-operator runtime counters after each query
//   .batch N              set the executor batch size (default 1024)
//   .threads N            worker threads for eligible scan spines (default 1)
//   .concurrent N SQL...  run SQL once per session on N concurrent sessions
//   .tpch SF              load the TPC-H database at scale factor SF
//   .import FILE TABLE    bulk-load a CSV file (with header) into TABLE
//   .wal DIR              open a durable database at DIR (recover + journal)
//   .replica DIR          attach an in-process replica at durable dir DIR
//   .replica              replication status: this node's role (leader /
//                         follower / candidate vocabulary of
//                         replication/election.h), current epoch, and per
//                         follower the acked position, lag in records, and
//                         time since its last heartbeat ack
//   .quit / .exit         leave
//
// Session settings (see docs/ROBUSTNESS.md, docs/DURABILITY.md and
// docs/REPLICATION.md):
//   SET AUDIT_FAILURE_POLICY = FAIL_CLOSED | FAIL_OPEN;
//   SET WAL_SYNC = OFF | COMMIT | BATCH;
//   SET REPLICATION_ACK = ASYNC | SYNC;   -- before the first .replica
//   CHECKPOINT;
//
// Usage:   seltrig_shell [script.sql ...]
// Scripts given on the command line run before the interactive loop (or
// instead of it when stdin is not a TTY).

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/csv_loader.h"
#include "engine/recovery.h"
#include "engine/snapshot.h"
#include "replication/applier.h"
#include "replication/election.h"
#include "replication/shipper.h"
#include "replication/transport.h"
#include "seltrig/seltrig.h"

namespace {

using seltrig::Database;
using seltrig::ExecOptions;
using seltrig::StatementResult;

// Shell session: the database plus the options applied to every statement
// (mutated by SET AUDIT_FAILURE_POLICY and friends). The database lives
// behind a pointer so `.wal DIR` can swap in a recovered instance.
struct Shell {
  std::unique_ptr<Database> db = std::make_unique<Database>();
  ExecOptions options;
  // Replication state (.replica / SET REPLICATION_ACK). Declaration order
  // matters: the shipper holds the db and the appliers, so it must be
  // destroyed first (members destruct in reverse order).
  seltrig::ReplicationAckMode ack_mode = seltrig::ReplicationAckMode::kAsync;
  std::vector<std::unique_ptr<seltrig::ReplicaApplier>> appliers;
  std::unique_ptr<seltrig::LogShipper> shipper;

  // Detaches every replica (used before swapping the database).
  void StopReplication() {
    if (shipper != nullptr) shipper->Stop();
    shipper.reset();
    for (auto& applier : appliers) applier->Stop();
    appliers.clear();
  }
};

void PrintResult(const StatementResult& result) {
  const seltrig::QueryResult& qr = result.result;
  if (qr.schema.size() == 0) {
    if (qr.affected_rows > 0) {
      std::printf("(%lld rows affected)\n", static_cast<long long>(qr.affected_rows));
    } else {
      std::printf("ok\n");
    }
    return;
  }
  std::printf("%s", qr.ToString(1000).c_str());
  std::printf("(%zu rows)\n", qr.rows.size());
  for (const auto& [expr, ids] : result.accessed) {
    std::printf("-- ACCESSED[%s]: %zu sensitive ids\n", expr.c_str(), ids.size());
  }
  if (!result.profile_text.empty()) {
    std::printf("-- profile (rows/batches per operator, time incl. children):\n%s",
                result.profile_text.c_str());
  }
}

// Handles the shell-level `SET <NAME> = <VALUE>` settings; returns true when
// `sql` was one of them (consumed, not sent to the engine).
bool HandleSetCommand(Shell* sh, const std::string& sql) {
  std::string upper;
  upper.reserve(sql.size());
  for (char c : sql) {
    if (c == '=') {
      upper += ' ';
      continue;
    }
    upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  std::istringstream in(upper);
  std::string word, name, value;
  in >> word >> name >> value;
  if (word == "CHECKPOINT" && name.empty()) {
    seltrig::Status status = sh->db->Checkpoint();
    std::printf("%s\n", status.ok() ? "checkpointed" : status.ToString().c_str());
    return true;
  }
  if (word != "SET") return false;
  if (name == "WAL_SYNC") {
    seltrig::WalWriter* wal = sh->db->wal();
    if (wal == nullptr) {
      std::printf("error: WAL_SYNC requires a journaled database (.wal DIR)\n");
    } else if (value == "OFF") {
      wal->set_sync_mode(seltrig::WalSyncMode::kOff);
      std::printf("wal sync: off\n");
    } else if (value == "COMMIT") {
      wal->set_sync_mode(seltrig::WalSyncMode::kCommit);
      std::printf("wal sync: commit\n");
    } else if (value == "BATCH") {
      wal->set_sync_mode(seltrig::WalSyncMode::kBatch);
      std::printf("wal sync: batch\n");
    } else {
      std::printf("error: SET WAL_SYNC expects OFF, COMMIT or BATCH\n");
    }
    return true;
  }
  if (name == "REPLICATION_ACK") {
    if (sh->shipper != nullptr) {
      // The ack mode is fixed at shipper construction; switching a live
      // shipper would silently change the guarantee mid-stream.
      std::printf("error: SET REPLICATION_ACK before attaching the first replica\n");
    } else if (value == "ASYNC") {
      sh->ack_mode = seltrig::ReplicationAckMode::kAsync;
      std::printf("replication ack: async\n");
    } else if (value == "SYNC") {
      sh->ack_mode = seltrig::ReplicationAckMode::kSync;
      std::printf("replication ack: sync (statements wait for follower acks)\n");
    } else {
      std::printf("error: SET REPLICATION_ACK expects ASYNC or SYNC\n");
    }
    return true;
  }
  if (name != "AUDIT_FAILURE_POLICY") return false;
  if (value == "FAIL_CLOSED") {
    sh->options.audit_failure_policy = seltrig::AuditFailurePolicy::kFailClosed;
    std::printf("audit failure policy: fail-closed\n");
  } else if (value == "FAIL_OPEN") {
    sh->options.audit_failure_policy = seltrig::AuditFailurePolicy::kFailOpen;
    std::printf("audit failure policy: fail-open\n");
  } else {
    std::printf("error: SET AUDIT_FAILURE_POLICY expects FAIL_CLOSED or FAIL_OPEN\n");
  }
  return true;
}

void RunStatement(Shell* sh, const std::string& sql) {
  if (HandleSetCommand(sh, sql)) return;
  size_t notifications_before = sh->db->notifications().size();
  auto result = sh->db->ExecuteWithOptions(sql, sh->options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  PrintResult(*result);
  // Quarantine and other NOTIFY output raised by this statement.
  const auto& notes = sh->db->notifications();
  for (size_t i = notifications_before; i < notes.size(); ++i) {
    std::printf("-- NOTIFY: %s\n", notes[i].c_str());
  }
}

bool HandleDotCommand(Shell* sh, const std::string& line) {
  Database* db = sh->db.get();
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == ".quit" || cmd == ".exit") return false;
  if (cmd == ".help") {
    std::printf(
        ".tables | .audit | .schema | .triggers | .user NAME | .profile on|off "
        "| .batch N "
        "| .threads N | .columnar on|off | .concurrent N SQL | .tpch SF "
        "| .import FILE TABLE "
        "| .save DIR | .open DIR | .wal DIR | .replica [DIR] | .quit\n"
        "SET AUDIT_FAILURE_POLICY = FAIL_CLOSED | FAIL_OPEN;\n"
        "SET WAL_SYNC = OFF | COMMIT | BATCH;   CHECKPOINT;\n"
        "SET REPLICATION_ACK = ASYNC | SYNC;  (before the first .replica)\n");
  } else if (cmd == ".tables") {
    for (const std::string& name : db->catalog()->TableNames()) {
      auto table = db->catalog()->GetTable(name);
      std::printf("%-24s %zu rows\n", name.c_str(),
                  table.ok() ? (*table)->live_row_count() : 0);
    }
  } else if (cmd == ".audit") {
    for (const seltrig::AuditExpressionDef* def : db->audit_manager()->All()) {
      std::printf("%-24s table=%s key=%s view=%zu ids\n", def->name().c_str(),
                  def->sensitive_table().c_str(), def->partition_by().c_str(),
                  def->view().size());
    }
  } else if (cmd == ".schema") {
    for (const std::string& name : db->catalog()->TableNames()) {
      auto table = db->catalog()->GetTable(name);
      if (!table.ok()) continue;
      const seltrig::Schema& schema = (*table)->schema();
      std::printf("%s (schema version %llu)\n", name.c_str(),
                  static_cast<unsigned long long>((*table)->schema_version()));
      for (size_t c = 0; c < schema.size(); ++c) {
        std::printf("  %-22s %s%s\n", schema.column(c).name.c_str(),
                    seltrig::TypeName(schema.column(c).type),
                    static_cast<int>(c) == (*table)->primary_key_column()
                        ? " PRIMARY KEY"
                        : "");
      }
    }
    for (const seltrig::TriggerDef* def : db->trigger_manager()->All()) {
      std::printf("trigger %-16s bound to schema version %llu\n",
                  def->name.c_str(),
                  static_cast<unsigned long long>(def->bound_schema_version));
    }
  } else if (cmd == ".triggers") {
    // A quarantined trigger whose bound schema version no longer matches the
    // subject table went stale while offline (an ALTER TABLE rebound only the
    // live triggers); Rearm re-validates it against the current catalog.
    auto subject_version = [db](const seltrig::TriggerDef* def) -> uint64_t {
      std::string table = def->table;
      if (def->is_select_trigger) {
        const seltrig::AuditExpressionDef* expr =
            db->audit_manager()->Find(def->audit_expression);
        if (expr == nullptr) return 0;  // expression gone: definitely stale
        table = expr->sensitive_table();
      }
      auto t = db->catalog()->GetTable(table);
      return t.ok() ? (*t)->schema_version() : 0;
    };
    for (const seltrig::TriggerDef* def : db->trigger_manager()->All()) {
      const bool stale =
          def->quarantined && subject_version(def) != def->bound_schema_version;
      const char* quarantined = def->quarantined
                                    ? (stale ? " [quarantined, version-stale]"
                                             : " [quarantined]")
                                    : "";
      if (def->is_select_trigger) {
        std::printf("%-24s ON ACCESS TO %s%s%s\n", def->name.c_str(),
                    def->audit_expression.c_str(), def->before ? " BEFORE" : "",
                    quarantined);
      } else {
        const char* event = def->event == seltrig::ast::DmlEvent::kInsert   ? "INSERT"
                            : def->event == seltrig::ast::DmlEvent::kUpdate ? "UPDATE"
                                                                            : "DELETE";
        std::printf("%-24s ON %s AFTER %s%s\n", def->name.c_str(), def->table.c_str(),
                    event, quarantined);
      }
    }
  } else if (cmd == ".profile") {
    std::string mode;
    in >> mode;
    if (mode == "on" || mode == "off") {
      sh->options.collect_profile = mode == "on";
      std::printf("profiling %s\n", mode.c_str());
    } else {
      std::printf("usage: .profile on|off (currently %s)\n",
                  sh->options.collect_profile ? "on" : "off");
    }
  } else if (cmd == ".batch") {
    size_t n = 0;
    in >> n;
    if (n > 0) {
      sh->options.batch_size = n;
      std::printf("batch size: %zu\n", n);
    } else {
      std::printf("usage: .batch N (currently %zu)\n", sh->options.batch_size);
    }
  } else if (cmd == ".threads") {
    int n = 0;
    in >> n;
    if (n > 0) {
      sh->options.num_threads = n;
      std::printf("threads: %d\n", n);
    } else {
      std::printf("usage: .threads N (currently %d)\n", sh->options.num_threads);
    }
  } else if (cmd == ".columnar") {
    std::string mode;
    in >> mode;
    if (mode == "on" || mode == "off") {
      sh->options.columnar = mode == "on";
      std::printf("columnar layout %s\n", mode.c_str());
    } else {
      std::printf("usage: .columnar on|off (currently %s)\n",
                  sh->options.columnar ? "on" : "off");
    }
  } else if (cmd == ".concurrent") {
    // Concurrent-session smoke hook: runs one statement on N sessions at
    // once and reports each session's outcome deterministically by index.
    int n = 0;
    in >> n;
    std::string sql;
    std::getline(in, sql);
    if (n <= 0 || sql.find_first_not_of(" \t") == std::string::npos) {
      std::printf("usage: .concurrent N <sql>\n");
      return true;
    }
    struct Outcome {
      size_t rows = 0;
      std::string error;
    };
    std::vector<std::unique_ptr<seltrig::Session>> sessions;
    std::vector<Outcome> outcomes(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) sessions.push_back(db->CreateSession());
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        auto result = sessions[static_cast<size_t>(i)]->ExecuteWithOptions(
            sql, sh->options);
        if (result.ok()) {
          outcomes[static_cast<size_t>(i)].rows = result->result.rows.size();
        } else {
          outcomes[static_cast<size_t>(i)].error = result.status().ToString();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (int i = 0; i < n; ++i) {
      const Outcome& o = outcomes[static_cast<size_t>(i)];
      if (o.error.empty()) {
        std::printf("session %d: %zu rows\n", i, o.rows);
      } else {
        std::printf("session %d: error: %s\n", i, o.error.c_str());
      }
    }
  } else if (cmd == ".user") {
    std::string user;
    in >> user;
    if (user.empty()) {
      std::printf("current user: %s\n", db->session()->user.c_str());
    } else {
      db->session()->user = user;
    }
  } else if (cmd == ".tpch") {
    double sf = 0.01;
    in >> sf;
    seltrig::tpch::TpchConfig config;
    config.scale_factor = sf;
    seltrig::Status status = seltrig::tpch::LoadTpch(db, config);
    std::printf("%s\n", status.ok() ? "loaded" : status.ToString().c_str());
  } else if (cmd == ".save") {
    std::string dir;
    in >> dir;
    seltrig::Status status = seltrig::SaveSnapshot(db, dir);
    std::printf("%s\n", status.ok() ? "saved" : status.ToString().c_str());
  } else if (cmd == ".open") {
    std::string dir;
    in >> dir;
    seltrig::Status status = seltrig::LoadSnapshot(db, dir);
    std::printf("%s\n", status.ok() ? "loaded" : status.ToString().c_str());
  } else if (cmd == ".wal") {
    // Open (or create) a durable database at DIR: recover snapshot + journal,
    // then journal every statement from here on. Replaces the current
    // in-memory database. Note: .tpch/.import/.open bulk loads bypass the
    // journal — run CHECKPOINT after them or they will not survive a crash.
    std::string dir;
    in >> dir;
    if (dir.empty()) {
      std::printf("usage: .wal DIR\n");
      return true;
    }
    seltrig::RecoveryStats stats;
    auto recovered = Database::Recover(dir, &stats);
    if (!recovered.ok()) {
      std::printf("error: %s\n", recovered.status().ToString().c_str());
      return true;
    }
    // The shipper tails the old database's journal; detach replicas before
    // swapping it out.
    sh->StopReplication();
    sh->db = std::move(recovered).value();
    std::printf(
        "recovered %s: snapshot=%s, %llu segment(s), %llu commit(s), %llu op(s)%s\n",
        dir.c_str(), stats.snapshot_loaded ? "yes" : "no",
        static_cast<unsigned long long>(stats.segments_replayed),
        static_cast<unsigned long long>(stats.commits_replayed),
        static_cast<unsigned long long>(stats.ops_applied),
        stats.truncated_torn_tail ? ", torn tail truncated" : "");
  } else if (cmd == ".replica") {
    // .replica DIR attaches an in-process follower whose durable state lives
    // at DIR (see docs/REPLICATION.md); .replica alone prints status.
    std::string dir;
    in >> dir;
    if (dir.empty()) {
      if (sh->shipper == nullptr) {
        std::printf("no replicas attached (use .replica DIR)\n");
        return true;
      }
      // An interactive shell that ships its journal is, definitionally, the
      // leader of its in-process cluster at its journal's epoch; the
      // follower and candidate roles from the same vocabulary appear on
      // elected nodes (replication/election.h, tools/seltrig_crashtest
      // --nodes 3). Per follower: acked position, lag in records (shipped
      // but not yet acked), and time since its last heartbeat ack — the
      // liveness signal an election would act on.
      seltrig::WalPosition tip;
      if (db->wal() != nullptr) tip = db->wal()->current_position();
      std::printf("role=%s epoch=%llu journal=%s (%s ack)\n",
                  seltrig::ElectionRoleName(seltrig::ElectionRole::kLeader),
                  static_cast<unsigned long long>(tip.epoch),
                  tip.ToString().c_str(),
                  sh->ack_mode == seltrig::ReplicationAckMode::kSync
                      ? "sync"
                      : "async");
      for (const seltrig::FollowerStatus& f : sh->shipper->Followers()) {
        std::string heartbeat = f.ms_since_last_ack < 0
            ? std::string("never")
            : std::to_string(f.ms_since_last_ack) + " ms ago";
        std::printf(
            "%-12s role=%s %s%s acked=%s lag=%llu records heartbeat=%s "
            "sent=%llu acked_records=%llu naks=%llu snapshots=%llu "
            "resyncs=%llu reconnects=%llu%s%s\n",
            f.name.c_str(),
            seltrig::ElectionRoleName(seltrig::ElectionRole::kFollower),
            f.connected ? "connected" : "disconnected",
            f.degraded ? " DEGRADED" : "", f.acked.ToString().c_str(),
            static_cast<unsigned long long>(f.records_sent - f.records_acked),
            heartbeat.c_str(),
            static_cast<unsigned long long>(f.records_sent),
            static_cast<unsigned long long>(f.records_acked),
            static_cast<unsigned long long>(f.naks_received),
            static_cast<unsigned long long>(f.snapshots_sent),
            static_cast<unsigned long long>(f.forced_resyncs),
            static_cast<unsigned long long>(f.reconnects),
            f.last_error.empty() ? "" : " error=", f.last_error.c_str());
      }
      return true;
    }
    if (db->wal() == nullptr) {
      std::printf("error: .replica requires a journaled primary (.wal DIR first)\n");
      return true;
    }
    auto applier = seltrig::ReplicaApplier::Open(dir);
    if (!applier.ok()) {
      std::printf("error: %s\n", applier.status().ToString().c_str());
      return true;
    }
    if (sh->shipper == nullptr) {
      seltrig::ShipperOptions options;
      options.ack_mode = sh->ack_mode;
      sh->shipper = std::make_unique<seltrig::LogShipper>(db, options);
    }
    seltrig::ReplicaApplier* raw = applier->get();
    sh->appliers.push_back(std::move(*applier));
    sh->shipper->AddFollower(
        "replica" + std::to_string(sh->appliers.size()),
        [raw]() -> seltrig::Result<std::shared_ptr<seltrig::FrameChannel>> {
          raw->Stop();
          seltrig::ChannelPair pair = seltrig::CreateInProcessChannelPair();
          raw->Start(pair.follower_end);
          return pair.primary_end;
        });
    std::printf("replica attached at %s (%s ack)\n", dir.c_str(),
                sh->ack_mode == seltrig::ReplicationAckMode::kSync ? "sync"
                                                                   : "async");
  } else if (cmd == ".import") {
    std::string file, table;
    in >> file >> table;
    auto loaded = seltrig::LoadCsvFileIntoTable(db, table, file, /*has_header=*/true);
    if (loaded.ok()) {
      std::printf("loaded %lld rows into %s\n", static_cast<long long>(*loaded),
                  table.c_str());
    } else {
      std::printf("error: %s\n", loaded.status().ToString().c_str());
    }
  } else {
    std::printf("unknown command %s (try .help)\n", cmd.c_str());
  }
  return true;
}

// Feeds a stream of input into the shell loop; returns false on .quit.
bool RunStream(Shell* sh, std::istream& in, bool interactive) {
  std::string pending;
  std::string line;
  if (interactive) std::printf("seltrig> ");
  while (std::getline(in, line)) {
    if (pending.empty() && !line.empty() && line[0] == '.') {
      if (!HandleDotCommand(sh, line)) return false;
      if (interactive) std::printf("seltrig> ");
      continue;
    }
    pending += line;
    pending += '\n';
    // Execute every ';'-terminated statement accumulated so far.
    size_t pos;
    while ((pos = pending.find(';')) != std::string::npos) {
      std::string sql = pending.substr(0, pos);
      pending.erase(0, pos + 1);
      bool blank = true;
      for (char c : sql) blank = blank && std::isspace(static_cast<unsigned char>(c));
      if (!blank) RunStatement(sh, sql);
    }
    // Pure whitespace is not a pending statement (keeps dot commands usable
    // right after a ';').
    bool pending_blank = true;
    for (char c : pending) {
      pending_blank = pending_blank && std::isspace(static_cast<unsigned char>(c));
    }
    if (pending_blank) pending.clear();
    if (interactive) std::printf(pending.empty() ? "seltrig> " : "    ...> ");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  for (int i = 1; i < argc; ++i) {
    std::ifstream script(argv[i]);
    if (!script) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    if (!RunStream(&shell, script, /*interactive=*/false)) return 0;
  }
  bool tty = isatty(fileno(stdin)) != 0;
  if (argc > 1 && !tty) return 0;  // script-only invocation
  RunStream(&shell, std::cin, tty);
  return 0;
}
