// seltrig_crashtest: kill-point crash-recovery harness for the durable audit
// journal (storage/wal.h, engine/recovery.h; docs/DURABILITY.md).
//
// For every storage/journal fault point and every Nth hit of that point, the
// harness forks a child that opens a durable database, runs a fixed audited
// workload, and records an fsynced acknowledgement after each statement the
// engine reports committed. The armed fault kills the child mid-flight
// (std::_Exit -- no destructors, no flushes, exactly like a crash). The
// parent then recovers the directory and checks the durability invariant:
//
//   the recovered state equals the state after some prefix of the workload,
//   and that prefix covers every acknowledged statement -- including the
//   audit-log row written by the SELECT trigger of every acknowledged SELECT.
//
// At most one statement can be in flight when the child dies, so the prefix
// is either exactly the acknowledged statements or those plus one (committed
// to the journal but killed before the acknowledgement was recorded). Any
// other state -- a lost acknowledged write, a surviving half-statement -- is
// a durability bug and fails the run.
//
// A separate trial covers the fail-open loss ledger: a SELECT whose trigger
// always fails is acknowledged with its loss recorded in seltrig_audit_errors
// and its trigger quarantined; the child is then killed and the parent checks
// that the loss row and the quarantine state both survive recovery.
//
// Exit codes inside a trial child: FaultInjector::kCrashExitCode (137) means
// the armed fault fired; 42 means the workload completed without the fault
// firing (the Nth-hit sweep for that point is exhausted -- the parent still
// verifies full recovery); anything else is a harness failure.
//
// Usage: seltrig_crashtest [--quick] [--keep] [--dir DIR]
//   --quick  sweep only the first few hits of each point (CI smoke mode)
//   --keep   keep trial directories (default: removed on success)
//   --dir    parent directory for trial state (default: a fresh temp dir)

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "engine/database.h"
#include "engine/recovery.h"
#include "types/value.h"

namespace seltrig {
namespace {

constexpr int kSweepExhausted = 42;
constexpr int kHarnessError = 70;
// Unarmed trials never fire; bound the sweep in case a point goes dead.
constexpr uint64_t kMaxNth = 64;
constexpr uint64_t kQuickNthLimit = 3;

// A checkpoint marker in the workload: the child calls Database::Checkpoint()
// (there is no SQL form in Database::Execute; the shell intercepts the word).
constexpr const char* kCheckpointMarker = "@checkpoint";

// The audited workload. Every statement is deterministic apart from now(),
// which the verifier excludes from comparison. `patients` has a PRIMARY KEY
// so replay exercises the keyed row-image lookup; `log` has none, covering
// the full-scan image lookup.
const std::vector<std::string>& Workload() {
  static const std::vector<std::string> workload = {
      "CREATE TABLE patients (patientid INT PRIMARY KEY, name VARCHAR, "
      "diagnosis VARCHAR)",
      "CREATE TABLE log (ts VARCHAR, userid VARCHAR, sql VARCHAR, patientid INT)",
      "INSERT INTO patients VALUES (1, 'Alice', 'flu')",
      "INSERT INTO patients VALUES (2, 'Bob', 'cold')",
      "CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients WHERE "
      "name = 'Alice' FOR SENSITIVE TABLE patients PARTITION BY patientid",
      "CREATE TRIGGER log_alice ON ACCESS TO audit_alice AS INSERT INTO log "
      "SELECT now(), user_id(), sql_text(), patientid FROM accessed",
      "SELECT name FROM patients WHERE patientid = 1",
      "UPDATE patients SET diagnosis = 'measles' WHERE patientid = 2",
      "INSERT INTO patients VALUES (3, 'Carol', 'checkup')",
      kCheckpointMarker,
      "SELECT diagnosis FROM patients WHERE name = 'Alice'",
      "DELETE FROM patients WHERE patientid = 3",
      // A second checkpoint replaces the first snapshot, so the kill-point
      // sweep reaches every window of the rename-aside swap (snapshot.swap):
      // crash with only the old snapshot, with only snapshot.old, and with
      // both present. Recovery must resolve each state.
      kCheckpointMarker,
      "INSERT INTO patients VALUES (4, 'Dave', 'flu')",
  };
  return workload;
}

// Fault points swept with a crash-at-Nth-hit schedule. "wal.torn" is special:
// it is armed with an error schedule and the journal writer itself turns the
// firing into a half-written record followed by _Exit (see WalWriter::Append).
const std::vector<std::string>& SweepPoints() {
  static const std::vector<std::string> points = {
      "wal.append",  "wal.fsync",      "wal.rotate", "wal.torn",
      "storage.append", "trigger.action", "snapshot.write", "snapshot.swap",
  };
  return points;
}

Status RunWorkloadStatement(Database* db, const std::string& stmt) {
  if (stmt == kCheckpointMarker) return db->Checkpoint();
  return db->Execute(stmt).status();
}

// ---------------------------------------------------------------------------
// Child side: run the workload against a durable database, acknowledging each
// committed statement through an fsynced file, until the armed fault kills us.

int RunWorkloadChild(const std::string& dir, const std::string& point,
                     uint64_t nth) {
  Result<std::unique_ptr<Database>> opened = Database::Recover(dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "child: open failed: %s\n",
                 opened.status().message().c_str());
    return kHarnessError;
  }
  std::unique_ptr<Database> db = std::move(*opened);

  int ack_fd = ::open((dir + "/acks").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (ack_fd < 0) return kHarnessError;

  // Arm after the (journal-writing) open so setup I/O cannot trip the fault.
  FaultInjector::Schedule schedule = point == "wal.torn"
                                         ? FaultInjector::FailNth(nth)
                                         : FaultInjector::CrashNth(nth);
  FaultInjector::Instance().Arm(point, schedule);

  for (size_t i = 0; i < Workload().size(); ++i) {
    Status s = RunWorkloadStatement(db.get(), Workload()[i]);
    if (!s.ok()) {
      // Crash schedules never surface as errors; an error here means the
      // workload itself is broken.
      std::fprintf(stderr, "child: statement %zu failed: %s\n", i,
                   s.message().c_str());
      return kHarnessError;
    }
    // The engine acknowledged the statement (its journal record is durable
    // per the sync mode); only now may the harness count it as promised.
    char line[32];
    int len = std::snprintf(line, sizeof(line), "%zu\n", i);
    if (::write(ack_fd, line, static_cast<size_t>(len)) != len ||
        ::fsync(ack_fd) != 0) {
      return kHarnessError;
    }
  }
  return kSweepExhausted;
}

// Loss-ledger child: an audited SELECT under fail-open whose trigger always
// fails is acknowledged with a loss row and a quarantined trigger; then a
// crash on the very next journal append kills the process.
int RunLossChild(const std::string& dir) {
  Result<std::unique_ptr<Database>> opened = Database::Recover(dir);
  if (!opened.ok()) return kHarnessError;
  std::unique_ptr<Database> db = std::move(*opened);

  for (size_t i = 0; i < 6; ++i) {  // tables, rows, policy -- no SELECTs yet
    if (!db->Execute(Workload()[i]).ok()) return kHarnessError;
  }

  ExecOptions options;
  options.audit_failure_policy = AuditFailurePolicy::kFailOpen;
  options.guards.fail_open_retries = 1;
  options.guards.quarantine_after = 1;
  FaultInjector::Instance().Arm("trigger.action", FaultInjector::FailAlways());
  Result<StatementResult> r =
      db->ExecuteWithOptions("SELECT name FROM patients WHERE patientid = 1",
                             options);
  FaultInjector::Instance().Disarm("trigger.action");
  if (!r.ok()) {
    std::fprintf(stderr, "child: fail-open select failed: %s\n",
                 r.status().message().c_str());
    return kHarnessError;
  }

  // The loss row and quarantine transition are acknowledged; persist the ack,
  // then die on the next statement's journal append.
  int ack_fd = ::open((dir + "/acks").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (ack_fd < 0 || ::write(ack_fd, "loss\n", 5) != 5 || ::fsync(ack_fd) != 0) {
    return kHarnessError;
  }
  FaultInjector::Instance().Arm("wal.append", FaultInjector::CrashNth(1));
  (void)db->Execute("INSERT INTO patients VALUES (9, 'Zed', 'checkup')");
  return kHarnessError;  // the append above must have crashed the process
}

// ---------------------------------------------------------------------------
// Parent side: recover and verify.

// Deterministic projection of the database state: every column except the
// wall-clock audit timestamp, rows sorted. Two databases that ran the same
// statement prefix produce identical projections.
std::vector<std::string> StateProjection(Database* db) {
  // Verification reads must not perturb the state they measure: scanning the
  // audited table with triggers enabled would append fresh audit-log rows.
  ExecOptions options;
  options.enable_select_triggers = false;
  std::vector<std::string> out;
  for (const char* query :
       {"SELECT patientid, name, diagnosis FROM patients",
        "SELECT userid, sql, patientid FROM log"}) {
    auto r = db->ExecuteWithOptions(query, options);
    if (!r.ok()) {
      out.push_back(std::string("<error: ") + r.status().message() + ">");
      continue;
    }
    std::vector<std::string> rows;
    rows.reserve(r->result.rows.size());
    for (const Row& row : r->result.rows) rows.push_back(RowToString(row));
    std::sort(rows.begin(), rows.end());
    out.push_back(query);
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

// State after running the first `prefix` workload statements on a fresh
// in-memory database (the verifier's reference; checkpoints are no-ops for
// logical state).
std::vector<std::string> ReferenceProjection(size_t prefix) {
  Database db;
  for (size_t i = 0; i < prefix; ++i) {
    if (Workload()[i] == kCheckpointMarker) continue;
    Status s = db.Execute(Workload()[i]).status();
    if (!s.ok()) {
      return {std::string("<reference error at ") + std::to_string(i) + ": " +
              s.message() + ">"};
    }
  }
  return StateProjection(&db);
}

size_t CountAckedStatements(const std::string& dir) {
  std::ifstream in(dir + "/acks");
  size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++count;
  }
  return count;
}

void PrintProjection(const char* label, const std::vector<std::string>& state) {
  std::fprintf(stderr, "  %s:\n", label);
  for (const std::string& line : state) std::fprintf(stderr, "    %s\n", line.c_str());
}

bool VerifyWorkloadTrial(const std::string& dir, const std::string& label,
                         bool completed) {
  const size_t acked = CountAckedStatements(dir);
  RecoveryStats stats;
  Result<std::unique_ptr<Database>> recovered = Database::Recover(dir, &stats);
  if (!recovered.ok()) {
    std::fprintf(stderr, "FAIL %s: recovery failed after %zu acks: %s\n",
                 label.c_str(), acked, recovered.status().message().c_str());
    return false;
  }
  std::vector<std::string> actual = StateProjection(recovered->get());

  // The recovered state must be a workload prefix covering every ack: the
  // acknowledged statements alone, or those plus the one in-flight statement
  // whose journal record became durable before the kill.
  const size_t limit = Workload().size();
  if (completed && acked != limit) {
    std::fprintf(stderr, "FAIL %s: child completed but acked %zu/%zu\n",
                 label.c_str(), acked, limit);
    return false;
  }
  std::vector<size_t> candidates = {std::min(acked, limit)};
  if (acked + 1 <= limit) candidates.push_back(acked + 1);
  for (size_t prefix : candidates) {
    if (actual == ReferenceProjection(prefix)) return true;
  }

  std::fprintf(stderr,
               "FAIL %s: recovered state matches no acceptable prefix "
               "(acked=%zu, commits_replayed=%llu, torn_tail=%d)\n",
               label.c_str(), acked,
               static_cast<unsigned long long>(stats.commits_replayed),
               stats.truncated_torn_tail ? 1 : 0);
  PrintProjection("recovered", actual);
  PrintProjection("expected (acked prefix)", ReferenceProjection(candidates[0]));
  return false;
}

bool VerifyLossTrial(const std::string& dir) {
  std::ifstream acks(dir + "/acks");
  std::string line;
  if (!std::getline(acks, line) || line != "loss") {
    std::fprintf(stderr, "FAIL loss: child never acknowledged the loss row\n");
    return false;
  }
  Result<std::unique_ptr<Database>> recovered = Database::Recover(dir);
  if (!recovered.ok()) {
    std::fprintf(stderr, "FAIL loss: recovery failed: %s\n",
                 recovered.status().message().c_str());
    return false;
  }
  Database* db = recovered->get();

  Result<QueryResult> losses = db->Execute(
      std::string("SELECT trigger_name, quarantined FROM ") +
      Database::kAuditErrorsTable);
  if (!losses.ok() || losses->rows.empty()) {
    std::fprintf(stderr,
                 "FAIL loss: acknowledged loss row missing after recovery\n");
    return false;
  }
  if (losses->rows[0][0].AsString() != "log_alice") {
    std::fprintf(stderr, "FAIL loss: loss row names trigger '%s'\n",
                 losses->rows[0][0].AsString().c_str());
    return false;
  }
  std::vector<const TriggerDef*> quarantined = db->trigger_manager()->Quarantined();
  if (quarantined.size() != 1 || quarantined[0]->name != "log_alice") {
    std::fprintf(stderr,
                 "FAIL loss: quarantine state did not survive recovery\n");
    return false;
  }
  // The unacknowledged INSERT the child died inside must have left no trace.
  Result<QueryResult> zed =
      db->Execute("SELECT name FROM patients WHERE patientid = 9");
  if (!zed.ok() || !zed->rows.empty()) {
    std::fprintf(stderr, "FAIL loss: unacknowledged INSERT survived the crash\n");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Trial driver.

struct TrialResult {
  int exit_code = -1;
  bool ran = false;
};

template <typename ChildFn>
TrialResult RunTrial(ChildFn child_fn) {
  // No Database object (and thus no engine thread) exists in the parent when
  // forking: every verifier database is created and destroyed between trials,
  // and the lazy shared scan pool is never started under default ExecOptions.
  pid_t pid = ::fork();
  if (pid < 0) return TrialResult{};
  if (pid == 0) std::_Exit(child_fn());
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status)) {
    return TrialResult{};
  }
  return TrialResult{WEXITSTATUS(status), true};
}

struct Options {
  bool quick = false;
  bool keep = false;
  std::string base_dir;
};

int RunHarness(const Options& options) {
  std::error_code ec;
  std::string base = options.base_dir;
  if (base.empty()) {
    base = (std::filesystem::temp_directory_path() /
            ("seltrig_crashtest." + std::to_string(::getpid())))
               .string();
  }
  std::filesystem::create_directories(base, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s\n", base.c_str());
    return 1;
  }

  int trials = 0;
  int crashes = 0;
  bool failed = false;
  const uint64_t nth_limit = options.quick ? kQuickNthLimit : kMaxNth;

  for (const std::string& point : SweepPoints()) {
    for (uint64_t nth = 1; nth <= nth_limit; ++nth) {
      const std::string label = point + "#" + std::to_string(nth);
      const std::string dir = base + "/" + point + "." + std::to_string(nth);
      std::filesystem::remove_all(dir, ec);
      std::filesystem::create_directories(dir, ec);

      TrialResult trial = RunTrial(
          [&] { return RunWorkloadChild(dir, point, nth); });
      ++trials;
      if (!trial.ran) {
        std::fprintf(stderr, "FAIL %s: child did not exit cleanly\n",
                     label.c_str());
        failed = true;
        break;
      }
      if (trial.exit_code == kSweepExhausted) {
        // The point never fired at this hit count: the workload completed.
        // Recovery of the completed run must reproduce the full prefix.
        if (!VerifyWorkloadTrial(dir, label + " (completed)", /*completed=*/true)) {
          failed = true;
        } else if (!options.keep) {
          std::filesystem::remove_all(dir, ec);
        }
        break;  // later hits cannot fire either
      }
      if (trial.exit_code != FaultInjector::kCrashExitCode) {
        std::fprintf(stderr, "FAIL %s: unexpected child exit %d\n",
                     label.c_str(), trial.exit_code);
        failed = true;
        continue;
      }
      ++crashes;
      if (!VerifyWorkloadTrial(dir, label, /*completed=*/false)) {
        failed = true;
      } else if (!options.keep) {
        std::filesystem::remove_all(dir, ec);
      }
    }
  }

  {
    const std::string dir = base + "/loss";
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);
    TrialResult trial = RunTrial([&] { return RunLossChild(dir); });
    ++trials;
    if (!trial.ran || trial.exit_code != FaultInjector::kCrashExitCode) {
      std::fprintf(stderr, "FAIL loss: child exit %d (wanted %d)\n",
                   trial.exit_code, FaultInjector::kCrashExitCode);
      failed = true;
    } else {
      ++crashes;
      if (!VerifyLossTrial(dir)) {
        failed = true;
      } else if (!options.keep) {
        std::filesystem::remove_all(dir, ec);
      }
    }
  }

  if (!failed && !options.keep && options.base_dir.empty()) {
    std::filesystem::remove_all(base, ec);
  }
  std::printf("seltrig_crashtest: %d trials, %d injected crashes, %s\n", trials,
              crashes, failed ? "FAILURES (state kept)" : "all invariants held");
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace seltrig

int main(int argc, char** argv) {
  seltrig::Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--keep") {
      options.keep = true;
    } else if (arg == "--dir" && i + 1 < argc) {
      options.base_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--keep] [--dir DIR]\n", argv[0]);
      return 2;
    }
  }
  return seltrig::RunHarness(options);
}
