// seltrig_crashtest: kill-point crash-recovery harness for the durable audit
// journal (storage/wal.h, engine/recovery.h; docs/DURABILITY.md).
//
// For every storage/journal/schema-change fault point and every Nth hit, the
// harness forks a child that opens a durable database, runs a fixed audited
// workload, and records an fsynced acknowledgement after each statement the
// engine reports committed. The armed fault kills the child mid-flight
// (std::_Exit -- no destructors, no flushes, exactly like a crash). The
// parent then recovers the directory and checks the durability invariant:
//
//   the recovered state equals the state after some prefix of the workload,
//   and that prefix covers every acknowledged statement -- including the
//   audit-log row written by the SELECT trigger of every acknowledged SELECT.
//
// At most one statement can be in flight when the child dies, so the prefix
// is either exactly the acknowledged statements or those plus one (committed
// to the journal but killed before the acknowledgement was recorded). Any
// other state -- a lost acknowledged write, a surviving half-statement -- is
// a durability bug and fails the run.
//
// A separate trial covers the fail-open loss ledger: a SELECT whose trigger
// always fails is acknowledged with its loss recorded in seltrig_audit_errors
// and its trigger quarantined; the child is then killed and the parent checks
// that the loss row and the quarantine state both survive recovery.
//
// Exit codes inside a trial child: FaultInjector::kCrashExitCode (137) means
// the armed fault fired; 42 means the workload completed without the fault
// firing (the Nth-hit sweep for that point is exhausted -- the parent still
// verifies full recovery); anything else is a harness failure.
//
// Replication mode (--replication) runs a two-node kill matrix instead: for
// every replication.* and journal fault point, in both sync and async ack
// modes, a primary process (Database + LogShipper over a unix socket) runs
// the workload against a follower process (ReplicaApplier), with the point
// armed to crash either the primary or the follower at its Nth hit. The
// parent then PROMOTES the follower directory and checks the acked-prefix
// invariant: the promoted state equals the state after some workload prefix,
// and under sync ack mode that prefix covers every statement acknowledged
// while the follower was in the sync quorum — rows, audit log, and ACCESSED
// bit-for-bit. The primary directory must independently recover to its own
// locally-acknowledged prefix, as in the single-node sweep.
//
// Election mode (--replication --nodes 3) runs a three-node kill matrix over
// the automatic leader election layer (replication/election.h). Every node is
// a full ElectionNode — election bus and replication endpoint on unix
// sockets, sync ack mode — and NO process ever calls Database::Promote: every
// promotion in the matrix is the election layer's own doing. Whichever node
// currently leads drives a monotonically keyed audited workload; the armed
// fault SIGKILLs one node at the Nth hit of each replication/election fault
// point (or, in the partition trials, silently drops its outbound election
// traffic for a stretch — a severed link instead of a crash). The parent then
// asserts the three failover invariants:
//
//   (a) a leader emerges within a bounded number of election timeouts, both
//       at cold start and after the victim dies;
//   (b) every statement acknowledged while a follower was in the sync quorum
//       (leader + follower = a majority) survives into the final leader's
//       state — rows, audit-log rows, and the exact committed values;
//   (c) the healed victim rejoins as a follower and converges onto the new
//       history: any forked suffix it committed while deposed (encoded in a
//       per-(node, epoch) diagnosis tag) must be resynced away, never acked
//       into the new timeline.
//
// Election timeouts and vote-spread jitter are seeded from --seed, so a
// failing trial sequence replays deterministically.
//
// Usage: seltrig_crashtest [--quick] [--keep] [--dir DIR] [--seed N]
//                          [--replication] [--nodes N] [--trials N]
//   --quick        sweep only the first few hits of each point (CI smoke mode)
//   --keep         keep trial directories, including on failure (default:
//                  removed; failures print the label so a --keep rerun can
//                  reproduce them)
//   --dir          parent directory for trial state (default: a fresh temp dir)
//   --seed         deterministic trial-order seed (default 1; the sweep order
//                  is a seeded shuffle, so two runs with the same seed execute
//                  identical trial sequences; also seeds election timeouts)
//   --replication  run the two-node replication kill matrix
//   --nodes        with --replication: cluster size (2 = operator-promoted
//                  pair, 3 = automatic-election matrix; default 2)
//   --trials       with --nodes 3: cap the number of trials (0 = full sweep)

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/fault_injector.h"
#include "engine/database.h"
#include "engine/recovery.h"
#include "replication/applier.h"
#include "replication/election.h"
#include "replication/shipper.h"
#include "replication/transport.h"
#include "storage/table.h"
#include "storage/wal.h"
#include "types/value.h"

namespace seltrig {
namespace {

constexpr int kSweepExhausted = 42;
constexpr int kHarnessError = 70;
// Unarmed trials never fire; bound the sweep in case a point goes dead.
constexpr uint64_t kMaxNth = 64;
constexpr uint64_t kQuickNthLimit = 3;

// A checkpoint marker in the workload: the child calls Database::Checkpoint()
// (there is no SQL form in Database::Execute; the shell intercepts the word).
constexpr const char* kCheckpointMarker = "@checkpoint";

// The audited workload. Every statement is deterministic apart from now(),
// which the verifier excludes from comparison. `patients` has a PRIMARY KEY
// so replay exercises the keyed row-image lookup; `log` has none, covering
// the full-scan image lookup.
const std::vector<std::string>& Workload() {
  static const std::vector<std::string> workload = {
      "CREATE TABLE patients (patientid INT PRIMARY KEY, name VARCHAR, "
      "diagnosis VARCHAR)",
      "CREATE TABLE log (ts VARCHAR, userid VARCHAR, sql VARCHAR, patientid INT)",
      "INSERT INTO patients VALUES (1, 'Alice', 'flu')",
      "INSERT INTO patients VALUES (2, 'Bob', 'cold')",
      "CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients WHERE "
      "name = 'Alice' FOR SENSITIVE TABLE patients PARTITION BY patientid",
      "CREATE TRIGGER log_alice ON ACCESS TO audit_alice AS INSERT INTO log "
      "SELECT now(), user_id(), sql_text(), patientid FROM accessed",
      "SELECT name FROM patients WHERE patientid = 1",
      "UPDATE patients SET diagnosis = 'measles' WHERE patientid = 2",
      "INSERT INTO patients VALUES (3, 'Carol', 'checkup')",
      // Online schema change on the audited table with its SELECT trigger
      // live: the ALTER journals as a logical DDL record and bumps the
      // schema version, which the following checkpoint must persist in the
      // snapshot manifest. The catalog.alter.* kill points fire inside it.
      "ALTER TABLE patients ADD COLUMN severity INT DEFAULT 0",
      kCheckpointMarker,
      "SELECT diagnosis FROM patients WHERE name = 'Alice'",
      // A chained change (rename + int->double retype) is a single version
      // step; recovery replays it as one statement.
      "ALTER TABLE patients RENAME COLUMN severity TO sev, "
      "RETYPE COLUMN sev DOUBLE",
      "DELETE FROM patients WHERE patientid = 3",
      // A second checkpoint replaces the first snapshot, so the kill-point
      // sweep reaches every window of the rename-aside swap (snapshot.swap):
      // crash with only the old snapshot, with only snapshot.old, and with
      // both present. Recovery must resolve each state.
      kCheckpointMarker,
      // Drop the added column again (leaving only post-snapshot DDL in the
      // journal tail) before the final insert, which targets the original
      // three-column shape.
      "ALTER TABLE patients DROP COLUMN sev",
      "INSERT INTO patients VALUES (4, 'Dave', 'flu')",
  };
  return workload;
}

// Fault points swept with a crash-at-Nth-hit schedule. wal.torn is special:
// it is armed with an error schedule and the journal writer itself turns the
// firing into a half-written record followed by _Exit (see WalWriter::Append).
const std::vector<std::string>& SweepPoints() {
  static const std::vector<std::string> points = {
      fault_points::kWalAppend,  fault_points::kWalFsync,      fault_points::kWalRotate, fault_points::kWalTorn,
      fault_points::kStorageAppend, fault_points::kTriggerAction, fault_points::kSnapshotWrite, fault_points::kSnapshotSwap,
      // Online schema change: a kill inside ALTER TABLE (before its DDL
      // record commits) must recover to the pre-ALTER state with the old
      // schema version; a kill after must replay to the bumped version.
      fault_points::kCatalogAlterValidate, fault_points::kCatalogAlterApply, fault_points::kCatalogAlterRebind,
  };
  return points;
}

// The two-node matrix sweeps every replication fault point plus the journal
// points that fire on the primary while it is being shipped from. Points
// that never fire in the victim process exhaust at the first hit count and
// cost one trial.
const std::vector<std::string>& ReplicationSweepPoints() {
  static const std::vector<std::string> points = {
      fault_points::kReplicationSend,      fault_points::kReplicationRecv,  fault_points::kReplicationApply,
      fault_points::kReplicationAck,       fault_points::kReplicationDrop,  fault_points::kReplicationDelay,
      fault_points::kReplicationDuplicate, fault_points::kReplicationReorder, fault_points::kReplicationTorn,
      fault_points::kWalAppend,            fault_points::kWalFsync,         fault_points::kWalRotate,
      fault_points::kWalTorn,
  };
  return points;
}

// Deterministic Fisher-Yates: the trial order is a pure function of the
// seed, so a failing sequence reproduces with the same --seed.
template <typename T>
void SeededShuffle(std::vector<T>* items, uint64_t seed) {
  uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  for (size_t i = items->size(); i > 1; --i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    std::swap((*items)[i - 1], (*items)[(rng >> 33) % i]);
  }
}

Status RunWorkloadStatement(Database* db, const std::string& stmt) {
  if (stmt == kCheckpointMarker) return db->Checkpoint();
  return db->Execute(stmt).status();
}

// ---------------------------------------------------------------------------
// Child side: run the workload against a durable database, acknowledging each
// committed statement through an fsynced file, until the armed fault kills us.

int RunWorkloadChild(const std::string& dir, const std::string& point,
                     uint64_t nth) {
  Result<std::unique_ptr<Database>> opened = Database::Recover(dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "child: open failed: %s\n",
                 opened.status().message().c_str());
    return kHarnessError;
  }
  std::unique_ptr<Database> db = std::move(*opened);

  int ack_fd = ::open((dir + "/acks").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (ack_fd < 0) return kHarnessError;

  // Arm after the (journal-writing) open so setup I/O cannot trip the fault.
  FaultInjector::Schedule schedule = point == fault_points::kWalTorn
                                         ? FaultInjector::FailNth(nth)
                                         : FaultInjector::CrashNth(nth);
  FaultInjector::Instance().Arm(point, schedule);

  for (size_t i = 0; i < Workload().size(); ++i) {
    Status s = RunWorkloadStatement(db.get(), Workload()[i]);
    if (!s.ok()) {
      // Crash schedules never surface as errors; an error here means the
      // workload itself is broken.
      std::fprintf(stderr, "child: statement %zu failed: %s\n", i,
                   s.message().c_str());
      return kHarnessError;
    }
    // The engine acknowledged the statement (its journal record is durable
    // per the sync mode); only now may the harness count it as promised.
    char line[32];
    int len = std::snprintf(line, sizeof(line), "%zu\n", i);
    if (::write(ack_fd, line, static_cast<size_t>(len)) != len ||
        ::fsync(ack_fd) != 0) {
      return kHarnessError;
    }
  }
  return kSweepExhausted;
}

// Loss-ledger child: an audited SELECT under fail-open whose trigger always
// fails is acknowledged with a loss row and a quarantined trigger; then a
// crash on the very next journal append kills the process.
int RunLossChild(const std::string& dir) {
  Result<std::unique_ptr<Database>> opened = Database::Recover(dir);
  if (!opened.ok()) return kHarnessError;
  std::unique_ptr<Database> db = std::move(*opened);

  for (size_t i = 0; i < 6; ++i) {  // tables, rows, policy -- no SELECTs yet
    if (!db->Execute(Workload()[i]).ok()) return kHarnessError;
  }

  ExecOptions options;
  options.audit_failure_policy = AuditFailurePolicy::kFailOpen;
  options.guards.fail_open_retries = 1;
  options.guards.quarantine_after = 1;
  FaultInjector::Instance().Arm(fault_points::kTriggerAction, FaultInjector::FailAlways());
  Result<StatementResult> r =
      db->ExecuteWithOptions("SELECT name FROM patients WHERE patientid = 1",
                             options);
  FaultInjector::Instance().Disarm(fault_points::kTriggerAction);
  if (!r.ok()) {
    std::fprintf(stderr, "child: fail-open select failed: %s\n",
                 r.status().message().c_str());
    return kHarnessError;
  }

  // The loss row and quarantine transition are acknowledged; persist the ack,
  // then die on the next statement's journal append.
  int ack_fd = ::open((dir + "/acks").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (ack_fd < 0 || ::write(ack_fd, "loss\n", 5) != 5 || ::fsync(ack_fd) != 0) {
    return kHarnessError;
  }
  FaultInjector::Instance().Arm(fault_points::kWalAppend, FaultInjector::CrashNth(1));
  (void)db->Execute("INSERT INTO patients VALUES (9, 'Zed', 'checkup')");
  return kHarnessError;  // the append above must have crashed the process
}

// ---------------------------------------------------------------------------
// Parent side: recover and verify.

// Deterministic projection of the database state: every column except the
// wall-clock audit timestamp, rows sorted. Two databases that ran the same
// statement prefix produce identical projections.
std::vector<std::string> StateProjection(Database* db) {
  // Verification reads must not perturb the state they measure: scanning the
  // audited table with triggers enabled would append fresh audit-log rows.
  ExecOptions options;
  options.enable_select_triggers = false;
  std::vector<std::string> out;
  for (const char* query :
       {"SELECT patientid, name, diagnosis FROM patients",
        "SELECT userid, sql, patientid FROM log"}) {
    auto r = db->ExecuteWithOptions(query, options);
    if (!r.ok()) {
      out.push_back(std::string("<error: ") + r.status().message() + ">");
      continue;
    }
    std::vector<std::string> rows;
    rows.reserve(r->result.rows.size());
    for (const Row& row : r->result.rows) rows.push_back(RowToString(row));
    std::sort(rows.begin(), rows.end());
    out.push_back(query);
    out.insert(out.end(), rows.begin(), rows.end());
  }
  // Schema versions are part of the recovered state: an ALTER that replays
  // must land the catalog on exactly the version the reference prefix has.
  // Sorted — catalog enumeration order differs between a freshly built and
  // a recovered database, and the projection is compared line by line.
  std::vector<std::string> tables = db->catalog()->TableNames();
  std::sort(tables.begin(), tables.end());
  for (const std::string& name : tables) {
    auto table = db->catalog()->GetTable(name);
    if (!table.ok()) continue;
    out.push_back("schema_version " + name + " = " +
                  std::to_string((*table)->schema_version()));
  }
  return out;
}

// State after running the first `prefix` workload statements on a fresh
// in-memory database (the verifier's reference; checkpoints are no-ops for
// logical state).
std::vector<std::string> ReferenceProjection(size_t prefix) {
  Database db;
  for (size_t i = 0; i < prefix; ++i) {
    if (Workload()[i] == kCheckpointMarker) continue;
    Status s = db.Execute(Workload()[i]).status();
    if (!s.ok()) {
      return {std::string("<reference error at ") + std::to_string(i) + ": " +
              s.message() + ">"};
    }
  }
  return StateProjection(&db);
}

size_t CountLines(const std::string& path) {
  std::ifstream in(path);
  size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++count;
  }
  return count;
}

size_t CountAckedStatements(const std::string& dir) {
  return CountLines(dir + "/acks");
}

void PrintProjection(const char* label, const std::vector<std::string>& state) {
  std::fprintf(stderr, "  %s:\n", label);
  for (const std::string& line : state) std::fprintf(stderr, "    %s\n", line.c_str());
}

bool VerifyWorkloadTrial(const std::string& dir, const std::string& label,
                         bool completed) {
  const size_t acked = CountAckedStatements(dir);
  RecoveryStats stats;
  Result<std::unique_ptr<Database>> recovered = Database::Recover(dir, &stats);
  if (!recovered.ok()) {
    std::fprintf(stderr, "FAIL %s: recovery failed after %zu acks: %s\n",
                 label.c_str(), acked, recovered.status().message().c_str());
    return false;
  }
  std::vector<std::string> actual = StateProjection(recovered->get());

  // The recovered state must be a workload prefix covering every ack: the
  // acknowledged statements alone, or those plus the one in-flight statement
  // whose journal record became durable before the kill.
  const size_t limit = Workload().size();
  if (completed && acked != limit) {
    std::fprintf(stderr, "FAIL %s: child completed but acked %zu/%zu\n",
                 label.c_str(), acked, limit);
    return false;
  }
  std::vector<size_t> candidates = {std::min(acked, limit)};
  if (acked + 1 <= limit) candidates.push_back(acked + 1);
  for (size_t prefix : candidates) {
    if (actual == ReferenceProjection(prefix)) return true;
  }

  std::fprintf(stderr,
               "FAIL %s: recovered state matches no acceptable prefix "
               "(acked=%zu, commits_replayed=%llu, torn_tail=%d)\n",
               label.c_str(), acked,
               static_cast<unsigned long long>(stats.commits_replayed),
               stats.truncated_torn_tail ? 1 : 0);
  PrintProjection("recovered", actual);
  PrintProjection("expected (acked prefix)", ReferenceProjection(candidates[0]));
  return false;
}

bool VerifyLossTrial(const std::string& dir) {
  std::ifstream acks(dir + "/acks");
  std::string line;
  if (!std::getline(acks, line) || line != "loss") {
    std::fprintf(stderr, "FAIL loss: child never acknowledged the loss row\n");
    return false;
  }
  Result<std::unique_ptr<Database>> recovered = Database::Recover(dir);
  if (!recovered.ok()) {
    std::fprintf(stderr, "FAIL loss: recovery failed: %s\n",
                 recovered.status().message().c_str());
    return false;
  }
  Database* db = recovered->get();

  Result<QueryResult> losses = db->Execute(
      std::string("SELECT trigger_name, quarantined FROM ") +
      Database::kAuditErrorsTable);
  if (!losses.ok() || losses->rows.empty()) {
    std::fprintf(stderr,
                 "FAIL loss: acknowledged loss row missing after recovery\n");
    return false;
  }
  if (losses->rows[0][0].AsString() != "log_alice") {
    std::fprintf(stderr, "FAIL loss: loss row names trigger '%s'\n",
                 losses->rows[0][0].AsString().c_str());
    return false;
  }
  std::vector<const TriggerDef*> quarantined = db->trigger_manager()->Quarantined();
  if (quarantined.size() != 1 || quarantined[0]->name != "log_alice") {
    std::fprintf(stderr,
                 "FAIL loss: quarantine state did not survive recovery\n");
    return false;
  }
  // The unacknowledged INSERT the child died inside must have left no trace.
  Result<QueryResult> zed =
      db->Execute("SELECT name FROM patients WHERE patientid = 9");
  if (!zed.ok() || !zed->rows.empty()) {
    std::fprintf(stderr, "FAIL loss: unacknowledged INSERT survived the crash\n");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Replication matrix: a primary process ships the journal to a follower
// process over a unix socket; the armed fault crashes one of them.

// The primary child: runs the workload with a LogShipper attached, recording
// two fsynced ack streams — "acks" (every locally committed statement, the
// single-node durability promise) and, under sync mode, "racks" (statements
// acknowledged while the follower was in the sync quorum: exactly those the
// acked-prefix invariant obliges the promoted follower to retain).
int RunReplicationPrimary(const std::string& dir, const std::string& socket_path,
                          const std::string& point, uint64_t nth, bool arm_here,
                          bool sync_mode) {
  Result<std::unique_ptr<Database>> opened = Database::Recover(dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "primary: open failed: %s\n",
                 opened.status().message().c_str());
    return kHarnessError;
  }
  std::unique_ptr<Database> db = std::move(*opened);

  ShipperOptions sopts;
  sopts.ack_mode =
      sync_mode ? ReplicationAckMode::kSync : ReplicationAckMode::kAsync;
  sopts.heartbeat_interval_ms = 20;
  sopts.ack_timeout_ms = 200;  // one bounded stall when the follower dies
  sopts.initial_backoff_ms = 2;
  sopts.max_backoff_ms = 50;
  sopts.poll_interval_ms = 2;
  LogShipper shipper(db.get(), sopts);
  shipper.AddFollower("f1",
                      [socket_path] { return ConnectLocalSocket(socket_path); });

  int ack_fd = ::open((dir + "/acks").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  int rack_fd = ::open((dir + "/racks").c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (ack_fd < 0 || rack_fd < 0) return kHarnessError;

  if (arm_here) {
    FaultInjector::Schedule schedule = point == fault_points::kWalTorn
                                           ? FaultInjector::FailNth(nth)
                                           : FaultInjector::CrashNth(nth);
    FaultInjector::Instance().Arm(point, schedule);
  }

  for (size_t i = 0; i < Workload().size(); ++i) {
    Status s = RunWorkloadStatement(db.get(), Workload()[i]);
    if (!s.ok()) {
      std::fprintf(stderr, "primary: statement %zu failed: %s\n", i,
                   s.message().c_str());
      return kHarnessError;
    }
    char line[32];
    int len = std::snprintf(line, sizeof(line), "%zu\n", i);
    if (::write(ack_fd, line, static_cast<size_t>(len)) != len ||
        ::fsync(ack_fd) != 0) {
      return kHarnessError;
    }
    if (sync_mode) {
      // A sync Execute returns only once every non-degraded follower acked
      // (or after degrading the laggard). So at this point either the
      // follower holds the statement durably, or it is marked degraded and
      // the statement is outside the sync guarantee — record it only in the
      // first case.
      std::vector<FollowerStatus> followers = shipper.Followers();
      if (!followers.empty() && !followers[0].degraded) {
        if (::write(rack_fd, line, static_cast<size_t>(len)) != len ||
            ::fsync(rack_fd) != 0) {
          return kHarnessError;
        }
      }
    }
  }

  // Drain the tail so deep-Nth sweeps reach late hits; give up quickly once
  // the follower is gone.
  for (int i = 0; i < 100 && !shipper.AllCaughtUp(); ++i) {
    std::vector<FollowerStatus> followers = shipper.Followers();
    if (!followers.empty() && !followers[0].connected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  shipper.Stop();
  return kSweepExhausted;
}

// The follower child: serves the socket until killed. Every (re)connect from
// the primary restarts the applier on the fresh channel.
int RunReplicationFollower(const std::string& dir, const std::string& socket_path,
                           const std::string& point, uint64_t nth,
                           bool arm_here) {
  Result<std::unique_ptr<LocalSocketServer>> server =
      LocalSocketServer::Listen(socket_path);
  if (!server.ok()) {
    std::fprintf(stderr, "follower: listen failed: %s\n",
                 server.status().message().c_str());
    return kHarnessError;
  }
  Result<std::unique_ptr<ReplicaApplier>> applier = ReplicaApplier::Open(dir);
  if (!applier.ok()) {
    std::fprintf(stderr, "follower: open failed: %s\n",
                 applier.status().message().c_str());
    return kHarnessError;
  }
  if (arm_here) {
    FaultInjector::Instance().Arm(point, FaultInjector::CrashNth(nth));
  }
  for (;;) {
    Result<std::shared_ptr<FrameChannel>> channel = (*server)->Accept(200);
    if (channel.status().code() == ErrorCode::kDeadlineExceeded) continue;
    if (!channel.ok()) return kHarnessError;
    (*applier)->Start(*channel);
  }
}

// Promotes the follower directory and checks the acked-prefix invariant.
// `min_prefix` is the sync-mode floor (0 under async: any prefix is legal,
// only prefix-ness itself is required).
bool VerifyPromotedFollower(const std::string& follower_dir,
                            const std::string& label, size_t min_prefix) {
  RecoveryStats stats;
  Result<std::unique_ptr<Database>> promoted =
      Database::Promote(follower_dir, &stats);
  if (!promoted.ok()) {
    std::fprintf(stderr, "FAIL %s: follower promotion failed: %s\n",
                 label.c_str(), promoted.status().message().c_str());
    return false;
  }
  std::vector<std::string> actual = StateProjection(promoted->get());
  const size_t limit = Workload().size();
  for (size_t prefix = std::min(min_prefix, limit); prefix <= limit; ++prefix) {
    if (actual == ReferenceProjection(prefix)) return true;
  }
  std::fprintf(stderr,
               "FAIL %s: promoted follower matches no workload prefix >= %zu "
               "(commits_replayed=%llu, epoch=%llu)\n",
               label.c_str(), min_prefix,
               static_cast<unsigned long long>(stats.commits_replayed),
               static_cast<unsigned long long>(stats.max_epoch));
  PrintProjection("promoted follower", actual);
  PrintProjection("expected floor (sync-acked prefix)",
                  ReferenceProjection(std::min(min_prefix, limit)));
  return false;
}

// ---------------------------------------------------------------------------
// Trial driver.

struct TrialResult {
  int exit_code = -1;
  bool ran = false;
};

template <typename ChildFn>
TrialResult RunTrial(ChildFn child_fn) {
  // No Database object (and thus no engine thread) exists in the parent when
  // forking: every verifier database is created and destroyed between trials,
  // and the lazy shared scan pool is never started under default ExecOptions.
  pid_t pid = ::fork();
  if (pid < 0) return TrialResult{};
  if (pid == 0) std::_Exit(child_fn());
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status)) {
    return TrialResult{};
  }
  return TrialResult{WEXITSTATUS(status), true};
}

struct Options {
  bool quick = false;
  bool keep = false;
  bool replication = false;
  // --replication cluster size: 2 = operator-promoted pair, 3 = the
  // automatic-election matrix.
  int nodes = 2;
  // --nodes 3 only: cap on the number of trials (0 = full sweep).
  int trials = 0;
  // --nodes 3 only: run only trials whose label starts with this prefix
  // (e.g. `--only elect.election.partition.v1#8` reruns one failing trial).
  std::string only;
  uint64_t seed = 1;
  std::string base_dir;
};

// Removes a trial directory unless --keep asked for it. Failures are
// reproducible from the printed label and seed, so even failed trials are
// cleaned up rather than leaked into the temp filesystem.
void CleanupTrialDir(const std::string& dir, bool keep) {
  if (keep) return;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// One replication matrix trial: fork the follower, fork the primary, let the
// armed fault kill its victim, then verify both directories.
// Returns false on an invariant violation; *exhausted is set when the point
// never fired in the victim, ending the Nth sweep for this configuration.
bool RunReplicationTrial(const std::string& dir, const std::string& label,
                         const std::string& point, uint64_t nth,
                         bool victim_primary, bool sync_mode, bool* exhausted,
                         int* crashes) {
  const std::string primary_dir = dir + "/primary";
  const std::string follower_dir = dir + "/follower";
  const std::string socket_path = dir + "/sock";
  std::error_code ec;
  std::filesystem::create_directories(primary_dir, ec);
  std::filesystem::create_directories(follower_dir, ec);

  pid_t follower_pid = ::fork();
  if (follower_pid < 0) return false;
  if (follower_pid == 0) {
    std::_Exit(RunReplicationFollower(follower_dir, socket_path, point, nth,
                                      /*arm_here=*/!victim_primary));
  }

  pid_t primary_pid = ::fork();
  if (primary_pid < 0) {
    ::kill(follower_pid, SIGKILL);
    ::waitpid(follower_pid, nullptr, 0);
    return false;
  }
  if (primary_pid == 0) {
    std::_Exit(RunReplicationPrimary(primary_dir, socket_path, point, nth,
                                     /*arm_here=*/victim_primary, sync_mode));
  }

  int primary_status = 0;
  if (::waitpid(primary_pid, &primary_status, 0) != primary_pid ||
      !WIFEXITED(primary_status)) {
    ::kill(follower_pid, SIGKILL);
    ::waitpid(follower_pid, nullptr, 0);
    std::fprintf(stderr, "FAIL %s: primary did not exit cleanly\n", label.c_str());
    return false;
  }
  const int primary_exit = WEXITSTATUS(primary_status);

  // The follower either crashed on its armed point or is still serving; a
  // SIGKILL from here is just one more crash the recovery path must absorb
  // (anything acked is already fsynced).
  int follower_status = 0;
  bool follower_crashed = false;
  if (::waitpid(follower_pid, &follower_status, WNOHANG) == follower_pid) {
    follower_crashed = WIFEXITED(follower_status) &&
                       WEXITSTATUS(follower_status) == FaultInjector::kCrashExitCode;
  } else {
    ::kill(follower_pid, SIGKILL);
    ::waitpid(follower_pid, &follower_status, 0);
  }

  if (victim_primary) {
    if (primary_exit == kSweepExhausted) {
      *exhausted = true;
    } else if (primary_exit == FaultInjector::kCrashExitCode) {
      ++*crashes;
    } else {
      std::fprintf(stderr, "FAIL %s: unexpected primary exit %d\n",
                   label.c_str(), primary_exit);
      return false;
    }
  } else {
    if (primary_exit != kSweepExhausted) {
      // With the fault armed in the follower, the primary must always ride
      // out the loss and complete (graceful degradation).
      std::fprintf(stderr, "FAIL %s: primary exit %d with healthy journal\n",
                   label.c_str(), primary_exit);
      return false;
    }
    if (follower_crashed) {
      ++*crashes;
    } else {
      *exhausted = true;
    }
  }

  // The primary's own directory must recover to its locally-acked prefix,
  // exactly as in the single-node sweep.
  if (!VerifyWorkloadTrial(primary_dir, label + " [primary]",
                           /*completed=*/primary_exit == kSweepExhausted)) {
    return false;
  }
  // The promoted follower must be an acked-prefix replay. Under sync mode
  // the prefix floor is the statements acknowledged while the follower was
  // in the sync quorum; under async any prefix is acceptable.
  const size_t min_prefix =
      sync_mode ? CountLines(primary_dir + "/racks") : 0;
  return VerifyPromotedFollower(follower_dir, label + " [follower]", min_prefix);
}

int RunReplicationHarness(const Options& options, const std::string& base) {
  struct Config {
    std::string point;
    bool victim_primary;
    bool sync_mode;
  };
  std::vector<Config> configs;
  for (const std::string& point : ReplicationSweepPoints()) {
    for (bool victim_primary : {true, false}) {
      for (bool sync_mode : {true, false}) {
        configs.push_back({point, victim_primary, sync_mode});
      }
    }
  }
  SeededShuffle(&configs, options.seed);

  const uint64_t nth_limit = options.quick ? 2 : 6;
  int trials = 0;
  int crashes = 0;
  bool failed = false;
  std::error_code ec;

  for (const Config& config : configs) {
    for (uint64_t nth = 1; nth <= nth_limit; ++nth) {
      const std::string label = std::string("repl.") + config.point +
                                (config.victim_primary ? ".p" : ".f") +
                                (config.sync_mode ? ".sync" : ".async") + "#" +
                                std::to_string(nth);
      const std::string dir = base + "/" + label;
      std::filesystem::remove_all(dir, ec);
      std::filesystem::create_directories(dir, ec);

      ++trials;
      bool exhausted = false;
      bool ok = RunReplicationTrial(dir, label, config.point, nth,
                                    config.victim_primary, config.sync_mode,
                                    &exhausted, &crashes);
      if (!ok) failed = true;
      CleanupTrialDir(dir, options.keep);
      if (!ok || exhausted) break;  // later hits cannot fire either
    }
  }

  std::printf(
      "seltrig_crashtest --replication: %d trials, %d injected crashes, "
      "seed %llu, %s\n",
      trials, crashes, static_cast<unsigned long long>(options.seed),
      failed ? "FAILURES" : "all invariants held");
  return failed ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Three-node election matrix (--replication --nodes 3). See the file comment:
// three ElectionNode processes, a leader-driven workload, a SIGKILL (or a
// dropped-link window) at every replication/election fault point, and the
// three failover invariants checked offline. Database::Promote is never
// called anywhere in this matrix.

// Points swept with a crash-at-Nth-hit schedule in one victim node. The
// election.* points cover the election layer itself (a candidate dying inside
// a campaign, a voter dying between persisting and sending a grant, ...); the
// replication/journal points cover a leader or follower dying mid-shipment.
const std::vector<std::string>& ElectionSweepPoints() {
  static const std::vector<std::string> points = {
      fault_points::kElectionTimeout, fault_points::kElectionVoteDrop, fault_points::kElectionPartition,
      fault_points::kElectionStaleCandidate,
      fault_points::kReplicationSend, fault_points::kReplicationApply, fault_points::kReplicationAck,
      fault_points::kWalAppend,       fault_points::kWalFsync,         fault_points::kWalTorn,
  };
  return points;
}

// Bounded-convergence budgets. The election timeout range below is
// [60, 180] ms, so the election bound allows on the order of a hundred
// back-to-back timed-out elections before the harness calls liveness broken.
constexpr int64_t kElectionBoundMs = 20000;
constexpr int64_t kConvergeBoundMs = 15000;
// How long a crash trial waits for the armed point to fire before declaring
// the Nth sweep for that configuration exhausted.
constexpr int64_t kCrashWaitMs = 8000;
// Partition trials drop this many consecutive outbound election frames in
// the victim: at a 15 ms heartbeat interval that is a multi-second severed
// link — long enough for the survivors to depose a partitioned leader.
constexpr uint64_t kPartitionDrops = 300;

// The idempotent schema setup a node (re)runs once per stint of leadership.
// After a failover the journal already holds all of it and every statement
// fails as a duplicate, which is harmless: the workload INSERT below is the
// real probe of a usable leader.
const char* const kElectionSetup[] = {
    "CREATE TABLE patients (patientid INT PRIMARY KEY, name VARCHAR, "
    "diagnosis VARCHAR)",
    "CREATE TABLE log (ts VARCHAR, userid VARCHAR, sql VARCHAR, patientid INT)",
    "CREATE AUDIT EXPRESSION audit_alice AS SELECT * FROM patients WHERE "
    "name = 'Alice' FOR SENSITIVE TABLE patients PARTITION BY patientid",
    "CREATE TRIGGER log_alice ON ACCESS TO audit_alice AS INSERT INTO log "
    "SELECT now(), user_id(), sql_text(), patientid FROM accessed",
};

bool AppendAckLine(int fd, const std::string& line) {
  const std::string out = line + "\n";
  return ::write(fd, out.data(), out.size()) ==
             static_cast<ssize_t>(out.size()) &&
         ::fsync(fd) == 0;
}

// True when at least one follower is in the sync quorum. A kSync Execute
// returns only once every non-degraded follower acked, so if one is still
// non-degraded afterwards, leader + that follower — a majority of three —
// hold the statement durably, and any future leader must retain it (the
// voter up-to-dateness gate guarantees every election quorum overlaps it).
bool AnySyncFollower(ElectionNode* node) {
  for (const FollowerStatus& f : node->FollowerStatuses()) {
    if (!f.degraded) return true;
  }
  return false;
}

// Per-node status file, written atomically (tmp + rename) every driver loop
// so the parent can observe roles and journal positions without a channel to
// the child.
void WriteNodeStatus(const std::string& dir, uint64_t beat,
                     const ElectionInfo& info) {
  const std::string tmp = dir + "/status.tmp";
  // Counters + health ride at the end so older readers (and the parser
  // below, which stops at the position) stay compatible; health last since
  // its message may contain spaces.
  const std::string line =
      std::to_string(beat) + " " + ElectionRoleName(info.role) + " " +
      std::to_string(info.epoch) + " " + std::to_string(info.term) + " " +
      std::to_string(info.position.epoch) + " " +
      std::to_string(info.position.seq) + " " +
      std::to_string(info.position.offset) + " " +
      std::to_string(info.elections_started) + " " +
      std::to_string(info.pre_votes_granted) + " " +
      std::to_string(info.votes_granted) + " " +
      std::to_string(info.stale_candidates_rejected) + " " +
      std::to_string(info.steps_down) + " " +
      (info.health.ok() ? "ok" : info.health.message()) + "\n";
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return;
  (void)::write(fd, line.data(), line.size());
  ::close(fd);
  ::rename(tmp.c_str(), (dir + "/status").c_str());
}

struct NodeStatus {
  bool valid = false;
  uint64_t beat = 0;
  std::string role;
  uint64_t epoch = 0;
  uint64_t term = 0;
  WalPosition position;
};

NodeStatus ReadNodeStatus(const std::string& dir) {
  NodeStatus s;
  std::ifstream in(dir + "/status");
  if (in >> s.beat >> s.role >> s.epoch >> s.term >> s.position.epoch >>
      s.position.seq >> s.position.offset) {
    s.valid = true;
  }
  return s;
}

// One node of the three-node cluster: a full ElectionNode over unix-socket
// transports plus a leader-driven workload. Whichever node leads appends
// monotonically keyed rows (each leader continues at max(key) + 1 over its
// own recovered state) and reads each one back through the SELECT trigger.
// The diagnosis column encodes (node, epoch), so a forked row that survived
// failover shows up as a value mismatch in the offline verification. Two
// fsynced streams accumulate per node (O_APPEND — a restarted victim keeps
// its history): "acks" for locally committed statements and "racks" for
// statements committed while a follower was in the sync quorum.
int RunElectionNode(const std::vector<std::string>& ids, size_t index,
                    const std::string& trial_dir, uint64_t seed,
                    const std::string& point, uint64_t nth, bool arm_here,
                    bool partition_trial) {
  const std::string dir = trial_dir + "/" + ids[index];
  std::map<std::string, std::string> peer_bus;
  std::map<std::string, std::string> peer_repl;
  std::vector<std::string> peers;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i == index) continue;
    peers.push_back(ids[i]);
    peer_bus[ids[i]] = trial_dir + "/b" + std::to_string(i);
    peer_repl[ids[i]] = trial_dir + "/r" + std::to_string(i);
  }

  Result<std::unique_ptr<ElectionBus>> bus = CreateSocketElectionBus(
      trial_dir + "/b" + std::to_string(index), peer_bus);
  if (!bus.ok()) {
    std::fprintf(stderr, "%s: bus listen failed: %s\n", ids[index].c_str(),
                 bus.status().message().c_str());
    return kHarnessError;
  }

  ElectionOptions opts;
  opts.id = ids[index];
  opts.dir = dir;
  opts.peers = peers;
  opts.heartbeat_interval_ms = 15;
  opts.election_timeout_min_ms = 60;
  opts.election_timeout_max_ms = 180;
  opts.poll_interval_ms = 2;
  opts.seed = seed;  // --seed drives the timeout and vote-jitter streams
  opts.replication_listen_path = trial_dir + "/r" + std::to_string(index);
  opts.shipper.ack_mode = ReplicationAckMode::kSync;
  opts.shipper.heartbeat_interval_ms = 15;
  opts.shipper.ack_timeout_ms = 400;
  opts.shipper.initial_backoff_ms = 2;
  opts.shipper.max_backoff_ms = 50;
  opts.shipper.poll_interval_ms = 2;

  Result<std::unique_ptr<ElectionNode>> node = ElectionNode::Start(
      std::move(opts), std::move(*bus),
      [peer_repl](
          const std::string& peer) -> Result<std::shared_ptr<FrameChannel>> {
        auto it = peer_repl.find(peer);
        if (it == peer_repl.end()) {
          return Status(ErrorCode::kNotFound, "unknown peer " + peer);
        }
        return ConnectLocalSocket(it->second);
      });
  if (!node.ok()) {
    std::fprintf(stderr, "%s: start failed: %s\n", ids[index].c_str(),
                 node.status().message().c_str());
    return kHarnessError;
  }

  // Arm after Start so recovery/startup I/O cannot trip the fault (same
  // convention as the single-node sweep). A partition trial arms an error
  // schedule on election.partition: the bus turns each firing into a silent
  // drop of one outbound election frame, so for kPartitionDrops consecutive
  // sends this node is link-severed — if it leads, it keeps committing
  // un-replicated local records until the survivors depose it, which is
  // exactly the forked suffix the rejoin verification must prove dies.
  if (arm_here) {
    FaultInjector::Schedule schedule;
    if (partition_trial) {
      schedule.nth = nth;
      schedule.every = 1;
      schedule.times = kPartitionDrops;
      schedule.code = ErrorCode::kUnavailable;
    } else if (point == fault_points::kWalTorn) {
      schedule = FaultInjector::FailNth(nth);
    } else {
      schedule = FaultInjector::CrashNth(nth);
    }
    FaultInjector::Instance().Arm(point, schedule);
  }

  int ack_fd =
      ::open((dir + "/acks").c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  int rack_fd =
      ::open((dir + "/racks").c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (ack_fd < 0 || rack_fd < 0) return kHarnessError;

  const std::string pause_path = trial_dir + "/pause";
  uint64_t beat = 0;
  uint64_t setup_epoch = 0;
  for (;;) {
    ElectionInfo info = (*node)->info();
    WriteNodeStatus(dir, ++beat, info);
    std::shared_ptr<Database> db = std::filesystem::exists(pause_path)
                                       ? nullptr
                                       : (*node)->leader_database();
    if (!db) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (info.epoch != setup_epoch) {
      for (const char* stmt : kElectionSetup) (void)db->Execute(stmt);
      setup_epoch = info.epoch;
    }
    // Next key: continue the sequence from this leader's own state. Quiet
    // scan — the probe must not write audit rows of its own.
    ExecOptions quiet;
    quiet.enable_select_triggers = false;
    Result<StatementResult> keys =
        db->ExecuteWithOptions("SELECT patientid FROM patients", quiet);
    if (!keys.ok()) {
      db.reset();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    int64_t next = 1;
    for (const Row& row : keys->result.rows) {
      next = std::max(next, row[0].AsInt() + 1);
    }
    const std::string k = std::to_string(next);
    const std::string tag = ids[index] + "e" + std::to_string(info.epoch);
    Status ins = db->Execute("INSERT INTO patients VALUES (" + k +
                             ", 'Alice', '" + tag + "')")
                     .status();
    if (ins.ok()) {
      if (!AppendAckLine(ack_fd, "i " + k + " " + tag)) return kHarnessError;
      if (AnySyncFollower(node->get()) &&
          !AppendAckLine(rack_fd, "i " + k + " " + tag)) {
        return kHarnessError;
      }
      // The audited read-back: its SELECT trigger appends the log row in the
      // same statement, so a racked "s" line obliges the new history to hold
      // that audit-log row too.
      Status sel = db->Execute("SELECT diagnosis FROM patients WHERE "
                               "patientid = " + k)
                       .status();
      if (sel.ok()) {
        if (!AppendAckLine(ack_fd, "s " + k + " " + tag)) return kHarnessError;
        if (AnySyncFollower(node->get()) &&
            !AppendAckLine(rack_fd, "s " + k + " " + tag)) {
          return kHarnessError;
        }
      }
    }
    db.reset();  // never outlive the statement: step-down drains holders
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Offline verification of a finished trial: recover every directory with
// plain Database::Recover (never Promote) and check invariants (b) and (c).
bool VerifyElectionTrial(const std::string& dir,
                         const std::vector<std::string>& ids,
                         const std::string& label, size_t leader) {
  struct NodeState {
    std::map<int64_t, std::string> patients;  // key -> "name|diagnosis"
    std::map<std::string, size_t> log;        // "userid|sql|patientid" -> n
  };
  std::vector<NodeState> states(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    Result<std::unique_ptr<Database>> db = Database::Recover(dir + "/" + ids[i]);
    if (!db.ok()) {
      std::fprintf(stderr, "FAIL %s: %s failed to recover: %s\n",
                   label.c_str(), ids[i].c_str(),
                   db.status().message().c_str());
      return false;
    }
    ExecOptions quiet;
    quiet.enable_select_triggers = false;
    Result<StatementResult> pr = (*db)->ExecuteWithOptions(
        "SELECT patientid, name, diagnosis FROM patients", quiet);
    if (pr.ok()) {
      for (const Row& row : pr->result.rows) {
        states[i].patients[row[0].AsInt()] =
            row[1].AsString() + "|" + row[2].AsString();
      }
    }
    Result<StatementResult> lr = (*db)->ExecuteWithOptions(
        "SELECT userid, sql, patientid FROM log", quiet);
    if (lr.ok()) {
      for (const Row& row : lr->result.rows) {
        ++states[i].log[row[0].AsString() + "|" + row[1].AsString() + "|" +
                        std::to_string(row[2].AsInt())];
      }
    }
  }
  const NodeState& final_leader = states[leader];

  // (b) acked-prefix across the transition: every sync-quorum-acknowledged
  // statement — recorded by whichever node led at the time — must survive in
  // the final leader with the exact committed values.
  for (size_t i = 0; i < ids.size(); ++i) {
    std::ifstream racks(dir + "/" + ids[i] + "/racks");
    std::string kind, tag;
    int64_t k = 0;
    while (racks >> kind >> k >> tag) {
      auto it = final_leader.patients.find(k);
      if (it == final_leader.patients.end() ||
          it->second != "Alice|" + tag) {
        std::fprintf(stderr,
                     "FAIL %s: sync-acked row %lld (%s, acked on %s) missing "
                     "or rewritten in the final leader\n",
                     label.c_str(), static_cast<long long>(k), tag.c_str(),
                     ids[i].c_str());
        return false;
      }
      if (kind == "s") {
        // The SELECT's trigger row must have survived with it.
        const std::string sql =
            "SELECT diagnosis FROM patients WHERE patientid = " +
            std::to_string(k);
        bool found = false;
        for (const auto& [line, count] : final_leader.log) {
          (void)count;
          if (line.find("|" + sql + "|" + std::to_string(k)) !=
              std::string::npos) {
            found = true;
            break;
          }
        }
        if (!found) {
          std::fprintf(stderr,
                       "FAIL %s: audit-log row of sync-acked SELECT %lld "
                       "missing in the final leader\n",
                       label.c_str(), static_cast<long long>(k));
          return false;
        }
      }
    }
  }

  // (c) no forked suffix survives: every other directory must be a subset of
  // the final leader's history. A row a deposed leader committed alone and
  // the new timeline rewrote would surface here with a mismatched
  // (node, epoch) tag.
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i == leader) continue;
    for (const auto& [k, row] : states[i].patients) {
      auto it = final_leader.patients.find(k);
      if (it == final_leader.patients.end() || it->second != row) {
        std::fprintf(stderr,
                     "FAIL %s: %s holds forked patients row %lld (%s)\n",
                     label.c_str(), ids[i].c_str(),
                     static_cast<long long>(k), row.c_str());
        return false;
      }
    }
    for (const auto& [line, count] : states[i].log) {
      auto it = final_leader.log.find(line);
      if (it == final_leader.log.end() || it->second < count) {
        std::fprintf(stderr, "FAIL %s: %s holds forked audit-log row [%s]\n",
                     label.c_str(), ids[i].c_str(), line.c_str());
        return false;
      }
    }
  }

  // Every leader continues at max(key) + 1 over its own recovered state, so
  // a hole in the final key sequence means a promoted leader was missing part
  // of the history it was elected on.
  int64_t expect = 1;
  for (const auto& [k, row] : final_leader.patients) {
    (void)row;
    if (k != expect++) {
      std::fprintf(stderr, "FAIL %s: final leader key sequence has a hole "
                   "at %lld\n",
                   label.c_str(), static_cast<long long>(expect - 1));
      return false;
    }
  }
  return true;
}

void KillElectionNodes(std::vector<pid_t>* pids) {
  for (pid_t& pid : *pids) {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
}

bool WaitUntil(int64_t timeout_ms, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (pred()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return pred();
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

// One three-node trial. Returns false on an invariant violation; *exhausted
// is set when a crash trial's armed point never fired in the victim.
bool RunElectionTrial(const std::string& dir, const std::string& label,
                      const std::string& point, size_t victim, uint64_t nth,
                      bool partition_trial, uint64_t seed, bool* exhausted,
                      int* crashes) {
  const std::vector<std::string> ids = {"n0", "n1", "n2"};
  std::error_code ec;
  for (const std::string& id : ids) {
    std::filesystem::create_directories(dir + "/" + id, ec);
  }

  auto spawn = [&](size_t i, bool arm) -> pid_t {
    pid_t pid = ::fork();
    if (pid == 0) {
      std::_Exit(
          RunElectionNode(ids, i, dir, seed, point, nth, arm, partition_trial));
    }
    return pid;
  };

  std::vector<pid_t> pids(ids.size(), -1);
  for (size_t i = 0; i < ids.size(); ++i) {
    pids[i] = spawn(i, /*arm=*/i == victim);
    if (pids[i] < 0) {
      KillElectionNodes(&pids);
      return false;
    }
  }

  auto leader_index = [&]() -> int {
    for (size_t i = 0; i < ids.size(); ++i) {
      if (pids[i] <= 0) continue;
      NodeStatus s = ReadNodeStatus(dir + "/" + ids[i]);
      if (s.valid && s.role == "leader") return static_cast<int>(i);
    }
    return -1;
  };

  // (a) cold start: a leader within the election bound, no operator in the
  // loop.
  if (!WaitUntil(kElectionBoundMs, [&] { return leader_index() >= 0; })) {
    std::fprintf(stderr, "FAIL %s: no leader within %lld ms of cold start\n",
                 label.c_str(), static_cast<long long>(kElectionBoundMs));
    KillElectionNodes(&pids);
    return false;
  }

  bool victim_crashed = false;
  if (partition_trial) {
    // Let the severed-link window play out: deposition, fork, heal. No
    // process may die in a partition trial.
    std::this_thread::sleep_for(std::chrono::milliseconds(3000));
    for (size_t i = 0; i < ids.size(); ++i) {
      int status = 0;
      if (::waitpid(pids[i], &status, WNOHANG) == pids[i]) {
        std::fprintf(stderr, "FAIL %s: %s died (exit %d) in partition trial\n",
                     label.c_str(), ids[i].c_str(),
                     WIFEXITED(status) ? WEXITSTATUS(status) : -1);
        pids[i] = -1;
        KillElectionNodes(&pids);
        return false;
      }
    }
  } else {
    // Run the workload until the armed point kills the victim (or the wait
    // budget declares this hit count unreachable).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kCrashWaitMs);
    while (std::chrono::steady_clock::now() < deadline) {
      int status = 0;
      if (::waitpid(pids[victim], &status, WNOHANG) == pids[victim]) {
        pids[victim] = -1;
        if (!WIFEXITED(status) ||
            WEXITSTATUS(status) != FaultInjector::kCrashExitCode) {
          std::fprintf(stderr, "FAIL %s: unexpected victim exit %d\n",
                       label.c_str(),
                       WIFEXITED(status) ? WEXITSTATUS(status) : -1);
          KillElectionNodes(&pids);
          return false;
        }
        victim_crashed = true;
        break;
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        if (i == victim || pids[i] <= 0) continue;
        if (::waitpid(pids[i], &status, WNOHANG) == pids[i]) {
          std::fprintf(stderr, "FAIL %s: non-victim %s died (exit %d)\n",
                       label.c_str(), ids[i].c_str(),
                       WIFEXITED(status) ? WEXITSTATUS(status) : -1);
          pids[i] = -1;
          KillElectionNodes(&pids);
          return false;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!victim_crashed) *exhausted = true;
  }

  if (victim_crashed) {
    ++*crashes;
    // (a) failover: the survivors must elect among themselves within the
    // bound — entirely on their own.
    if (!WaitUntil(kElectionBoundMs, [&] {
          int li = leader_index();
          return li >= 0 && li != static_cast<int>(victim);
        })) {
      std::fprintf(stderr,
                   "FAIL %s: no surviving leader within %lld ms of the "
                   "victim's crash\n",
                   label.c_str(), static_cast<long long>(kElectionBoundMs));
      KillElectionNodes(&pids);
      return false;
    }
    // A stretch of post-failover commits the rejoining victim must absorb.
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    // Heal: restart the victim unarmed on the same directory. Its stale
    // status and socket files go first (the old "leader" claim must not
    // confuse the parent, and the listeners need their paths back).
    std::filesystem::remove(dir + "/" + ids[victim] + "/status", ec);
    std::filesystem::remove(dir + "/b" + std::to_string(victim), ec);
    std::filesystem::remove(dir + "/r" + std::to_string(victim), ec);
    pids[victim] = spawn(victim, /*arm=*/false);
    if (pids[victim] < 0) {
      KillElectionNodes(&pids);
      return false;
    }
  }

  // Quiesce the workload (replication and heartbeats keep running) and wait
  // for the cluster to settle: exactly one leader, every node converged onto
  // its journal tip. This is where a rejoined victim must have discarded any
  // forked suffix — a forked journal can never reach the leader's position.
  {
    int fd = ::open((dir + "/pause").c_str(), O_CREAT | O_WRONLY, 0644);
    if (fd >= 0) ::close(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  int li = leader_index();
  if (li < 0) {
    std::fprintf(stderr, "FAIL %s: no leader at quiesce\n", label.c_str());
    KillElectionNodes(&pids);
    return false;
  }
  const WalPosition tip = ReadNodeStatus(dir + "/" + ids[li]).position;
  const bool settled = WaitUntil(kConvergeBoundMs, [&] {
    size_t leaders = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      NodeStatus s = ReadNodeStatus(dir + "/" + ids[i]);
      if (!s.valid || s.position < tip) return false;
      if (s.role == "leader") ++leaders;
    }
    return leaders == 1;
  });
  if (!settled) {
    std::fprintf(stderr,
                 "FAIL %s: cluster did not settle on one converged leader "
                 "within %lld ms (healed node failed to rejoin?)\n",
                 label.c_str(), static_cast<long long>(kConvergeBoundMs));
    KillElectionNodes(&pids);
    return false;
  }
  const int final_leader = leader_index();
  KillElectionNodes(&pids);
  if (final_leader < 0) {
    std::fprintf(stderr, "FAIL %s: final leader vanished\n", label.c_str());
    return false;
  }
  return VerifyElectionTrial(dir, ids, label,
                             static_cast<size_t>(final_leader));
}

int RunElectionHarness(const Options& options, const std::string& base) {
  struct Config {
    std::string point;
    size_t victim;
    bool partition;
  };
  std::vector<Config> configs;
  for (const std::string& point : ElectionSweepPoints()) {
    for (size_t victim = 0; victim < 3; ++victim) {
      configs.push_back({point, victim, false});
    }
  }
  // Dedicated partition-heal trials: a severed link instead of a crash, so a
  // deposed-but-alive leader writes the forked suffix invariant (c) targets.
  for (size_t victim = 0; victim < 3; ++victim) {
    configs.push_back({fault_points::kElectionPartition, victim, true});
  }
  SeededShuffle(&configs, options.seed);

  const uint64_t nth_limit = options.quick ? 2 : 4;
  const int trial_budget =
      options.trials > 0
          ? options.trials
          : (options.quick ? 8 : static_cast<int>(configs.size() * nth_limit));
  int trials = 0;
  int crashes = 0;
  bool failed = false;
  std::error_code ec;

  for (const Config& config : configs) {
    if (trials >= trial_budget) break;
    const uint64_t sweep = config.partition ? 1 : nth_limit;
    for (uint64_t n = 1; n <= sweep; ++n) {
      if (trials >= trial_budget) break;
      // Hits beyond the first land in steady state rather than the first
      // election; spread them out instead of stepping one by one.
      const uint64_t hit = config.partition ? n : 1 + (n - 1) * 7;
      const std::string label = std::string("elect.") + config.point +
                                (config.partition ? ".part" : "") + ".v" +
                                std::to_string(config.victim) + "#" +
                                std::to_string(hit);
      if (!options.only.empty() && label.rfind(options.only, 0) != 0) {
        continue;
      }
      const std::string dir = base + "/" + label;
      std::filesystem::remove_all(dir, ec);
      std::filesystem::create_directories(dir, ec);

      ++trials;
      bool exhausted = false;
      bool ok =
          RunElectionTrial(dir, label, config.point, config.victim, hit,
                           config.partition, options.seed, &exhausted,
                           &crashes);
      if (!ok) failed = true;
      CleanupTrialDir(dir, options.keep);
      if (!ok || exhausted) break;
    }
  }

  std::printf(
      "seltrig_crashtest --replication --nodes 3: %d trials, %d injected "
      "crashes, 0 operator promotions, seed %llu, %s\n",
      trials, crashes, static_cast<unsigned long long>(options.seed),
      failed ? "FAILURES (rerun with --keep --seed to inspect)"
             : "all invariants held");
  return failed ? 1 : 0;
}

int RunHarness(const Options& options) {
  std::error_code ec;
  std::string base = options.base_dir;
  if (base.empty()) {
    base = (std::filesystem::temp_directory_path() /
            ("seltrig_crashtest." + std::to_string(::getpid())))
               .string();
  }
  std::filesystem::create_directories(base, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s\n", base.c_str());
    return 1;
  }

  if (options.replication) {
    const int result = options.nodes >= 3
                           ? RunElectionHarness(options, base)
                           : RunReplicationHarness(options, base);
    if (result == 0 && !options.keep && options.base_dir.empty()) {
      std::filesystem::remove_all(base, ec);
    }
    return result;
  }

  int trials = 0;
  int crashes = 0;
  bool failed = false;
  const uint64_t nth_limit = options.quick ? kQuickNthLimit : kMaxNth;

  std::vector<std::string> points = SweepPoints();
  SeededShuffle(&points, options.seed);

  for (const std::string& point : points) {
    for (uint64_t nth = 1; nth <= nth_limit; ++nth) {
      const std::string label = point + "#" + std::to_string(nth);
      const std::string dir = base + "/" + point + "." + std::to_string(nth);
      std::filesystem::remove_all(dir, ec);
      std::filesystem::create_directories(dir, ec);

      TrialResult trial = RunTrial(
          [&] { return RunWorkloadChild(dir, point, nth); });
      ++trials;
      if (!trial.ran) {
        std::fprintf(stderr, "FAIL %s: child did not exit cleanly\n",
                     label.c_str());
        failed = true;
        CleanupTrialDir(dir, options.keep);
        break;
      }
      if (trial.exit_code == kSweepExhausted) {
        // The point never fired at this hit count: the workload completed.
        // Recovery of the completed run must reproduce the full prefix.
        if (!VerifyWorkloadTrial(dir, label + " (completed)", /*completed=*/true)) {
          failed = true;
        }
        CleanupTrialDir(dir, options.keep);
        break;  // later hits cannot fire either
      }
      if (trial.exit_code != FaultInjector::kCrashExitCode) {
        std::fprintf(stderr, "FAIL %s: unexpected child exit %d\n",
                     label.c_str(), trial.exit_code);
        failed = true;
        CleanupTrialDir(dir, options.keep);
        continue;
      }
      ++crashes;
      if (!VerifyWorkloadTrial(dir, label, /*completed=*/false)) {
        failed = true;
      }
      CleanupTrialDir(dir, options.keep);
    }
  }

  {
    const std::string dir = base + "/loss";
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);
    TrialResult trial = RunTrial([&] { return RunLossChild(dir); });
    ++trials;
    if (!trial.ran || trial.exit_code != FaultInjector::kCrashExitCode) {
      std::fprintf(stderr, "FAIL loss: child exit %d (wanted %d)\n",
                   trial.exit_code, FaultInjector::kCrashExitCode);
      failed = true;
    } else {
      ++crashes;
      if (!VerifyLossTrial(dir)) failed = true;
    }
    CleanupTrialDir(dir, options.keep);
  }

  if (!failed && !options.keep && options.base_dir.empty()) {
    std::filesystem::remove_all(base, ec);
  }
  std::printf("seltrig_crashtest: %d trials, %d injected crashes, seed %llu, %s\n",
              trials, crashes, static_cast<unsigned long long>(options.seed),
              failed ? "FAILURES (rerun with --keep --seed to inspect)"
                     : "all invariants held");
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace seltrig

int main(int argc, char** argv) {
  seltrig::Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--keep") {
      options.keep = true;
    } else if (arg == "--replication") {
      options.replication = true;
    } else if (arg == "--nodes" && i + 1 < argc) {
      options.nodes = std::atoi(argv[++i]);
    } else if (arg == "--trials" && i + 1 < argc) {
      options.trials = std::atoi(argv[++i]);
    } else if (arg == "--dir" && i + 1 < argc) {
      options.base_dir = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--only" && i + 1 < argc) {
      options.only = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--keep] [--dir DIR] [--seed N] "
                   "[--replication] [--nodes N] [--trials N] "
                   "[--only LABEL-PREFIX]\n",
                   argv[0]);
      return 2;
    }
  }
  return seltrig::RunHarness(options);
}
