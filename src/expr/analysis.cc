#include "expr/analysis.h"

#include <utility>

#include "expr/evaluator.h"
#include "plan/logical_plan.h"

namespace seltrig {

void VisitScopeColumnRefs(Expr& expr, const std::function<void(int&)>& fn) {
  if (expr.kind == ExprKind::kColumnRef) fn(expr.column_index);
  if (expr.kind == ExprKind::kSubquery && expr.subquery_plan != nullptr) {
    VisitPlanScopeColumnRefs(*expr.subquery_plan, 1, fn);
  }
  for (auto& c : expr.children) VisitScopeColumnRefs(*c, fn);
}

namespace {

void VisitExprOuterRefsAtDepth(Expr& e, int depth, const std::function<void(int&)>& fn) {
  if (e.kind == ExprKind::kOuterColumnRef && e.levels_up == depth) {
    fn(e.column_index);
  }
  if (e.kind == ExprKind::kSubquery && e.subquery_plan != nullptr) {
    VisitPlanScopeColumnRefs(*e.subquery_plan, depth + 1, fn);
  }
  for (auto& c : e.children) VisitExprOuterRefsAtDepth(*c, depth, fn);
}

}  // namespace

void VisitPlanScopeColumnRefs(LogicalOperator& plan, int depth,
                              const std::function<void(int&)>& fn) {
  VisitNodeExprs(plan, [&](ExprPtr& e) { VisitExprOuterRefsAtDepth(*e, depth, fn); });
  for (auto& child : plan.children) VisitPlanScopeColumnRefs(*child, depth, fn);
}

void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kLogical && expr->logical_op == LogicalOp::kAnd) {
    SplitConjuncts(std::move(expr->children[0]), out);
    SplitConjuncts(std::move(expr->children[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr result;
  for (auto& c : conjuncts) {
    if (result == nullptr) {
      result = std::move(c);
    } else {
      result = MakeAnd(std::move(result), std::move(c));
    }
  }
  return result;
}

void CollectColumnRefs(const Expr& expr, std::set<int>* out) {
  if (expr.kind == ExprKind::kColumnRef) {
    out->insert(expr.column_index);
  }
  for (const auto& c : expr.children) CollectColumnRefs(*c, out);
}

bool ExprReferencesOnlyRange(const Expr& expr, int lo, int hi) {
  if (expr.kind == ExprKind::kColumnRef) {
    return expr.column_index >= lo && expr.column_index < hi;
  }
  if (expr.kind == ExprKind::kOuterColumnRef || expr.kind == ExprKind::kSubquery) {
    return false;
  }
  for (const auto& c : expr.children) {
    if (!ExprReferencesOnlyRange(*c, lo, hi)) return false;
  }
  return true;
}

void ShiftColumnRefs(Expr* expr, int delta) {
  if (expr->kind == ExprKind::kColumnRef) {
    expr->column_index += delta;
  }
  for (auto& c : expr->children) ShiftColumnRefs(c.get(), delta);
}

bool ContainsSubquery(const Expr& expr) {
  if (expr.kind == ExprKind::kSubquery) return true;
  for (const auto& c : expr.children) {
    if (ContainsSubquery(*c)) return true;
  }
  return false;
}

namespace {

bool IsPureFoldableKind(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kComparison:
    case ExprKind::kArith:
    case ExprKind::kLogical:
    case ExprKind::kIsNull:
    case ExprKind::kLike:
    case ExprKind::kInList:
    case ExprKind::kCase:
      return true;
    case ExprKind::kFunction:
      switch (e.function_id) {
        case FunctionId::kNow:
        case FunctionId::kCurrentDate:
        case FunctionId::kUserId:
        case FunctionId::kSqlText:
          return false;  // session-dependent
        default:
          return true;
      }
    default:
      return false;
  }
}

bool AllChildrenLiteral(const Expr& e) {
  for (const auto& c : e.children) {
    if (c->kind != ExprKind::kLiteral) return false;
  }
  return !e.children.empty();
}

}  // namespace

ExprPtr FoldConstants(ExprPtr expr) {
  for (auto& c : expr->children) {
    c = FoldConstants(std::move(c));
  }
  if (!IsPureFoldableKind(*expr) || !AllChildrenLiteral(*expr)) return expr;
  EvalContext ctx;  // no row, no exec: pure operators only
  Result<Value> folded = EvalExpr(*expr, ctx);
  if (!folded.ok()) return expr;  // surfaces at execution time
  TypeId t = expr->result_type;
  ExprPtr lit = MakeLiteral(std::move(folded).value());
  if (lit->literal.is_null()) lit->result_type = t;
  return lit;
}

void ValueInterval::ApplyCompare(CompareOp op, const Value& v) {
  if (empty) return;
  switch (op) {
    case CompareOp::kEq: {
      if (eq.has_value() && *eq != v) {
        empty = true;
        return;
      }
      eq = v;
      break;
    }
    case CompareOp::kNe:
      neq.push_back(v);
      break;
    case CompareOp::kLt:
    case CompareOp::kLe: {
      bool strict = op == CompareOp::kLt;
      if (!hi.has_value() || Value::Compare(v, *hi) < 0 ||
          (Value::Compare(v, *hi) == 0 && strict)) {
        hi = v;
        hi_strict = strict;
      }
      break;
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      bool strict = op == CompareOp::kGt;
      if (!lo.has_value() || Value::Compare(v, *lo) > 0 ||
          (Value::Compare(v, *lo) == 0 && strict)) {
        lo = v;
        lo_strict = strict;
      }
      break;
    }
  }
  // Re-derive emptiness.
  if (eq.has_value()) {
    if (lo.has_value()) {
      int c = Value::Compare(*eq, *lo);
      if (c < 0 || (c == 0 && lo_strict)) empty = true;
    }
    if (hi.has_value()) {
      int c = Value::Compare(*eq, *hi);
      if (c > 0 || (c == 0 && hi_strict)) empty = true;
    }
    for (const Value& n : neq) {
      if (*eq == n) empty = true;
    }
  }
  if (lo.has_value() && hi.has_value()) {
    int c = Value::Compare(*lo, *hi);
    if (c > 0 || (c == 0 && (lo_strict || hi_strict))) empty = true;
  }
}

void ValueInterval::Intersect(const ValueInterval& other) {
  if (other.empty) {
    empty = true;
    return;
  }
  if (other.eq.has_value()) ApplyCompare(CompareOp::kEq, *other.eq);
  if (other.lo.has_value()) {
    ApplyCompare(other.lo_strict ? CompareOp::kGt : CompareOp::kGe, *other.lo);
  }
  if (other.hi.has_value()) {
    ApplyCompare(other.hi_strict ? CompareOp::kLt : CompareOp::kLe, *other.hi);
  }
  for (const Value& n : other.neq) ApplyCompare(CompareOp::kNe, n);
}

namespace {

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

void AnalyzeNode(const Expr& e, std::map<int, ValueInterval>* out, bool* found) {
  if (e.kind == ExprKind::kLogical && e.logical_op == LogicalOp::kAnd) {
    AnalyzeNode(*e.children[0], out, found);
    AnalyzeNode(*e.children[1], out, found);
    return;
  }
  if (e.kind == ExprKind::kComparison) {
    const Expr& l = *e.children[0];
    const Expr& r = *e.children[1];
    if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral &&
        !r.literal.is_null()) {
      (*out)[l.column_index].ApplyCompare(e.cmp_op, r.literal);
      *found = true;
    } else if (r.kind == ExprKind::kColumnRef && l.kind == ExprKind::kLiteral &&
               !l.literal.is_null()) {
      (*out)[r.column_index].ApplyCompare(FlipCompare(e.cmp_op), l.literal);
      *found = true;
    }
    return;
  }
  // IN-lists over a single column with literal members pin the column to a
  // finite set; model the single-member case as equality (the form audit
  // predicates take in Example 4.1).
  if (e.kind == ExprKind::kInList && !e.negated && e.children.size() == 2 &&
      e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[1]->kind == ExprKind::kLiteral &&
      !e.children[1]->literal.is_null()) {
    (*out)[e.children[0]->column_index].ApplyCompare(CompareOp::kEq,
                                                     e.children[1]->literal);
    *found = true;
  }
  // All other shapes are ignored: the described region only grows, so
  // emptiness/disjointness conclusions stay sound.
}

}  // namespace

bool AnalyzeConjunction(const Expr& expr, std::map<int, ValueInterval>* out) {
  bool found = false;
  AnalyzeNode(expr, out, &found);
  return found;
}

bool ExprIsRowInvariant(const Expr& expr) {
  if (expr.kind == ExprKind::kColumnRef || expr.kind == ExprKind::kSubquery) {
    return false;
  }
  for (const auto& child : expr.children) {
    if (!ExprIsRowInvariant(*child)) return false;
  }
  return true;
}

bool ConjunctionUnsatisfiable(const Expr& expr) {
  std::map<int, ValueInterval> intervals;
  if (!AnalyzeConjunction(expr, &intervals)) return false;
  for (const auto& [col, interval] : intervals) {
    if (interval.empty) return true;
  }
  return false;
}

bool PredicatesDisjoint(const Expr& a, const Expr& b) {
  std::map<int, ValueInterval> ia, ib;
  bool fa = AnalyzeConjunction(a, &ia);
  bool fb = AnalyzeConjunction(b, &ib);
  if (!fa || !fb) return false;
  for (auto& [col, interval] : ia) {
    if (interval.empty) return true;  // `a` alone selects nothing
    auto it = ib.find(col);
    if (it == ib.end()) continue;
    ValueInterval merged = interval;
    merged.Intersect(it->second);
    if (merged.empty) return true;
  }
  for (const auto& [col, interval] : ib) {
    if (interval.empty) return true;
  }
  return false;
}

}  // namespace seltrig
