#include "expr/evaluator.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"
#include "exec/column_batch.h"
#include "expr/analysis.h"
#include "types/date.h"

namespace seltrig {

namespace {

Result<Value> EvalComparison(const Expr& e, EvalContext& ctx) {
  SELTRIG_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*e.children[0], ctx));
  SELTRIG_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*e.children[1], ctx));
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  int c = Value::Compare(lhs, rhs);
  switch (e.cmp_op) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("bad compare op");
}

Result<Value> EvalArith(const Expr& e, EvalContext& ctx) {
  if (e.arith_op == ArithOp::kNeg) {
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], ctx));
    if (v.is_null()) return Value::Null();
    if (v.type() == TypeId::kInt) return Value::Int(-v.AsInt());
    if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
    return Status::ExecutionError("cannot negate " + v.ToString());
  }
  SELTRIG_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*e.children[0], ctx));
  SELTRIG_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*e.children[1], ctx));
  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  // Date arithmetic: date +/- int days, date - date.
  if (lhs.type() == TypeId::kDate || rhs.type() == TypeId::kDate) {
    if (e.arith_op == ArithOp::kAdd && lhs.type() == TypeId::kDate &&
        rhs.type() == TypeId::kInt) {
      return Value::Date(lhs.AsDate() + static_cast<int32_t>(rhs.AsInt()));
    }
    if (e.arith_op == ArithOp::kAdd && lhs.type() == TypeId::kInt &&
        rhs.type() == TypeId::kDate) {
      return Value::Date(rhs.AsDate() + static_cast<int32_t>(lhs.AsInt()));
    }
    if (e.arith_op == ArithOp::kSub && lhs.type() == TypeId::kDate &&
        rhs.type() == TypeId::kInt) {
      return Value::Date(lhs.AsDate() - static_cast<int32_t>(rhs.AsInt()));
    }
    if (e.arith_op == ArithOp::kSub && lhs.type() == TypeId::kDate &&
        rhs.type() == TypeId::kDate) {
      return Value::Int(lhs.AsDate() - rhs.AsDate());
    }
    return Status::ExecutionError("unsupported date arithmetic");
  }

  if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
    return Status::ExecutionError("arithmetic on non-numeric operands: " +
                                  lhs.ToString() + ", " + rhs.ToString());
  }

  // Division always yields double; other ops stay integral for int operands.
  if (e.arith_op == ArithOp::kDiv) {
    double d = rhs.NumericAsDouble();
    if (d == 0.0) return Status::ExecutionError("division by zero");
    return Value::Double(lhs.NumericAsDouble() / d);
  }
  if (lhs.type() == TypeId::kInt && rhs.type() == TypeId::kInt) {
    int64_t a = lhs.AsInt(), b = rhs.AsInt();
    switch (e.arith_op) {
      case ArithOp::kAdd:
        return Value::Int(a + b);
      case ArithOp::kSub:
        return Value::Int(a - b);
      case ArithOp::kMul:
        return Value::Int(a * b);
      default:
        break;
    }
  }
  double a = lhs.NumericAsDouble(), b = rhs.NumericAsDouble();
  switch (e.arith_op) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    default:
      break;
  }
  return Status::Internal("bad arith op");
}

Result<Value> EvalLogical(const Expr& e, EvalContext& ctx) {
  if (e.logical_op == LogicalOp::kNot) {
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], ctx));
    if (v.is_null()) return Value::Null();
    return Value::Bool(!v.AsBool());
  }
  SELTRIG_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*e.children[0], ctx));
  // Kleene logic with short-circuit where sound.
  if (e.logical_op == LogicalOp::kAnd) {
    if (!lhs.is_null() && !lhs.AsBool()) return Value::Bool(false);
    SELTRIG_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*e.children[1], ctx));
    if (!rhs.is_null() && !rhs.AsBool()) return Value::Bool(false);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value::Bool(true);
  }
  // OR
  if (!lhs.is_null() && lhs.AsBool()) return Value::Bool(true);
  SELTRIG_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*e.children[1], ctx));
  if (!rhs.is_null() && rhs.AsBool()) return Value::Bool(true);
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value::Bool(false);
}

Result<Value> EvalInList(const Expr& e, EvalContext& ctx) {
  SELTRIG_ASSIGN_OR_RETURN(Value probe, EvalExpr(*e.children[0], ctx));
  if (probe.is_null()) return Value::Null();
  bool saw_null = false;
  for (size_t i = 1; i < e.children.size(); ++i) {
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[i], ctx));
    if (v.is_null()) {
      saw_null = true;
      continue;
    }
    if (Value::Compare(probe, v) == 0) {
      return Value::Bool(!e.negated);
    }
  }
  if (saw_null) return Value::Null();
  return Value::Bool(e.negated);
}

Result<Value> EvalCase(const Expr& e, EvalContext& ctx) {
  size_t pairs = e.children.size() / 2;
  for (size_t i = 0; i < pairs; ++i) {
    SELTRIG_ASSIGN_OR_RETURN(Value cond, EvalExpr(*e.children[2 * i], ctx));
    if (!cond.is_null() && cond.AsBool()) {
      return EvalExpr(*e.children[2 * i + 1], ctx);
    }
  }
  if (e.has_else) return EvalExpr(*e.children.back(), ctx);
  return Value::Null();
}

Result<Value> EvalFunction(const Expr& e, EvalContext& ctx) {
  switch (e.function_id) {
    case FunctionId::kYear:
    case FunctionId::kMonth:
    case FunctionId::kDay: {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], ctx));
      if (v.is_null()) return Value::Null();
      if (v.type() != TypeId::kDate) {
        return Status::ExecutionError("YEAR/MONTH/DAY expects a date");
      }
      int32_t d = v.AsDate();
      if (e.function_id == FunctionId::kYear) return Value::Int(DateYear(d));
      if (e.function_id == FunctionId::kMonth) return Value::Int(DateMonth(d));
      return Value::Int(DateDay(d));
    }
    case FunctionId::kSubstring: {
      SELTRIG_ASSIGN_OR_RETURN(Value s, EvalExpr(*e.children[0], ctx));
      SELTRIG_ASSIGN_OR_RETURN(Value start, EvalExpr(*e.children[1], ctx));
      SELTRIG_ASSIGN_OR_RETURN(Value len, EvalExpr(*e.children[2], ctx));
      if (s.is_null() || start.is_null() || len.is_null()) return Value::Null();
      const std::string& str = s.AsString();
      int64_t from = start.AsInt() - 1;  // SQL SUBSTRING is 1-based
      int64_t n = len.AsInt();
      if (from < 0) from = 0;
      if (from >= static_cast<int64_t>(str.size()) || n <= 0) {
        return Value::String("");
      }
      return Value::String(str.substr(static_cast<size_t>(from),
                                      static_cast<size_t>(n)));
    }
    case FunctionId::kAbs: {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], ctx));
      if (v.is_null()) return Value::Null();
      if (v.type() == TypeId::kInt) return Value::Int(std::llabs(v.AsInt()));
      if (v.type() == TypeId::kDouble) return Value::Double(std::fabs(v.AsDouble()));
      return Status::ExecutionError("ABS expects a number");
    }
    case FunctionId::kUpper:
    case FunctionId::kLower: {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], ctx));
      if (v.is_null()) return Value::Null();
      if (v.type() != TypeId::kString) {
        return Status::ExecutionError("UPPER/LOWER expects a string");
      }
      return Value::String(e.function_id == FunctionId::kUpper ? ToUpper(v.AsString())
                                                               : ToLower(v.AsString()));
    }
    case FunctionId::kNow:
      return Value::String(ctx.exec->session()->now);
    case FunctionId::kCurrentDate:
      return Value::Date(ctx.exec->session()->current_date);
    case FunctionId::kUserId:
      return Value::String(ctx.exec->session()->user);
    case FunctionId::kSqlText:
      return Value::String(ctx.exec->session()->sql_text);
    case FunctionId::kCoalesce: {
      for (const auto& arg : e.children) {
        SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, ctx));
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
  }
  return Status::Internal("bad function id");
}

Result<Value> EvalSubquery(const Expr& e, EvalContext& ctx) {
  ExecContext* exec = ctx.exec;
  if (exec == nullptr || !exec->subquery_runner()) {
    return Status::ExecutionError("subquery evaluated without an executor");
  }
  exec->stats().subquery_executions++;

  MaterializedSubquery local;
  MaterializedSubquery* mat = nullptr;
  if (!e.subquery_correlated) {
    auto [it, inserted] = exec->subquery_cache().try_emplace(&e);
    mat = &it->second;
    if (inserted) {
      SELTRIG_ASSIGN_OR_RETURN(mat->rows,
                               exec->subquery_runner()(*e.subquery_plan, {}));
    }
  } else {
    // Correlated: the current row becomes visible to the subquery as the
    // innermost enclosing scope. Under a columnar binding the row is
    // materialized first — the correlation stack carries Row pointers.
    Row scratch;
    const Row* current = ctx.row;
    if (current == nullptr && ctx.batch != nullptr) {
      ctx.batch->MaterializeRow(ctx.batch_row, &scratch);
      current = &scratch;
    }
    std::vector<const Row*> outer = ctx.outer_rows;
    outer.push_back(current);
    SELTRIG_ASSIGN_OR_RETURN(local.rows,
                             exec->subquery_runner()(*e.subquery_plan, outer));
    mat = &local;
  }

  switch (e.subquery_kind) {
    case SubqueryKind::kExists: {
      bool exists = !mat->rows.empty();
      return Value::Bool(e.negated ? !exists : exists);
    }
    case SubqueryKind::kIn: {
      SELTRIG_ASSIGN_OR_RETURN(Value probe, EvalExpr(*e.children[0], ctx));
      if (probe.is_null()) return Value::Null();
      if (!mat->set_built) {
        for (const Row& r : mat->rows) {
          if (r[0].is_null()) {
            mat->has_null = true;
          } else {
            mat->value_set.insert(r[0]);
          }
        }
        mat->set_built = true;
      }
      if (mat->value_set.count(probe) > 0) return Value::Bool(!e.negated);
      if (mat->has_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    case SubqueryKind::kScalar: {
      if (mat->rows.empty()) return Value::Null();
      if (mat->rows.size() > 1) {
        return Status::ExecutionError("scalar subquery returned more than one row");
      }
      return mat->rows[0][0];
    }
  }
  return Status::Internal("bad subquery kind");
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      if (ctx.row != nullptr) {
        if (e.column_index >= static_cast<int>(ctx.row->size())) {
          return Status::Internal("column reference out of range: " + e.ToString());
        }
        return (*ctx.row)[e.column_index];
      }
      if (ctx.batch != nullptr) {
        if (e.column_index >= static_cast<int>(ctx.batch->num_columns())) {
          return Status::Internal("column reference out of range: " + e.ToString());
        }
        return ctx.batch->GetValue(static_cast<size_t>(e.column_index),
                                   ctx.batch_row);
      }
      return Status::Internal("column reference out of range: " + e.ToString());
    }
    case ExprKind::kOuterColumnRef: {
      int depth = static_cast<int>(ctx.outer_rows.size());
      if (e.levels_up < 1 || e.levels_up > depth) {
        return Status::Internal("outer reference beyond correlation depth");
      }
      const Row* outer = ctx.outer_rows[depth - e.levels_up];
      if (e.column_index >= static_cast<int>(outer->size())) {
        return Status::Internal("outer column reference out of range");
      }
      return (*outer)[e.column_index];
    }
    case ExprKind::kComparison:
      return EvalComparison(e, ctx);
    case ExprKind::kArith:
      return EvalArith(e, ctx);
    case ExprKind::kLogical:
      return EvalLogical(e, ctx);
    case ExprKind::kIsNull: {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], ctx));
      bool is_null = v.is_null();
      return Value::Bool(e.negated ? !is_null : is_null);
    }
    case ExprKind::kLike: {
      SELTRIG_ASSIGN_OR_RETURN(Value text, EvalExpr(*e.children[0], ctx));
      SELTRIG_ASSIGN_OR_RETURN(Value pattern, EvalExpr(*e.children[1], ctx));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      if (text.type() != TypeId::kString || pattern.type() != TypeId::kString) {
        return Status::ExecutionError("LIKE expects string operands");
      }
      bool m = LikeMatch(text.AsString(), pattern.AsString());
      return Value::Bool(e.negated ? !m : m);
    }
    case ExprKind::kInList:
      return EvalInList(e, ctx);
    case ExprKind::kCase:
      return EvalCase(e, ctx);
    case ExprKind::kFunction:
      return EvalFunction(e, ctx);
    case ExprKind::kSubquery:
      return EvalSubquery(e, ctx);
  }
  return Status::Internal("bad expression kind");
}

Result<bool> EvalPredicate(const Expr& e, EvalContext& ctx) {
  SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(e, ctx));
  if (v.is_null()) return false;
  if (v.type() != TypeId::kBool) {
    return Status::ExecutionError("predicate did not evaluate to a boolean: " +
                                  e.ToString());
  }
  return v.AsBool();
}

Status EvalPredicateBatch(const Expr& pred, EvalContext& ctx, ColumnBatch* batch) {
  size_t n = batch->size();
  if (n == 0) return Status::OK();

  if (ExprIsRowInvariant(pred)) {
    // One evaluation decides the whole batch.
    ctx.BindRow(nullptr);
    SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(pred, ctx));
    if (!pass) batch->TruncateLogical(0);
    return Status::OK();
  }

  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ctx.BindBatch(batch, i);
    SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(pred, ctx));
    if (pass) keep.push_back(static_cast<uint32_t>(batch->PhysicalIndex(i)));
  }
  if (keep.size() != n) batch->SetSelection(std::move(keep));
  return Status::OK();
}

std::optional<SimplePredicate> SimplePredicate::Compile(const Expr& pred) {
  if (pred.kind != ExprKind::kComparison) return std::nullopt;
  const Expr& lhs = *pred.children[0];
  const Expr& rhs = *pred.children[1];
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  CompareOp op = pred.cmp_op;
  if (lhs.kind == ExprKind::kColumnRef && rhs.kind == ExprKind::kLiteral) {
    col = &lhs;
    lit = &rhs;
  } else if (lhs.kind == ExprKind::kLiteral && rhs.kind == ExprKind::kColumnRef) {
    col = &rhs;
    lit = &lhs;
    switch (op) {  // mirror so the column sits on the left
      case CompareOp::kLt:
        op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        op = CompareOp::kLe;
        break;
      default:
        break;
    }
  } else {
    return std::nullopt;
  }
  // A NULL literal never passes through EvalComparison; leave that (and any
  // unbound column) to the generic path.
  if (lit->literal.is_null() || col->column_index < 0) return std::nullopt;
  return SimplePredicate(col->column_index, op, lit->literal);
}

namespace {

// Typed filter kernels: for each logical row of `batch`, reads column data
// straight from contiguous table storage and appends the physical index of
// every passing row to `keep`. Each kernel makes exactly the decisions
// SimplePredicate::Decide would — NULL rejects, then Value::Compare semantics
// for the (column type, constant type) pair — without constructing a Value.

template <typename DecideFn, typename CmpFn>
void FilterTyped(const ColumnBatch& batch, const TableColumn& col,
                 const DecideFn& decide, const CmpFn& cmp,
                 std::vector<uint32_t>* keep) {
  const size_t n = batch.size();
  const NullBits& nulls = col.nulls();
  if (nulls.any()) {
    for (size_t i = 0; i < n; ++i) {
      const size_t phys = batch.PhysicalIndex(i);
      if (!nulls.Test(phys) && decide(cmp(phys))) {
        keep->push_back(static_cast<uint32_t>(phys));
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const size_t phys = batch.PhysicalIndex(i);
      if (decide(cmp(phys))) keep->push_back(static_cast<uint32_t>(phys));
    }
  }
}

int Sign3(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }
int Sign3(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

}  // namespace

void SimplePredicate::FilterBatch(ColumnBatch* batch) const {
  size_t n = batch->size();
  if (n == 0) return;
  std::vector<uint32_t> keep;
  keep.reserve(n);

  const ColumnVector& cv = batch->column(static_cast<size_t>(column_));
  const TableColumn* view = cv.view();
  auto decide = [this](int c) { return DecideCmp(c); };
  bool typed = false;
  if (view != nullptr && view->rep() != TableColumn::Rep::kValue) {
    const TypeId col_type = view->type();
    const TypeId const_type = constant_.type();
    typed = true;
    if (view->rep() == TableColumn::Rep::kInt64 && col_type == TypeId::kInt &&
        const_type == TypeId::kInt) {
      // Int vs int: exact 64-bit compare.
      const int64_t* data = view->ints();
      const int64_t c = constant_.AsInt();
      FilterTyped(*batch, *view, decide,
                  [&](size_t p) { return Sign3(data[p], c); }, &keep);
    } else if (view->rep() == TableColumn::Rep::kInt64 &&
               col_type == TypeId::kInt && const_type == TypeId::kDouble) {
      // Cross-type numeric: both widened to double (Value::Compare).
      const int64_t* data = view->ints();
      const double c = constant_.AsDouble();
      FilterTyped(*batch, *view, decide,
                  [&](size_t p) { return Sign3(static_cast<double>(data[p]) - c); },
                  &keep);
    } else if (view->rep() == TableColumn::Rep::kDouble &&
               (const_type == TypeId::kDouble || const_type == TypeId::kInt)) {
      const double* data = view->doubles();
      const double c = constant_.NumericAsDouble();
      FilterTyped(*batch, *view, decide,
                  [&](size_t p) { return Sign3(data[p] - c); }, &keep);
    } else if (view->rep() == TableColumn::Rep::kInt64 && col_type == const_type) {
      // Same-type bool/date: raw int64 compare (Value::Compare's same-type
      // arm for int64-backed types).
      const int64_t* data = view->ints();
      const int64_t c = const_type == TypeId::kBool
                            ? (constant_.AsBool() ? 1 : 0)
                            : static_cast<int64_t>(constant_.AsDate());
      FilterTyped(*batch, *view, decide,
                  [&](size_t p) { return Sign3(data[p], c); }, &keep);
    } else if (view->rep() == TableColumn::Rep::kString &&
               const_type == TypeId::kString &&
               (op_ == CompareOp::kEq || op_ == CompareOp::kNe)) {
      // Dictionary equality: one string lookup decides via codes. A constant
      // absent from the dictionary matches no stored string.
      const uint32_t* codes = view->codes();
      const int64_t code = view->dict()->Find(constant_.AsString());
      const bool want_eq = op_ == CompareOp::kEq;
      FilterTyped(*batch, *view, [](int c) { return c != 0; },
                  [&](size_t p) {
                    bool eq = code >= 0 &&
                              codes[p] == static_cast<uint32_t>(code);
                    return (eq == want_eq) ? 1 : 0;
                  },
                  &keep);
    } else if (view->rep() == TableColumn::Rep::kString &&
               const_type == TypeId::kString) {
      // Ordered string compare: the dictionary is tiny next to the row count,
      // so compare each distinct string against the constant ONCE into a
      // per-code sign table, then the per-row loop is a byte lookup instead
      // of a string comparison.
      const uint32_t* codes = view->codes();
      const StringDict* dict = view->dict();
      const std::string& c = constant_.AsString();
      std::vector<int8_t> sign(dict->size());
      for (size_t code = 0; code < sign.size(); ++code) {
        const int r = dict->At(static_cast<uint32_t>(code)).compare(c);
        sign[code] = static_cast<int8_t>(r < 0 ? -1 : (r > 0 ? 1 : 0));
      }
      FilterTyped(*batch, *view, decide,
                  [&](size_t p) { return static_cast<int>(sign[codes[p]]); },
                  &keep);
    } else {
      // Mixed incomparable types: Value::Compare orders by type id, which is
      // constant across the column's non-null rows.
      const int c = static_cast<int>(col_type) < static_cast<int>(const_type)
                        ? -1
                        : (static_cast<int>(col_type) >
                                   static_cast<int>(const_type)
                               ? 1
                               : 0);
      FilterTyped(*batch, *view, decide, [&](size_t) { return c; }, &keep);
    }
  }
  if (!typed) {
    // Generic path: degraded (Rep::kValue) views and owned columns hold the
    // exact stored Values inline — decide per cell with no construction.
    const Value* vals =
        view != nullptr ? view->values() : cv.owned_values().data();
    for (size_t i = 0; i < n; ++i) {
      const size_t phys = batch->PhysicalIndex(i);
      if (Decide(vals[phys])) keep.push_back(static_cast<uint32_t>(phys));
    }
  }
  if (keep.size() != n) batch->SetSelection(std::move(keep));
}

Status EvalExprBatch(const Expr& expr, EvalContext& ctx, const ColumnBatch& batch,
                     std::vector<Value>* out) {
  size_t n = batch.size();
  if (n == 0) return Status::OK();
  if (ExprIsRowInvariant(expr)) {
    ctx.BindRow(nullptr);
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, ctx));
    out->reserve(out->size() + n);
    for (size_t i = 0; i < n; ++i) out->push_back(v);
    return Status::OK();
  }
  // Bare column ref: a straight gather from the column, no tree walk.
  if (expr.kind == ExprKind::kColumnRef && expr.column_index >= 0 &&
      expr.column_index < static_cast<int>(batch.num_columns())) {
    const ColumnVector& col = batch.column(static_cast<size_t>(expr.column_index));
    out->reserve(out->size() + n);
    for (size_t i = 0; i < n; ++i) {
      col.AppendValueTo(batch.PhysicalIndex(i), out);
    }
    return Status::OK();
  }
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    ctx.BindBatch(&batch, i);
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, ctx));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace seltrig
