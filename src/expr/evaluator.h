// Expression evaluation with SQL three-valued logic.

#ifndef SELTRIG_EXPR_EVALUATOR_H_
#define SELTRIG_EXPR_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "expr/expr.h"
#include "types/value.h"

namespace seltrig {

// Evaluation context: the current row, the stack of enclosing query rows (for
// correlated subqueries; back() is the innermost enclosing query), and the
// statement-wide ExecContext.
struct EvalContext {
  const Row* row = nullptr;
  std::vector<const Row*> outer_rows;
  ExecContext* exec = nullptr;
};

// Evaluates `expr` under `ctx`. Comparison and logical operators follow SQL
// three-valued logic; the result of a predicate used in WHERE/HAVING/ON is
// "passes" only when the Value is non-null true (see EvalPredicate).
Result<Value> EvalExpr(const Expr& expr, EvalContext& ctx);

// Evaluates a predicate: NULL and false both reject the row.
Result<bool> EvalPredicate(const Expr& expr, EvalContext& ctx);

}  // namespace seltrig

#endif  // SELTRIG_EXPR_EVALUATOR_H_
