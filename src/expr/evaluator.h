// Expression evaluation with SQL three-valued logic.

#ifndef SELTRIG_EXPR_EVALUATOR_H_
#define SELTRIG_EXPR_EVALUATOR_H_

#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "expr/expr.h"
#include "types/value.h"

namespace seltrig {

class ColumnBatch;  // exec/column_batch.h

// Evaluation context: the current row binding, the stack of enclosing query
// rows (for correlated subqueries; back() is the innermost enclosing query),
// and the statement-wide ExecContext.
//
// The current row is bound one of two ways: `row` points at a materialized
// Row, or (`batch`, `batch_row`) name a logical row of a ColumnBatch — the
// columnar pipeline's binding, letting column refs read table storage
// directly with no row materialization. `row` wins when both are set; use
// BindRow/BindBatch to repoint so the other binding is cleared.
struct EvalContext {
  const Row* row = nullptr;
  const ColumnBatch* batch = nullptr;
  size_t batch_row = 0;
  std::vector<const Row*> outer_rows;
  ExecContext* exec = nullptr;

  void BindRow(const Row* r) {
    row = r;
    batch = nullptr;
  }
  void BindBatch(const ColumnBatch* b, size_t i) {
    row = nullptr;
    batch = b;
    batch_row = i;
  }
};

// Evaluates `expr` under `ctx`. Comparison and logical operators follow SQL
// three-valued logic; the result of a predicate used in WHERE/HAVING/ON is
// "passes" only when the Value is non-null true (see EvalPredicate).
Result<Value> EvalExpr(const Expr& expr, EvalContext& ctx);

// Evaluates a predicate: NULL and false both reject the row.
Result<bool> EvalPredicate(const Expr& expr, EvalContext& ctx);

// --- Batch entry points (exec/column_batch.h) --------------------------------
// Both take a caller-owned EvalContext so the correlation-stack copy happens
// once per operator, not once per row; the context's row binding is repointed
// internally and left dangling on return. Row-invariant expressions (no
// column refs, no subqueries — see ExprIsRowInvariant) are evaluated once per
// batch and the result is broadcast, hoisting constant subtrees out of the
// per-row loop.

// Narrows `batch`'s selection in place to the rows where `pred` evaluates to
// non-null true.
Status EvalPredicateBatch(const Expr& pred, EvalContext& ctx, ColumnBatch* batch);

// Appends one value per selected row of `batch` to `out`, in logical order.
Status EvalExprBatch(const Expr& expr, EvalContext& ctx, const ColumnBatch& batch,
                     std::vector<Value>* out);

// A predicate of the shape `column <cmp> constant` (either operand order),
// pre-analyzed at operator Init so the per-row test needs no expression-tree
// walk and no Value temporaries. Matches() is exactly equivalent to
// EvalPredicate on the original expression: a NULL column value rejects the
// row, and the comparison goes through the same Value::Compare. FilterBatch
// additionally compiles to a tight per-type loop over contiguous table
// storage when the batch column is a typed view — same decisions, no Value
// construction.
class SimplePredicate {
 public:
  // Returns the compiled form when `pred` matches the shape (with a non-NULL
  // literal); nullopt otherwise.
  static std::optional<SimplePredicate> Compile(const Expr& pred);

  bool Matches(const Row& row) const { return Decide(row[column_]); }

  // Narrows `batch`'s selection in place to the matching rows, like
  // EvalPredicateBatch.
  void FilterBatch(ColumnBatch* batch) const;

 private:
  SimplePredicate(int column, CompareOp op, Value constant)
      : column_(column), op_(op), constant_(std::move(constant)) {}

  // The per-row decision both paths reduce to.
  bool Decide(const Value& v) const {
    if (v.is_null()) return false;
    return DecideCmp(Value::Compare(v, constant_));
  }
  bool DecideCmp(int c) const {
    switch (op_) {
      case CompareOp::kEq:
        return c == 0;
      case CompareOp::kNe:
        return c != 0;
      case CompareOp::kLt:
        return c < 0;
      case CompareOp::kLe:
        return c <= 0;
      case CompareOp::kGt:
        return c > 0;
      case CompareOp::kGe:
        return c >= 0;
    }
    return false;
  }

  int column_;
  CompareOp op_;  // normalized so the column is the left operand
  Value constant_;
};

}  // namespace seltrig

#endif  // SELTRIG_EXPR_EVALUATOR_H_
