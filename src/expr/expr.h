// Bound expression trees. Produced by the binder; column references are
// resolved to indexes into the input row of the operator the expression is
// attached to.

#ifndef SELTRIG_EXPR_EXPR_H_
#define SELTRIG_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"

namespace seltrig {

class LogicalOperator;  // plan/logical_plan.h; subquery expressions hold plans

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,       // index into the current operator's input row
  kOuterColumnRef,  // index into an enclosing query's row (correlation)
  kComparison,
  kArith,
  kLogical,
  kIsNull,
  kLike,
  kInList,
  kCase,
  kFunction,
  kSubquery,
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kNeg };
enum class LogicalOp : uint8_t { kAnd, kOr, kNot };
enum class SubqueryKind : uint8_t { kExists, kIn, kScalar };

enum class FunctionId : uint8_t {
  kYear,
  kMonth,
  kDay,
  kSubstring,
  kAbs,
  kUpper,
  kLower,
  kNow,          // session timestamp, string 'YYYY-MM-DD HH:MM:SS'
  kCurrentDate,  // session date
  kUserId,       // session user, string
  kSqlText,      // text of the audited SQL statement, string
  kCoalesce,     // first non-NULL argument
};

// A single bound expression node. One struct covers all kinds (tagged-union
// style); only the fields relevant to `kind` are meaningful. This keeps deep
// cloning and tree rewrites (optimizer, audit placement) simple.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  ~Expr();

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  TypeId result_type = TypeId::kNull;

  // kLiteral
  Value literal;

  // kColumnRef / kOuterColumnRef
  int column_index = -1;
  int levels_up = 0;        // kOuterColumnRef: 1 = nearest enclosing query
  std::string column_name;  // for display only

  // kComparison: children = {lhs, rhs}
  CompareOp cmp_op = CompareOp::kEq;
  // kArith: children = {lhs, rhs} or {operand} for kNeg
  ArithOp arith_op = ArithOp::kAdd;
  // kLogical: children = {lhs, rhs} or {operand} for kNot
  LogicalOp logical_op = LogicalOp::kAnd;

  // kIsNull / kLike / kInList / kSubquery(kExists, kIn): negation flag
  bool negated = false;

  // kCase: children = {when0, then0, when1, then1, ...[, else]}
  bool has_else = false;

  // kFunction: children = arguments
  FunctionId function_id = FunctionId::kAbs;

  // kSubquery. children = {probe} for kIn, empty otherwise. The plan is
  // shared so instrumented plans can be swapped in without re-binding.
  SubqueryKind subquery_kind = SubqueryKind::kExists;
  std::shared_ptr<LogicalOperator> subquery_plan;
  bool subquery_correlated = false;

  std::vector<std::unique_ptr<Expr>> children;

  // Deep copy (subquery plans are shared, not copied).
  std::unique_ptr<Expr> Clone() const;

  // Debug/EXPLAIN rendering, e.g. "(c_acctbal > 100.0)".
  std::string ToString() const;
};

using ExprPtr = std::unique_ptr<Expr>;

// Construction helpers.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(int index, TypeId type, std::string name = "");
ExprPtr MakeOuterColumnRef(int index, int levels_up, TypeId type, std::string name = "");
ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr operand);
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeIsNull(ExprPtr operand, bool negated);
ExprPtr MakeFunction(FunctionId id, std::vector<ExprPtr> args, TypeId result_type);

}  // namespace seltrig

#endif  // SELTRIG_EXPR_EXPR_H_
