#include "expr/expr.h"

#include "plan/logical_plan.h"

namespace seltrig {

Expr::~Expr() = default;

std::unique_ptr<Expr> Expr::Clone() const {
  auto copy = std::make_unique<Expr>(kind);
  copy->result_type = result_type;
  copy->literal = literal;
  copy->column_index = column_index;
  copy->levels_up = levels_up;
  copy->column_name = column_name;
  copy->cmp_op = cmp_op;
  copy->arith_op = arith_op;
  copy->logical_op = logical_op;
  copy->negated = negated;
  copy->has_else = has_else;
  copy->function_id = function_id;
  copy->subquery_kind = subquery_kind;
  copy->subquery_plan = subquery_plan;  // shared
  copy->subquery_correlated = subquery_correlated;
  copy->children.reserve(children.size());
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

namespace {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* FunctionName(FunctionId id) {
  switch (id) {
    case FunctionId::kYear:
      return "YEAR";
    case FunctionId::kMonth:
      return "MONTH";
    case FunctionId::kDay:
      return "DAY";
    case FunctionId::kSubstring:
      return "SUBSTRING";
    case FunctionId::kAbs:
      return "ABS";
    case FunctionId::kUpper:
      return "UPPER";
    case FunctionId::kLower:
      return "LOWER";
    case FunctionId::kNow:
      return "NOW";
    case FunctionId::kCurrentDate:
      return "CURRENT_DATE";
    case FunctionId::kUserId:
      return "USER_ID";
    case FunctionId::kSqlText:
      return "SQL_TEXT";
    case FunctionId::kCoalesce:
      return "COALESCE";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return column_name.empty() ? "#" + std::to_string(column_index) : column_name;
    case ExprKind::kOuterColumnRef:
      return "outer(" + std::to_string(levels_up) + ")." +
             (column_name.empty() ? "#" + std::to_string(column_index) : column_name);
    case ExprKind::kComparison:
      return "(" + children[0]->ToString() + " " + CompareOpName(cmp_op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kArith: {
      if (arith_op == ArithOp::kNeg) return "(-" + children[0]->ToString() + ")";
      const char* op = arith_op == ArithOp::kAdd   ? "+"
                       : arith_op == ArithOp::kSub ? "-"
                       : arith_op == ArithOp::kMul ? "*"
                                                   : "/";
      return "(" + children[0]->ToString() + " " + op + " " + children[1]->ToString() + ")";
    }
    case ExprKind::kLogical: {
      if (logical_op == LogicalOp::kNot) return "(NOT " + children[0]->ToString() + ")";
      const char* op = logical_op == LogicalOp::kAnd ? " AND " : " OR ";
      return "(" + children[0]->ToString() + op + children[1]->ToString() + ")";
    }
    case ExprKind::kIsNull:
      return "(" + children[0]->ToString() + (negated ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kLike:
      return "(" + children[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToString() + ")";
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + "))";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToString() + " THEN " +
               children[2 * i + 1]->ToString();
      }
      if (has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
    case ExprKind::kFunction: {
      std::string out = FunctionName(function_id);
      out += "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kSubquery: {
      switch (subquery_kind) {
        case SubqueryKind::kExists:
          return negated ? "NOT EXISTS(<subquery>)" : "EXISTS(<subquery>)";
        case SubqueryKind::kIn:
          return "(" + children[0]->ToString() +
                 (negated ? " NOT IN <subquery>)" : " IN <subquery>)");
        case SubqueryKind::kScalar:
          return "(<scalar subquery>)";
      }
      return "<subquery>";
    }
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>(ExprKind::kLiteral);
  e->result_type = v.type();
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(int index, TypeId type, std::string name) {
  auto e = std::make_unique<Expr>(ExprKind::kColumnRef);
  e->column_index = index;
  e->result_type = type;
  e->column_name = std::move(name);
  return e;
}

ExprPtr MakeOuterColumnRef(int index, int levels_up, TypeId type, std::string name) {
  auto e = std::make_unique<Expr>(ExprKind::kOuterColumnRef);
  e->column_index = index;
  e->levels_up = levels_up;
  e->result_type = type;
  e->column_name = std::move(name);
  return e;
}

ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>(ExprKind::kComparison);
  e->cmp_op = op;
  e->result_type = TypeId::kBool;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>(ExprKind::kArith);
  e->arith_op = op;
  TypeId lt = lhs->result_type;
  e->children.push_back(std::move(lhs));
  if (rhs != nullptr) {
    TypeId rt = rhs->result_type;
    e->children.push_back(std::move(rhs));
    if (lt == TypeId::kDate || rt == TypeId::kDate) {
      e->result_type = (lt == TypeId::kDate && rt == TypeId::kDate) ? TypeId::kInt : TypeId::kDate;
    } else if (op == ArithOp::kDiv) {
      e->result_type = TypeId::kDouble;
    } else {
      e->result_type = CommonType(lt, rt);
      if (e->result_type == TypeId::kNull) e->result_type = TypeId::kDouble;
    }
  } else {
    e->result_type = lt;
  }
  return e;
}

ExprPtr MakeNot(ExprPtr operand) {
  auto e = std::make_unique<Expr>(ExprKind::kLogical);
  e->logical_op = LogicalOp::kNot;
  e->result_type = TypeId::kBool;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>(ExprKind::kLogical);
  e->logical_op = LogicalOp::kAnd;
  e->result_type = TypeId::kBool;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>(ExprKind::kLogical);
  e->logical_op = LogicalOp::kOr;
  e->result_type = TypeId::kBool;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeIsNull(ExprPtr operand, bool negated) {
  auto e = std::make_unique<Expr>(ExprKind::kIsNull);
  e->negated = negated;
  e->result_type = TypeId::kBool;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeFunction(FunctionId id, std::vector<ExprPtr> args, TypeId result_type) {
  auto e = std::make_unique<Expr>(ExprKind::kFunction);
  e->function_id = id;
  e->result_type = result_type;
  e->children = std::move(args);
  return e;
}

}  // namespace seltrig
