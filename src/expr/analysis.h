// Static analysis over bound expressions: conjunct manipulation, column
// usage, constant folding, and a sound interval-based satisfiability check.
//
// The satisfiability machinery serves two consumers from the paper:
//  * the optimizer's contradiction-detection rule (Example 4.1) — a filter
//    whose conjunction is provably unsatisfiable is replaced by an empty
//    result, which is exactly the rewrite that must NOT fire on
//    audit-derived predicates;
//  * the Oracle-FGA-style static auditor (Example 6.1) — a query is flagged
//    unless its predicate on the sensitive table is provably disjoint from
//    the audit expression's predicate.

#ifndef SELTRIG_EXPR_ANALYSIS_H_
#define SELTRIG_EXPR_ANALYSIS_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"

namespace seltrig {

class LogicalOperator;

// Splits an AND-tree into its conjuncts (ownership transferred to `out`).
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out);

// Rebuilds a conjunction; returns nullptr for an empty list.
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

// Collects the indexes of all kColumnRef nodes (not outer refs) reachable
// without crossing a subquery boundary.
void CollectColumnRefs(const Expr& expr, std::set<int>* out);

// True when every column reference of `expr` lies in [lo, hi) and the
// expression contains no outer refs or subqueries (i.e. it can be evaluated
// against that column slice alone).
bool ExprReferencesOnlyRange(const Expr& expr, int lo, int hi);

// Adds `delta` to every kColumnRef index (used when pushing predicates to the
// right side of a join, whose columns are offset in the concatenated row).
void ShiftColumnRefs(Expr* expr, int delta);

// Invokes `fn` on every column index of `expr` that resolves against the
// expression's own scope: kColumnRef nodes, plus outer references inside
// nested subquery plans whose levels_up climbs back out to this scope. This
// is the complete set of indexes that must be rewritten when the scope's
// schema changes (column pruning, join reordering).
void VisitScopeColumnRefs(Expr& expr, const std::function<void(int&)>& fn);

// Same, for an entire plan at a given nesting depth (depth 1 = the plan is
// directly nested in the scope being rewritten).
void VisitPlanScopeColumnRefs(LogicalOperator& plan, int depth,
                              const std::function<void(int&)>& fn);

// True if the expression contains a subquery anywhere (without crossing into
// subquery plans themselves).
bool ContainsSubquery(const Expr& expr);

// True when the expression's value cannot depend on the current row: it
// contains no kColumnRef and no subquery (outer references are fine — they
// are fixed for the duration of a batch). The batch evaluator hoists such
// expressions out of per-row loops; the scan uses them as index-probe keys.
bool ExprIsRowInvariant(const Expr& expr);

// Bottom-up constant folding for pure operators over literal operands.
// Session functions (NOW, USER_ID, ...) and subqueries are never folded.
// Expressions whose evaluation errors (e.g. division by zero) are left
// unfolded so the error surfaces at execution time.
ExprPtr FoldConstants(ExprPtr expr);

// A per-column constraint extracted from a conjunction: bounds, a pinned
// equality, and excluded points. Used for sound emptiness/disjointness
// reasoning; inequalities over discrete domains are treated conservatively.
struct ValueInterval {
  std::optional<Value> lo;
  bool lo_strict = false;
  std::optional<Value> hi;
  bool hi_strict = false;
  std::optional<Value> eq;
  std::vector<Value> neq;
  bool empty = false;

  // Narrows the interval with `col op value`; sets `empty` when the
  // constraint set is provably unsatisfiable.
  void ApplyCompare(CompareOp op, const Value& value);

  // Intersects with another interval (for disjointness checks).
  void Intersect(const ValueInterval& other);
};

// Extracts per-column intervals from the comparison conjuncts of `expr`
// (column-vs-literal in either order). Conjuncts of any other shape are
// ignored, which only enlarges the described region — so emptiness and
// disjointness conclusions drawn from the result remain sound. Returns false
// if nothing analyzable was found.
bool AnalyzeConjunction(const Expr& expr, std::map<int, ValueInterval>* out);

// True when the conjunction is provably unsatisfiable (some column interval
// is empty). False means "unknown / possibly satisfiable".
bool ConjunctionUnsatisfiable(const Expr& expr);

// True when `a AND b` is provably unsatisfiable — i.e. the two predicates
// (bound against the same schema) select provably disjoint row sets. False
// means they may overlap.
bool PredicatesDisjoint(const Expr& a, const Expr& b);

}  // namespace seltrig

#endif  // SELTRIG_EXPR_ANALYSIS_H_
