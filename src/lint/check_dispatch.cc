// dispatch-exhaustiveness check: wire-protocol and WAL record kinds fan out
// through switch statements in several subsystems. The compiler's
// -Wswitch-enum only fires when there is no `default`, and a `default`
// swallows new kinds silently — exactly how a new frame type would slip past
// the applier unhandled. So:
//
//   * A switch registered with a dispatch marker comment — `seltrig-lint:`
//     followed by `dispatch(EnumName)` on the line above the switch — must
//     name EVERY enumerator of that enum as a case (explicitly
//     ignoring a kind is fine — it just has to be spelled out) and must not
//     have a `default:` label.
//   * DefaultDispatchSites() pins the minimum number of registered switches
//     per (file, enum) — deleting a marker to dodge the check is itself a
//     finding.
//
// Enum definitions are parsed from the same token streams (any `enum class`
// in src/, recorded with its enclosing class qualifier, e.g. WalOp::Kind).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/token_util.h"

namespace seltrig {
namespace lint {
namespace {

constexpr char kMarkerPrefix[] = "seltrig-lint: dispatch(";

// qualified enum name -> enumerator names
using EnumTable = std::map<std::string, std::set<std::string>>;

EnumTable ParseEnums(const std::vector<SourceFile>& files) {
  EnumTable table;
  for (const SourceFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    const TokenStream& toks = file.tokens;
    std::vector<std::pair<std::string, int>> classes;  // name, open depth
    int depth = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (IsPunct(t, "{")) ++depth;
      if (IsPunct(t, "}")) {
        --depth;
        while (!classes.empty() && classes.back().second > depth) {
          classes.pop_back();
        }
      }
      if ((IsIdent(t, "class") || IsIdent(t, "struct")) &&
          (i == 0 || !IsIdent(toks[i - 1], "enum")) && i + 1 < toks.size() &&
          IsIdent(toks[i + 1])) {
        // Track class scopes for qualification; definition = '{' before ';'.
        for (size_t k = i + 2; k < toks.size(); ++k) {
          if (IsPunct(toks[k], ";")) break;
          if (IsPunct(toks[k], "{")) {
            classes.push_back({toks[i + 1].text, depth + 1});
            break;
          }
        }
      }
      if (!IsIdent(t, "enum")) continue;
      size_t j = i + 1;
      if (j < toks.size() &&
          (IsIdent(toks[j], "class") || IsIdent(toks[j], "struct"))) {
        ++j;
      }
      if (j >= toks.size() || !IsIdent(toks[j])) continue;
      std::string name = toks[j].text;
      if (!classes.empty()) name = classes.back().first + "::" + name;
      // Skip an underlying-type clause, then collect enumerators.
      size_t open = j + 1;
      while (open < toks.size() && !IsPunct(toks[open], "{") &&
             !IsPunct(toks[open], ";")) {
        ++open;
      }
      if (open >= toks.size() || !IsPunct(toks[open], "{")) continue;
      const size_t close = MatchForward(toks, open, "{", "}");
      std::set<std::string>& members = table[name];
      bool expect_name = true;
      int nest = 0;
      for (size_t k = open + 1; k < close; ++k) {
        if (IsPunct(toks[k], "(") || IsPunct(toks[k], "{")) ++nest;
        if (IsPunct(toks[k], ")") || IsPunct(toks[k], "}")) --nest;
        if (nest == 0 && IsPunct(toks[k], ",")) {
          expect_name = true;
          continue;
        }
        if (expect_name && IsIdent(toks[k])) {
          members.insert(toks[k].text);
          expect_name = false;
        }
      }
      i = close;
    }
  }
  return table;
}

}  // namespace

std::vector<DispatchSite> DefaultDispatchSites() {
  // Every place a frame or journal record fans out by kind. A new dispatch
  // switch gets a marker comment AND a row here; the row is what makes the
  // marker load-bearing.
  return {
      {"replication/wire.cc", "FrameType", 1},     // FrameTypeName
      {"replication/applier.cc", "FrameType", 1},  // follower receive loop
      {"replication/shipper.cc", "FrameType", 1},  // primary ack drain
      {"replication/election.cc", "FrameType", 1},  // election bus fan-out
      {"storage/wal.cc", "WalOp::Kind", 2},        // encode + decode
      {"engine/recovery.cc", "WalOp::Kind", 1},    // replay apply
  };
}

void CheckDispatch(const std::vector<SourceFile>& files,
                   const std::vector<DispatchSite>& sites,
                   std::vector<Diagnostic>* out) {
  const EnumTable enums = ParseEnums(files);
  // (file suffix, enum) -> markers seen
  std::map<std::string, std::map<std::string, int>> seen;

  for (const SourceFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    const TokenStream& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kComment) continue;
      const size_t at = t.text.find(kMarkerPrefix);
      if (at == std::string::npos) continue;
      const size_t name_start = at + sizeof(kMarkerPrefix) - 1;
      const size_t name_end = t.text.find(')', name_start);
      if (name_end == std::string::npos) {
        out->push_back({file.path, t.line, "dispatch",
                        file.path + ":marker-malformed",
                        "malformed dispatch marker; expected "
                        "`seltrig-lint: dispatch(EnumName)`"});
        continue;
      }
      const std::string enum_name =
          t.text.substr(name_start, name_end - name_start);
      const auto enum_it = enums.find(enum_name);
      if (enum_it == enums.end()) {
        out->push_back({file.path, t.line, "dispatch",
                        file.path + ":unknown-enum:" + enum_name,
                        "dispatch marker names unknown enum '" + enum_name +
                            "' (no `enum class " + enum_name +
                            "` found in src/)"});
        continue;
      }
      // The marker must be directly followed by a switch statement.
      size_t j = i + 1;
      while (j < toks.size() && toks[j].kind == TokenKind::kComment) ++j;
      if (j >= toks.size() || !IsIdent(toks[j], "switch")) {
        out->push_back({file.path, t.line, "dispatch",
                        file.path + ":marker-dangling:" + enum_name,
                        "dispatch marker is not followed by a switch"});
        continue;
      }
      ++seen[file.path][enum_name];
      const size_t cond_open = j + 1;
      const size_t cond_close = MatchForward(toks, cond_open, "(", ")");
      size_t body_open = cond_close + 1;
      while (body_open < toks.size() &&
             toks[body_open].kind == TokenKind::kComment) {
        ++body_open;
      }
      if (body_open >= toks.size() || !IsPunct(toks[body_open], "{")) continue;
      const size_t body_close = MatchForward(toks, body_open, "{", "}");

      std::set<std::string> cases;
      bool has_default = false;
      int default_line = 0;
      for (size_t k = body_open + 1; k < body_close; ++k) {
        if (IsIdent(toks[k], "default") && k + 1 < toks.size() &&
            IsPunct(toks[k + 1], ":")) {
          has_default = true;
          default_line = toks[k].line;
        }
        if (!IsIdent(toks[k], "case")) continue;
        // The enumerator is the last identifier before the label's ':'
        // (skipping over `::` qualifiers).
        std::string last_ident;
        size_t m = k + 1;
        for (; m < body_close; ++m) {
          if (IsPunct(toks[m], ":")) break;
          if (IsIdent(toks[m])) last_ident = toks[m].text;
        }
        if (!last_ident.empty()) cases.insert(last_ident);
        k = m;
      }

      std::string missing;
      for (const std::string& member : enum_it->second) {
        if (cases.count(member) == 0) missing += member + " ";
      }
      if (!missing.empty()) {
        out->push_back(
            {file.path, toks[j].line, "dispatch",
             file.path + ":missing-case:" + enum_name,
             "registered " + enum_name + " dispatch is missing case(s): " +
                 missing +
                 "— every kind must be named, even if only to ignore it"});
      }
      if (has_default) {
        out->push_back({file.path, default_line, "dispatch",
                        file.path + ":default:" + enum_name,
                        "registered " + enum_name +
                            " dispatch has a `default:` label, which would "
                            "swallow a future kind silently; name every "
                            "case instead"});
      }
      i = j;
    }
  }

  for (const DispatchSite& site : sites) {
    int count = 0;
    for (const auto& [path, by_enum] : seen) {
      if (path.size() < site.file_suffix.size() ||
          path.compare(path.size() - site.file_suffix.size(),
                       site.file_suffix.size(), site.file_suffix) != 0) {
        continue;
      }
      auto it = by_enum.find(site.enum_name);
      if (it != by_enum.end()) count += it->second;
    }
    if (count < site.min_markers) {
      out->push_back(
          {site.file_suffix, 0, "dispatch",
           site.file_suffix + ":unregistered:" + site.enum_name,
           site.file_suffix + " must carry at least " +
               std::to_string(site.min_markers) + " `seltrig-lint: dispatch(" +
               site.enum_name + ")` marker(s), found " +
               std::to_string(count) +
               " — the registry in DefaultDispatchSites() pins them"});
    }
  }
}

}  // namespace lint
}  // namespace seltrig
