// Token model for seltrig-lint's minimal C++ tokenizer.
//
// The lint checks (src/lint/checks.h) work purely on this token stream —
// there is no AST. The tokenizer's one hard job is to be *correct about what
// is code and what is not*: string literals, char literals, raw strings, and
// both comment forms must never be mistaken for code (a fault-point name in a
// comment is fine; the same name in a string literal is a finding). Comments
// are kept as tokens because two checks need them: status discipline (a
// `(void)` drop must carry an adjacent why-comment) and dispatch
// exhaustiveness (switches are registered via a marker comment).

#ifndef SELTRIG_LINT_TOKEN_H_
#define SELTRIG_LINT_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seltrig {
namespace lint {

enum class TokenKind : uint8_t {
  kIdentifier,   // identifiers and keywords (no keyword table needed)
  kNumber,       // numeric literal, including ' separators and suffixes
  kString,       // "..." — text holds the *uninterpreted* contents, no quotes
  kRawString,    // R"delim(...)delim" — text holds the contents
  kCharLiteral,  // '...' — text holds the contents
  kPunct,        // one operator/punctuator, maximal-munch for :: -> etc.
  kComment       // // or /* */ — text holds the contents without delimiters
};

// Preprocessor directives are tokenized like ordinary code (`#`, `include`,
// then a string or punctuation): the layering check reads `#include "..."`
// straight off the stream, and macro bodies are scanned like any other code.

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;      // 1-based line of the token's first character
  int end_line = 0;  // last line (differs for block comments / raw strings)
};

using TokenStream = std::vector<Token>;

}  // namespace lint
}  // namespace seltrig

#endif  // SELTRIG_LINT_TOKEN_H_
