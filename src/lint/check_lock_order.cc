// lock-order check: every mutex acquisition in src/ is extracted per
// function — RAII guards (MutexLock / ReaderMutexLock / WriterMutexLock /
// std::lock_guard / std::unique_lock / std::shared_lock / std::scoped_lock),
// explicit .lock()/.lock_shared() calls, and SELTRIG_REQUIRES annotations
// (locks held on entry) — then composed into one global acquisition graph.
// A cycle in that graph is a potential deadlock; acquiring a lock already
// held is one immediately.
//
// Lock identity is `<Class>::<expression>` with the enclosing class taken
// from the function definition. The analysis is intra-procedural: an order
// established through a call chain (f holds A, calls g which takes B) is
// visible only where a SELTRIG_REQUIRES annotation names A on g — which the
// thread-safety analysis build (cmake --preset analyze) independently forces
// to be present wherever a caller-held lock is accessed. Scope tracking is
// brace-accurate: a guard dies with its block, an explicit unlock() releases
// mid-scope (the WAL group-commit leader drops the mutex around fsync), and
// a relock after that is a fresh acquisition, not a recursion finding.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/function_scan.h"
#include "lint/lint.h"
#include "lint/token_util.h"

namespace seltrig {
namespace lint {
namespace {

bool IsGuardClass(const std::string& text) {
  return text == "MutexLock" || text == "ReaderMutexLock" ||
         text == "WriterMutexLock" || text == "lock_guard" ||
         text == "unique_lock" || text == "shared_lock" ||
         text == "scoped_lock";
}

// Canonical lock id: strip address-of / this->, prefix the owning class.
std::string NormalizeLock(std::string expr, const std::string& qualifier) {
  while (!expr.empty() && (expr[0] == '&' || expr[0] == '*')) {
    expr.erase(0, 1);
  }
  if (expr.rfind("this->", 0) == 0) expr.erase(0, 6);
  const std::string owner = qualifier.empty() ? "<file>" : qualifier;
  return owner + "::" + expr;
}

struct Site {
  std::string file;
  int line;
};

struct Edge {
  Site site;  // where the second lock was taken while the first was held
};

}  // namespace

void CheckLockOrder(const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>* out) {
  // from -> to -> example site
  std::map<std::string, std::map<std::string, Edge>> graph;

  for (const SourceFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    const TokenStream& toks = file.tokens;
    for (const FunctionDef& def : FindFunctionDefs(toks)) {
      struct Held {
        std::string id;
        int release_depth;  // scope depth the guard dies at; 0 = explicit
      };
      std::vector<Held> held;
      for (const std::string& req : def.requires_locks) {
        held.push_back({NormalizeLock(req, def.qualifier), -1});
      }

      auto acquire = [&](const std::string& id, int line, int depth) {
        for (const Held& h : held) {
          if (h.id == id) {
            out->push_back({file.path, line, "lock-order",
                            file.path + ":recursive:" + id,
                            "acquisition of " + id + " in " + def.name +
                                " while already held (recursive locking on "
                                "a non-recursive mutex)"});
            return;
          }
        }
        for (const Held& h : held) {
          graph[h.id].emplace(id, Edge{{file.path, line}});
        }
        held.push_back({id, depth});
      };
      auto release = [&](const std::string& id) {
        for (size_t k = held.size(); k-- > 0;) {
          if (held[k].id == id) {
            held.erase(held.begin() + k);
            return;
          }
        }
      };

      int depth = 1;  // inside the body brace
      for (size_t i = def.body_open + 1; i < def.body_close; ++i) {
        const Token& t = toks[i];
        if (IsPunct(t, "{")) {
          ++depth;
          continue;
        }
        if (IsPunct(t, "}")) {
          --depth;
          for (size_t k = held.size(); k-- > 0;) {
            if (held[k].release_depth > depth) {
              held.erase(held.begin() + k);
            }
          }
          continue;
        }

        // RAII guard declaration: Guard [<...>] var ( lock-expr [, ...] );
        if (IsIdent(t) && IsGuardClass(t.text)) {
          size_t j = i + 1;
          if (j < toks.size() && IsPunct(toks[j], "<")) {
            j = MatchForward(toks, j, "<", ">") + 1;
          }
          if (j < toks.size() && IsIdent(toks[j]) && j + 1 < toks.size() &&
              IsPunct(toks[j + 1], "(")) {
            const size_t close = MatchForward(toks, j + 1, "(", ")");
            // Each top-level comma-separated argument is a lock expression
            // (std::scoped_lock takes several; the others take one; extra
            // args like std::defer_lock are identifiers too but appear only
            // with unique_lock, which this tree passes a mutex first).
            std::string arg;
            std::vector<std::string> args;
            int nest = 0;
            for (size_t a = j + 2; a < close; ++a) {
              if (IsPunct(toks[a], "(") || IsPunct(toks[a], "<")) ++nest;
              if (IsPunct(toks[a], ")") || IsPunct(toks[a], ">")) --nest;
              if (nest == 0 && IsPunct(toks[a], ",")) {
                args.push_back(arg);
                arg.clear();
              } else {
                arg += toks[a].text;
              }
            }
            if (!arg.empty()) args.push_back(arg);
            for (const std::string& a : args) {
              if (a == "std::adopt_lock" || a == "std::defer_lock" ||
                  a == "std::try_to_lock") {
                continue;
              }
              acquire(NormalizeLock(a, def.qualifier), toks[j].line, depth);
            }
            i = close;
            continue;
          }
        }

        // Explicit member calls: expr.lock() / expr->unlock() / lock_shared.
        if (IsIdent(t) &&
            (t.text == "lock" || t.text == "unlock" ||
             t.text == "lock_shared" || t.text == "unlock_shared") &&
            i + 2 < toks.size() && IsPunct(toks[i + 1], "(") &&
            IsPunct(toks[i + 2], ")") && i >= 2 &&
            (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
          // Collect the object expression backwards: ident / :: / . / ->
          size_t b = i - 1;
          std::vector<std::string> parts;
          while (b > 0) {
            const Token& p = toks[b - 1];
            if (IsIdent(p) || IsPunct(p, "::") || IsPunct(p, ".") ||
                IsPunct(p, "->")) {
              parts.push_back(p.text);
              --b;
            } else {
              break;
            }
          }
          std::string expr;
          for (size_t k = parts.size(); k-- > 0;) expr += parts[k];
          const std::string id = NormalizeLock(expr, def.qualifier);
          if (t.text == "lock" || t.text == "lock_shared") {
            acquire(id, t.line, 0);
          } else {
            release(id);
          }
          i += 2;
          continue;
        }
      }
    }
  }

  // Cycle detection: iterative DFS with an on-stack set; every cycle is
  // reported once, keyed by its sorted node list so suppressions are stable
  // under traversal order.
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  for (const auto& [start, _] : graph) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, bool>> stack = {{start, false}};
    std::vector<std::string> path;
    while (!stack.empty()) {
      auto [node, done] = stack.back();
      stack.pop_back();
      if (done) {
        color[node] = 2;
        if (!path.empty() && path.back() == node) path.pop_back();
        continue;
      }
      if (color[node] == 2) continue;
      if (color[node] == 1) continue;
      color[node] = 1;
      path.push_back(node);
      stack.push_back({node, true});
      auto it = graph.find(node);
      if (it == graph.end()) continue;
      for (const auto& [next, edge] : it->second) {
        if (color[next] == 1) {
          // Found a back edge: the cycle is the path suffix from `next`.
          std::vector<std::string> cycle;
          bool in = false;
          for (const std::string& p : path) {
            if (p == next) in = true;
            if (in) cycle.push_back(p);
          }
          std::vector<std::string> key = cycle;
          std::sort(key.begin(), key.end());
          std::string detail = "cycle:";
          for (const std::string& k : key) detail += k + "|";
          if (reported.insert(detail).second) {
            std::string order;
            for (const std::string& c : cycle) order += c + " -> ";
            order += next;
            out->push_back(
                {edge.site.file, edge.site.line, "lock-order", detail,
                 "lock acquisition cycle: " + order +
                     " — two threads taking these in opposite order "
                     "deadlock; fix the order or document the seam in "
                     ".lint-suppressions"});
          }
        } else if (color[next] == 0) {
          stack.push_back({next, false});
        }
      }
    }
  }
}

}  // namespace lint
}  // namespace seltrig
