// layering check: the engine's directory layers form a DAG, declared once in
// DefaultLayerTable() below. An #include from a lower-ranked directory into a
// higher-ranked one (upward) or between two directories of equal rank
// (sideways) is an error. The handful of genuine seams — batch evaluation
// reaching into exec's ColumnBatch, the audit log appending through the
// engine, plan re-validation inspecting physical operators — are suppressed
// edge-by-edge in .lint-suppressions, each with its justification.
//
// Scope: src/ only. Tests, tools, and benches may include anything; they sit
// above the whole library by construction.

#include <string>
#include <vector>

#include "lint/lint.h"

namespace seltrig {
namespace lint {

LayerTable DefaultLayerTable() {
  // Rank = height in the dependency order; an include may only point at a
  // strictly lower rank (or stay inside its own directory). Gaps of 10 leave
  // room to slot a new layer in without renumbering.
  return LayerTable{
      {"common", 0},    // status, mutex, codec, fault injector — leaf layer
      {"lint", 5},      // this analyzer: std-only, nothing above common
      {"types", 10},    // values, schemas, dates
      {"sql", 20},      // lexer/parser/AST
      {"storage", 30},  // tables, undo log, WAL
      {"catalog", 40},  // table registry over storage
      {"expr", 50},     // expressions + evaluation
      {"plan", 60},     // logical plans + the plan validator
      {"binder", 70},   // SQL -> bound logical plan
      {"optimizer", 80},
      {"exec", 90},     // physical operators, batches, morsel gather
      {"audit", 100},   // ACCESSED state, audit expressions, triggers
      {"engine", 110},  // database/session/recovery/snapshot
      {"replication", 120},
      {"tpch", 130},
      {"seltrig", 140},  // umbrella header
  };
}

void CheckLayering(const std::vector<SourceFile>& files,
                   const LayerTable& table, std::vector<Diagnostic>* out) {
  for (const SourceFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    const std::string rel = file.path.substr(4);
    const size_t slash = rel.find('/');
    if (slash == std::string::npos) continue;  // file directly under src/
    const std::string from_dir = rel.substr(0, slash);
    const auto from_it = table.find(from_dir);
    if (from_it == table.end()) {
      out->push_back({file.path, 1, "layering",
                      file.path + ":unknown-layer:" + from_dir,
                      "directory src/" + from_dir +
                          " is not in the layer table; add it to "
                          "DefaultLayerTable() with a justified rank"});
      continue;
    }

    const TokenStream& toks = file.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "#" || toks[i + 1].text != "include" ||
          toks[i + 2].kind != TokenKind::kString) {
        continue;
      }
      const std::string& target = toks[i + 2].text;
      const size_t tslash = target.find('/');
      if (tslash == std::string::npos) continue;  // local or system-ish
      const std::string to_dir = target.substr(0, tslash);
      const auto to_it = table.find(to_dir);
      if (to_it == table.end()) continue;  // not one of our layers
      if (to_dir == from_dir) continue;
      if (to_it->second < from_it->second) continue;  // downward: fine
      const bool sideways = to_it->second == from_it->second;
      out->push_back(
          {file.path, toks[i].line, "layering",
           file.path + "->" + target,
           std::string(sideways ? "sideways" : "upward") + " include: src/" +
               from_dir + " (rank " + std::to_string(from_it->second) +
               ") must not include " + target + " (rank " +
               std::to_string(to_it->second) +
               "); invert the dependency or document the seam in "
               ".lint-suppressions"});
    }
  }
}

}  // namespace lint
}  // namespace seltrig
