// Small token-stream helpers shared by the seltrig-lint checks.

#ifndef SELTRIG_LINT_TOKEN_UTIL_H_
#define SELTRIG_LINT_TOKEN_UTIL_H_

#include <cstddef>
#include <string>

#include "lint/token.h"

namespace seltrig {
namespace lint {

// Index of the token matching the opener at `open` ("(" or "{" or "<"),
// counting nesting of that same pair only. Returns the stream size when
// unbalanced (callers treat that as "to end of file").
inline size_t MatchForward(const TokenStream& toks, size_t open,
                           const std::string& opener,
                           const std::string& closer) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == opener) ++depth;
    if (toks[i].text == closer && --depth == 0) return i;
  }
  return toks.size();
}

inline bool IsIdent(const Token& t) {
  return t.kind == TokenKind::kIdentifier;
}
inline bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
inline bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

}  // namespace lint
}  // namespace seltrig

#endif  // SELTRIG_LINT_TOKEN_UTIL_H_
