// status-discipline check, src/ only (tests drive error paths on purpose):
//
//   * `(void)Call(...)` silently drops a result. [[nodiscard]] already makes
//     the drop explicit; this check makes it *justified* — a why-comment
//     must sit on the same line or within the two lines above. `(void)name;`
//     (unused parameter silencing) is exempt.
//   * Destructors cannot propagate errors, so a call to a fallible function
//     (any name declared in a src/ header returning Status or Result<...>)
//     inside a destructor body must be an explicit `(void)` drop — which the
//     first rule then forces to carry a why-comment. A bare fallible call in
//     a destructor is an error even though [[nodiscard]] warns, because a
//     local `Status s = ...` that is never checked would not warn.
//
// Fallible names are harvested by declaration shape (`Status Name(` /
// `Result<...> Name(`), so an unrelated void function sharing a name with a
// fallible one would be flagged in a destructor; none exist today, and the
// suppression file handles a future collision explicitly.

#include <set>
#include <string>
#include <vector>

#include "lint/function_scan.h"
#include "lint/lint.h"
#include "lint/token_util.h"

namespace seltrig {
namespace lint {
namespace {

// Comment lines per file: a drop at line L is justified if a comment touches
// any of lines [L-2, L].
std::set<int> CommentLines(const TokenStream& toks) {
  std::set<int> lines;
  for (const Token& t : toks) {
    if (t.kind != TokenKind::kComment) continue;
    for (int l = t.line; l <= t.end_line; ++l) lines.insert(l);
  }
  return lines;
}

bool HasAdjacentComment(const std::set<int>& comment_lines, int line) {
  for (int l = line - 2; l <= line; ++l) {
    if (comment_lines.count(l) > 0) return true;
  }
  return false;
}

// Names of functions declared to return Status or Result<...> in src/
// headers. common/status.h itself is skipped: Status's named constructors
// (OK, NotFound, ...) return Status but constructing one is not a fallible
// operation.
std::set<std::string> HarvestFallibleNames(
    const std::vector<SourceFile>& files) {
  std::set<std::string> names;
  for (const SourceFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    if (file.path == "src/common/status.h") continue;
    if (file.path.size() < 2 ||
        file.path.compare(file.path.size() - 2, 2, ".h") != 0) {
      continue;
    }
    const TokenStream& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!IsIdent(toks[i])) continue;
      size_t name_idx = 0;
      if (toks[i].text == "Status" && IsIdent(toks[i + 1])) {
        name_idx = i + 1;
      } else if (toks[i].text == "Result" && IsPunct(toks[i + 1], "<")) {
        const size_t close = MatchForward(toks, i + 1, "<", ">");
        if (close + 1 < toks.size() && IsIdent(toks[close + 1])) {
          name_idx = close + 1;
        }
      }
      if (name_idx == 0) continue;
      if (name_idx + 1 >= toks.size() || !IsPunct(toks[name_idx + 1], "(")) {
        continue;
      }
      if (toks[name_idx].text == "operator") continue;
      names.insert(toks[name_idx].text);
    }
  }
  return names;
}

}  // namespace

void CheckStatusDiscipline(const std::vector<SourceFile>& files,
                           std::vector<Diagnostic>* out) {
  const std::set<std::string> fallible = HarvestFallibleNames(files);

  for (const SourceFile& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    const TokenStream& toks = file.tokens;
    const std::set<int> comment_lines = CommentLines(toks);

    // Rule 1: (void)-dropped calls need a why-comment.
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!IsPunct(toks[i], "(") || !IsIdent(toks[i + 1], "void") ||
          !IsPunct(toks[i + 2], ")")) {
        continue;
      }
      // `(void)` in a parameter list / cast-to-function-type is followed by
      // punctuation that can't start an expression statement.
      const Token& first = toks[i + 3];
      if (!IsIdent(first) && !IsPunct(first, "*") && !IsPunct(first, "::")) {
        continue;
      }
      // Find the statement end and whether the dropped expression calls
      // anything. `(void)name;` with no call is unused-value silencing.
      bool has_call = false;
      int nest = 0;
      size_t j = i + 3;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) {
          has_call = true;
          ++nest;
        } else if (IsPunct(toks[j], ")")) {
          --nest;
        } else if (nest == 0 && IsPunct(toks[j], ";")) {
          break;
        } else if (nest == 0 &&
                   (IsPunct(toks[j], "{") || IsPunct(toks[j], "}"))) {
          break;  // malformed/macro context; don't scan across blocks
        }
      }
      if (!has_call) continue;
      if (HasAdjacentComment(comment_lines, toks[i].line)) continue;
      out->push_back(
          {file.path, toks[i].line, "status",
           file.path + ":void-drop:" + std::to_string(toks[i].line),
           "(void)-dropped call without an adjacent why-comment; say why "
           "ignoring this result is sound (same line or the two lines "
           "above)"});
    }

    // Rule 2: a fallible call in a destructor whose result is silently
    // discarded must be an explicit (void) drop (rule 1 then demands the
    // why-comment). A call whose result is consumed — assigned, compared,
    // tested in a condition — is fine: handling an error locally is exactly
    // what a destructor should do.
    for (const FunctionDef& def : FindFunctionDefs(toks)) {
      if (!def.is_destructor) continue;
      for (size_t i = def.body_open + 1; i < def.body_close; ++i) {
        if (!IsIdent(toks[i]) || fallible.count(toks[i].text) == 0) continue;
        if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
        // Walk back over the object chain (`file_.` / `writer->` / `Ns::`)
        // to the start of the call expression.
        size_t s = i;
        while (s > def.body_open) {
          const Token& p = toks[s - 1];
          if (IsIdent(p) || IsPunct(p, ".") || IsPunct(p, "->") ||
              IsPunct(p, "::")) {
            --s;
          } else {
            break;
          }
        }
        // Discarded iff the call expression begins the statement; anything
        // else (`=`, `(`, `return`, `&&`, ...) consumes the result. The
        // compliant escape `( void ) call()` is recognized explicitly.
        const Token& before = toks[s - 1];
        const bool discarded = IsPunct(before, ";") || IsPunct(before, "{") ||
                               IsPunct(before, "}");
        const bool dropped = s >= def.body_open + 3 &&
                             IsPunct(toks[s - 3], "(") &&
                             IsIdent(toks[s - 2], "void") &&
                             IsPunct(toks[s - 1], ")");
        if (!discarded || dropped) continue;
        out->push_back(
            {file.path, toks[i].line, "status",
             file.path + ":dtor-fallible:" + toks[i].text,
             "call to fallible '" + toks[i].text + "' in " + def.name +
                 " — a destructor cannot propagate the error; make the "
                 "drop explicit with (void) and a why-comment, or move the "
                 "fallible work to a Close()-style member"});
        i = MatchForward(toks, i + 1, "(", ")");
      }
    }
  }
}

}  // namespace lint
}  // namespace seltrig
