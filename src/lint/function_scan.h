// Function-definition discovery over the token stream, shared by the
// lock-order and status-discipline checks.
//
// This is deliberately not a parser: it recognizes the shapes this codebase
// actually writes (out-of-line `Ret Class::Method(...) ... {`, in-class
// definitions, constructors with init lists, destructors, trailing
// qualifiers and SELTRIG_* capability macros between the parameter list and
// the body) and attributes each body to its enclosing class where one is
// known. Lambdas inside a body belong to the enclosing function — for lock
// analysis that is the conservative choice (a lambda acquiring a lock is
// almost always invoked while the captured locks' owner is live).

#ifndef SELTRIG_LINT_FUNCTION_SCAN_H_
#define SELTRIG_LINT_FUNCTION_SCAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lint/token.h"

namespace seltrig {
namespace lint {

struct FunctionDef {
  std::string name;        // "Append", "~WalWriter", "operator=" is skipped
  std::string qualifier;   // enclosing/explicit class, "" for free functions
  bool is_destructor = false;
  size_t body_open = 0;    // index of the body's "{"
  size_t body_close = 0;   // index of the matching "}"
  // Expressions from SELTRIG_REQUIRES / SELTRIG_SHARED_REQUIRES between the
  // parameter list and the body: locks held on entry, verbatim token text.
  std::vector<std::string> requires_locks;
};

// Scans one file's tokens for function definitions.
std::vector<FunctionDef> FindFunctionDefs(const TokenStream& toks);

}  // namespace lint
}  // namespace seltrig

#endif  // SELTRIG_LINT_FUNCTION_SCAN_H_
