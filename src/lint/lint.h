// seltrig-lint: a repo-specific static analyzer that machine-checks the
// invariants the engine otherwise enforces by convention. Five rule families
// (docs/STATIC_ANALYSIS.md has the catalog):
//
//   fault-registry   every fault-point name flows through
//                    common/fault_points.def; no literal spellings, no
//                    unregistered or unused points
//   layering         #include edges respect the declared layer order
//   lock-order       the global lock-acquisition graph is acyclic and no
//                    lock is re-acquired while held
//   status           (void)-dropped Status/Result calls carry a why-comment;
//                    fallible calls in destructors must be explicit drops
//   dispatch         registered switches over wire FrameType / WalOp::Kind
//                    name every enumerator, no default
//
// The library is standalone (std only, no engine dependency) so the tool can
// lint a broken tree, and so fixture tests can drive each check directly.

#ifndef SELTRIG_LINT_LINT_H_
#define SELTRIG_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/token.h"

namespace seltrig {
namespace lint {

// One finding. `rule` is the family name above; `detail` is a stable
// machine-readable key (e.g. the offending include edge) that suppression
// entries match against.
struct Diagnostic {
  std::string file;  // path relative to the lint root
  int line = 0;
  std::string rule;
  std::string detail;
  std::string message;
};

// A tokenized source file.
struct SourceFile {
  std::string path;  // relative to the lint root, '/'-separated
  TokenStream tokens;
};

// Suppressions: lines of `rule <detail-pattern>` where the pattern must match
// the diagnostic's detail exactly, except that a trailing `*` matches any
// suffix. `#` starts a comment; every entry is expected to carry one
// justifying why the seam is sound (the tree run fails on an entry that
// suppresses nothing — stale suppressions are themselves findings).
struct Suppressions {
  struct Entry {
    std::string rule;
    std::string pattern;
    int line = 0;
    mutable int used = 0;
  };
  std::vector<Entry> entries;

  static Suppressions Parse(const std::string& text);
  bool Matches(const Diagnostic& d) const;
};

// The layering table: directory (relative to src/) -> rank. An include edge
// from directory A into directory B fails unless rank[B] < rank[A], or
// A == B, or the edge is suppressed (`layering src/x/f.cc->y/h.h`).
using LayerTable = std::map<std::string, int>;
LayerTable DefaultLayerTable();

// The dispatch registry: switches that must stay exhaustive, identified by a
// marker comment — `seltrig-lint:` followed by `dispatch(EnumName)` —
// directly above the switch statement. The table pins the minimum number of
// registered sites
// per (file, enum) so deleting a marker is itself a finding.
struct DispatchSite {
  std::string file_suffix;  // e.g. "replication/wire.cc"
  std::string enum_name;    // e.g. "FrameType", "WalOp::Kind"
  int min_markers = 1;
};
std::vector<DispatchSite> DefaultDispatchSites();

// Individual checks. Each walks the given files (already filtered to its
// scope by the driver) and appends diagnostics.
void CheckFaultRegistry(const std::vector<SourceFile>& files,
                        const std::set<std::string>& registered_names,
                        const std::set<std::string>& registered_idents,
                        std::vector<Diagnostic>* out);
void CheckLayering(const std::vector<SourceFile>& files,
                   const LayerTable& table, std::vector<Diagnostic>* out);
void CheckLockOrder(const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>* out);
void CheckStatusDiscipline(const std::vector<SourceFile>& files,
                           std::vector<Diagnostic>* out);
void CheckDispatch(const std::vector<SourceFile>& files,
                   const std::vector<DispatchSite>& sites,
                   std::vector<Diagnostic>* out);

// Parses common/fault_points.def: every SELTRIG_FAULT_POINT(ident, "name", ..)
// entry. Returns false (with a diagnostic) on a malformed registry.
bool ParseFaultRegistry(const SourceFile& def, std::set<std::string>* names,
                        std::set<std::string>* idents,
                        std::vector<Diagnostic>* out);

// Whole-tree run: loads src/, tests/, tools/ under `root`, applies the
// default tables and the suppression file at `<root>/.lint-suppressions`
// (missing file = no suppressions), returns all unsuppressed diagnostics
// plus one diagnostic per suppression entry that matched nothing.
std::vector<Diagnostic> LintTree(const std::string& root);

// Formats one diagnostic the way compilers do: file:line: [rule] message.
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace lint
}  // namespace seltrig

#endif  // SELTRIG_LINT_LINT_H_
