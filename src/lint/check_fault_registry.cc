// fault-registry check: common/fault_points.def is the single source of
// truth for fault-point names.
//
//   * A registered point name spelled as a string literal anywhere outside
//     the .def file is an error (comments are fine — the tokenizer already
//     separated them). Call sites must say fault_points::kWhatever.
//   * fault::Maybe's argument must be exactly one registry constant. A
//     string literal ("works today, silently never arms after a rename") and
//     any other expression (un-checkable statically) are both errors.
//   * Arm / Disarm / ScopedFault with a string-literal point name is an
//     error for the same reason; identifier arguments are allowed there
//     because sweep drivers forward registry-derived variables.
//   * Every registered point must be armed-able AND real: an entry with zero
//     fault::Maybe call sites under src/ is an error (a typo'd call site
//     leaves the registered spelling orphaned, which is exactly the bug
//     class this check exists for).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace seltrig {
namespace lint {
namespace {

bool IsStringTok(const Token& t) {
  return t.kind == TokenKind::kString || t.kind == TokenKind::kRawString;
}

// True when tokens[i] starts `fault :: Maybe (` — the only call spelling in
// the tree (the in-class declaration is `Status Maybe(` and never matches).
bool IsMaybeCall(const TokenStream& toks, size_t i) {
  return i + 3 < toks.size() && toks[i].kind == TokenKind::kIdentifier &&
         toks[i].text == "fault" && toks[i + 1].text == "::" &&
         toks[i + 2].text == "Maybe" && toks[i + 3].text == "(";
}

}  // namespace

bool ParseFaultRegistry(const SourceFile& def, std::set<std::string>* names,
                        std::set<std::string>* idents,
                        std::vector<Diagnostic>* out) {
  const TokenStream& toks = def.tokens;
  bool any = false;
  for (size_t i = 0; i + 4 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        toks[i].text != "SELTRIG_FAULT_POINT" || toks[i + 1].text != "(") {
      continue;
    }
    const Token& ident = toks[i + 2];
    if (ident.kind != TokenKind::kIdentifier || toks[i + 3].text != "," ||
        !IsStringTok(toks[i + 4])) {
      out->push_back({def.path, toks[i].line, "fault-registry",
                      def.path + ":malformed",
                      "malformed SELTRIG_FAULT_POINT entry: expected "
                      "(identifier, \"dotted.name\", \"where\")"});
      return false;
    }
    if (!names->insert(toks[i + 4].text).second) {
      out->push_back({def.path, toks[i + 4].line, "fault-registry",
                      def.path + ":duplicate:" + toks[i + 4].text,
                      "duplicate fault-point name '" + toks[i + 4].text + "'"});
    }
    idents->insert(ident.text);
    any = true;
  }
  if (!any) {
    out->push_back({def.path, 1, "fault-registry", def.path + ":empty",
                    "no SELTRIG_FAULT_POINT entries found"});
  }
  return any;
}

void CheckFaultRegistry(const std::vector<SourceFile>& files,
                        const std::set<std::string>& registered_names,
                        const std::set<std::string>& registered_idents,
                        std::vector<Diagnostic>* out) {
  // ident -> number of fault::Maybe(fault_points::ident) sites under src/.
  std::map<std::string, int> maybe_sites;
  for (const std::string& ident : registered_idents) maybe_sites[ident] = 0;
  const bool have_registry = !registered_names.empty();

  for (const SourceFile& file : files) {
    const bool in_src = file.path.rfind("src/", 0) == 0;
    const TokenStream& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];

      // Registered name spelled as a literal anywhere outside the registry.
      if (have_registry && IsStringTok(t) &&
          registered_names.count(t.text) > 0) {
        out->push_back(
            {file.path, t.line, "fault-registry",
             file.path + ":literal:" + t.text,
             "fault-point name \"" + t.text +
                 "\" spelled as a string literal; the only place a point "
                 "name may be spelled is common/fault_points.def — use the "
                 "fault_points:: constant here"});
        continue;
      }

      // fault::Maybe(<arg>): the argument must be one registry constant,
      // written either fault_points::kX or (inside namespace fault_points /
      // a using-declaration) bare kX.
      if (IsMaybeCall(toks, i)) {
        const size_t arg = i + 4;
        size_t end = arg;  // first token after the argument expression
        std::string head;
        if (arg < toks.size()) {
          if (toks[arg].kind == TokenKind::kIdentifier &&
              toks[arg].text == "fault_points" && arg + 2 < toks.size() &&
              toks[arg + 1].text == "::") {
            head = toks[arg + 2].text;
            end = arg + 3;
          } else if (toks[arg].kind == TokenKind::kIdentifier) {
            head = toks[arg].text;
            end = arg + 1;
          }
        }
        const bool closes = end < toks.size() && toks[end].text == ")";
        if (closes && registered_idents.count(head) > 0) {
          if (in_src) ++maybe_sites[head];
        } else if (arg < toks.size() && IsStringTok(toks[arg])) {
          out->push_back({file.path, toks[arg].line, "fault-registry",
                          file.path + ":maybe-literal:" + toks[arg].text,
                          "fault::Maybe with a string literal; register the "
                          "point in common/fault_points.def and pass "
                          "fault_points::k..."});
        } else {
          out->push_back({file.path, toks[i].line, "fault-registry",
                          file.path + ":maybe-nonliteral",
                          "fault::Maybe with a non-registry point name; only "
                          "a single fault_points:: constant is checkable "
                          "statically"});
        }
        i = end;
        continue;
      }

      // Arm / Disarm / ScopedFault with a literal point name. For the RAII
      // form the literal sits after the variable name:
      //   fault::ScopedFault guard("name", ...).
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "Arm" || t.text == "Disarm" || t.text == "ScopedFault")) {
        size_t open = i + 1;
        if (t.text == "ScopedFault" && open < toks.size() &&
            toks[open].kind == TokenKind::kIdentifier) {
          ++open;  // declared variable name
        }
        if (open + 1 < toks.size() && toks[open].text == "(" &&
            IsStringTok(toks[open + 1])) {
          out->push_back({file.path, toks[open + 1].line, "fault-registry",
                          file.path + ":arm-literal:" + toks[open + 1].text,
                          t.text + " with a string-literal point name; pass "
                                   "a fault_points:: constant (or a variable "
                                   "derived from the registry)"});
        }
      }
    }
  }

  for (const auto& [ident, sites] : maybe_sites) {
    if (sites == 0) {
      out->push_back(
          {"src/common/fault_points.def", 0, "fault-registry",
           "src/common/fault_points.def:unused:" + ident,
           "registered fault point " + ident +
               " has no fault::Maybe call site under src/ — it can be armed "
               "but never fires, silently weakening the crash-test matrix"});
    }
  }
}

}  // namespace lint
}  // namespace seltrig
