#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/tokenizer.h"

namespace seltrig {
namespace lint {
namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string ReadFile(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Suppressions Suppressions::Parse(const std::string& text) {
  Suppressions result;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string rule, pattern;
    if (!(fields >> rule >> pattern)) continue;  // blank or comment-only
    result.entries.push_back({rule, pattern, lineno, 0});
  }
  return result;
}

bool Suppressions::Matches(const Diagnostic& d) const {
  for (const Entry& e : entries) {
    if (e.rule != d.rule) continue;
    bool match;
    if (!e.pattern.empty() && e.pattern.back() == '*') {
      match = d.detail.rfind(e.pattern.substr(0, e.pattern.size() - 1), 0) == 0;
    } else {
      match = d.detail == e.pattern;
    }
    if (match) {
      ++e.used;
      return true;
    }
  }
  return false;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

std::vector<Diagnostic> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Diagnostic> diags;

  std::vector<SourceFile> files;
  const SourceFile* registry_def = nullptr;
  for (const char* top : {"src", "tests", "tools"}) {
    const fs::path base = fs::path(root) / top;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string path =
          fs::relative(entry.path(), root).generic_string();
      // Fixture corpus: deliberately-violating snippets that the lint's own
      // tests feed through the checks one by one. Never part of a tree run.
      if (path.rfind("tests/lint/fixtures/", 0) == 0) continue;
      if (!HasSuffix(path, ".h") && !HasSuffix(path, ".cc") &&
          !HasSuffix(path, ".def")) {
        continue;
      }
      files.push_back({path, Tokenize(ReadFile(entry.path()))});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  for (const SourceFile& f : files) {
    if (f.path == "src/common/fault_points.def") registry_def = &f;
  }

  std::set<std::string> names;
  std::set<std::string> idents;
  if (registry_def == nullptr) {
    diags.push_back({"src/common/fault_points.def", 0, "fault-registry",
                     "src/common/fault_points.def:missing",
                     "fault-point registry file not found"});
  } else {
    ParseFaultRegistry(*registry_def, &names, &idents, &diags);
  }
  // The registry itself is exempt from the literal scan; everything else is
  // in scope for its check's own path filter.
  std::vector<SourceFile> non_registry;
  for (const SourceFile& f : files) {
    if (!HasSuffix(f.path, ".def")) non_registry.push_back(f);
  }

  CheckFaultRegistry(non_registry, names, idents, &diags);
  CheckLayering(non_registry, DefaultLayerTable(), &diags);
  CheckLockOrder(non_registry, &diags);
  CheckStatusDiscipline(non_registry, &diags);
  CheckDispatch(non_registry, DefaultDispatchSites(), &diags);

  // Apply suppressions; a suppression that matched nothing is stale and is
  // itself a finding (it documents a seam that no longer exists).
  const fs::path supp_path = fs::path(root) / ".lint-suppressions";
  Suppressions supp;
  if (fs::exists(supp_path)) supp = Suppressions::Parse(ReadFile(supp_path));
  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : diags) {
    if (!supp.Matches(d)) kept.push_back(d);
  }
  for (const Suppressions::Entry& e : supp.entries) {
    if (e.used == 0) {
      kept.push_back({".lint-suppressions", e.line, "suppressions",
                      ".lint-suppressions:stale:" + e.pattern,
                      "suppression `" + e.rule + " " + e.pattern +
                          "` matched no diagnostic; delete it (the seam it "
                          "documented is gone)"});
    }
  }
  return kept;
}

}  // namespace lint
}  // namespace seltrig
