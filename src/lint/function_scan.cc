#include "lint/function_scan.h"

#include <set>

#include "lint/token_util.h"

namespace seltrig {
namespace lint {
namespace {

// Control keywords whose `kw (...)` shape must not be mistaken for a
// function header.
const std::set<std::string>& NonFunctionKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",     "while",         "switch",   "catch",
      "return", "sizeof",  "alignof",       "decltype", "static_assert",
      "assert", "defined", "co_await",      "co_return", "co_yield",
      "throw",  "new",     "delete",        "alignas",  "typeid",
  };
  return kSet;
}

// Tokens that may legally sit between `)` and the body `{` without
// disqualifying the candidate.
bool IsTrailingQualifier(const std::string& text) {
  return text == "const" || text == "noexcept" || text == "override" ||
         text == "final" || text == "mutable" || text == "try" ||
         text == "volatile" || text == "&" || text == "&&";
}

}  // namespace

std::vector<FunctionDef> FindFunctionDefs(const TokenStream& toks) {
  std::vector<FunctionDef> defs;

  struct ClassScope {
    std::string name;
    int open_depth;  // brace depth at which the class body opened
  };
  std::vector<ClassScope> classes;
  int depth = 0;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      --depth;
      while (!classes.empty() && classes.back().open_depth > depth) {
        classes.pop_back();
      }
      continue;
    }

    // class/struct definition: remember the name for method attribution.
    // `enum class` is skipped; `class X;` (no brace before `;`) is skipped.
    if (IsIdent(t, "class") || IsIdent(t, "struct")) {
      if (i > 0 && IsIdent(toks[i - 1], "enum")) continue;
      size_t j = i + 1;
      while (j < toks.size() && IsIdent(toks[j]) &&
             (toks[j].text.rfind("SELTRIG_", 0) == 0 ||
              toks[j].text == "alignas" || toks[j].text == "final")) {
        // attribute-like macro between keyword and name (SCOPED_CAPABILITY)
        if (j + 1 < toks.size() && IsPunct(toks[j + 1], "(")) {
          j = MatchForward(toks, j + 1, "(", ")") + 1;
        } else {
          ++j;
        }
      }
      if (j >= toks.size() || !IsIdent(toks[j])) continue;
      const std::string name = toks[j].text;
      // Definition iff a '{' appears before any ';' (base clauses may
      // contain neither; template args may contain '<...>' commas only).
      for (size_t k = j + 1; k < toks.size(); ++k) {
        if (IsPunct(toks[k], ";")) break;
        if (IsPunct(toks[k], "{")) {
          classes.push_back({name, depth + 1});
          i = k;  // the '{' increments depth on the next iteration... no:
          ++depth;  // consume it here so the scope sees its own depth
          break;
        }
      }
      continue;
    }

    // Candidate header: [~] ident ( ... )
    bool dtor = false;
    size_t name_idx = i;
    if (IsPunct(t, "~") && i + 1 < toks.size() && IsIdent(toks[i + 1])) {
      dtor = true;
      name_idx = i + 1;
    }
    const Token& name_tok = toks[name_idx];
    if (!IsIdent(name_tok)) continue;
    if (NonFunctionKeywords().count(name_tok.text) > 0) continue;
    if (name_idx + 1 >= toks.size() || !IsPunct(toks[name_idx + 1], "(")) {
      continue;
    }
    const size_t params_close = MatchForward(toks, name_idx + 1, "(", ")");
    if (params_close >= toks.size()) continue;

    // Walk from the parameter list to a body '{', collecting REQUIRES locks.
    FunctionDef def;
    def.name = (dtor ? "~" : "") + name_tok.text;
    def.is_destructor = dtor;
    if (name_idx >= 2 && IsPunct(toks[name_idx - 1 - (dtor ? 1 : 0)], "::") &&
        IsIdent(toks[name_idx - 2 - (dtor ? 1 : 0)])) {
      def.qualifier = toks[name_idx - 2 - (dtor ? 1 : 0)].text;
    } else if (!classes.empty()) {
      def.qualifier = classes.back().name;
    }

    size_t k = params_close + 1;
    bool is_def = false;
    while (k < toks.size()) {
      const Token& tk = toks[k];
      if (IsPunct(tk, "{")) {
        is_def = true;
        break;
      }
      if (IsPunct(tk, ";") || IsPunct(tk, "=") || IsPunct(tk, ",") ||
          IsPunct(tk, ")")) {
        break;  // declaration, `= default`, argument in a larger expression
      }
      if (IsIdent(tk) && IsTrailingQualifier(tk.text)) {
        ++k;
        continue;
      }
      if (IsPunct(tk, "->")) {
        // Trailing return type: skip simple type tokens up to '{' or ';'.
        ++k;
        while (k < toks.size() && !IsPunct(toks[k], "{") &&
               !IsPunct(toks[k], ";")) {
          if (IsPunct(toks[k], "<")) {
            k = MatchForward(toks, k, "<", ">");
          }
          ++k;
        }
        continue;
      }
      if (IsIdent(tk) && k + 1 < toks.size() && IsPunct(toks[k + 1], "(")) {
        // Annotation macro between header and body.
        const size_t close = MatchForward(toks, k + 1, "(", ")");
        if (tk.text == "SELTRIG_REQUIRES" ||
            tk.text == "SELTRIG_SHARED_REQUIRES") {
          std::string arg;
          for (size_t a = k + 2; a < close; ++a) {
            if (IsPunct(toks[a], ",")) {
              if (!arg.empty()) def.requires_locks.push_back(arg);
              arg.clear();
            } else {
              arg += toks[a].text;
            }
          }
          if (!arg.empty()) def.requires_locks.push_back(arg);
        }
        k = close + 1;
        continue;
      }
      if (IsPunct(tk, ":")) {
        // Constructor init list: groups of `member (args)` / `member {args}`
        // separated by commas, ending at the body '{'.
        ++k;
        while (k < toks.size()) {
          if (IsPunct(toks[k], "(")) {
            k = MatchForward(toks, k, "(", ")") + 1;
          } else if (IsPunct(toks[k], "{")) {
            // A brace directly after an identifier or '>' is a brace-init
            // group; otherwise it is the body.
            const Token& prev = toks[k - 1];
            if (IsIdent(prev) || IsPunct(prev, ">")) {
              k = MatchForward(toks, k, "{", "}") + 1;
            } else {
              break;
            }
          } else if (IsIdent(toks[k]) || IsPunct(toks[k], ",") ||
                     IsPunct(toks[k], "::") || IsPunct(toks[k], "<") ||
                     IsPunct(toks[k], ">") || IsPunct(toks[k], "...")) {
            ++k;
          } else {
            break;
          }
        }
        continue;
      }
      if (IsIdent(tk)) {
        ++k;  // unknown annotation-ish identifier; tolerate
        continue;
      }
      break;
    }
    if (!is_def || k >= toks.size()) continue;

    def.body_open = k;
    def.body_close = MatchForward(toks, k, "{", "}");
    defs.push_back(def);

    // Continue scanning INSIDE the body for nested/local definitions is not
    // useful here (lambdas attribute to the enclosing function), so skip the
    // whole body. The '{'/'}' bookkeeping above never sees these tokens,
    // which is fine: class scopes only matter outside function bodies.
    i = def.body_close;
  }
  return defs;
}

}  // namespace lint
}  // namespace seltrig
