#include "lint/tokenizer.h"

#include <cctype>
#include <cstddef>

namespace seltrig {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

// Multi-character punctuators, longest first so maximal munch falls out of
// the scan order.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*", "##",
};

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  TokenStream Run() {
    TokenStream out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        out.push_back(LineComment());
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        out.push_back(BlockComment());
        continue;
      }
      // Raw string: an optional encoding prefix, then R"delim( ... )delim".
      // The prefix must not itself be part of a longer identifier
      // (`FooR"x"` is not a raw string), which the identifier branch below
      // already guarantees because it consumes greedily.
      if (c == 'R' && Peek(1) == '"') {
        out.push_back(RawString(0));
        continue;
      }
      if ((c == 'u' || c == 'U' || c == 'L') &&
          ((Peek(1) == 'R' && Peek(2) == '"') ||
           (c == 'u' && Peek(1) == '8' && Peek(2) == 'R' && Peek(3) == '"'))) {
        out.push_back(RawString(Peek(1) == '8' ? 2 : 1));
        continue;
      }
      if (c == '"') {
        out.push_back(QuotedLiteral('"', TokenKind::kString));
        continue;
      }
      if (c == '\'' && !PreviousIsNumeric(out)) {
        out.push_back(QuotedLiteral('\'', TokenKind::kCharLiteral));
        continue;
      }
      if (IsIdentStart(c)) {
        out.push_back(Identifier(out));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        out.push_back(Number());
        continue;
      }
      out.push_back(Punct());
    }
    return out;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  // A ' directly after a number token is a digit separator (1'000'000), not a
  // char literal. The number scanner consumes separators itself; this guard
  // only matters for pathological spacing and costs nothing.
  static bool PreviousIsNumeric(const TokenStream& out) {
    return !out.empty() && out.back().kind == TokenKind::kNumber;
  }

  Token LineComment() {
    Token t{TokenKind::kComment, "", line_, line_};
    pos_ += 2;
    const size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    t.text = std::string(src_.substr(start, pos_ - start));
    return t;
  }

  Token BlockComment() {
    Token t{TokenKind::kComment, "", line_, line_};
    pos_ += 2;
    const size_t start = pos_;
    while (pos_ < src_.size() && !(src_[pos_] == '*' && Peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    t.text = std::string(src_.substr(start, pos_ - start));
    if (pos_ < src_.size()) pos_ += 2;  // closing */
    t.end_line = line_;
    return t;
  }

  Token QuotedLiteral(char quote, TokenKind kind) {
    Token t{kind, "", line_, line_};
    ++pos_;  // opening quote
    const size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != quote) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') ++line_;  // line continuation in literal
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') {
        // Unterminated literal; stop at the newline so the rest of the file
        // still tokenizes sensibly.
        break;
      }
      ++pos_;
    }
    t.text = std::string(src_.substr(start, pos_ - start));
    if (pos_ < src_.size() && src_[pos_] == quote) ++pos_;
    t.end_line = line_;
    return t;
  }

  Token RawString(size_t prefix_len) {
    Token t{TokenKind::kRawString, "", line_, line_};
    pos_ += prefix_len + 2;  // prefix, R, opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // (
    const std::string closer = ")" + delim + "\"";
    const size_t start = pos_;
    size_t end = src_.find(closer, pos_);
    if (end == std::string_view::npos) end = src_.size();
    for (size_t i = pos_; i < end; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    t.text = std::string(src_.substr(start, end - start));
    pos_ = end + (end < src_.size() ? closer.size() : 0);
    t.end_line = line_;
    return t;
  }

  Token Identifier(const TokenStream& out) {
    // An encoding prefix directly before a quote makes the *next* branch a
    // string; here a trailing R"/u8" etc. was already handled in Run(), so a
    // plain identifier just consumes ident chars. A prefix like u8"..." with
    // no raw R lands here first: detect `u8` / `u` / `U` / `L` immediately
    // followed by a quote and re-dispatch as a string literal.
    (void)out;
    const size_t start = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    std::string text(src_.substr(start, pos_ - start));
    if ((text == "u8" || text == "u" || text == "U" || text == "L") &&
        pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'')) {
      return QuotedLiteral(src_[pos_], src_[pos_] == '"'
                                           ? TokenKind::kString
                                           : TokenKind::kCharLiteral);
    }
    return Token{TokenKind::kIdentifier, std::move(text), line_, line_};
  }

  Token Number() {
    Token t{TokenKind::kNumber, "", line_, line_};
    const size_t start = pos_;
    // pp-number: digits, idents, ', and exponent signs. Over-accepts relative
    // to the grammar, which is exactly what a lexer for linting wants.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    t.text = std::string(src_.substr(start, pos_ - start));
    return t;
  }

  Token Punct() {
    for (std::string_view p : kPuncts) {
      if (src_.compare(pos_, p.size(), p) == 0) {
        Token t{TokenKind::kPunct, std::string(p), line_, line_};
        pos_ += p.size();
        return t;
      }
    }
    Token t{TokenKind::kPunct, std::string(1, src_[pos_]), line_, line_};
    ++pos_;
    return t;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

TokenStream Tokenize(std::string_view source) { return Scanner(source).Run(); }

}  // namespace lint
}  // namespace seltrig
