// Minimal C++ tokenizer for seltrig-lint. Standalone: no dependency on the
// engine library, exceptions, or anything beyond the standard library.

#ifndef SELTRIG_LINT_TOKENIZER_H_
#define SELTRIG_LINT_TOKENIZER_H_

#include <string>
#include <string_view>

#include "lint/token.h"

namespace seltrig {
namespace lint {

// Tokenizes C++ source. Never fails: an unterminated literal or comment is
// tokenized to end-of-file (the compiler will reject the file anyway; the
// lint must not crash on it). Handles //, /* */, "..." with escapes,
// '...' with escapes, raw strings R"delim(...)delim" (any delimiter),
// line continuations inside literals, digit separators, and maximal-munch
// multi-character punctuators (::, ->, <<=, ...).
TokenStream Tokenize(std::string_view source);

}  // namespace lint
}  // namespace seltrig

#endif  // SELTRIG_LINT_TOKENIZER_H_
