// Umbrella header for the seltrig library: SELECT triggers for data auditing
// (reproduction of Fabbri, Ramamurthy & Kaushik, ICDE 2013) on top of a
// self-contained in-memory SQL engine.
//
// Typical usage:
//
//   seltrig::Database db;
//   db.Execute("CREATE TABLE patients(patientid INT PRIMARY KEY, name VARCHAR)");
//   db.Execute("INSERT INTO patients VALUES (1, 'Alice')");
//   db.Execute("CREATE AUDIT EXPRESSION audit_alice AS "
//              "SELECT * FROM patients WHERE name = 'Alice' "
//              "FOR SENSITIVE TABLE patients PARTITION BY patientid");
//   db.Execute("CREATE TRIGGER log_alice ON ACCESS TO audit_alice AS "
//              "INSERT INTO log SELECT now(), user_id(), sql_text(), patientid "
//              "FROM accessed");
//   db.Execute("SELECT * FROM patients WHERE patientid = 1");  // fires trigger

#ifndef SELTRIG_SELTRIG_H_
#define SELTRIG_SELTRIG_H_

#include "audit/accessed_state.h"
#include "audit/audit_expression.h"
#include "audit/audit_log.h"
#include "audit/offline_auditor.h"
#include "audit/placement.h"
#include "audit/rewrite_auditor.h"
#include "audit/sensitive_id_view.h"
#include "audit/static_auditor.h"
#include "audit/trigger.h"
#include "binder/binder.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/database.h"
#include "engine/recovery.h"
#include "engine/session.h"
#include "exec/executor.h"
#include "expr/analysis.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "optimizer/optimizer.h"
#include "plan/logical_plan.h"
#include "sql/parser.h"
#include "storage/table.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "types/date.h"
#include "types/schema.h"
#include "types/value.h"

#endif  // SELTRIG_SELTRIG_H_
