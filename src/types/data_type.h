// Scalar data types supported by the engine.

#ifndef SELTRIG_TYPES_DATA_TYPE_H_
#define SELTRIG_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string>

namespace seltrig {

// The engine's scalar type lattice. kNull is the type of the NULL literal
// before coercion; every type is nullable at runtime (a Value of any declared
// type may hold NULL).
enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt,     // 64-bit signed integer
  kDouble,  // IEEE double; also backs DECIMAL(p, s) columns
  kString,  // variable-length UTF-8/ASCII string
  kDate,    // days since 1970-01-01 (proleptic Gregorian)
};

// Returns a display name, e.g. "INT".
const char* TypeName(TypeId type);

// True for kInt and kDouble.
bool IsNumeric(TypeId type);

// Returns the common type two operands coerce to for comparison/arithmetic,
// or kNull if the pair is incompatible. kNull coerces to anything.
TypeId CommonType(TypeId a, TypeId b);

}  // namespace seltrig

#endif  // SELTRIG_TYPES_DATA_TYPE_H_
