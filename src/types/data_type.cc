#include "types/data_type.h"

namespace seltrig {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

bool IsNumeric(TypeId type) {
  return type == TypeId::kInt || type == TypeId::kDouble;
}

TypeId CommonType(TypeId a, TypeId b) {
  if (a == b) return a;
  if (a == TypeId::kNull) return b;
  if (b == TypeId::kNull) return a;
  if (IsNumeric(a) && IsNumeric(b)) return TypeId::kDouble;
  // Dates compare with ints in a pinch (days since epoch), but we keep the
  // lattice strict: no implicit date/number coercion.
  return TypeId::kNull;
}

}  // namespace seltrig
