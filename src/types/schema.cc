#include "types/schema.h"

namespace seltrig {

int Schema::TryResolve(const std::string& qualifier, const std::string& name,
                       bool* ambiguous) const {
  *ambiguous = false;
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (c.name != name) continue;
    if (!qualifier.empty() && c.qualifier != qualifier) continue;
    if (found >= 0) {
      *ambiguous = true;
      return -1;
    }
    found = static_cast<int>(i);
  }
  return found;
}

Result<int> Schema::Resolve(const std::string& qualifier,
                            const std::string& name) const {
  bool ambiguous = false;
  int idx = TryResolve(qualifier, name, &ambiguous);
  std::string display = qualifier.empty() ? name : qualifier + "." + name;
  if (ambiguous) {
    return Status::BindError("ambiguous column reference: " + display);
  }
  if (idx < 0) {
    return Status::BindError("column not found: " + display);
  }
  return idx;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!columns_[i].qualifier.empty()) {
      out += columns_[i].qualifier;
      out += ".";
    }
    out += columns_[i].name;
    out += " ";
    out += TypeName(columns_[i].type);
    if (columns_[i].hidden) out += " [hidden]";
  }
  return out;
}

}  // namespace seltrig
