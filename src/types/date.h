// Calendar date arithmetic. Dates are stored as int32 days since 1970-01-01
// in the proleptic Gregorian calendar.

#ifndef SELTRIG_TYPES_DATE_H_
#define SELTRIG_TYPES_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace seltrig {

// Converts a civil date to days since 1970-01-01. Uses Howard Hinnant's
// days_from_civil algorithm; valid for the full int32 range.
int32_t CivilToDays(int year, int month, int day);

// Inverse of CivilToDays.
void DaysToCivil(int32_t days, int* year, int* month, int* day);

// Parses "YYYY-MM-DD". Rejects out-of-range months/days.
Result<int32_t> ParseDate(std::string_view text);

// Formats as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

// Extraction helpers used by the YEAR()/MONTH()/DAY() SQL functions.
int DateYear(int32_t days);
int DateMonth(int32_t days);
int DateDay(int32_t days);

// Adds `n` calendar months (clamping the day-of-month, e.g. Jan 31 + 1 month
// = Feb 28/29). Years are 12 months.
int32_t AddMonths(int32_t days, int n);

}  // namespace seltrig

#endif  // SELTRIG_TYPES_DATE_H_
