#include "types/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "types/date.h"

namespace seltrig {

namespace {

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

int CompareInt64(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  // NULL sorts before everything, equal to itself.
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    return a.is_null() ? -1 : 1;
  }
  // Cross-type numeric comparison.
  if (IsNumeric(a.type_) && IsNumeric(b.type_)) {
    if (a.type_ == TypeId::kInt && b.type_ == TypeId::kInt) {
      return CompareInt64(a.AsInt(), b.AsInt());
    }
    return Sign(a.NumericAsDouble() - b.NumericAsDouble());
  }
  if (a.type_ != b.type_) {
    return static_cast<int>(a.type_) < static_cast<int>(b.type_) ? -1 : 1;
  }
  switch (a.type_) {
    case TypeId::kBool:
    case TypeId::kInt:
    case TypeId::kDate:
      return CompareInt64(std::get<int64_t>(a.rep_), std::get<int64_t>(b.rep_));
    case TypeId::kDouble:
      return Sign(a.AsDouble() - b.AsDouble());
    case TypeId::kString: {
      int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ull;
    case TypeId::kBool:
    case TypeId::kDate:
      return std::hash<int64_t>{}(std::get<int64_t>(rep_));
    case TypeId::kInt:
      // Hash ints through double so that Int(2) and Double(2.0), which compare
      // equal, also hash equal.
      return std::hash<double>{}(static_cast<double>(AsInt()));
    case TypeId::kDouble:
      return std::hash<double>{}(AsDouble());
    case TypeId::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return AsBool() ? "true" : "false";
    case TypeId::kInt:
      return std::to_string(AsInt());
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case TypeId::kString:
      return "'" + AsString() + "'";
    case TypeId::kDate:
      return FormatDate(AsDate());
  }
  return "?";
}

size_t RowHash::operator()(const Row& r) const {
  size_t h = 0x345678;
  for (const Value& v : r) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace seltrig
