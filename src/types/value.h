// Value: a dynamically-typed scalar cell. Rows are vectors of Values.

#ifndef SELTRIG_TYPES_VALUE_H_
#define SELTRIG_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "types/data_type.h"

namespace seltrig {

// A single scalar cell. The type tag is authoritative; kDate is stored in the
// int64 slot (days since epoch).
class Value {
 public:
  // Default-constructed Value is SQL NULL.
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(TypeId::kBool, v ? int64_t{1} : int64_t{0}); }
  static Value Int(int64_t v) { return Value(TypeId::kInt, v); }
  static Value Double(double v) { return Value(TypeId::kDouble, v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Date(int32_t days) { return Value(TypeId::kDate, int64_t{days}); }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  // Typed accessors. Callers must check the type first; accessing the wrong
  // slot is undefined (asserts in debug builds).
  bool AsBool() const { return std::get<int64_t>(rep_) != 0; }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  int32_t AsDate() const { return static_cast<int32_t>(std::get<int64_t>(rep_)); }

  // Numeric value widened to double (kInt or kDouble only).
  double NumericAsDouble() const {
    return type_ == TypeId::kDouble ? AsDouble() : static_cast<double>(AsInt());
  }

  // Total order used by ORDER BY, grouping and index keys: NULL sorts first,
  // NULLs compare equal to each other, numerics compare cross-type. Values of
  // incomparable types order by type id (so containers stay well-defined).
  // Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  // Total equality consistent with Compare (NULL == NULL is true). This is
  // *container* equality; SQL three-valued `=` lives in the evaluator.
  bool operator==(const Value& other) const { return Compare(*this, other) == 0; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Hash consistent with operator== (numerics hash by double value).
  size_t Hash() const;

  // Display form: NULL, true/false, 123, 1.5, 'abc', 1995-03-15.
  std::string ToString() const;

 private:
  Value(TypeId t, int64_t v) : type_(t), rep_(v) {}
  Value(TypeId t, double v) : type_(t), rep_(v) {}
  explicit Value(std::string v) : type_(TypeId::kString), rep_(std::move(v)) {}

  TypeId type_;
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

using Row = std::vector<Value>;

// Functors for using Value / Row as hash-container keys.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a == b; }
};
struct RowHash {
  size_t operator()(const Row& r) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

// Display form of a row: (a, b, c).
std::string RowToString(const Row& row);

}  // namespace seltrig

#endif  // SELTRIG_TYPES_VALUE_H_
