// Schema: ordered, named, typed columns describing an operator's output or a
// table's layout.

#ifndef SELTRIG_TYPES_SCHEMA_H_
#define SELTRIG_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "types/data_type.h"

namespace seltrig {

// One column of a schema. `qualifier` is the (lower-cased) table alias the
// column is visible under during binding; it is empty for derived columns.
// `hidden` marks helper columns that are carried through the plan but
// stripped from final query results: ORDER BY expressions not in the select
// list, and partition-by IDs propagated for audit operators (Section IV-A1).
struct Column {
  std::string name;
  std::string qualifier;
  TypeId type = TypeId::kNull;
  bool hidden = false;
};

// An ordered list of columns with name resolution.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column col) { columns_.push_back(std::move(col)); }

  // Resolves `qualifier.name` (both lower-case; qualifier may be empty to
  // search all) to a column index. Errors on ambiguity or absence.
  Result<int> Resolve(const std::string& qualifier, const std::string& name) const;

  // Like Resolve but returns -1 instead of an error when not found (still
  // errors on ambiguity via the out-param).
  int TryResolve(const std::string& qualifier, const std::string& name,
                 bool* ambiguous) const;

  // Concatenation used for join output schemas.
  static Schema Concat(const Schema& left, const Schema& right);

  // "name TYPE, name TYPE, ..." for debugging and EXPLAIN output.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace seltrig

#endif  // SELTRIG_TYPES_SCHEMA_H_
