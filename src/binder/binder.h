// Binder: resolves AST names against the catalog, type-checks expressions,
// and produces bound logical plans / bound DML statements.

#ifndef SELTRIG_BINDER_BINDER_H_
#define SELTRIG_BINDER_BINDER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"

namespace seltrig {

// An in-memory relation exposed to the binder under a table name. Used for
// the ACCESSED internal state of SELECT triggers (Section II) and for the
// NEW/OLD row sets of DML triggers.
struct VirtualTable {
  Schema schema;
  const std::vector<Row>* rows = nullptr;
};

struct BoundInsert {
  std::string table;
  PlanPtr source;               // produces rows in source order
  std::vector<int> column_map;  // source column i -> table column column_map[i]
};

struct BoundUpdate {
  std::string table;
  ExprPtr filter;  // over the table schema; nullable
  std::vector<std::pair<int, ExprPtr>> assignments;  // (table column, value expr)
};

struct BoundDelete {
  std::string table;
  ExprPtr filter;  // nullable
};

class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  // Registers a virtual table (e.g. "accessed"); shadows catalog tables.
  void AddVirtualTable(const std::string& name, VirtualTable table);

  // Registers the trigger pseudo-row scope: columns qualified "new"/"old"
  // resolvable from any depth. At execution the affected row is passed as the
  // outermost outer row.
  void SetTriggerRowSchema(const Schema* schema) { trigger_row_schema_ = schema; }

  // Binds a SELECT into a logical plan whose schema is the result schema
  // (hidden helper columns may trail it).
  Result<PlanPtr> BindSelect(const ast::SelectStatement& stmt);

  Result<BoundInsert> BindInsert(const ast::InsertStatement& stmt);
  Result<BoundUpdate> BindUpdate(const ast::UpdateStatement& stmt);
  Result<BoundDelete> BindDelete(const ast::DeleteStatement& stmt);

  // Binds a standalone expression against `schema` (e.g. an IF condition with
  // an empty schema).
  Result<ExprPtr> BindStandaloneExpr(const ast::Expression& e, const Schema& schema);

 private:
  struct AggregateEnv;  // defined in binder.cc

  Result<PlanPtr> BindFromClause(const std::vector<ast::FromClause>& from);
  Result<PlanPtr> BindTableRef(const ast::TableRef& ref);
  Result<ExprPtr> BindExpr(const ast::Expression& e, const Schema& schema);
  Result<ExprPtr> BindColumnRef(const ast::Expression& e, const Schema& schema);
  Result<ExprPtr> BindFunctionCall(const ast::Expression& e, const Schema& schema);
  Result<ExprPtr> BindSubqueryExpr(const ast::Expression& e, const Schema& schema);
  // Binds an expression in a post-aggregation context: aggregate calls and
  // group-by expressions become column references into the aggregate output.
  Result<ExprPtr> BindPostAggregate(const ast::Expression& e, const AggregateEnv& env);
  Result<ExprPtr> BindAggregateAware(const ast::Expression& e, const AggregateEnv& env,
                                     bool* handled);

  const Catalog* catalog_;
  std::unordered_map<std::string, VirtualTable> virtual_tables_;
  const Schema* trigger_row_schema_ = nullptr;

  // Non-null while binding post-aggregation expressions; makes BindExpr map
  // group-by expressions and aggregate calls to aggregate-output columns.
  const AggregateEnv* active_agg_env_ = nullptr;

  // Enclosing-query schemas for correlated-subquery resolution; back() is the
  // innermost enclosing scope.
  std::vector<const Schema*> outer_scopes_;
};

// True if `name` (lower-case) is an aggregate function: count/sum/avg/min/max.
bool IsAggregateFunctionName(const std::string& name);

// Structural equality of AST expressions (subqueries never compare equal).
// Used to match GROUP BY and ORDER BY expressions to select items.
bool AstExprEquals(const ast::Expression& a, const ast::Expression& b);

}  // namespace seltrig

#endif  // SELTRIG_BINDER_BINDER_H_
