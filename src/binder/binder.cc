#include "binder/binder.h"

#include <algorithm>

#include "common/string_util.h"
#include "expr/analysis.h"

namespace seltrig {

bool IsAggregateFunctionName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

bool AstExprEquals(const ast::Expression& a, const ast::Expression& b) {
  if (a.type != b.type) return false;
  if (a.int_value != b.int_value || a.float_value != b.float_value ||
      a.string_value != b.string_value || a.bool_value != b.bool_value ||
      a.qualifier != b.qualifier || a.name != b.name || a.op != b.op ||
      a.negated != b.negated || a.has_else != b.has_else || a.distinct != b.distinct) {
    return false;
  }
  if (a.subquery != nullptr || b.subquery != nullptr) return false;
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!AstExprEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

namespace {

bool ContainsAggregateCall(const ast::Expression& e) {
  if (e.type == ast::ExprType::kFunctionCall && IsAggregateFunctionName(e.name)) {
    return true;
  }
  // Do not descend into subqueries: their aggregates are their own.
  if (e.subquery != nullptr) return false;
  for (const auto& c : e.children) {
    if (ContainsAggregateCall(*c)) return true;
  }
  return false;
}

std::string SelectItemName(const ast::SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->type == ast::ExprType::kColumnRef) {
    return item.expr->name;
  }
  return "col" + std::to_string(index + 1);
}

}  // namespace

// Aggregation environment active while binding post-aggregate expressions
// (select list, HAVING, ORDER BY of an aggregated query).
struct Binder::AggregateEnv {
  const Schema* input_schema = nullptr;  // pre-aggregation schema
  std::vector<const ast::Expression*> group_asts;
  LogicalAggregate* agg = nullptr;  // aggregates appended while binding
};

void Binder::AddVirtualTable(const std::string& name, VirtualTable table) {
  virtual_tables_[ToLower(name)] = std::move(table);
}

Result<PlanPtr> Binder::BindTableRef(const ast::TableRef& ref) {
  if (ref.derived != nullptr) {
    // Derived table: bind the subselect; its output columns become visible
    // under the alias. Hidden helper columns stay hidden (and unresolvable
    // in practice -- their generated names do not collide).
    SELTRIG_ASSIGN_OR_RETURN(PlanPtr plan, BindSelect(*ref.derived));
    for (size_t i = 0; i < plan->schema.size(); ++i) {
      plan->schema.column(i).qualifier = ref.alias;
    }
    return plan;
  }
  auto scan = std::make_shared<LogicalScan>();
  scan->table_name = ref.table;
  scan->alias = ref.alias.empty() ? ref.table : ref.alias;

  auto vit = virtual_tables_.find(ref.table);
  if (vit != virtual_tables_.end()) {
    scan->virtual_rows = vit->second.rows;
    scan->schema = vit->second.schema;
  } else {
    SELTRIG_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(ref.table));
    scan->schema = table->schema();
    scan->schema_version = table->schema_version();
  }
  for (size_t i = 0; i < scan->schema.size(); ++i) {
    scan->schema.column(i).qualifier = scan->alias;
  }
  return PlanPtr(std::move(scan));
}

Result<PlanPtr> Binder::BindFromClause(const std::vector<ast::FromClause>& from) {
  PlanPtr plan;
  for (const ast::FromClause& fc : from) {
    SELTRIG_ASSIGN_OR_RETURN(PlanPtr clause_plan, BindTableRef(fc.base));
    for (const ast::JoinClause& jc : fc.joins) {
      SELTRIG_ASSIGN_OR_RETURN(PlanPtr right, BindTableRef(jc.table));
      auto join = std::make_shared<LogicalJoin>();
      join->join_type = jc.kind == ast::JoinClause::Kind::kLeft ? JoinType::kLeft
                                                                : JoinType::kInner;
      join->schema = Schema::Concat(clause_plan->schema, right->schema);
      join->children = {clause_plan, right};
      SELTRIG_ASSIGN_OR_RETURN(join->condition, BindExpr(*jc.condition, join->schema));
      clause_plan = std::move(join);
    }
    if (plan == nullptr) {
      plan = std::move(clause_plan);
    } else {
      auto cross = std::make_shared<LogicalJoin>();
      cross->join_type = JoinType::kCross;
      cross->schema = Schema::Concat(plan->schema, clause_plan->schema);
      cross->children = {plan, clause_plan};
      plan = std::move(cross);
    }
  }
  return plan;
}

Result<ExprPtr> Binder::BindColumnRef(const ast::Expression& e, const Schema& schema) {
  std::string display = e.qualifier.empty() ? e.name : e.qualifier + "." + e.name;
  bool ambiguous = false;
  int idx = schema.TryResolve(e.qualifier, e.name, &ambiguous);
  if (ambiguous) return Status::BindError("ambiguous column reference: " + display);
  if (idx >= 0) {
    return MakeColumnRef(idx, schema.column(idx).type, display);
  }
  // Enclosing query scopes, innermost first.
  for (int k = static_cast<int>(outer_scopes_.size()) - 1; k >= 0; --k) {
    idx = outer_scopes_[k]->TryResolve(e.qualifier, e.name, &ambiguous);
    if (ambiguous) return Status::BindError("ambiguous column reference: " + display);
    if (idx >= 0) {
      int levels = static_cast<int>(outer_scopes_.size()) - k;
      return MakeOuterColumnRef(idx, levels, outer_scopes_[k]->column(idx).type,
                                display);
    }
  }
  // Trigger pseudo-row (NEW/OLD) is the outermost scope.
  if (trigger_row_schema_ != nullptr) {
    idx = trigger_row_schema_->TryResolve(e.qualifier, e.name, &ambiguous);
    if (ambiguous) return Status::BindError("ambiguous column reference: " + display);
    if (idx >= 0) {
      int levels = static_cast<int>(outer_scopes_.size()) + 1;
      return MakeOuterColumnRef(idx, levels, trigger_row_schema_->column(idx).type,
                                display);
    }
  }
  return Status::BindError("column not found: " + display);
}

Result<ExprPtr> Binder::BindFunctionCall(const ast::Expression& e, const Schema& schema) {
  if (IsAggregateFunctionName(e.name)) {
    return Status::BindError("aggregate function " + ToUpper(e.name) +
                             " is not allowed here");
  }
  std::vector<ExprPtr> args;
  for (const auto& c : e.children) {
    SELTRIG_ASSIGN_OR_RETURN(ExprPtr a, BindExpr(*c, schema));
    args.push_back(std::move(a));
  }
  auto check_argc = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::BindError(ToUpper(e.name) + " expects " + std::to_string(n) +
                               " argument(s)");
    }
    return Status::OK();
  };
  const std::string& n = e.name;
  if (n == "year" || n == "month" || n == "day") {
    SELTRIG_RETURN_IF_ERROR(check_argc(1));
    FunctionId id = n == "year"    ? FunctionId::kYear
                    : n == "month" ? FunctionId::kMonth
                                   : FunctionId::kDay;
    return MakeFunction(id, std::move(args), TypeId::kInt);
  }
  if (n == "substring" || n == "substr") {
    SELTRIG_RETURN_IF_ERROR(check_argc(3));
    return MakeFunction(FunctionId::kSubstring, std::move(args), TypeId::kString);
  }
  if (n == "abs") {
    SELTRIG_RETURN_IF_ERROR(check_argc(1));
    TypeId t = args[0]->result_type;
    return MakeFunction(FunctionId::kAbs, std::move(args), t);
  }
  if (n == "upper" || n == "lower") {
    SELTRIG_RETURN_IF_ERROR(check_argc(1));
    return MakeFunction(n == "upper" ? FunctionId::kUpper : FunctionId::kLower,
                        std::move(args), TypeId::kString);
  }
  if (n == "now") {
    SELTRIG_RETURN_IF_ERROR(check_argc(0));
    return MakeFunction(FunctionId::kNow, {}, TypeId::kString);
  }
  if (n == "current_date" || n == "today") {
    SELTRIG_RETURN_IF_ERROR(check_argc(0));
    return MakeFunction(FunctionId::kCurrentDate, {}, TypeId::kDate);
  }
  if (n == "user_id" || n == "userid") {
    SELTRIG_RETURN_IF_ERROR(check_argc(0));
    return MakeFunction(FunctionId::kUserId, {}, TypeId::kString);
  }
  if (n == "sql_text" || n == "sql") {
    SELTRIG_RETURN_IF_ERROR(check_argc(0));
    return MakeFunction(FunctionId::kSqlText, {}, TypeId::kString);
  }
  if (n == "coalesce") {
    if (args.empty()) return Status::BindError("COALESCE expects arguments");
    TypeId t = TypeId::kNull;
    for (const auto& a : args) t = CommonType(t, a->result_type);
    return MakeFunction(FunctionId::kCoalesce, std::move(args), t);
  }
  return Status::BindError("unknown function: " + n);
}

Result<ExprPtr> Binder::BindSubqueryExpr(const ast::Expression& e, const Schema& schema) {
  auto bound = std::make_unique<Expr>(ExprKind::kSubquery);
  bound->negated = e.negated;

  if (e.type == ast::ExprType::kInSubquery) {
    bound->subquery_kind = SubqueryKind::kIn;
    SELTRIG_ASSIGN_OR_RETURN(ExprPtr probe, BindExpr(*e.children[0], schema));
    bound->children.push_back(std::move(probe));
    bound->result_type = TypeId::kBool;
  } else if (e.type == ast::ExprType::kExists) {
    bound->subquery_kind = SubqueryKind::kExists;
    bound->result_type = TypeId::kBool;
  } else {
    bound->subquery_kind = SubqueryKind::kScalar;
  }

  outer_scopes_.push_back(&schema);
  const AggregateEnv* saved_env = active_agg_env_;
  active_agg_env_ = nullptr;  // the subquery has its own aggregate context
  Result<PlanPtr> sub = BindSelect(*e.subquery);
  active_agg_env_ = saved_env;
  outer_scopes_.pop_back();
  SELTRIG_RETURN_IF_ERROR(sub.status());
  bound->subquery_plan = std::move(sub).value();
  bound->subquery_correlated = MaxEscapeLevel(*bound->subquery_plan) > 0;

  if (bound->subquery_kind == SubqueryKind::kScalar) {
    if (bound->subquery_plan->schema.size() == 0) {
      return Status::BindError("scalar subquery must produce a column");
    }
    bound->result_type = bound->subquery_plan->schema.column(0).type;
  }
  if (bound->subquery_kind == SubqueryKind::kIn) {
    if (bound->subquery_plan->schema.size() == 0) {
      return Status::BindError("IN subquery must produce a column");
    }
    TypeId probe_t = bound->children[0]->result_type;
    TypeId sub_t = bound->subquery_plan->schema.column(0).type;
    if (CommonType(probe_t, sub_t) == TypeId::kNull && probe_t != TypeId::kNull &&
        sub_t != TypeId::kNull) {
      return Status::BindError("IN subquery type mismatch");
    }
  }
  return ExprPtr(std::move(bound));
}

Result<ExprPtr> Binder::BindExpr(const ast::Expression& e, const Schema& schema) {
  using ast::ExprType;
  if (active_agg_env_ != nullptr) {
    bool handled = false;
    Result<ExprPtr> special = BindAggregateAware(e, *active_agg_env_, &handled);
    if (!special.ok()) return special;
    if (handled) return special;
  }
  switch (e.type) {
    case ExprType::kIntLiteral:
      return MakeLiteral(Value::Int(e.int_value));
    case ExprType::kFloatLiteral:
      return MakeLiteral(Value::Double(e.float_value));
    case ExprType::kStringLiteral:
      return MakeLiteral(Value::String(e.string_value));
    case ExprType::kDateLiteral:
      return MakeLiteral(Value::Date(static_cast<int32_t>(e.int_value)));
    case ExprType::kBoolLiteral:
      return MakeLiteral(Value::Bool(e.bool_value));
    case ExprType::kNullLiteral:
      return MakeLiteral(Value::Null());
    case ExprType::kColumnRef:
      return BindColumnRef(e, schema);
    case ExprType::kUnaryOp: {
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*e.children[0], schema));
      if (e.op == "not") {
        return MakeNot(std::move(operand));
      }
      return MakeArith(ArithOp::kNeg, std::move(operand), nullptr);
    }
    case ExprType::kBinaryOp: {
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr lhs, BindExpr(*e.children[0], schema));
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr rhs, BindExpr(*e.children[1], schema));
      if (e.op == "and") return MakeAnd(std::move(lhs), std::move(rhs));
      if (e.op == "or") return MakeOr(std::move(lhs), std::move(rhs));
      if (e.op == "=" || e.op == "<>" || e.op == "<" || e.op == "<=" ||
          e.op == ">" || e.op == ">=") {
        TypeId lt = lhs->result_type, rt = rhs->result_type;
        if (CommonType(lt, rt) == TypeId::kNull && lt != TypeId::kNull &&
            rt != TypeId::kNull) {
          return Status::BindError("cannot compare " + std::string(TypeName(lt)) +
                                   " with " + TypeName(rt));
        }
        CompareOp op = e.op == "="    ? CompareOp::kEq
                       : e.op == "<>" ? CompareOp::kNe
                       : e.op == "<"  ? CompareOp::kLt
                       : e.op == "<=" ? CompareOp::kLe
                       : e.op == ">"  ? CompareOp::kGt
                                      : CompareOp::kGe;
        return MakeComparison(op, std::move(lhs), std::move(rhs));
      }
      ArithOp op = e.op == "+"   ? ArithOp::kAdd
                   : e.op == "-" ? ArithOp::kSub
                   : e.op == "*" ? ArithOp::kMul
                                 : ArithOp::kDiv;
      return MakeArith(op, std::move(lhs), std::move(rhs));
    }
    case ExprType::kBetween: {
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*e.children[0], schema));
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr lo, BindExpr(*e.children[1], schema));
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr hi, BindExpr(*e.children[2], schema));
      ExprPtr operand2 = operand->Clone();
      ExprPtr range = MakeAnd(MakeComparison(CompareOp::kGe, std::move(operand), std::move(lo)),
                              MakeComparison(CompareOp::kLe, std::move(operand2), std::move(hi)));
      if (e.negated) return MakeNot(std::move(range));
      return range;
    }
    case ExprType::kInList: {
      auto bound = std::make_unique<Expr>(ExprKind::kInList);
      bound->negated = e.negated;
      bound->result_type = TypeId::kBool;
      for (const auto& c : e.children) {
        SELTRIG_ASSIGN_OR_RETURN(ExprPtr item, BindExpr(*c, schema));
        bound->children.push_back(std::move(item));
      }
      return ExprPtr(std::move(bound));
    }
    case ExprType::kInSubquery:
    case ExprType::kExists:
    case ExprType::kScalarSubquery:
      return BindSubqueryExpr(e, schema);
    case ExprType::kIsNull: {
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(*e.children[0], schema));
      return MakeIsNull(std::move(operand), e.negated);
    }
    case ExprType::kLike: {
      auto bound = std::make_unique<Expr>(ExprKind::kLike);
      bound->negated = e.negated;
      bound->result_type = TypeId::kBool;
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr text, BindExpr(*e.children[0], schema));
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr pattern, BindExpr(*e.children[1], schema));
      bound->children.push_back(std::move(text));
      bound->children.push_back(std::move(pattern));
      return ExprPtr(std::move(bound));
    }
    case ExprType::kCase: {
      auto bound = std::make_unique<Expr>(ExprKind::kCase);
      bound->has_else = e.has_else;
      TypeId result = TypeId::kNull;
      size_t pairs = (e.children.size() - (e.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        SELTRIG_ASSIGN_OR_RETURN(ExprPtr when, BindExpr(*e.children[2 * i], schema));
        SELTRIG_ASSIGN_OR_RETURN(ExprPtr then, BindExpr(*e.children[2 * i + 1], schema));
        result = CommonType(result, then->result_type);
        bound->children.push_back(std::move(when));
        bound->children.push_back(std::move(then));
      }
      if (e.has_else) {
        SELTRIG_ASSIGN_OR_RETURN(ExprPtr els, BindExpr(*e.children.back(), schema));
        result = CommonType(result, els->result_type);
        bound->children.push_back(std::move(els));
      }
      bound->result_type = result;
      return ExprPtr(std::move(bound));
    }
    case ExprType::kFunctionCall:
      return BindFunctionCall(e, schema);
    case ExprType::kStar:
      return Status::BindError("'*' is only valid in COUNT(*)");
  }
  return Status::Internal("unhandled AST expression type");
}

Result<ExprPtr> Binder::BindPostAggregate(const ast::Expression& e,
                                          const AggregateEnv& env) {
  const AggregateEnv* saved = active_agg_env_;
  active_agg_env_ = &env;
  Result<ExprPtr> result = BindExpr(e, env.agg->schema);
  active_agg_env_ = saved;
  return result;
}

// Handles the aggregate-aware cases of BindExpr; returns nullptr (with OK
// status semantics via the bool out-param) when `e` is not a group expression
// or aggregate call and normal binding should proceed.
Result<ExprPtr> Binder::BindAggregateAware(const ast::Expression& e,
                                           const AggregateEnv& env, bool* handled) {
  *handled = true;
  // Group-by expressions map to their position in the aggregate output.
  for (size_t g = 0; g < env.group_asts.size(); ++g) {
    if (AstExprEquals(e, *env.group_asts[g])) {
      return MakeColumnRef(static_cast<int>(g),
                           env.agg->schema.column(g).type,
                           env.agg->schema.column(g).name);
    }
  }
  // Aggregate calls become new output columns of the aggregate node.
  if (e.type == ast::ExprType::kFunctionCall && IsAggregateFunctionName(e.name)) {
    AggregateSpec spec;
    spec.distinct = e.distinct;
    bool star_arg =
        e.children.size() == 1 && e.children[0]->type == ast::ExprType::kStar;
    if (e.name == "count") {
      if (e.children.empty() || star_arg) {
        spec.kind = AggKind::kCountStar;
      } else {
        spec.kind = AggKind::kCount;
      }
      spec.result_type = TypeId::kInt;
    } else {
      if (e.children.size() != 1 || star_arg) {
        return Status::BindError(ToUpper(e.name) + " expects one argument");
      }
      spec.kind = e.name == "sum"   ? AggKind::kSum
                  : e.name == "avg" ? AggKind::kAvg
                  : e.name == "min" ? AggKind::kMin
                                    : AggKind::kMax;
    }
    if (spec.kind != AggKind::kCountStar) {
      // Aggregate arguments are bound against the pre-aggregation schema,
      // outside the post-aggregate environment.
      const AggregateEnv* saved = active_agg_env_;
      active_agg_env_ = nullptr;
      Result<ExprPtr> arg = BindExpr(*e.children[0], *env.input_schema);
      active_agg_env_ = saved;
      SELTRIG_RETURN_IF_ERROR(arg.status());
      spec.arg = std::move(arg).value();
      TypeId at = spec.arg->result_type;
      switch (spec.kind) {
        case AggKind::kCount:
          spec.result_type = TypeId::kInt;
          break;
        case AggKind::kSum:
          if (!IsNumeric(at)) return Status::BindError("SUM expects a numeric argument");
          spec.result_type = at;
          break;
        case AggKind::kAvg:
          if (!IsNumeric(at)) return Status::BindError("AVG expects a numeric argument");
          spec.result_type = TypeId::kDouble;
          break;
        default:
          spec.result_type = at;
          break;
      }
    }
    spec.name = e.name;
    int idx = static_cast<int>(env.agg->schema.size());
    env.agg->aggregates.push_back(std::move(spec));
    Column col;
    col.name = e.name + std::to_string(idx);
    col.type = env.agg->aggregates.back().result_type;
    env.agg->schema.AddColumn(col);
    return MakeColumnRef(idx, col.type, ToUpper(e.name) + "(..)");
  }
  *handled = false;
  return ExprPtr(nullptr);
}

Result<PlanPtr> Binder::BindSelect(const ast::SelectStatement& stmt) {
  // 1. FROM.
  PlanPtr plan;
  if (stmt.from.empty()) {
    auto values = std::make_shared<LogicalValues>();
    values->rows.push_back({});  // one empty row: constant SELECT
    plan = std::move(values);
  } else {
    SELTRIG_ASSIGN_OR_RETURN(plan, BindFromClause(stmt.from));
  }

  // 2. WHERE.
  if (stmt.where != nullptr) {
    auto filter = std::make_shared<LogicalFilter>();
    SELTRIG_ASSIGN_OR_RETURN(filter->predicate, BindExpr(*stmt.where, plan->schema));
    filter->schema = plan->schema;
    filter->children = {plan};
    plan = std::move(filter);
  }

  // 3. Aggregation.
  bool has_aggregates = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (item.expr != nullptr && ContainsAggregateCall(*item.expr)) has_aggregates = true;
  }
  if (stmt.having != nullptr && ContainsAggregateCall(*stmt.having)) has_aggregates = true;
  for (const auto& ob : stmt.order_by) {
    if (ContainsAggregateCall(*ob.expr)) has_aggregates = true;
  }
  if (stmt.having != nullptr && !has_aggregates) {
    return Status::BindError("HAVING requires aggregation");
  }

  AggregateEnv env;
  Schema pre_agg_schema = plan->schema;
  std::shared_ptr<LogicalAggregate> agg;
  if (has_aggregates) {
    agg = std::make_shared<LogicalAggregate>();
    env.input_schema = &pre_agg_schema;
    env.agg = agg.get();
    for (size_t g = 0; g < stmt.group_by.size(); ++g) {
      const ast::Expression& gexpr = *stmt.group_by[g];
      SELTRIG_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(gexpr, pre_agg_schema));
      Column col;
      if (gexpr.type == ast::ExprType::kColumnRef) {
        col.name = gexpr.name;
        col.qualifier = gexpr.qualifier;
        // Preserve the original qualifier so post-aggregate references with a
        // different (or no) qualifier still resolve.
        if (col.qualifier.empty() && bound->kind == ExprKind::kColumnRef) {
          col.qualifier = pre_agg_schema.column(bound->column_index).qualifier;
        }
      } else {
        col.name = "group" + std::to_string(g + 1);
      }
      col.type = bound->result_type;
      agg->schema.AddColumn(col);
      agg->group_exprs.push_back(std::move(bound));
      env.group_asts.push_back(&gexpr);
    }
    agg->children = {plan};
    plan = agg;
  }

  // 4. Bind the select list, HAVING, and ORDER BY. In the aggregate case all
  // of these may append new aggregate columns to the aggregate node's output
  // schema (append-only, so earlier column references stay valid); the final
  // plan nodes are assembled afterwards so every node sees the final schema.
  auto project = std::make_shared<LogicalProject>();
  const Schema& proj_input = has_aggregates ? agg->schema : plan->schema;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const ast::SelectItem& item = stmt.items[i];
    if (item.is_star) {
      if (has_aggregates) {
        return Status::BindError("'*' cannot be used with aggregation");
      }
      for (size_t c = 0; c < proj_input.size(); ++c) {
        const Column& col = proj_input.column(c);
        if (col.hidden) continue;
        if (!item.star_qualifier.empty() && col.qualifier != item.star_qualifier) {
          continue;
        }
        project->exprs.push_back(
            MakeColumnRef(static_cast<int>(c), col.type, col.name));
        project->schema.AddColumn(col);
      }
      continue;
    }
    ExprPtr bound;
    if (has_aggregates) {
      SELTRIG_ASSIGN_OR_RETURN(bound, BindPostAggregate(*item.expr, env));
    } else {
      SELTRIG_ASSIGN_OR_RETURN(bound, BindExpr(*item.expr, proj_input));
    }
    Column col;
    col.name = SelectItemName(item, i);
    if (item.expr->type == ast::ExprType::kColumnRef && item.alias.empty()) {
      col.qualifier = item.expr->qualifier;
      if (col.qualifier.empty() && bound->kind == ExprKind::kColumnRef) {
        col.qualifier = proj_input.column(bound->column_index).qualifier;
      }
    }
    col.type = bound->result_type;
    project->schema.AddColumn(col);
    project->exprs.push_back(std::move(bound));
  }

  // 6. ORDER BY resolution (against the projected output; expressions not in
  // the select list are appended as hidden helper columns).
  std::vector<SortKey> sort_keys;
  bool added_hidden = false;
  for (const auto& ob : stmt.order_by) {
    int out_idx = -1;
    if (ob.expr->type == ast::ExprType::kIntLiteral) {
      int64_t pos = ob.expr->int_value;
      if (pos < 1 || pos > static_cast<int64_t>(stmt.items.size())) {
        return Status::BindError("ORDER BY position out of range");
      }
      out_idx = static_cast<int>(pos - 1);
    }
    if (out_idx < 0) {
      // Match by select-item alias / column name.
      if (ob.expr->type == ast::ExprType::kColumnRef) {
        bool ambiguous = false;
        int idx = project->schema.TryResolve(ob.expr->qualifier, ob.expr->name,
                                             &ambiguous);
        if (ambiguous) {
          return Status::BindError("ambiguous ORDER BY column: " + ob.expr->name);
        }
        if (idx >= 0) out_idx = idx;
      }
    }
    if (out_idx < 0) {
      // Match by structural equality with a select item.
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (!stmt.items[i].is_star && AstExprEquals(*ob.expr, *stmt.items[i].expr)) {
          out_idx = static_cast<int>(i);
          break;
        }
      }
    }
    if (out_idx < 0) {
      // Bind against the pre-projection schema and carry the value through the
      // projection as a hidden column.
      ExprPtr bound;
      if (has_aggregates) {
        SELTRIG_ASSIGN_OR_RETURN(bound, BindPostAggregate(*ob.expr, env));
      } else {
        SELTRIG_ASSIGN_OR_RETURN(bound, BindExpr(*ob.expr, proj_input));
      }
      Column col;
      col.name = "orderby" + std::to_string(project->schema.size());
      col.type = bound->result_type;
      col.hidden = true;
      out_idx = static_cast<int>(project->schema.size());
      project->schema.AddColumn(col);
      project->exprs.push_back(std::move(bound));
      added_hidden = true;
    }
    SortKey key;
    key.expr = MakeColumnRef(out_idx, project->schema.column(out_idx).type,
                             project->schema.column(out_idx).name);
    key.ascending = ob.ascending;
    sort_keys.push_back(std::move(key));
  }
  if (stmt.distinct && added_hidden) {
    return Status::BindError(
        "ORDER BY expressions must appear in the select list when DISTINCT is used");
  }

  // 5. HAVING (a filter between the aggregate and the projection).
  if (stmt.having != nullptr) {
    auto having = std::make_shared<LogicalFilter>();
    SELTRIG_ASSIGN_OR_RETURN(having->predicate, BindPostAggregate(*stmt.having, env));
    if (having->predicate->result_type != TypeId::kBool) {
      return Status::BindError("HAVING condition must be boolean");
    }
    having->children = {plan};
    having->schema = plan->schema;
    plan = std::move(having);
  }

  project->children = {plan};
  plan = project;

  // 7. DISTINCT.
  if (stmt.distinct) {
    auto distinct = std::make_shared<LogicalDistinct>();
    distinct->schema = plan->schema;
    distinct->children = {plan};
    plan = std::move(distinct);
  }

  // 8. Sort.
  if (!sort_keys.empty()) {
    auto sort = std::make_shared<LogicalSort>();
    sort->keys = std::move(sort_keys);
    sort->schema = plan->schema;
    sort->children = {plan};
    plan = std::move(sort);
  }

  // 9. Limit.
  if (stmt.limit >= 0) {
    auto limit = std::make_shared<LogicalLimit>();
    limit->limit = stmt.limit;
    limit->schema = plan->schema;
    limit->children = {plan};
    plan = std::move(limit);
  }

  return plan;
}

Result<BoundInsert> Binder::BindInsert(const ast::InsertStatement& stmt) {
  SELTRIG_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.table));
  const Schema& schema = table->schema();

  BoundInsert bound;
  bound.table = table->name();
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.size(); ++i) {
      bound.column_map.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.columns) {
      SELTRIG_ASSIGN_OR_RETURN(int idx, schema.Resolve("", name));
      bound.column_map.push_back(idx);
    }
  }

  if (stmt.select != nullptr) {
    SELTRIG_ASSIGN_OR_RETURN(bound.source, BindSelect(*stmt.select));
    size_t visible = 0;
    for (size_t i = 0; i < bound.source->schema.size(); ++i) {
      if (!bound.source->schema.column(i).hidden) ++visible;
    }
    if (visible != bound.column_map.size()) {
      return Status::BindError("INSERT column count mismatch");
    }
  } else {
    auto values = std::make_shared<LogicalValues>();
    Schema empty;
    for (const auto& row : stmt.values_rows) {
      if (row.size() != bound.column_map.size()) {
        return Status::BindError("INSERT VALUES arity mismatch");
      }
      std::vector<ExprPtr> bound_row;
      for (size_t i = 0; i < row.size(); ++i) {
        SELTRIG_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*row[i], empty));
        bound_row.push_back(std::move(e));
      }
      values->rows.push_back(std::move(bound_row));
    }
    // Schema mirrors the target columns.
    for (int col : bound.column_map) {
      values->schema.AddColumn(schema.column(col));
    }
    bound.source = std::move(values);
  }
  return bound;
}

Result<BoundUpdate> Binder::BindUpdate(const ast::UpdateStatement& stmt) {
  SELTRIG_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.table));
  Schema schema = table->schema();
  for (size_t i = 0; i < schema.size(); ++i) schema.column(i).qualifier = table->name();

  BoundUpdate bound;
  bound.table = table->name();
  for (const auto& [col_name, value_ast] : stmt.assignments) {
    SELTRIG_ASSIGN_OR_RETURN(int idx, schema.Resolve("", col_name));
    SELTRIG_ASSIGN_OR_RETURN(ExprPtr value, BindExpr(*value_ast, schema));
    bound.assignments.emplace_back(idx, std::move(value));
  }
  if (stmt.where != nullptr) {
    SELTRIG_ASSIGN_OR_RETURN(bound.filter, BindExpr(*stmt.where, schema));
  }
  return bound;
}

Result<BoundDelete> Binder::BindDelete(const ast::DeleteStatement& stmt) {
  SELTRIG_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.table));
  Schema schema = table->schema();
  for (size_t i = 0; i < schema.size(); ++i) schema.column(i).qualifier = table->name();

  BoundDelete bound;
  bound.table = table->name();
  if (stmt.where != nullptr) {
    SELTRIG_ASSIGN_OR_RETURN(bound.filter, BindExpr(*stmt.where, schema));
  }
  return bound;
}

Result<ExprPtr> Binder::BindStandaloneExpr(const ast::Expression& e,
                                           const Schema& schema) {
  return BindExpr(e, schema);
}

}  // namespace seltrig
