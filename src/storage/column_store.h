// Columnar table storage: one typed array per column plus a packed null
// bitmap, with dictionary-encoded strings. This is the authoritative row
// storage behind Table; the row-materialization shim (Table::GetRow /
// MaterializeRow) reconstructs Row images for DML, the undo log, WAL row
// images, and snapshots so the durability and replication formats are
// unchanged by the layout.
//
// Exactness contract: a materialized cell is the *identical* Value that was
// stored — same TypeId, same representation. A column whose declared type
// does not match an incoming value degrades to a generic Value column
// (Rep::kValue) instead of coercing, so ACCESSED ids, WAL images, and
// recovery image-matching never observe a layout-induced change.
//
// Concurrency: like the rest of Table, columns are mutated only behind the
// engine's exclusive writer lock; readers (scans, views bound by the
// columnar executor) run lock-free and stay valid until the next mutation.

#ifndef SELTRIG_STORAGE_COLUMN_STORE_H_
#define SELTRIG_STORAGE_COLUMN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"

namespace seltrig {

// Append-only string dictionary: code -> string and string -> code. Codes are
// dense and never recycled (deleted rows keep their codes; Table::Clear
// resets the dictionary wholesale). Lookup pointers stay stable because the
// strings live in unordered_map nodes.
class StringDict {
 public:
  // Returns the existing code for `s`, or assigns the next one.
  uint32_t Encode(const std::string& s);
  // Returns the code for `s`, or -1 if it was never encoded. Lets equality
  // predicates against a constant absent from the dictionary prove emptiness
  // without touching a single row.
  int64_t Find(const std::string& s) const;
  const std::string& At(uint32_t code) const { return *by_code_[code]; }
  size_t size() const { return by_code_.size(); }
  void Clear();

 private:
  std::unordered_map<std::string, uint32_t> codes_;
  std::vector<const std::string*> by_code_;  // stable node pointers
};

// Packed validity bitmap; a set bit means NULL.
class NullBits {
 public:
  void Append(bool is_null);
  void Set(size_t i, bool is_null);
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void PopBack();
  void Clear();
  size_t size() const { return size_; }
  bool any() const { return null_count_ > 0; }
  const uint64_t* words() const { return words_.data(); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
  size_t null_count_ = 0;
};

// One table column. The representation is fixed by the declared schema type
// (int-backed types share Rep::kInt64) until a mismatched value degrades the
// column to Rep::kValue.
class TableColumn {
 public:
  enum class Rep : uint8_t {
    kInt64,   // kBool / kInt / kDate, stored as int64_t
    kDouble,  // kDouble
    kString,  // dictionary codes + shared StringDict
    kValue,   // generic fallback: the exact Values, nulls inline
  };

  explicit TableColumn(TypeId declared_type);

  size_t size() const { return size_; }
  Rep rep() const { return rep_; }
  // Element type of the typed representations (the declared type). Only
  // meaningful while rep() != kValue.
  TypeId type() const { return type_; }

  void Append(const Value& v);
  void Set(size_t slot, const Value& v);
  Value Get(size_t slot) const;
  // Appends the exact stored Value to *out (avoids a temporary move chain).
  void AppendTo(size_t slot, Row* out) const;
  void PopBack();
  void Clear();

  // Raw storage accessors for the columnar executor's view binding. Only the
  // family matching rep() is valid.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const uint32_t* codes() const { return codes_.data(); }
  const StringDict* dict() const { return &dict_; }
  StringDict* mutable_dict() { return &dict_; }
  const Value* values() const { return values_.data(); }
  const NullBits& nulls() const { return nulls_; }

 private:
  // Converts the column to Rep::kValue, materializing every stored cell.
  void Degrade();
  bool Matches(const Value& v) const;

  Rep rep_;
  TypeId type_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  StringDict dict_;
  std::vector<Value> values_;
  NullBits nulls_;  // typed reps only; kValue stores NULL inline
};

}  // namespace seltrig

#endif  // SELTRIG_STORAGE_COLUMN_STORE_H_
