#include "storage/table.h"

#include <algorithm>
#include <cassert>

#include "common/fault_injector.h"
#include "storage/undo_log.h"

namespace seltrig {

Table::Table(std::string name, Schema schema, int primary_key_column)
    : name_(std::move(name)), schema_(std::move(schema)), pk_col_(primary_key_column) {
  columns_.reserve(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    columns_.emplace_back(schema_.column(c).type);
  }
}

void Table::AppendSlot(const Row& row) {
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].Append(row[c]);
  deleted_.push_back(false);
  ++slot_count_;
}

void Table::WriteSlot(size_t row_id, const Row& row) {
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].Set(row_id, row[c]);
}

Row Table::GetRow(size_t row_id) const {
  Row row;
  MaterializeRow(row_id, &row);
  return row;
}

void Table::MaterializeRow(size_t row_id, Row* out) const {
  assert(row_id < slot_count_);
  out->clear();
  out->reserve(columns_.size());
  for (const TableColumn& col : columns_) col.AppendTo(row_id, out);
}

Result<size_t> Table::Insert(Row row) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kStorageAppend));
  if (row.size() != schema_.size()) {
    return Status::ExecutionError("insert into " + name_ + ": expected " +
                                  std::to_string(schema_.size()) + " values, got " +
                                  std::to_string(row.size()));
  }
  if (pk_col_ >= 0) {
    const Value& key = row[pk_col_];
    if (key.is_null()) {
      return Status::ExecutionError("insert into " + name_ + ": NULL primary key");
    }
    if (pk_index_.count(key) > 0) {
      return Status::ExecutionError("insert into " + name_ +
                                    ": duplicate primary key " + key.ToString());
    }
  }
  size_t row_id = slot_count_;
  AppendSlot(row);
  ++live_count_;
  ++version_;
  if (pk_col_ >= 0) pk_index_[row[pk_col_]] = row_id;
  if (undo_ != nullptr) undo_->PushInsert(this, row_id);
  return row_id;
}

Status Table::Delete(size_t row_id) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kStorageDelete));
  if (row_id >= slot_count_ || deleted_[row_id]) {
    return Status::ExecutionError("delete from " + name_ + ": invalid row id");
  }
  if (pk_col_ >= 0) pk_index_.erase(columns_[pk_col_].Get(row_id));
  deleted_[row_id] = true;
  --live_count_;
  ++version_;
  if (undo_ != nullptr) undo_->PushDelete(this, row_id);
  return Status::OK();
}

Status Table::Update(size_t row_id, Row new_row) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kStorageUpdate));
  if (row_id >= slot_count_ || deleted_[row_id]) {
    return Status::ExecutionError("update " + name_ + ": invalid row id");
  }
  if (new_row.size() != schema_.size()) {
    return Status::ExecutionError("update " + name_ + ": arity mismatch");
  }
  if (pk_col_ >= 0) {
    const Value old_key = columns_[pk_col_].Get(row_id);
    const Value& new_key = new_row[pk_col_];
    if (new_key.is_null()) {
      return Status::ExecutionError("update " + name_ + ": NULL primary key");
    }
    if (old_key != new_key) {
      if (pk_index_.count(new_key) > 0) {
        return Status::ExecutionError("update " + name_ + ": duplicate primary key " +
                                      new_key.ToString());
      }
      pk_index_.erase(old_key);
      pk_index_[new_key] = row_id;
    }
  }
  if (undo_ != nullptr) undo_->PushUpdate(this, row_id, GetRow(row_id));
  WriteSlot(row_id, new_row);
  ++version_;
  return Status::OK();
}

void Table::UndoInsert(size_t row_id) {
  assert(row_id < slot_count_);
  if (!deleted_[row_id]) {
    if (pk_col_ >= 0) pk_index_.erase(columns_[pk_col_].Get(row_id));
    --live_count_;
  }
  if (row_id + 1 == slot_count_) {
    // Reverse-order rollback undoes later inserts first, so the slot being
    // reverted is normally the newest and the heap shrinks back.
    for (TableColumn& col : columns_) col.PopBack();
    deleted_.pop_back();
    --slot_count_;
  } else {
    deleted_[row_id] = true;  // later slots survive: tombstone instead
  }
  ++version_;
}

void Table::UndoDelete(size_t row_id) {
  assert(row_id < slot_count_ && deleted_[row_id]);
  deleted_[row_id] = false;
  ++live_count_;
  if (pk_col_ >= 0) pk_index_[columns_[pk_col_].Get(row_id)] = row_id;
  ++version_;
}

void Table::UndoUpdate(size_t row_id, Row old_row) {
  assert(row_id < slot_count_);
  if (pk_col_ >= 0) {
    pk_index_.erase(columns_[pk_col_].Get(row_id));
    pk_index_[old_row[pk_col_]] = row_id;
  }
  WriteSlot(row_id, old_row);
  ++version_;
}

Result<size_t> Table::LookupByPrimaryKey(const Value& key) const {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) {
    return Status::NotFound("no row with primary key " + key.ToString() + " in " + name_);
  }
  return it->second;
}

void Table::EnsureSecondaryIndex(int column) {
  SecondaryIndex& idx = secondary_indexes_[column];
  if (idx.built_at_version == version_ && !idx.map.empty()) return;
  if (idx.built_at_version == version_ && version_ != 0) return;
  idx.map.clear();
  const TableColumn& col = columns_[column];
  for (size_t i = 0; i < slot_count_; ++i) {
    if (deleted_[i]) continue;
    idx.map[col.Get(i)].push_back(i);
  }
  idx.built_at_version = version_;
}

size_t Table::ScanLiveRange(size_t* cursor, size_t end_slot, size_t max_live,
                            std::vector<uint32_t>* out_slots) const {
  size_t appended = 0;
  size_t pos = *cursor;
  const size_t slots = std::min(end_slot, slot_count_);
  while (pos < slots && appended < max_live) {
    if (!deleted_[pos]) {
      out_slots->push_back(static_cast<uint32_t>(pos));
      ++appended;
    }
    ++pos;
  }
  *cursor = pos;
  return appended;
}

const std::vector<size_t>& Table::LookupBySecondary(int column, const Value& key) {
  MutexLock lock(&secondary_mutex_);
  EnsureSecondaryIndex(column);
  const SecondaryIndex& idx = secondary_indexes_[column];
  auto it = idx.map.find(key);
  if (it == idx.map.end()) return empty_result_;
  return it->second;
}

// Every schema mutation shifts or retypes column indexes, so all lazily
// built secondary indexes (keyed by column index) are dropped and the write
// version bumped. The writer lock excludes readers, but the guard mutex is
// taken anyway to satisfy the static lock discipline.
void Table::InvalidateAfterSchemaChange() {
  ++version_;
  MutexLock lock(&secondary_mutex_);
  secondary_indexes_.clear();
}

Status Table::AlterAddColumn(const std::string& name, TypeId type,
                             const Value& default_value) {
  bool ambiguous = false;
  if (schema_.TryResolve("", name, &ambiguous) >= 0 || ambiguous) {
    return Status::ExecutionError("alter table " + name_ + ": column '" + name +
                                  "' already exists");
  }
  Column col;
  col.name = name;
  col.type = type;
  std::vector<Column> cols = schema_.columns();
  cols.push_back(col);
  schema_ = Schema(std::move(cols));
  columns_.emplace_back(type);
  TableColumn& data = columns_.back();
  for (size_t i = 0; i < slot_count_; ++i) data.Append(default_value);
  InvalidateAfterSchemaChange();
  return Status::OK();
}

void Table::AlterDropLastColumn() {
  assert(!columns_.empty());
  std::vector<Column> cols = schema_.columns();
  cols.pop_back();
  schema_ = Schema(std::move(cols));
  columns_.pop_back();
  InvalidateAfterSchemaChange();
}

Result<Table::DroppedColumn> Table::AlterDropColumn(size_t column) {
  assert(column < columns_.size());
  if (static_cast<int>(column) == pk_col_) {
    return Status::ExecutionError("alter table " + name_ +
                                  ": cannot drop primary key column '" +
                                  schema_.column(column).name + "'");
  }
  DroppedColumn dropped{schema_.column(column), std::move(columns_[column]),
                        column};
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(column));
  std::vector<Column> cols = schema_.columns();
  cols.erase(cols.begin() + static_cast<ptrdiff_t>(column));
  schema_ = Schema(std::move(cols));
  if (pk_col_ > static_cast<int>(column)) --pk_col_;
  InvalidateAfterSchemaChange();
  return dropped;
}

void Table::AlterRestoreColumn(DroppedColumn dropped) {
  assert(dropped.index <= columns_.size());
  std::vector<Column> cols = schema_.columns();
  cols.insert(cols.begin() + static_cast<ptrdiff_t>(dropped.index),
              dropped.schema_column);
  schema_ = Schema(std::move(cols));
  columns_.insert(columns_.begin() + static_cast<ptrdiff_t>(dropped.index),
                  std::move(dropped.data));
  if (pk_col_ >= static_cast<int>(dropped.index)) ++pk_col_;
  InvalidateAfterSchemaChange();
}

Status Table::AlterRenameColumn(size_t column, const std::string& new_name) {
  assert(column < columns_.size());
  bool ambiguous = false;
  int existing = schema_.TryResolve("", new_name, &ambiguous);
  if ((existing >= 0 && existing != static_cast<int>(column)) || ambiguous) {
    return Status::ExecutionError("alter table " + name_ + ": column '" +
                                  new_name + "' already exists");
  }
  schema_.column(column).name = new_name;
  InvalidateAfterSchemaChange();
  return Status::OK();
}

Result<TableColumn> Table::AlterRetypeColumn(size_t column, TypeId new_type) {
  assert(column < columns_.size());
  TableColumn rebuilt(new_type);
  const TableColumn& old = columns_[column];
  for (size_t i = 0; i < slot_count_; ++i) rebuilt.Append(old.Get(i));
  TableColumn old_data = std::move(columns_[column]);
  columns_[column] = std::move(rebuilt);
  schema_.column(column).type = new_type;
  InvalidateAfterSchemaChange();
  return old_data;
}

void Table::AlterRestoreColumnData(size_t column, TableColumn old_data,
                                   TypeId old_type) {
  assert(column < columns_.size());
  columns_[column] = std::move(old_data);
  schema_.column(column).type = old_type;
  InvalidateAfterSchemaChange();
}

void Table::Clear() {
  for (TableColumn& col : columns_) col.Clear();
  deleted_.clear();
  slot_count_ = 0;
  live_count_ = 0;
  ++version_;
  pk_index_.clear();
  secondary_indexes_.clear();
}

}  // namespace seltrig
