// UndoLog: a row-level undo journal over heap tables, giving trigger-action
// lists all-or-nothing semantics. While attached to a table (see
// Table::set_undo_log), every Insert/Update/Delete appends an inverse record;
// RollbackTo(savepoint) replays the suffix in reverse, restoring the tables
// to their state at the savepoint. Savepoints nest, so cascading triggers
// each get their own atomic scope inside the enclosing one.
//
// The journal covers base-table rows only. Derived state maintained
// incrementally alongside DML (sensitive-ID views) must be rebuilt by the
// caller for the tables RollbackTo reports as touched.

#ifndef SELTRIG_STORAGE_UNDO_LOG_H_
#define SELTRIG_STORAGE_UNDO_LOG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace seltrig {

class Table;

class UndoLog {
 public:
  UndoLog() = default;
  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;

  // A position in the journal; entries past it can be rolled back.
  size_t Savepoint() const { return entries_.size(); }

  bool empty() const { return entries_.empty(); }

  // Journaling hooks, called by Table after a successful mutation.
  void PushInsert(Table* table, size_t row_id);
  void PushDelete(Table* table, size_t row_id);
  void PushUpdate(Table* table, size_t row_id, Row old_row);

  // Undoes every entry recorded after `savepoint`, newest first. On success
  // appends the (lower-case) names of the tables whose rows were reverted to
  // `touched_tables` (may repeat; callers dedupe). Never adds new entries.
  Status RollbackTo(size_t savepoint, std::vector<std::string>* touched_tables);

  // Discards all entries (a commit: the mutations stay).
  void Clear() { entries_.clear(); }

 private:
  enum class Kind { kInsert, kDelete, kUpdate };

  struct Entry {
    Kind kind;
    Table* table;
    size_t row_id;
    Row old_row;  // kUpdate only
  };

  std::vector<Entry> entries_;
};

}  // namespace seltrig

#endif  // SELTRIG_STORAGE_UNDO_LOG_H_
