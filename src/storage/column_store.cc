#include "storage/column_store.h"

#include <cassert>

namespace seltrig {

// ---------------------------------------------------------------- StringDict

uint32_t StringDict::Encode(const std::string& s) {
  auto [it, inserted] = codes_.emplace(s, static_cast<uint32_t>(by_code_.size()));
  if (inserted) by_code_.push_back(&it->first);
  return it->second;
}

int64_t StringDict::Find(const std::string& s) const {
  auto it = codes_.find(s);
  return it == codes_.end() ? -1 : static_cast<int64_t>(it->second);
}

void StringDict::Clear() {
  codes_.clear();
  by_code_.clear();
}

// ------------------------------------------------------------------ NullBits

void NullBits::Append(bool is_null) {
  if ((size_ & 63) == 0) words_.push_back(0);
  if (is_null) {
    words_[size_ >> 6] |= uint64_t{1} << (size_ & 63);
    ++null_count_;
  }
  ++size_;
}

void NullBits::Set(size_t i, bool is_null) {
  assert(i < size_);
  const uint64_t mask = uint64_t{1} << (i & 63);
  uint64_t& word = words_[i >> 6];
  const bool was_null = (word & mask) != 0;
  if (is_null == was_null) return;
  if (is_null) {
    word |= mask;
    ++null_count_;
  } else {
    word &= ~mask;
    --null_count_;
  }
}

void NullBits::PopBack() {
  assert(size_ > 0);
  --size_;
  const uint64_t mask = uint64_t{1} << (size_ & 63);
  uint64_t& word = words_[size_ >> 6];
  if (word & mask) {
    word &= ~mask;
    --null_count_;
  }
  if ((size_ & 63) == 0) words_.pop_back();
}

void NullBits::Clear() {
  words_.clear();
  size_ = 0;
  null_count_ = 0;
}

// --------------------------------------------------------------- TableColumn

namespace {

TableColumn::Rep RepForType(TypeId t) {
  switch (t) {
    case TypeId::kBool:
    case TypeId::kInt:
    case TypeId::kDate:
      return TableColumn::Rep::kInt64;
    case TypeId::kDouble:
      return TableColumn::Rep::kDouble;
    case TypeId::kString:
      return TableColumn::Rep::kString;
    case TypeId::kNull:
      return TableColumn::Rep::kValue;
  }
  return TableColumn::Rep::kValue;
}

}  // namespace

TableColumn::TableColumn(TypeId declared_type)
    : rep_(RepForType(declared_type)), type_(declared_type) {}

bool TableColumn::Matches(const Value& v) const {
  // NULL fits every typed representation (via the null bitmap); a non-NULL
  // value fits only when its runtime type equals the declared type exactly.
  return v.is_null() || v.type() == type_;
}

void TableColumn::Degrade() {
  assert(rep_ != Rep::kValue);
  values_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) values_.push_back(Get(i));
  rep_ = Rep::kValue;
  ints_.clear();
  ints_.shrink_to_fit();
  doubles_.clear();
  doubles_.shrink_to_fit();
  codes_.clear();
  codes_.shrink_to_fit();
  dict_.Clear();
  nulls_.Clear();
}

void TableColumn::Append(const Value& v) {
  if (rep_ != Rep::kValue && !Matches(v)) Degrade();
  switch (rep_) {
    case Rep::kInt64:
      ints_.push_back(v.is_null() ? 0 : v.AsInt());
      nulls_.Append(v.is_null());
      break;
    case Rep::kDouble:
      doubles_.push_back(v.is_null() ? 0.0 : v.AsDouble());
      nulls_.Append(v.is_null());
      break;
    case Rep::kString:
      codes_.push_back(v.is_null() ? 0 : dict_.Encode(v.AsString()));
      nulls_.Append(v.is_null());
      break;
    case Rep::kValue:
      values_.push_back(v);
      break;
  }
  ++size_;
}

void TableColumn::Set(size_t slot, const Value& v) {
  assert(slot < size_);
  if (rep_ != Rep::kValue && !Matches(v)) Degrade();
  switch (rep_) {
    case Rep::kInt64:
      ints_[slot] = v.is_null() ? 0 : v.AsInt();
      nulls_.Set(slot, v.is_null());
      break;
    case Rep::kDouble:
      doubles_[slot] = v.is_null() ? 0.0 : v.AsDouble();
      nulls_.Set(slot, v.is_null());
      break;
    case Rep::kString:
      codes_[slot] = v.is_null() ? 0 : dict_.Encode(v.AsString());
      nulls_.Set(slot, v.is_null());
      break;
    case Rep::kValue:
      values_[slot] = v;
      break;
  }
}

Value TableColumn::Get(size_t slot) const {
  assert(slot < size_);
  switch (rep_) {
    case Rep::kInt64:
      if (nulls_.Test(slot)) return Value::Null();
      switch (type_) {
        case TypeId::kBool:
          return Value::Bool(ints_[slot] != 0);
        case TypeId::kDate:
          return Value::Date(static_cast<int32_t>(ints_[slot]));
        default:
          return Value::Int(ints_[slot]);
      }
    case Rep::kDouble:
      if (nulls_.Test(slot)) return Value::Null();
      return Value::Double(doubles_[slot]);
    case Rep::kString:
      if (nulls_.Test(slot)) return Value::Null();
      return Value::String(dict_.At(codes_[slot]));
    case Rep::kValue:
      return values_[slot];
  }
  return Value::Null();
}

void TableColumn::AppendTo(size_t slot, Row* out) const {
  out->push_back(Get(slot));
}

void TableColumn::PopBack() {
  assert(size_ > 0);
  switch (rep_) {
    case Rep::kInt64:
      ints_.pop_back();
      nulls_.PopBack();
      break;
    case Rep::kDouble:
      doubles_.pop_back();
      nulls_.PopBack();
      break;
    case Rep::kString:
      codes_.pop_back();  // the dictionary keeps the code; codes are dense
      nulls_.PopBack();
      break;
    case Rep::kValue:
      values_.pop_back();
      break;
  }
  --size_;
}

void TableColumn::Clear() {
  ints_.clear();
  doubles_.clear();
  codes_.clear();
  dict_.Clear();
  values_.clear();
  nulls_.Clear();
  size_ = 0;
}

}  // namespace seltrig
