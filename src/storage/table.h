// In-memory columnar table with stable row ids, an optional primary-key hash
// index, and lazily-built secondary hash indexes.

#ifndef SELTRIG_STORAGE_TABLE_H_
#define SELTRIG_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/column_store.h"
#include "types/schema.h"
#include "types/value.h"

namespace seltrig {

class UndoLog;

// Storage is columnar: one append-only TableColumn per schema column (typed
// arrays + null bitmaps, see storage/column_store.h). A row id names the same
// slot in every column; deletes set a tombstone so row ids stay stable for
// indexes and triggers. Row images for DML, the undo log, WAL, and snapshots
// are materialized on demand through GetRow / MaterializeRow — the durability
// formats never see the columnar layout.
//
// Concurrency contract (docs/CONCURRENCY.md): reads (ScanLiveRange, GetRow,
// column_data, lookups) may run from many sessions and parallel scan workers
// at once; every mutation runs behind the engine's exclusive writer lock,
// which excludes all readers. The only mutable state reachable from the read
// path is the lazily-built secondary index, which is serialized internally.
class Table {
 public:
  // `primary_key_column` is the index of the PK column in `schema`, or -1 if
  // the table has no primary key.
  Table(std::string name, Schema schema, int primary_key_column = -1);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int primary_key_column() const { return pk_col_; }

  // Monotonic schema version: 1 at creation, bumped once per committed ALTER
  // TABLE statement. Plans stamp the version they were bound against and the
  // validator re-checks it at execute time; audit bindings and replication
  // DDL records carry it so every replica of a table converges on the same
  // (version, layout) pair.
  uint64_t schema_version() const { return schema_version_; }
  // Used by the ALTER path (commit / rollback) and by snapshot load +
  // recovery, which must restore the counter a replayed journal continues
  // from. Never decreases outside an ALTER rollback.
  void set_schema_version(uint64_t v) { schema_version_ = v; }

  // Number of live (non-deleted) rows.
  size_t live_row_count() const { return live_count_; }
  // Total slots including tombstones; valid row ids are [0, slot_count()).
  size_t slot_count() const { return slot_count_; }

  bool IsLive(size_t row_id) const { return !deleted_[row_id]; }

  // Materializes a full row image by gathering one cell from every column.
  // The cells are the exact Values that were stored (column_store.h's
  // exactness contract), so WAL images, undo entries, and snapshot lines are
  // byte-identical to the row-storage era.
  Row GetRow(size_t row_id) const;
  // Same, reusing the caller's buffer (cleared first) to avoid reallocation
  // in scan loops.
  void MaterializeRow(size_t row_id, Row* out) const;
  // Single-cell materialization.
  Value GetCell(size_t row_id, size_t column) const {
    return columns_[column].Get(row_id);
  }

  // Direct columnar access for the vectorized executor: the returned column
  // (typed array + null bitmap) stays valid until the next mutation of the
  // table — the same lifetime the old `const Row*` scan pointers had.
  const TableColumn& column_data(size_t column) const { return columns_[column]; }

  // Cursor-based batch scan: starting at *cursor, skips tombstones and
  // appends up to `max_live` live slot ids to `out_slots`, advancing *cursor
  // past every slot examined but never at or past `end_slot`. Returns the
  // number of slot ids appended; 0 means the range is exhausted. A morsel
  // worker owning [begin, end) starts its cursor at `begin`. The slot ids
  // index directly into column_data() arrays and double as the scan's
  // selection vector.
  size_t ScanLiveRange(size_t* cursor, size_t end_slot, size_t max_live,
                       std::vector<uint32_t>* out_slots) const;

  // Appends a row. Fails on arity mismatch or duplicate primary key.
  // On success returns the new row id.
  Result<size_t> Insert(Row row);

  // Tombstones a live row. Fails if the row id is invalid or already deleted.
  Status Delete(size_t row_id);

  // Replaces the contents of a live row (primary key changes are validated).
  Status Update(size_t row_id, Row new_row);

  // Primary-key point lookup; returns the row id or NotFound.
  Result<size_t> LookupByPrimaryKey(const Value& key) const;

  // Returns the live row ids whose `column` equals `key`, using (and lazily
  // building) a secondary hash index. The index is invalidated by any write
  // and rebuilt on demand. Safe to call from concurrent reader sessions: the
  // lazy build is serialized; the returned reference stays valid until the
  // next write (writes exclude readers).
  const std::vector<size_t>& LookupBySecondary(int column, const Value& key)
      SELTRIG_EXCLUDES(secondary_mutex_);

  // Drops all rows (used by tests and dbgen reloads).
  void Clear();

  // --- Online schema change (engine/session.cc ExecuteAlterTable) -----------
  // All Alter* mutations run behind the engine's exclusive writer lock, like
  // every other mutation. Each returns the state the caller needs to undo it,
  // so a failed mid-chain ALTER rolls back wholesale; none of them touches
  // schema_version() — the session bumps it once per committed statement.

  // A column removed by AlterDropColumn, exactly as it was: the schema entry,
  // the columnar data (moved, never copied — StringDict pointers stay valid),
  // and its original index.
  struct DroppedColumn {
    Column schema_column;
    TableColumn data;
    size_t index = 0;
  };

  // Appends a new column backfilled with `default_value` in every slot
  // (tombstoned slots included, so column arity always equals slot_count()).
  // A default that mismatches the declared type degrades the column to the
  // generic representation instead of coercing (column_store.h contract).
  Status AlterAddColumn(const std::string& name, TypeId type,
                        const Value& default_value);
  // Inverse of AlterAddColumn: removes the last column.
  void AlterDropLastColumn();

  // Removes a column. Fails on the primary-key column; shifts pk_col_ left
  // when a preceding column goes away. The removed column is returned for the
  // rollback path (AlterRestoreColumn).
  Result<DroppedColumn> AlterDropColumn(size_t column);
  // Inverse of AlterDropColumn: splices the column back at its old index.
  void AlterRestoreColumn(DroppedColumn dropped);

  Status AlterRenameColumn(size_t column, const std::string& new_name);

  // Re-declares a column's type, rebuilding its storage by re-appending every
  // stored cell: values keep their exact identity (degrade-not-coerce), only
  // the declared type — and thus the typed fast paths new values take —
  // changes. Returns the old columnar data for the rollback path.
  Result<TableColumn> AlterRetypeColumn(size_t column, TypeId new_type);
  // Inverse of AlterRetypeColumn: restores the old data + declared type.
  void AlterRestoreColumnData(size_t column, TableColumn old_data,
                              TypeId old_type);

  // --- Transactional trigger execution (engine/database.cc) -----------------
  // While an undo log is attached, every successful mutation records its
  // inverse there so the engine can roll trigger actions back atomically.
  void set_undo_log(UndoLog* undo) { undo_ = undo; }
  UndoLog* undo_log() const { return undo_; }

  // Inverse operations applied by UndoLog::RollbackTo, newest entry first.
  // They bypass journaling (rollback must not journal itself).
  void UndoInsert(size_t row_id);
  void UndoDelete(size_t row_id);
  void UndoUpdate(size_t row_id, Row old_row);

 private:
  struct SecondaryIndex {
    uint64_t built_at_version = 0;
    std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq> map;
  };

  void EnsureSecondaryIndex(int column) SELTRIG_REQUIRES(secondary_mutex_);
  void InvalidateAfterSchemaChange() SELTRIG_EXCLUDES(secondary_mutex_);
  void AppendSlot(const Row& row);
  void WriteSlot(size_t row_id, const Row& row);

  std::string name_;
  Schema schema_;
  int pk_col_;

  std::vector<TableColumn> columns_;  // one per schema column
  std::vector<bool> deleted_;
  size_t slot_count_ = 0;
  size_t live_count_ = 0;
  uint64_t version_ = 0;  // bumped on every write; invalidates secondaries
  uint64_t schema_version_ = 1;  // bumped once per committed ALTER TABLE

  std::unordered_map<Value, size_t, ValueHash, ValueEq> pk_index_;
  // Serializes lazy secondary-index builds between concurrent readers.
  mutable Mutex secondary_mutex_;
  std::unordered_map<int, SecondaryIndex> secondary_indexes_
      SELTRIG_GUARDED_BY(secondary_mutex_);
  std::vector<size_t> empty_result_;
  UndoLog* undo_ = nullptr;
};

}  // namespace seltrig

#endif  // SELTRIG_STORAGE_TABLE_H_
