// In-memory heap table with stable row ids, an optional primary-key hash
// index, and lazily-built secondary hash indexes.

#ifndef SELTRIG_STORAGE_TABLE_H_
#define SELTRIG_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "types/schema.h"
#include "types/value.h"

namespace seltrig {

class UndoLog;

// Rows live in an append-only vector; deletes set a tombstone so row ids stay
// stable for indexes and triggers.
//
// Concurrency contract (docs/CONCURRENCY.md): reads (ScanBatch, GetRow,
// lookups) may run from many sessions and parallel scan workers at once;
// every mutation runs behind the engine's exclusive writer lock, which
// excludes all readers. The only mutable state reachable from the read path
// is the lazily-built secondary index, which is serialized internally.
class Table {
 public:
  // `primary_key_column` is the index of the PK column in `schema`, or -1 if
  // the table has no primary key.
  Table(std::string name, Schema schema, int primary_key_column = -1);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int primary_key_column() const { return pk_col_; }

  // Number of live (non-deleted) rows.
  size_t live_row_count() const { return live_count_; }
  // Total slots including tombstones; valid row ids are [0, slot_count()).
  size_t slot_count() const { return rows_.size(); }

  bool IsLive(size_t row_id) const { return !deleted_[row_id]; }
  const Row& GetRow(size_t row_id) const { return rows_[row_id]; }

  // Cursor-based batch scan for the vectorized executor: starting at *cursor,
  // skips tombstones and appends pointers to up to `max_rows` live rows to
  // `out`, advancing *cursor past every slot examined. Returns the number of
  // rows appended; 0 means the scan is exhausted. The pointers stay valid
  // until the next mutation of the table.
  size_t ScanBatch(size_t* cursor, size_t max_rows,
                   std::vector<const Row*>* out) const;

  // Range-bounded variant for morsel-driven parallel scans: identical, but
  // never examines slots at or past `end_slot`. A worker owning the morsel
  // [begin, end) starts its cursor at `begin` and scans with this overload.
  size_t ScanBatchRange(size_t* cursor, size_t end_slot, size_t max_rows,
                        std::vector<const Row*>* out) const;

  // Appends a row. Fails on arity mismatch or duplicate primary key.
  // On success returns the new row id.
  Result<size_t> Insert(Row row);

  // Tombstones a live row. Fails if the row id is invalid or already deleted.
  Status Delete(size_t row_id);

  // Replaces the contents of a live row (primary key changes are validated).
  Status Update(size_t row_id, Row new_row);

  // Primary-key point lookup; returns the row id or NotFound.
  Result<size_t> LookupByPrimaryKey(const Value& key) const;

  // Returns the live row ids whose `column` equals `key`, using (and lazily
  // building) a secondary hash index. The index is invalidated by any write
  // and rebuilt on demand. Safe to call from concurrent reader sessions: the
  // lazy build is serialized; the returned reference stays valid until the
  // next write (writes exclude readers).
  const std::vector<size_t>& LookupBySecondary(int column, const Value& key)
      SELTRIG_EXCLUDES(secondary_mutex_);

  // Drops all rows (used by tests and dbgen reloads).
  void Clear();

  // --- Transactional trigger execution (engine/database.cc) -----------------
  // While an undo log is attached, every successful mutation records its
  // inverse there so the engine can roll trigger actions back atomically.
  void set_undo_log(UndoLog* undo) { undo_ = undo; }
  UndoLog* undo_log() const { return undo_; }

  // Inverse operations applied by UndoLog::RollbackTo, newest entry first.
  // They bypass journaling (rollback must not journal itself).
  void UndoInsert(size_t row_id);
  void UndoDelete(size_t row_id);
  void UndoUpdate(size_t row_id, Row old_row);

 private:
  struct SecondaryIndex {
    uint64_t built_at_version = 0;
    std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq> map;
  };

  void EnsureSecondaryIndex(int column) SELTRIG_REQUIRES(secondary_mutex_);

  std::string name_;
  Schema schema_;
  int pk_col_;

  std::vector<Row> rows_;
  std::vector<bool> deleted_;
  size_t live_count_ = 0;
  uint64_t version_ = 0;  // bumped on every write; invalidates secondaries

  std::unordered_map<Value, size_t, ValueHash, ValueEq> pk_index_;
  // Serializes lazy secondary-index builds between concurrent readers.
  mutable Mutex secondary_mutex_;
  std::unordered_map<int, SecondaryIndex> secondary_indexes_
      SELTRIG_GUARDED_BY(secondary_mutex_);
  std::vector<size_t> empty_result_;
  UndoLog* undo_ = nullptr;
};

}  // namespace seltrig

#endif  // SELTRIG_STORAGE_TABLE_H_
