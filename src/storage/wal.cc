#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/checksum.h"
#include "common/codec.h"
#include "common/fault_injector.h"

namespace seltrig {

namespace {

using codec::GetString;
using codec::GetU32;
using codec::GetU64;
using codec::PutString;
using codec::PutU32;
using codec::PutU64;

// v2 (current): magic | u64 seq | u64 epoch. v1 (pre-replication journals):
// magic | u64 seq, epoch reads as 0.
constexpr char kSegmentMagic[8] = {'S', 'L', 'T', 'W', 'A', 'L', '2', '\n'};
constexpr char kSegmentMagicV1[8] = {'S', 'L', 'T', 'W', 'A', 'L', '1', '\n'};
constexpr size_t kSegmentHeaderSize = 24;    // magic + u64 seq + u64 epoch
constexpr size_t kSegmentHeaderV1Size = 16;  // magic + u64 seq
constexpr size_t kRecordHeaderSize = 8;      // u32 length + u32 crc
// Records larger than this are rejected at append and treated as corruption
// on read (a torn length field can otherwise claim gigabytes).
constexpr uint32_t kMaxRecordSize = 1u << 30;

// --- Value / Row encoding ---------------------------------------------------

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
    case TypeId::kInt:
      PutU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case TypeId::kDate:
      PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(v.AsDate())));
      break;
    case TypeId::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case TypeId::kString:
      PutString(out, v.AsString());
      break;
  }
}

bool GetValue(std::string_view data, size_t* offset, Value* v) {
  if (*offset >= data.size()) return false;
  auto type = static_cast<TypeId>(data[(*offset)++]);
  switch (type) {
    case TypeId::kNull:
      *v = Value::Null();
      return true;
    case TypeId::kBool: {
      if (*offset >= data.size()) return false;
      *v = Value::Bool(data[(*offset)++] != 0);
      return true;
    }
    case TypeId::kInt: {
      uint64_t bits = 0;
      if (!GetU64(data, offset, &bits)) return false;
      *v = Value::Int(static_cast<int64_t>(bits));
      return true;
    }
    case TypeId::kDate: {
      uint64_t bits = 0;
      if (!GetU64(data, offset, &bits)) return false;
      *v = Value::Date(static_cast<int32_t>(static_cast<int64_t>(bits)));
      return true;
    }
    case TypeId::kDouble: {
      uint64_t bits = 0;
      if (!GetU64(data, offset, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *v = Value::Double(d);
      return true;
    }
    case TypeId::kString: {
      std::string s;
      if (!GetString(data, offset, &s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
  }
  return false;
}

void PutRow(std::string* out, const Row& row) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(out, v);
}

bool GetRow(std::string_view data, size_t* offset, Row* row) {
  uint32_t count = 0;
  if (!GetU32(data, offset, &count)) return false;
  // Every serialized value occupies at least one byte (its type tag), so a
  // count beyond the remaining payload is corruption, not a row — reject it
  // before reserve() turns a crafted count into a multi-gigabyte allocation.
  if (count > data.size() - *offset) return false;
  row->clear();
  row->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Value v;
    if (!GetValue(data, offset, &v)) return false;
    row->push_back(std::move(v));
  }
  return true;
}

void PutOp(std::string* out, const WalOp& op) {
  out->push_back(static_cast<char>(op.kind));
  // seltrig-lint: dispatch(WalOp::Kind)
  switch (op.kind) {
    case WalOp::Kind::kInsert:
      PutString(out, op.table);
      PutRow(out, op.row);
      break;
    case WalOp::Kind::kDelete:
      PutString(out, op.table);
      PutRow(out, op.row);
      break;
    case WalOp::Kind::kUpdate:
      PutString(out, op.table);
      PutRow(out, op.row);
      PutRow(out, op.row2);
      break;
    case WalOp::Kind::kStatement:
      PutString(out, op.sql);
      break;
    case WalOp::Kind::kTriggerState:
      PutString(out, op.table);
      out->push_back(op.quarantined ? 1 : 0);
      PutU64(out, static_cast<uint64_t>(op.failures));
      break;
    case WalOp::Kind::kDdl:
      PutString(out, op.table);
      PutString(out, op.sql);
      PutU64(out, op.schema_version);
      break;
  }
}

bool GetOp(std::string_view data, size_t* offset, WalOp* op) {
  if (*offset >= data.size()) return false;
  auto kind = static_cast<WalOp::Kind>(data[(*offset)++]);
  op->kind = kind;
  // seltrig-lint: dispatch(WalOp::Kind)
  switch (kind) {
    case WalOp::Kind::kInsert:
    case WalOp::Kind::kDelete:
      return GetString(data, offset, &op->table) && GetRow(data, offset, &op->row);
    case WalOp::Kind::kUpdate:
      return GetString(data, offset, &op->table) && GetRow(data, offset, &op->row) &&
             GetRow(data, offset, &op->row2);
    case WalOp::Kind::kStatement:
      return GetString(data, offset, &op->sql);
    case WalOp::Kind::kTriggerState: {
      if (!GetString(data, offset, &op->table)) return false;
      if (*offset >= data.size()) return false;
      op->quarantined = data[(*offset)++] != 0;
      uint64_t failures = 0;
      if (!GetU64(data, offset, &failures)) return false;
      op->failures = static_cast<int64_t>(failures);
      return true;
    }
    case WalOp::Kind::kDdl:
      return GetString(data, offset, &op->table) &&
             GetString(data, offset, &op->sql) &&
             GetU64(data, offset, &op->schema_version);
  }
  return false;
}

std::string EncodeRecord(const std::vector<WalOp>& ops) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(ops.size()));
  for (const WalOp& op : ops) PutOp(&payload, op);

  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Crc32c(payload));
  record.append(payload);
  return record;
}

bool DecodeRecordPayload(std::string_view payload, std::vector<WalOp>* ops) {
  size_t offset = 0;
  uint32_t count = 0;
  if (!GetU32(payload, &offset, &count)) return false;
  ops->clear();
  for (uint32_t i = 0; i < count; ++i) {
    WalOp op;
    if (!GetOp(payload, &offset, &op)) return false;
    ops->push_back(std::move(op));
  }
  return offset == payload.size();
}

}  // namespace

// --- WalOp ------------------------------------------------------------------

WalOp WalOp::Insert(std::string table, Row row) {
  WalOp op;
  op.kind = Kind::kInsert;
  op.table = std::move(table);
  op.row = std::move(row);
  return op;
}

WalOp WalOp::Delete(std::string table, Row old_row) {
  WalOp op;
  op.kind = Kind::kDelete;
  op.table = std::move(table);
  op.row = std::move(old_row);
  return op;
}

WalOp WalOp::Update(std::string table, Row old_row, Row new_row) {
  WalOp op;
  op.kind = Kind::kUpdate;
  op.table = std::move(table);
  op.row = std::move(old_row);
  op.row2 = std::move(new_row);
  return op;
}

WalOp WalOp::Statement(std::string sql) {
  WalOp op;
  op.kind = Kind::kStatement;
  op.sql = std::move(sql);
  return op;
}

WalOp WalOp::TriggerState(std::string trigger, bool quarantined, int64_t failures) {
  WalOp op;
  op.kind = Kind::kTriggerState;
  op.table = std::move(trigger);
  op.quarantined = quarantined;
  op.failures = failures;
  return op;
}

WalOp WalOp::Ddl(std::string table, std::string sql, uint64_t schema_version) {
  WalOp op;
  op.kind = Kind::kDdl;
  op.table = std::move(table);
  op.sql = std::move(sql);
  op.schema_version = schema_version;
  return op;
}

bool WalOp::operator==(const WalOp& other) const {
  return kind == other.kind && table == other.table && sql == other.sql &&
         row == other.row && row2 == other.row2 &&
         quarantined == other.quarantined && failures == other.failures &&
         schema_version == other.schema_version;
}

std::string WalPosition::ToString() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "epoch %llu, segment %llu, offset %llu",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(offset));
  return buf;
}

// --- segment naming / listing -----------------------------------------------

std::string WalSegmentHeader(uint64_t seq, uint64_t epoch) {
  std::string header(kSegmentMagic, sizeof(kSegmentMagic));
  PutU64(&header, seq);
  PutU64(&header, epoch);
  return header;
}

Result<std::vector<WalOp>> DecodeWalRecord(std::string_view record) {
  size_t offset = 0;
  uint32_t length = 0;
  uint32_t crc = 0;
  if (!GetU32(record, &offset, &length) || !GetU32(record, &offset, &crc) ||
      length > kMaxRecordSize ||
      record.size() != kRecordHeaderSize + static_cast<size_t>(length)) {
    return Status::DataLoss("malformed journal record framing");
  }
  std::string_view payload = record.substr(kRecordHeaderSize);
  if (Crc32c(payload) != crc) {
    return Status::DataLoss("journal record checksum mismatch");
  }
  std::vector<WalOp> ops;
  if (!DecodeRecordPayload(payload, &ops)) {
    return Status::DataLoss("journal record payload does not decode");
  }
  return ops;
}

// --- durable election vote --------------------------------------------------

namespace {
constexpr char kVoteMagic[8] = {'S', 'L', 'T', 'V', 'O', 'T', 'E', '\n'};
}  // namespace

Status PersistVote(const std::string& wal_dir, const VoteRecord& vote) {
  std::error_code ec;
  std::filesystem::create_directories(wal_dir, ec);
  if (ec) return Status::ExecutionError("cannot create " + wal_dir);

  std::string body(kVoteMagic, sizeof(kVoteMagic));
  PutU64(&body, vote.epoch);
  PutString(&body, vote.candidate);
  std::string out;
  PutU32(&out, Crc32c(body));
  out.append(body);

  const std::string path = wal_dir + "/VOTE";
  const std::string tmp = path + ".tmp";
  std::filesystem::remove(tmp, ec);  // AppendFile appends; drop stale bytes
  {
    SELTRIG_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(tmp));
    SELTRIG_RETURN_IF_ERROR(file.Append(out.data(), out.size()));
    SELTRIG_RETURN_IF_ERROR(file.Sync());
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::ExecutionError("cannot install " + path);
  return SyncDirectory(wal_dir);
}

Result<VoteRecord> ReadPersistedVote(const std::string& wal_dir) {
  Result<std::string> raw = ReadFileToString(wal_dir + "/VOTE");
  if (!raw.ok()) return Status::NotFound("no persisted vote in " + wal_dir);
  std::string_view bytes = *raw;
  size_t pos = 0;
  uint32_t crc = 0;
  if (!GetU32(bytes, &pos, &crc)) {
    return Status::NotFound("persisted vote unreadable (torn before grant)");
  }
  std::string_view body = bytes.substr(pos);
  if (Crc32c(body) != crc || body.size() < sizeof(kVoteMagic) ||
      std::memcmp(body.data(), kVoteMagic, sizeof(kVoteMagic)) != 0) {
    return Status::NotFound("persisted vote unreadable (torn before grant)");
  }
  VoteRecord vote;
  size_t body_pos = sizeof(kVoteMagic);
  if (!GetU64(body, &body_pos, &vote.epoch) ||
      !GetString(body, &body_pos, &vote.candidate) || body_pos != body.size()) {
    return Status::NotFound("persisted vote unreadable (torn before grant)");
  }
  return vote;
}

std::string WalSegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

Result<std::vector<WalSegment>> ListWalSegments(const std::string& wal_dir) {
  std::vector<WalSegment> segments;
  std::error_code ec;
  if (!std::filesystem::is_directory(wal_dir, ec)) return segments;
  for (const auto& entry : std::filesystem::directory_iterator(wal_dir, ec)) {
    std::string name = entry.path().filename().string();
    // wal-<seq>.log, where <seq> is %08llu-formatted and grows past 8 digits
    // for large sequences; parse by pattern, not fixed width, so naming and
    // listing can never diverge (a silently skipped segment would lose
    // committed data on recovery).
    constexpr size_t kMinName = 4 + 1 + 4;  // "wal-" + >= 1 digit + ".log"
    if (name.size() < kMinName || name.compare(0, 4, "wal-") != 0 ||
        name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    uint64_t seq = 0;
    bool numeric = true;
    for (size_t i = 4; i < name.size() - 4; ++i) {
      if (name[i] < '0' || name[i] > '9' || seq > (UINT64_MAX - 9) / 10) {
        numeric = false;
        break;
      }
      seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (!numeric) continue;
    segments.push_back({seq, entry.path().string()});
  }
  if (ec) return Status::ExecutionError("cannot list " + wal_dir);
  std::sort(segments.begin(), segments.end(),
            [](const WalSegment& a, const WalSegment& b) { return a.seq < b.seq; });
  return segments;
}

Result<uint64_t> ReadWalSegmentEpoch(const std::string& path) {
  SELTRIG_ASSIGN_OR_RETURN(std::string header,
                           ReadFileRange(path, 0, kSegmentHeaderSize));
  if (header.size() >= kSegmentHeaderSize &&
      std::memcmp(header.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0) {
    size_t off = sizeof(kSegmentMagic) + sizeof(uint64_t);
    uint64_t epoch = 0;
    GetU64(header, &off, &epoch);
    return epoch;
  }
  if (header.size() >= kSegmentHeaderV1Size &&
      std::memcmp(header.data(), kSegmentMagicV1,
                  sizeof(kSegmentMagicV1)) == 0) {
    return uint64_t{0};
  }
  return Status::Unavailable(path + ": segment header incomplete");
}

Result<WalSegmentContents> ReadWalSegment(const std::string& path) {
  SELTRIG_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  WalSegmentContents contents;

  // A header that never made it fully to disk (crash during segment
  // creation) means the segment holds no commits; the whole file is torn.
  const bool v2 = data.size() >= kSegmentHeaderSize &&
                  std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0;
  const bool v1 = !v2 && data.size() >= kSegmentHeaderV1Size &&
                  std::memcmp(data.data(), kSegmentMagicV1,
                              sizeof(kSegmentMagicV1)) == 0;
  if (!v2 && !v1) {
    contents.torn = true;
    contents.valid_bytes = 0;
    return contents;
  }
  size_t offset = sizeof(kSegmentMagic);
  uint64_t seq = 0;
  GetU64(data, &offset, &seq);
  contents.seq = seq;
  if (v2) GetU64(data, &offset, &contents.epoch);
  contents.valid_bytes = offset;

  while (offset < data.size()) {
    size_t record_start = offset;
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!GetU32(data, &offset, &length) || !GetU32(data, &offset, &crc) ||
        length > kMaxRecordSize || offset + length > data.size()) {
      contents.torn = true;
      break;
    }
    std::string_view payload(data.data() + offset, length);
    if (Crc32c(payload) != crc) {
      contents.torn = true;
      break;
    }
    std::vector<WalOp> ops;
    if (!DecodeRecordPayload(payload, &ops)) {
      contents.torn = true;
      break;
    }
    offset += length;
    contents.commits.push_back(std::move(ops));
    contents.valid_bytes = record_start + kRecordHeaderSize + length;
  }
  return contents;
}

// --- WalWriter ----------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& wal_dir,
                                                   uint64_t epoch) {
  std::error_code ec;
  std::filesystem::create_directories(wal_dir, ec);
  if (ec) return Status::ExecutionError("cannot create " + wal_dir);

  SELTRIG_ASSIGN_OR_RETURN(std::vector<WalSegment> segments,
                           ListWalSegments(wal_dir));
  uint64_t next_seq = segments.empty() ? 1 : segments.back().seq + 1;

  auto writer = std::unique_ptr<WalWriter>(new WalWriter());
  writer->wal_dir_ = wal_dir;
  writer->epoch_unlocked_ = epoch;
  {
    MutexLock lock(&writer->mutex_);
    writer->epoch_ = epoch;
    SELTRIG_RETURN_IF_ERROR(writer->OpenSegmentLocked(next_seq));
  }
  return writer;
}

WalWriter::~WalWriter() {
  // Best-effort flush of a kBatch/kOff tail; errors are unreportable here.
  // Locked for the analysis' benefit and for safety against a committer
  // still draining WaitDurable on another thread at teardown.
  MutexLock lock(&mutex_);
  if (file_.is_open() && durable_ < appended_) (void)file_.Sync();
}

Status WalWriter::OpenSegmentLocked(uint64_t seq) {
  std::string path = wal_dir_ + "/" + WalSegmentFileName(seq);
  SELTRIG_ASSIGN_OR_RETURN(AppendFile file, AppendFile::Open(path));
  std::string header(kSegmentMagic, sizeof(kSegmentMagic));
  PutU64(&header, seq);
  PutU64(&header, epoch_);
  SELTRIG_RETURN_IF_ERROR(file.Append(header.data(), header.size()));
  SELTRIG_RETURN_IF_ERROR(file.Sync());
  SELTRIG_RETURN_IF_ERROR(SyncDirectory(wal_dir_));
  file_ = std::move(file);
  seq_ = seq;
  segment_bytes_ = kSegmentHeaderSize;
  poisoned_ = false;
  return Status::OK();
}

Status WalWriter::Append(const std::vector<WalOp>& ops, uint64_t* commit_seq,
                         WalPosition* pos) {
  *commit_seq = 0;
  if (ops.empty()) return Status::OK();
  std::string record = EncodeRecord(ops);

  MutexLock lock(&mutex_);
  if (poisoned_) {
    return Status::ExecutionError(
        "journal segment " + WalSegmentFileName(seq_) +
        " has an unrepaired partial record; rotate or recover before writing");
  }
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kWalAppend));

  // Torn-write crash mode: persist a prefix of the record, then die. The
  // prefix is fsynced first so recovery deterministically sees a torn tail
  // (otherwise the page cache would usually hide the tear).
  Status torn = fault::Maybe(fault_points::kWalTorn);
  if (!torn.ok()) {
    size_t prefix = record.size() / 2;
    // About to _Exit below — errors here only make the tear shorter.
    (void)file_.AppendPrefix(record.data(), prefix);
    (void)file_.Sync();
    std::_Exit(FaultInjector::kCrashExitCode);
  }

  Status appended = file_.Append(record.data(), record.size());
  if (!appended.ok()) {
    // A short write leaves a partial record that would swallow every later
    // record on replay. Try to cut the tail back to the last good record;
    // if even that fails, poison the writer so no later append can slip a
    // record behind an unreadable one.
    Status repaired = TruncateFile(file_.path(), segment_bytes_);
    if (!repaired.ok()) poisoned_ = true;
    return appended;
  }
  segment_bytes_ += record.size();
  *commit_seq = ++appended_;
  ++unsynced_;
  if (pos != nullptr) *pos = WalPosition{epoch_, seq_, segment_bytes_};
  return Status::OK();
}

Status WalWriter::WaitDurable(uint64_t commit_seq) {
  if (commit_seq == 0) return Status::OK();
  const WalSyncMode mode = sync_mode_.load();
  if (mode == WalSyncMode::kOff) return Status::OK();
  const int64_t timeout_ms = durable_timeout_ms_.load(std::memory_order_relaxed);
  MutexLock lock(&mutex_);
  if (mode == WalSyncMode::kBatch) {
    // The batch-threshold fsync runs here, after the committer released the
    // engine's storage writer lock — never inside Append, where it would
    // stall every other session for the duration of the fsync.
    if (unsynced_ < kBatchSyncEvery) return Status::OK();
    return SyncUpToLocked(appended_, timeout_ms);
  }
  return SyncUpToLocked(commit_seq, timeout_ms);
}

Status WalWriter::Commit(const std::vector<WalOp>& ops) {
  uint64_t commit_seq = 0;
  SELTRIG_RETURN_IF_ERROR(Append(ops, &commit_seq));
  return WaitDurable(commit_seq);
}

Status WalWriter::Sync() {
  MutexLock lock(&mutex_);
  return SyncUpToLocked(appended_, /*timeout_ms=*/0);
}

Status WalWriter::SyncUpToLocked(uint64_t target, int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
  while (durable_ < target) {
    if (sync_in_flight_) {
      // Another committer's fsync is running; it covers every append made
      // before it started. Wait and re-check (it may not cover `target`) —
      // but not forever: a stalled fsync (dying disk, hung NFS) would
      // otherwise wedge every committer behind the leader. Timing out
      // withholds this statement's acknowledgement, which is always safe.
      if (timeout_ms > 0) {
        if (durable_cv_.wait_until(mutex_, deadline) == std::cv_status::timeout &&
            durable_ < target && sync_in_flight_) {
          return Status::DeadlineExceeded(
              "journal fsync still in flight after " +
              std::to_string(timeout_ms) + "ms");
        }
      } else {
        durable_cv_.wait(mutex_);
      }
      continue;
    }
    sync_in_flight_ = true;
    uint64_t covers = appended_;
    // Drop the mutex for the fault check and the fsync syscall so concurrent
    // appends and waiters are never stalled behind them (a kDelay schedule on
    // wal.fsync sleeps here, which is exactly how the WaitDurable timeout is
    // tested). file_ stays stable while unlocked: sync_in_flight_ makes this
    // thread the sole fsync leader, and Rotate drains leaders before swapping
    // the segment file. The alias keeps the access visible as intentional to
    // the thread-safety analysis.
    AppendFile& file = file_;
    mutex_.unlock();
    Status synced = fault::Maybe(fault_points::kWalFsync);
    if (synced.ok()) synced = file.Sync();
    mutex_.lock();
    sync_in_flight_ = false;
    if (!synced.ok()) {
      durable_cv_.notify_all();
      return synced;
    }
    durable_ = std::max(durable_, covers);
    unsynced_ = appended_ - durable_;
    durable_cv_.notify_all();
  }
  return Status::OK();
}

Status WalWriter::Rotate(uint64_t* new_seq) {
  MutexLock lock(&mutex_);
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kWalRotate));
  // Everything in the finished segment must be durable before the checkpoint
  // that follows the rotation can claim to cover it.
  SELTRIG_RETURN_IF_ERROR(SyncUpToLocked(appended_, /*timeout_ms=*/0));
  // A concurrent WaitDurable may still be inside fsync on the old segment's
  // descriptor (it releases the mutex for the syscall); swapping file_ out
  // from under it would race. Drain it before rotating.
  while (sync_in_flight_) durable_cv_.wait(mutex_);
  SELTRIG_RETURN_IF_ERROR(OpenSegmentLocked(seq_ + 1));
  *new_seq = seq_;
  return Status::OK();
}

Status WalWriter::DeleteSegmentsBelow(uint64_t seq) {
  SELTRIG_ASSIGN_OR_RETURN(std::vector<WalSegment> segments,
                           ListWalSegments(wal_dir_));
  std::error_code ec;
  for (const WalSegment& segment : segments) {
    if (segment.seq >= seq) continue;
    std::filesystem::remove(segment.path, ec);
  }
  // Best-effort: segment deletion runs after a checkpoint fully succeeded; if
  // the directory update is lost to a crash, recovery skips the stale
  // segments (their seq is below the checkpoint) and re-deletes them.
  (void)SyncDirectory(wal_dir_);
  return Status::OK();
}

// --- WalTailReader ------------------------------------------------------------

bool WalTailReader::NewerSegmentExists() const {
  Result<std::vector<WalSegment>> segments = ListWalSegments(wal_dir_);
  if (!segments.ok()) return false;
  for (const WalSegment& segment : *segments) {
    if (segment.seq > seq_) return true;
  }
  return false;
}

Status WalTailReader::AdvanceSegment() {
  SELTRIG_ASSIGN_OR_RETURN(std::vector<WalSegment> segments,
                           ListWalSegments(wal_dir_));
  for (const WalSegment& segment : segments) {
    if (segment.seq > seq_) {
      Seek(segment.seq, 0);
      return Status::OK();
    }
  }
  return Status::Unavailable("no segment beyond " + WalSegmentFileName(seq_) +
                             " in " + wal_dir_);
}

Status WalTailReader::ReadHeader() {
  const std::string path = wal_dir_ + "/" + WalSegmentFileName(seq_);
  SELTRIG_ASSIGN_OR_RETURN(std::string header,
                           ReadFileRange(path, 0, kSegmentHeaderSize));
  uint64_t claimed_seq = 0;
  if (header.size() >= kSegmentHeaderSize &&
      std::memcmp(header.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0) {
    size_t off = sizeof(kSegmentMagic);
    GetU64(header, &off, &claimed_seq);
    GetU64(header, &off, &epoch_);
    header_size_ = kSegmentHeaderSize;
  } else if (header.size() >= kSegmentHeaderV1Size &&
             std::memcmp(header.data(), kSegmentMagicV1,
                         sizeof(kSegmentMagicV1)) == 0) {
    size_t off = sizeof(kSegmentMagicV1);
    GetU64(header, &off, &claimed_seq);
    epoch_ = 0;
    header_size_ = kSegmentHeaderV1Size;
  } else {
    // The header has not fully landed. A writer fsyncs the header before its
    // first record, so this state is transient (segment creation in
    // progress) unless a newer segment already exists — then this file is a
    // crash remnant that was never part of the durable journal.
    header_size_ = 0;
    return Status::Unavailable(path + ": segment header incomplete");
  }
  if (claimed_seq != seq_) {
    return Status::DataLoss(path + " header claims segment " +
                            std::to_string(claimed_seq));
  }
  if (offset_ < header_size_) offset_ = header_size_;
  return Status::OK();
}

Status WalTailReader::Next(RecordRef* out) {
  for (;;) {
    const std::string path = wal_dir_ + "/" + WalSegmentFileName(seq_);
    if (header_size_ == 0) {
      Status header = ReadHeader();
      if (!header.ok()) {
        // kNotFound (segment checkpointed away) propagates: the caller must
        // catch up from a snapshot. An incomplete header only skips forward
        // when a newer segment proves this one dead.
        if (header.code() == ErrorCode::kUnavailable && NewerSegmentExists()) {
          SELTRIG_RETURN_IF_ERROR(AdvanceSegment());
          continue;
        }
        return header;
      }
    }

    SELTRIG_ASSIGN_OR_RETURN(std::string head,
                             ReadFileRange(path, offset_, kRecordHeaderSize));
    if (head.size() < kRecordHeaderSize) {
      // Clean end of segment, or a record header mid-append. Only a newer
      // segment on disk proves no more records will ever land here: the
      // writer fsyncs a segment before rotating past it, so a partial tail
      // in a non-newest segment was never acknowledged to anyone.
      if (NewerSegmentExists()) {
        SELTRIG_RETURN_IF_ERROR(AdvanceSegment());
        continue;
      }
      return Status::Unavailable("no complete record at " +
                                 WalSegmentFileName(seq_) + " offset " +
                                 std::to_string(offset_));
    }
    size_t off = 0;
    uint32_t length = 0;
    uint32_t crc = 0;
    GetU32(head, &off, &length);
    GetU32(head, &off, &crc);
    if (length > kMaxRecordSize) {
      return Status::DataLoss(WalSegmentFileName(seq_) + " offset " +
                              std::to_string(offset_) +
                              ": record length " + std::to_string(length) +
                              " exceeds limit");
    }

    SELTRIG_ASSIGN_OR_RETURN(
        std::string record,
        ReadFileRange(path, offset_, kRecordHeaderSize + length));
    if (record.size() < kRecordHeaderSize + static_cast<size_t>(length)) {
      // Payload still landing (or a dead partial tail — same rule as above).
      if (NewerSegmentExists()) {
        SELTRIG_RETURN_IF_ERROR(AdvanceSegment());
        continue;
      }
      return Status::Unavailable("record payload incomplete at " +
                                 WalSegmentFileName(seq_) + " offset " +
                                 std::to_string(offset_));
    }
    std::string_view payload(record.data() + kRecordHeaderSize, length);
    if (Crc32c(payload) != crc) {
      // Fully present yet failing its checksum: real corruption. Torn tails
      // from crashes are truncated by recovery before a writer reopens the
      // directory, so they never reach this state.
      return Status::DataLoss(WalSegmentFileName(seq_) + " offset " +
                              std::to_string(offset_) + ": checksum mismatch");
    }
    out->epoch = epoch_;
    out->seq = seq_;
    out->offset = offset_;
    out->end_offset = offset_ + kRecordHeaderSize + length;
    out->bytes = std::move(record);
    offset_ = out->end_offset;
    return Status::OK();
  }
}

}  // namespace seltrig
