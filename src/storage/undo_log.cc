#include "storage/undo_log.h"

#include "storage/table.h"

namespace seltrig {

void UndoLog::PushInsert(Table* table, size_t row_id) {
  entries_.push_back(Entry{Kind::kInsert, table, row_id, {}});
}

void UndoLog::PushDelete(Table* table, size_t row_id) {
  entries_.push_back(Entry{Kind::kDelete, table, row_id, {}});
}

void UndoLog::PushUpdate(Table* table, size_t row_id, Row old_row) {
  entries_.push_back(Entry{Kind::kUpdate, table, row_id, std::move(old_row)});
}

Status UndoLog::RollbackTo(size_t savepoint,
                           std::vector<std::string>* touched_tables) {
  if (savepoint > entries_.size()) {
    return Status::Internal("undo rollback past end of journal");
  }
  while (entries_.size() > savepoint) {
    Entry& entry = entries_.back();
    if (touched_tables != nullptr) touched_tables->push_back(entry.table->name());
    switch (entry.kind) {
      case Kind::kInsert:
        entry.table->UndoInsert(entry.row_id);
        break;
      case Kind::kDelete:
        entry.table->UndoDelete(entry.row_id);
        break;
      case Kind::kUpdate:
        entry.table->UndoUpdate(entry.row_id, std::move(entry.old_row));
        break;
    }
    entries_.pop_back();
  }
  return Status::OK();
}

}  // namespace seltrig
