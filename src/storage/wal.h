// Write-ahead journal for the durable audit engine (docs/DURABILITY.md).
//
// Unit of journaling: one committed top-level statement = one record. The
// session buffers physical row images (DML and trigger-action writes,
// including audit-log and loss-table rows) plus logical DDL/policy statements
// while the statement runs, then appends the whole buffer as a single
// length-prefixed, CRC32C-checksummed record and waits for it to be durable
// before the statement acks. A record is applied all-or-nothing on recovery,
// which gives statement atomicity across crashes for free.
//
// Segment format (dir/wal-<seq, 8 digits>.log):
//   header:  "SLTWAL2\n" (8 bytes) | segment seq (u64 LE) | epoch (u64 LE)
//   record:  payload length (u32 LE) | CRC32C(payload) (u32 LE) | payload
//   payload: op count (u32 LE) | ops (see WalOp encoding in wal.cc)
// Integers are little-endian; strings are u32-length-prefixed bytes. The
// reader still accepts the epoch-less v1 header ("SLTWAL1\n" | seq) from
// pre-replication journals and reports epoch 0 for it.
//
// Epochs (docs/REPLICATION.md): the epoch counts failover promotions. A
// primary writes every segment under its current epoch; when a follower is
// promoted it starts a new segment under epoch+1, and everything a deposed
// primary wrote under the old epoch after the promotion point is rejected by
// followers and by recovery (epochs must be non-decreasing in segment order).
//
// Group commit: Append() assigns commit order under the writer's mutex (the
// engine calls it while still holding the storage writer lock, so journal
// order always matches in-memory commit order); WaitDurable() then blocks —
// outside the storage lock — until one fsync, issued by whichever committer
// gets there first, covers every append up to its commit. Sync modes:
//   kCommit (default)  every acked statement is fsynced (grouped).
//   kBatch             ack after write(); every kBatchSyncEvery commits the
//                      next WaitDurable fsyncs the backlog (outside the
//                      storage lock, like kCommit) — bounded loss window.
//   kOff               never fsync; page cache only.
//
// Fault points: `wal.append` (before a record is written), `wal.fsync`
// (before fsync), `wal.rotate` (before segment rotation), and `wal.torn`
// (write a prefix of the record, fsync it, then kill the process — simulates
// a torn write / power cut mid-record).

#ifndef SELTRIG_STORAGE_WAL_H_
#define SELTRIG_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "types/value.h"

namespace seltrig {

enum class WalSyncMode : uint8_t { kOff, kCommit, kBatch };

// One journaled operation. DML and trigger-action writes are physical row
// images (replay never re-fires triggers: their effects are journaled too);
// DDL and policy statements are logical SQL (kStatement); circuit-breaker
// transitions are kTriggerState.
struct WalOp {
  enum class Kind : uint8_t {
    kInsert = 1,        // table, row
    kDelete = 2,        // table, row = old image
    kUpdate = 3,        // table, row = old image, row2 = new image
    kStatement = 4,     // sql (DDL / CREATE AUDIT EXPRESSION / CREATE TRIGGER)
    kTriggerState = 5,  // table = trigger name, quarantined, failures
    kDdl = 6,           // table, sql, schema_version — versioned ALTER TABLE
  };

  Kind kind = Kind::kInsert;
  std::string table;  // kInsert/kDelete/kUpdate/kDdl: table; kTriggerState: trigger
  std::string sql;    // kStatement / kDdl
  Row row;
  Row row2;
  bool quarantined = false;
  int64_t failures = 0;
  // kDdl: the table's schema version AFTER the statement applied. Replay
  // asserts it lands on the same version; the replication applier NAKs a
  // record whose version does not directly follow the follower's.
  uint64_t schema_version = 0;

  static WalOp Insert(std::string table, Row row);
  static WalOp Delete(std::string table, Row old_row);
  static WalOp Update(std::string table, Row old_row, Row new_row);
  static WalOp Statement(std::string sql);
  static WalOp TriggerState(std::string trigger, bool quarantined,
                            int64_t failures);
  static WalOp Ddl(std::string table, std::string sql, uint64_t schema_version);

  bool operator==(const WalOp& other) const;
};

std::string WalSegmentFileName(uint64_t seq);

// Size of the v2 segment header ("SLTWAL2\n" | seq | epoch) — the offset of
// a segment's first record. Replication frames carry record offsets computed
// against this, and the follower's applier writes headers of exactly this
// size so primary and follower byte offsets coincide.
inline constexpr uint64_t kWalSegmentHeaderSize = 24;

// The 24-byte v2 segment header for `seq` under `epoch` (the bytes WalWriter
// puts at the start of every segment). The replication applier uses it to
// materialize received segments locally.
std::string WalSegmentHeader(uint64_t seq, uint64_t epoch);

// Validates and decodes one raw journal record (length | crc | payload, as
// appended by WalWriter and shipped verbatim by replication). kDataLoss on a
// length/checksum/payload mismatch.
Result<std::vector<WalOp>> DecodeWalRecord(std::string_view record);

// A point in the journal: byte offset `offset` into segment `seq`, written
// under `epoch`. Orders first by epoch, then segment, then offset — the
// replication acked-prefix invariant is stated over this order.
struct WalPosition {
  uint64_t epoch = 0;
  uint64_t seq = 0;
  uint64_t offset = 0;

  bool operator==(const WalPosition& o) const {
    return epoch == o.epoch && seq == o.seq && offset == o.offset;
  }
  bool operator<(const WalPosition& o) const {
    if (epoch != o.epoch) return epoch < o.epoch;
    if (seq != o.seq) return seq < o.seq;
    return offset < o.offset;
  }
  bool operator<=(const WalPosition& o) const { return !(o < *this); }
  std::string ToString() const;
};

// Durable election vote (replication/election.h). Raft's rule "at most one
// vote per term" is only a rule if it survives a crash: a voter must persist
// the (epoch, candidate) pair BEFORE its grant frame leaves the machine, so
// a restarted voter re-reads the file and never grants a second candidate
// the same epoch — the overlap of any two quorums then guarantees at most
// one leader per epoch.
struct VoteRecord {
  uint64_t epoch = 0;
  std::string candidate;
};

// Atomically writes <wal_dir>/VOTE (tmp + fsync + rename + dir fsync). The
// directory is created if needed, so a fresh follower can vote before it has
// ever received a segment.
Status PersistVote(const std::string& wal_dir, const VoteRecord& vote);

// Reads the persisted vote. kNotFound when no vote was ever persisted — and
// for a torn or corrupt file too: persist happens strictly before the grant
// is sent, so an unreadable VOTE file means the grant never left and
// forgetting it is safe.
Result<VoteRecord> ReadPersistedVote(const std::string& wal_dir);

struct WalSegment {
  uint64_t seq = 0;
  std::string path;
};

// Journal segments under `wal_dir`, sorted by sequence number ascending.
Result<std::vector<WalSegment>> ListWalSegments(const std::string& wal_dir);

// A parsed segment: the committed statements it holds, in order, plus
// torn-tail information. Reading stops at the first record whose length,
// checksum, or payload fails validation; everything after it is the torn
// tail (a crash mid-append) and `valid_bytes` is the safe prefix length.
struct WalSegmentContents {
  uint64_t seq = 0;
  uint64_t epoch = 0;
  std::vector<std::vector<WalOp>> commits;
  bool torn = false;
  uint64_t valid_bytes = 0;
};

Result<WalSegmentContents> ReadWalSegment(const std::string& path);

// The epoch recorded in a segment's header, read without touching the
// records (v1 headers carry no epoch and read as 0). kUnavailable when the
// header has not fully landed on disk. The snapshot catch-up stream uses
// this to name the cut segment's epoch so the follower can materialize the
// segment at install time.
Result<uint64_t> ReadWalSegmentEpoch(const std::string& path);

// Appender with group commit. One writer per database; sessions serialize
// Append() behind the engine's storage writer lock and this class's own
// mutex, and may WaitDurable() concurrently.
class WalWriter {
 public:
  // Commits between fsyncs under WalSyncMode::kBatch.
  static constexpr uint64_t kBatchSyncEvery = 64;

  // Opens `wal_dir` (created if needed) and starts a fresh segment one past
  // the highest existing sequence, stamped with `epoch`. Never appends to a
  // pre-existing segment: its tail may be torn, and recovery treats only the
  // final record of a segment as potentially torn.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& wal_dir,
                                                 uint64_t epoch = 0);

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Serializes `ops` as one record and appends it to the current segment,
  // assigning this commit's position in *commit_seq (for WaitDurable) and,
  // when `pos` is non-null, the journal position just past the record (for
  // replication acked-prefix tracking). The caller must hold the engine's
  // storage writer lock so journal order equals memory commit order. Empty
  // `ops` is a no-op that reports *commit_seq = 0.
  Status Append(const std::vector<WalOp>& ops, uint64_t* commit_seq,
                WalPosition* pos = nullptr) SELTRIG_EXCLUDES(mutex_);

  // Blocks until commit `commit_seq` is on stable storage (kCommit), fsyncs
  // the whole backlog when the batch threshold is reached (kBatch), or
  // returns immediately (kOff / below threshold / commit_seq == 0). Call
  // after releasing the storage writer lock: concurrent committers' waits
  // collapse into one fsync, and a batch-threshold fsync never stalls other
  // sessions' appends.
  //
  // When a durable-wait timeout is configured (set_durable_timeout_ms) and
  // another committer's fsync stalls past it, returns kDeadlineExceeded
  // instead of blocking forever — the statement then withholds its
  // acknowledgement, which is always safe. The timeout bounds waiting on
  // another thread's fsync; a thread that is itself the fsync leader is
  // inside the syscall and cannot be interrupted.
  Status WaitDurable(uint64_t commit_seq) SELTRIG_EXCLUDES(mutex_);

  // Append + WaitDurable, for callers without the split locking need.
  Status Commit(const std::vector<WalOp>& ops) SELTRIG_EXCLUDES(mutex_);

  // Forces everything appended so far onto stable storage (any sync mode).
  Status Sync() SELTRIG_EXCLUDES(mutex_);

  // Finishes the current segment and starts a new one; *new_seq receives the
  // new segment's sequence. Used by CHECKPOINT so the snapshot can record
  // "replay from segment new_seq".
  Status Rotate(uint64_t* new_seq) SELTRIG_EXCLUDES(mutex_);

  // Removes segments with sequence < `seq` (the checkpoint already covers
  // them). Best-effort.
  Status DeleteSegmentsBelow(uint64_t seq);

  uint64_t current_seq() const SELTRIG_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return seq_;
  }
  // The journal position just past the last appended record.
  WalPosition current_position() const SELTRIG_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return WalPosition{epoch_, seq_, segment_bytes_};
  }
  uint64_t epoch() const { return epoch_unlocked_; }
  const std::string& wal_dir() const { return wal_dir_; }

  void set_sync_mode(WalSyncMode mode) { sync_mode_ = mode; }
  WalSyncMode sync_mode() const { return sync_mode_; }

  // Bounds how long WaitDurable blocks on another committer's in-flight
  // fsync before returning kDeadlineExceeded. <= 0 (the default) waits
  // forever. Rotation and explicit Sync() always wait to completion.
  void set_durable_timeout_ms(int64_t ms) {
    durable_timeout_ms_.store(ms, std::memory_order_relaxed);
  }
  int64_t durable_timeout_ms() const {
    return durable_timeout_ms_.load(std::memory_order_relaxed);
  }

 private:
  WalWriter() = default;

  Status OpenSegmentLocked(uint64_t seq) SELTRIG_REQUIRES(mutex_);
  // Waits until `target` commits are durable, fsyncing as the group leader
  // when no other committer is already in fsync. Drops mutex_ around the
  // fsync syscall itself (the sync_in_flight_ handoff keeps file_ stable
  // while unlocked); holds it on entry and exit. `timeout_ms` > 0 bounds
  // time spent waiting on another leader's fsync (kDeadlineExceeded).
  Status SyncUpToLocked(uint64_t target, int64_t timeout_ms)
      SELTRIG_REQUIRES(mutex_);

  std::string wal_dir_;
  std::atomic<WalSyncMode> sync_mode_{WalSyncMode::kCommit};
  std::atomic<int64_t> durable_timeout_ms_{0};
  // The writer's epoch is fixed at Open; mirrored outside the mutex for
  // lock-free reads (epoch_ under the mutex is the per-segment stamp).
  uint64_t epoch_unlocked_ = 0;

  // Guards the segment file and the group-commit counters. mutable so
  // const readers (current_seq) can take it.
  mutable Mutex mutex_;
  // Waited on with mutex_ held (condition_variable_any over the annotated
  // Mutex; see common/mutex.h).
  std::condition_variable_any durable_cv_;
  AppendFile file_ SELTRIG_GUARDED_BY(mutex_);
  uint64_t seq_ SELTRIG_GUARDED_BY(mutex_) = 0;  // current segment sequence
  uint64_t epoch_ SELTRIG_GUARDED_BY(mutex_) = 0;
  // Bytes written to the current segment.
  uint64_t segment_bytes_ SELTRIG_GUARDED_BY(mutex_) = 0;
  // Commits appended (commit_seq of the latest).
  uint64_t appended_ SELTRIG_GUARDED_BY(mutex_) = 0;
  // Commits known durable.
  uint64_t durable_ SELTRIG_GUARDED_BY(mutex_) = 0;
  // Commits since the last fsync (kBatch).
  uint64_t unsynced_ SELTRIG_GUARDED_BY(mutex_) = 0;
  bool sync_in_flight_ SELTRIG_GUARDED_BY(mutex_) = false;
  // Set when a failed append could not be rolled back with truncate: the
  // segment tail is unreliable, so further appends must fail rather than
  // write records recovery would silently drop.
  bool poisoned_ SELTRIG_GUARDED_BY(mutex_) = false;
};

// Incremental read-only cursor over a WAL directory that may be actively
// written by a WalWriter — the replication shipper's tail-follow. Reads one
// record at a time with pread (no shared file offset with the writer) and
// distinguishes the three tail states the shipper must handle differently:
//
//   kUnavailable  no complete record at the cursor yet: clean end of the
//                 newest segment, or a partial record the writer is mid-
//                 append on (the length prefix or payload has not fully
//                 landed). Retry later; NEVER treated as a torn tail.
//   kNotFound     the segment no longer exists — a checkpoint truncated the
//                 journal past the cursor. The caller must fall back to
//                 snapshot-based catch-up.
//   kDataLoss     a fully-present record fails its checksum: real corruption
//                 (an injected torn tail from a previous crash is truncated
//                 by recovery before a writer reopens the directory).
//
// A partial or missing record at the end of a segment that is NOT the newest
// is advanced past instead: the writer rotates only after fsyncing the whole
// segment, so trailing bytes before an existing newer segment can only be a
// crash remnant that recovery already chose to discard — by construction
// never acknowledged.
class WalTailReader {
 public:
  explicit WalTailReader(std::string wal_dir) : wal_dir_(std::move(wal_dir)) {}

  // One raw journal record and where it lives.
  struct RecordRef {
    uint64_t epoch = 0;
    uint64_t seq = 0;
    uint64_t offset = 0;      // byte offset of the record header in `seq`
    uint64_t end_offset = 0;  // first byte past the record
    std::string bytes;        // length | crc | payload, verbatim
  };

  // Positions the cursor. offset 0 means "first record of the segment"
  // (resolved to just past the header once the header is read).
  void Seek(uint64_t seq, uint64_t offset) {
    seq_ = seq;
    offset_ = offset;
    epoch_ = 0;
    header_size_ = 0;
  }

  // Reads the record at the cursor and advances past it. See the class
  // comment for the non-OK outcomes.
  Status Next(RecordRef* out);

  uint64_t seq() const { return seq_; }
  uint64_t offset() const { return offset_; }
  // True once the cursor segment's header has been read; epoch() is the
  // header epoch and is meaningful only then. The shipper uses these to
  // name a crossed-into tip segment in a kSegmentSeal frame.
  bool header_read() const { return header_size_ != 0; }
  uint64_t epoch() const { return epoch_; }

 private:
  // Loads the segment header at the cursor's segment, resolving epoch and
  // header size (v1 vs v2) and normalizing offset 0 to the first record.
  Status ReadHeader();
  // True when a segment with sequence > seq_ exists on disk.
  bool NewerSegmentExists() const;
  // Moves the cursor to the start of the next existing segment.
  Status AdvanceSegment();

  std::string wal_dir_;
  uint64_t seq_ = 0;
  uint64_t offset_ = 0;
  uint64_t epoch_ = 0;
  uint64_t header_size_ = 0;  // 0 = header not read yet for this segment
};

}  // namespace seltrig

#endif  // SELTRIG_STORAGE_WAL_H_
