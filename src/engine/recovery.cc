#include "engine/recovery.h"

#include <filesystem>
#include <set>

#include "common/file_util.h"
#include "engine/snapshot.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace seltrig {

namespace {

// Locates the live row matching `image` exactly. Replay preserves the
// original commit order, so the old-row image journaled by a delete/update
// must still be present verbatim; anything else means the journal and the
// recovered state have diverged (most often: rows bulk-loaded outside the
// journal without a CHECKPOINT afterwards), which is a hard error — silently
// guessing would corrupt the audit trail.
Result<size_t> FindRowByImage(Table* table, const Row& image) {
  const int pk = table->primary_key_column();
  if (pk >= 0 && static_cast<size_t>(pk) < image.size() && !image[pk].is_null()) {
    Result<size_t> found = table->LookupByPrimaryKey(image[pk]);
    if (found.ok()) {
      if (table->GetRow(*found) == image) return *found;
      return Status::Internal("journal replay: row image mismatch in table '" +
                              table->name() + "'");
    }
  } else {
    for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
      if (table->IsLive(row_id) && table->GetRow(row_id) == image) return row_id;
    }
  }
  return Status::Internal(
      "journal replay: no live row matches the journaled image in table '" +
      table->name() +
      "' (were rows bulk-loaded without a CHECKPOINT afterwards?)");
}

Status ApplyOp(Database* db, const WalOp& op, RecoveryStats* stats) {
  // seltrig-lint: dispatch(WalOp::Kind)
  switch (op.kind) {
    case WalOp::Kind::kStatement: {
      // DDL and policy replay through the ordinary statement path (the WAL is
      // not enabled yet, so nothing is re-journaled). These ops never carry
      // DML, so no triggers fire.
      Result<QueryResult> result = db->default_session()->Execute(op.sql);
      SELTRIG_RETURN_IF_ERROR(result.status());
      return Status::OK();
    }
    case WalOp::Kind::kDdl: {
      // ALTER TABLE: logical replay through the statement path, then verify
      // the catalog landed on the version the record was stamped with —
      // divergence means the journal and the recovered schema history
      // disagree, which would silently corrupt every later physical op.
      Result<QueryResult> result = db->default_session()->Execute(op.sql);
      SELTRIG_RETURN_IF_ERROR(result.status());
      SELTRIG_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(op.table));
      if (table->schema_version() != op.schema_version) {
        return Status::Internal(
            "journal replay: table '" + op.table + "' reached schema version " +
            std::to_string(table->schema_version()) + " but the DDL record is "
            "stamped with version " + std::to_string(op.schema_version));
      }
      return Status::OK();
    }
    case WalOp::Kind::kInsert: {
      SELTRIG_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(op.table));
      Result<size_t> row_id = table->Insert(op.row);
      return row_id.status();
    }
    case WalOp::Kind::kDelete: {
      SELTRIG_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(op.table));
      SELTRIG_ASSIGN_OR_RETURN(size_t row_id, FindRowByImage(table, op.row));
      return table->Delete(row_id);
    }
    case WalOp::Kind::kUpdate: {
      SELTRIG_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(op.table));
      SELTRIG_ASSIGN_OR_RETURN(size_t row_id, FindRowByImage(table, op.row));
      return table->Update(row_id, op.row2);
    }
    case WalOp::Kind::kTriggerState:
      return db->trigger_manager()->RestoreQuarantineState(op.table, op.quarantined,
                                                           op.failures);
  }
  (void)stats;
  return Status::Internal("journal replay: unknown op kind");
}

// Rebuilds the sensitive-ID views of every audit expression whose sensitive
// table appears in `tables`. Live apply calls this under the writer lock so
// follower reads never see a view diverged from its table.
Status RebuildViewsOverTables(Database* db, const std::set<std::string>& tables) {
  for (const AuditExpressionDef* def : db->audit_manager()->All()) {
    if (tables.count(def->sensitive_table()) == 0) continue;
    SELTRIG_RETURN_IF_ERROR(
        db->audit_manager()->RebuildView(db->audit_manager()->FindMutable(def->name())));
  }
  return Status::OK();
}

}  // namespace

Status ApplyWalCommit(Database* db, const std::vector<WalOp>& commit, bool live,
                      RecoveryStats* stats) {
  RecoveryStats local;
  if (stats == nullptr) stats = &local;
  size_t i = 0;
  auto is_statement_like = [](const WalOp& op) {
    // kStatement and kDdl both replay through a session, which takes the
    // writer lock for itself; they must never sit inside a physical run's
    // lock scope.
    return op.kind == WalOp::Kind::kStatement || op.kind == WalOp::Kind::kDdl;
  };
  while (i < commit.size()) {
    if (is_statement_like(commit[i])) {
      // The session locks for itself (and, on a follower, has no journal
      // attached — replayed DDL is not re-journaled).
      SELTRIG_RETURN_IF_ERROR(ApplyOp(db, commit[i], stats));
      ++stats->ops_applied;
      ++i;
      continue;
    }
    // A run of physical / trigger-state ops: one writer-lock scope in live
    // mode, lock-free during recovery (the database has no sessions yet).
    size_t end = i;
    while (end < commit.size() && !is_statement_like(commit[end])) ++end;
    auto apply_run = [&]() -> Status {
      std::set<std::string> touched;
      for (; i < end; ++i) {
        SELTRIG_RETURN_IF_ERROR(ApplyOp(db, commit[i], stats));
        ++stats->ops_applied;
        if (commit[i].kind != WalOp::Kind::kTriggerState) {
          touched.insert(commit[i].table);
        }
      }
      if (live) SELTRIG_RETURN_IF_ERROR(RebuildViewsOverTables(db, touched));
      return Status::OK();
    };
    if (live) {
      WriterMutexLock lock(&db->storage_mutex());
      SELTRIG_RETURN_IF_ERROR(apply_run());
    } else {
      SELTRIG_RETURN_IF_ERROR(apply_run());
    }
  }
  ++stats->commits_replayed;
  return Status::OK();
}

Result<std::unique_ptr<Database>> RecoverDatabase(const std::string& dir,
                                                  RecoveryStats* stats,
                                                  const RecoverOptions& options) {
  if (dir.empty()) return Status::InvalidArgument("recovery directory is empty");
  RecoveryStats local;
  if (stats == nullptr) stats = &local;
  *stats = RecoveryStats{};

  auto db = std::make_unique<Database>();

  // 0. Resolve an interrupted checkpoint swap (see SaveSnapshot): a crash
  // mid-swap leaves the previous snapshot at <dir>/snapshot.old, possibly
  // alongside the new one.
  const std::string snapshot_dir = dir + "/snapshot";
  const std::string old_snapshot_dir = snapshot_dir + ".old";
  if (std::filesystem::exists(old_snapshot_dir + "/schema.sql")) {
    std::error_code ec;
    if (std::filesystem::exists(snapshot_dir + "/schema.sql")) {
      // Crash after the new snapshot was swapped in but before the old one
      // was removed: the new snapshot won.
      std::filesystem::remove_all(old_snapshot_dir, ec);
    } else {
      // Crash between moving the old snapshot aside and moving the new one
      // in: roll back. The journal still covers the old snapshot — segments
      // are deleted only after a checkpoint fully succeeds.
      std::filesystem::remove_all(snapshot_dir, ec);
      std::filesystem::rename(old_snapshot_dir, snapshot_dir, ec);
      if (ec) {
        return Status::ExecutionError(
            "cannot resolve interrupted snapshot swap in " + dir);
      }
    }
    // Best-effort: if the directory entry is not durable yet, a crash here
    // simply re-runs this same resolution on the next recovery.
    (void)SyncDirectory(dir);
  }

  // 1. Latest checkpoint, if any. A fresh directory simply has none.
  if (std::filesystem::exists(snapshot_dir + "/schema.sql")) {
    SELTRIG_RETURN_IF_ERROR(LoadSnapshot(db.get(), snapshot_dir));
    stats->snapshot_loaded = true;
    Result<SnapshotManifest> manifest = ReadSnapshotManifest(snapshot_dir);
    if (manifest.ok()) {
      stats->snapshot_wal_seq = manifest->wal_seq;
    } else if (manifest.status().code() != ErrorCode::kNotFound) {
      return manifest.status();
    }
  }

  // 2. Replay journal segments the snapshot does not cover, oldest first.
  SELTRIG_ASSIGN_OR_RETURN(std::vector<WalSegment> segments,
                           ListWalSegments(dir + "/wal"));
  // A snapshot that records no journal cut (no MANIFEST, or wal_seq 0 from a
  // plain SaveSnapshot) gives replay no anchor: applying the journal over it
  // would double-apply every commit the snapshot already contains —
  // re-applied inserts silently duplicate rows in tables without a primary
  // key. Refuse loudly instead of guessing.
  if (stats->snapshot_loaded && stats->snapshot_wal_seq == 0 &&
      !segments.empty()) {
    return Status::InvalidArgument(
        "snapshot at '" + snapshot_dir +
        "' records no journal cut but journal segments exist; replaying them "
        "could double-apply committed statements. Snapshot a journaled "
        "database with CHECKPOINT, or remove the stale snapshot or journal.");
  }
  for (const WalSegment& segment : segments) {
    if (segment.seq < stats->snapshot_wal_seq) continue;
    SELTRIG_ASSIGN_OR_RETURN(WalSegmentContents contents,
                             ReadWalSegment(segment.path));
    // Epochs count failover promotions and may only grow in segment order. A
    // regression means segments from a deposed primary were copied in after
    // a promotion — replaying them would resurrect commits the failover
    // decided against.
    if (contents.epoch < stats->max_epoch) {
      return Status::DataLoss(
          "journal epoch regression at " + segment.path + ": epoch " +
          std::to_string(contents.epoch) + " after epoch " +
          std::to_string(stats->max_epoch));
    }
    stats->max_epoch = contents.epoch;
    for (const std::vector<WalOp>& commit : contents.commits) {
      SELTRIG_RETURN_IF_ERROR(
          ApplyWalCommit(db.get(), commit, /*live=*/false, stats));
    }
    ++stats->segments_replayed;
    if (contents.torn) {
      // The crash frontier: everything from the first bad byte on was never
      // acknowledged. Truncate it away so the file is clean, and replay no
      // further segments (none should exist past a torn tail — rotation
      // fsyncs the old segment before opening the next).
      SELTRIG_RETURN_IF_ERROR(TruncateFile(segment.path, contents.valid_bytes));
      stats->truncated_torn_tail = true;
      break;
    }
  }

  // 3. The journal stores physical row ops without view maintenance; rebuild
  // every sensitive-ID view once over the recovered data.
  for (const AuditExpressionDef* def : db->audit_manager()->All()) {
    SELTRIG_RETURN_IF_ERROR(
        db->audit_manager()->RebuildView(db->audit_manager()->FindMutable(def->name())));
  }

  // 4. Arm the journal on a fresh segment; from here on the database is
  // live. A restart keeps the recovered epoch; a failover promotion starts
  // the next one. Followers skip this: their applier writes the received
  // segments itself (engine/recovery.h: RecoverOptions).
  if (options.enable_wal) {
    const uint64_t epoch = stats->max_epoch + (options.promote ? 1 : 0);
    SELTRIG_RETURN_IF_ERROR(db->EnableWal(dir, epoch));

    // Bootstrapping a journal from a plain (cut-less) snapshot: stamp the
    // manifest with the first live segment so the next recovery can prove the
    // journal postdates the snapshot instead of refusing to replay it above.
    if (stats->snapshot_loaded && stats->snapshot_wal_seq == 0) {
      Result<SnapshotManifest> manifest = ReadSnapshotManifest(snapshot_dir);
      SnapshotManifest stamped = manifest.ok() ? *manifest : SnapshotManifest{};
      stamped.wal_seq = db->wal()->current_seq();
      SELTRIG_RETURN_IF_ERROR(WriteSnapshotManifest(snapshot_dir, stamped));
    }
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::Recover(const std::string& dir,
                                                    RecoveryStats* stats) {
  return RecoverDatabase(dir, stats);
}

Result<std::unique_ptr<Database>> Database::Promote(const std::string& dir,
                                                    RecoveryStats* stats) {
  RecoverOptions options;
  options.promote = true;
  return RecoverDatabase(dir, stats, options);
}

}  // namespace seltrig
