// Session: one connection's execution state over the shared Database core.
// Each session carries its own SessionContext (user / SQL_TEXT / clock),
// notification list, trigger undo log, and per-statement ExecOptions;
// catalog, table storage, audit subsystem, and trigger registry live in the
// Database and are shared by every session.
//
// Locking (docs/CONCURRENCY.md): a top-level SELECT plans and executes under
// the Database's shared (reader) lock — many sessions read concurrently and
// eligible scan spines additionally fan out to morsel workers. The lock is
// then released and, only if audit state must be recorded or SELECT triggers
// must fire, re-acquired exclusively for the write phase. Every other
// top-level statement (DML, DDL, IF/NOTIFY/RAISE) runs under the exclusive
// (writer) lock, which also serializes incremental ID-view maintenance and
// trigger-action writes. Nested statements (trigger actions, IF branches)
// never touch the lock: the top-level statement already holds it.
//
// The discipline is checked by Clang Thread Safety Analysis
// (docs/STATIC_ANALYSIS.md): the session keeps a pointer to the Database''s
// reader–writer lock (engine_mutex_) so the write-phase helpers below can be
// annotated SELTRIG_REQUIRES against it, and the nested-statement re-entry
// points — where the lock was taken frames above, invisibly to the static
// analysis — re-establish the capability with AssertWriterHeld().
//
// Statement pipeline for SELECT (mirroring Section IV):
//   parse -> bind -> logical optimization -> audit-operator placement ->
//   post-placement rule pass -> execute -> fire SELECT triggers.

#ifndef SELTRIG_ENGINE_SESSION_H_
#define SELTRIG_ENGINE_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/accessed_state.h"
#include "audit/placement.h"
#include "audit/trigger.h"
#include "binder/binder.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "plan/logical_plan.h"
#include "plan/plan_validator.h"
#include "sql/ast.h"
#include "storage/undo_log.h"
#include "storage/wal.h"

namespace seltrig {

class Database;

// What a failed *audit* action does to the audited statement. Applies to
// AFTER-phase SELECT triggers and to DML triggers; BEFORE-phase SELECT
// triggers always fail closed (erroring is how they deny a query).
enum class AuditFailurePolicy {
  // Abort the whole statement: no result (or DML effect) is released without
  // its audit record. The compliance default.
  kFailClosed,
  // Let the statement succeed; the failed trigger run is rolled back,
  // retried up to `TriggerGuards::fail_open_retries` times, and on giving up
  // the loss is recorded in the `seltrig_audit_errors` side table.
  kFailOpen,
};

// Runaway and failure-isolation guards for the trigger pipeline.
struct TriggerGuards {
  // Maximum trigger-cascade depth; deeper recursion returns
  // kResourceExhausted instead of recursing unboundedly.
  int max_cascade_depth = 16;
  // Per-expression cap on the ACCESSED set's distinct IDs; 0 = unlimited.
  // Overflow behavior is `overflow_policy` (see AccessedOverflowPolicy).
  int64_t max_accessed_ids = 0;
  AccessedOverflowPolicy overflow_policy = AccessedOverflowPolicy::kFail;
  // Extra attempts for a failed trigger run under kFailOpen (each attempt
  // rolls back before retrying). 0 = no retries.
  int fail_open_retries = 2;
  // Circuit breaker: quarantine (disable + record) a trigger after this many
  // consecutive failed runs under kFailOpen. 0 = never quarantine.
  int quarantine_after = 3;
};

// Per-statement execution options. The defaults give the paper's recommended
// configuration: hcn placement, ID-view probing, audit-aware optimizer.
struct ExecOptions {
  PlacementHeuristic heuristic = PlacementHeuristic::kHighestCommutativeNode;
  // Fire SELECT-trigger actions after queries (instrumenting for every audit
  // expression that has an enabled SELECT trigger).
  bool enable_select_triggers = true;
  // Additionally instrument for every registered audit expression, even ones
  // without triggers. Used by benchmarks and the examples to observe
  // ACCESSED state directly.
  bool instrument_all_audit_expressions = false;
  // Probe materialized ID views (Section IV-A); false = evaluate the audit
  // predicate per row (ablation).
  bool use_id_views = true;
  // Probe Bloom summaries of the ID views instead of exact hash sets
  // (Section IV-A2's large-set fallback).
  bool use_bloom_filters = false;
  double bloom_fp_rate = 0.01;
  // Read at most this many result rows, then stop -- models a client that
  // aborts after a prefix; triggers still fire (Section II).
  int64_t max_rows = -1;
  // Optimizer toggles, including the audit-awareness guard (Section IV-B).
  OptimizerOptions optimizer;
  // Run the post-placement rule pass (contradiction detection + IN-subquery
  // simplification over the instrumented plan).
  bool run_post_placement_rules = true;
  // Failure handling for the audit pipeline (trigger actions run inside an
  // undo-logged scope and commit or roll back atomically either way).
  AuditFailurePolicy audit_failure_policy = AuditFailurePolicy::kFailClosed;
  TriggerGuards guards;
  // Logical rows per batch in the vectorized executor (clamped to >= 1).
  // The executor pins individual operators to capacity 1 where exact
  // row-at-a-time flow is observable (audit ops below an early stop).
  size_t batch_size = 1024;
  // Columnar execution (default): scans bind zero-copy views over table
  // storage and predicates run typed column kernels. false = row-pipeline
  // escape hatch (scans materialize generic batches). Results, ACCESSED, and
  // all ExecStats are identical in both modes; this only changes the layout
  // data flows through.
  bool columnar = true;
  // Worker threads for eligible scan spines of top-level SELECTs (morsel
  // parallelism; see exec/gather.h). 1 = serial. Results, ACCESSED, and
  // rows_scanned are identical at every setting; nested statements (trigger
  // actions) and capped/LIMIT-audited spines always run serially.
  int num_threads = 1;
  // Sample per-operator runtime counters and return an EXPLAIN-ANALYZE-style
  // annotated tree in StatementResult::profile_text (shell: `.profile on`).
  bool collect_profile = false;
  // Run the plan-invariant linter (plan/plan_validator.h) over every built
  // physical plan in release builds too; debug builds always validate. A
  // violated invariant fails the statement with kInternal (fail-closed).
  bool validate_plans = false;
};

struct StatementResult {
  QueryResult result;
  // ACCESSED state per audit expression (sorted IDs), for instrumented
  // SELECTs.
  std::map<std::string, std::vector<Value>> accessed;
  ExecStats stats;
  // EXPLAIN text of the plan that actually executed (instrumented for
  // SELECTs).
  std::string plan_text;
  // Per-operator runtime counter tree (ExecOptions::collect_profile).
  std::string profile_text;
};

class Session {
 public:
  explicit Session(Database* db);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Executes one SQL statement with default options.
  Result<QueryResult> Execute(const std::string& sql);

  // Executes one SQL statement with explicit options.
  Result<StatementResult> ExecuteWithOptions(const std::string& sql,
                                             const ExecOptions& options);

  // Executes a semicolon-separated script (DDL batches, fixtures). Stops at
  // the first error.
  Status ExecuteScript(const std::string& sql);

  // This session's user / SQL_TEXT / clock state.
  SessionContext* context() { return &ctx_; }

  // Messages emitted by NOTIFY actions (the stand-in for "SEND EMAIL").
  const std::vector<std::string>& notifications() const { return notifications_; }
  void ClearNotifications() { notifications_.clear(); }

 private:
  friend class Database;

  // Extra binding context for trigger actions: the ACCESSED relation (SELECT
  // triggers) and/or the NEW/OLD pseudo-row (DML triggers).
  struct ActionContext {
    const VirtualTable* accessed = nullptr;  // bound under table name ACCESSED
    const Schema* row_schema = nullptr;      // NEW/OLD columns
    const Row* row = nullptr;
  };

  Result<StatementResult> ExecuteStatement(ast::Statement& stmt,
                                           const ExecOptions& options, int depth,
                                           const ActionContext* action);
  // The statement-kind dispatch switch. ExecuteStatement owns top-level
  // concerns (locking, the statement undo scope, journaling, durability).
  Result<StatementResult> DispatchStatement(ast::Statement& stmt,
                                            const ExecOptions& options, int depth,
                                            const ActionContext* action);
  // Clears the journal buffer and, when the statement journaled a commit
  // record, blocks until it is durable (WalSyncMode::kCommit). Runs after
  // every top-level statement, with no engine lock held.
  Result<StatementResult> FinishTopLevel(Result<StatementResult> result);
  // Binds, optimizes and (when applicable) instruments a SELECT -- the
  // Section IV pipeline up to execution. When `validation` is non-null it is
  // filled with the placement promises of the returned plan for the
  // plan-invariant linter (EXPLAIN passes null: nothing executes).
  Result<PlanPtr> PrepareSelectPlan(const ast::SelectStatement& stmt,
                                    const ExecOptions& options,
                                    const ActionContext* action,
                                    PlanValidation* validation);
  Result<StatementResult> ExecuteSelect(const ast::SelectStatement& stmt,
                                        const ExecOptions& options, int depth,
                                        const ActionContext* action);
  // Plan + execute only (the read phase; runs under the shared lock when top
  // level). ACCESSED lands in *registry for the post-release trigger phase.
  Result<StatementResult> RunSelectQuery(const ast::SelectStatement& stmt,
                                         const ExecOptions& options, bool top_level,
                                         const ActionContext* action,
                                         AccessedStateRegistry* registry);
  // The SELECT write phase: loss accounting, SELECT-trigger firing, and the
  // statement's journal record, in one undo scope. ExecuteSelect acquires the
  // writer lock around it for top-level statements; nested SELECTs inherit
  // the top-level statement's hold.
  Status SelectWritePhase(const AccessedStateRegistry& registry,
                          const ExecOptions& options, int depth, bool top_level,
                          bool fire_triggers) SELTRIG_REQUIRES(engine_mutex_);
  Result<StatementResult> ExecuteExplain(const ast::ExplainStatement& stmt,
                                         const ExecOptions& options,
                                         const ActionContext* action);
  Result<StatementResult> ExecuteInsert(const ast::InsertStatement& stmt,
                                        const ExecOptions& options, int depth,
                                        const ActionContext* action);
  Result<StatementResult> ExecuteUpdate(const ast::UpdateStatement& stmt,
                                        const ExecOptions& options, int depth,
                                        const ActionContext* action);
  Result<StatementResult> ExecuteDelete(const ast::DeleteStatement& stmt,
                                        const ExecOptions& options, int depth,
                                        const ActionContext* action);
  Result<StatementResult> ExecuteCreateTable(const ast::CreateTableStatement& stmt);
  // Online schema change (docs/SCHEMA_CHANGE.md). Runs under the writer lock
  // like all DDL; phases: metadata prevalidation + fail-closed audit policy
  // check (nothing mutated), storage apply with an inverse stack, audit
  // rebind + view rebuild, then version stamp + journal. Any failure after
  // mutation began rolls the whole chain back via the inverses.
  Result<StatementResult> ExecuteAlterTable(const ast::AlterTableStatement& stmt);
  Result<StatementResult> ExecuteCreateTrigger(ast::CreateTriggerStatement& stmt);
  Result<StatementResult> ExecuteIf(ast::IfStatement& stmt, const ExecOptions& options,
                                    int depth, const ActionContext* action);
  Result<StatementResult> ExecuteNotify(const ast::NotifyStatement& stmt,
                                        const ExecOptions& options,
                                        const ActionContext* action);
  Result<StatementResult> ExecuteRaise(const ast::RaiseStatement& stmt,
                                       const ActionContext* action);

  // Configures a binder with the action context (virtual tables, NEW/OLD).
  void ConfigureBinder(Binder* binder, const ActionContext* action) const;

  // Fires the SELECT triggers of one phase (`before_phase`: BEFORE-return
  // triggers; otherwise the ordinary AFTER triggers).
  Status FireSelectTriggers(const AccessedStateRegistry& registry,
                            const ExecOptions& options, int depth,
                            bool before_phase) SELTRIG_REQUIRES(engine_mutex_);
  Status FireDmlTriggers(const std::string& table, ast::DmlEvent event,
                         const std::vector<Row>& old_rows,
                         const std::vector<Row>& new_rows, const ExecOptions& options,
                         int depth) SELTRIG_REQUIRES(engine_mutex_);

  // Runs one trigger's action list inside an undo-logged scope: on any
  // failure the scope's writes are rolled back, then the failure policy
  // decides between abort (fail-closed / BEFORE phase), bounded retry, and
  // loss accounting + quarantine (fail-open).
  Status RunTriggerGuarded(TriggerDef* trigger, const ExecOptions& options, int depth,
                           const ActionContext* action)
      SELTRIG_REQUIRES(engine_mutex_);
  // The action list itself (one undo savepoint's worth of work).
  Status RunTriggerActions(TriggerDef* trigger, const ExecOptions& options, int depth,
                           const ActionContext* action)
      SELTRIG_REQUIRES(engine_mutex_);
  // Undoes trigger writes back to `savepoint` and rebuilds the sensitive-ID
  // views of audit expressions over the touched tables. Journal parity:
  // physical ops buffered past `wal_savepoint` are dropped with their undone
  // rows, except ops the rollback cannot undo in memory either (loss-table
  // rows, DDL, quarantine transitions), which stay buffered.
  Status RollbackTriggerWrites(size_t savepoint, size_t wal_savepoint)
      SELTRIG_REQUIRES(engine_mutex_);
  // Appends a row to seltrig_audit_errors (durable: bypasses the undo scope
  // and fault injection). Best-effort by design.
  void RecordAuditError(const std::string& trigger_name, const Status& error,
                        int attempts, bool quarantined)
      SELTRIG_REQUIRES(engine_mutex_);
  // Records ACCESSED-cap truncations (AccessedOverflowPolicy::kTruncate) for
  // every overflowed state in `registry`.
  void RecordAccessedOverflows(const AccessedStateRegistry& registry)
      SELTRIG_REQUIRES(engine_mutex_);

  Status CoerceRowToSchema(const Schema& schema, Row* row, const std::string& what) const;

  // --- Journal plumbing (storage/wal.h; docs/DURABILITY.md) -----------------
  // Ops accumulate in wal_buffer_ while a top-level statement runs and are
  // appended as ONE record at commit: a statement — including every write its
  // triggers cascade into — is the unit of atomicity across crashes.
  bool WalEnabled() const;
  // Pre-check for DDL: replay needs the statement's SQL, so DDL without
  // source text (hand-built ASTs) is rejected up front on a journaled
  // database rather than leaving an unreplayable gap.
  Status CheckDdlJournalable(const ast::Statement& stmt) const;
  // Buffers a successful DDL statement's SQL as a logical journal op.
  void JournalDdl(const ast::Statement& stmt);
  // Appends wal_buffer_ as one commit record. Caller must hold the exclusive
  // writer lock: append order under that lock IS the commit order replay
  // reproduces. On success the buffer is cleared and wal_pending_commit_
  // holds the sequence FinishTopLevel must wait on; on failure the buffer is
  // left intact (rollback then filters it).
  Status WalAppendLocked() SELTRIG_REQUIRES(engine_mutex_);

  // Tells the analysis the engine's exclusive writer lock is held. The seam
  // for dynamically-established holds it cannot see statically: nested
  // statements (trigger actions, IF branches, nested SELECT write phases)
  // run under the lock taken by the top-level statement frames above.
  void AssertWriterHeld() const SELTRIG_ASSERT_CAPABILITY(engine_mutex_) {}

  // RAII scope that attaches this session's trigger undo log to every table
  // while any guarded trigger run is active (scopes nest via savepoints).
  // Trigger runs only happen while the session holds the exclusive writer
  // lock, so at most one session's log is attached at a time.
  class TriggerTxnScope {
   public:
    explicit TriggerTxnScope(Session* session);
    ~TriggerTxnScope();

   private:
    Session* session_;
  };

  Database* db_;
  // The Database's storage_mutex(), cached so lock annotations in this header
  // can name the capability (Database is only forward-declared here).
  SharedMutex* const engine_mutex_;
  SessionContext ctx_;
  std::vector<std::string> notifications_;
  UndoLog trigger_undo_;
  int trigger_txn_depth_ = 0;
  // Pending journal ops of the statement currently executing (see
  // WalAppendLocked). Always empty between top-level statements.
  std::vector<WalOp> wal_buffer_;
  // Commit sequence of this statement's appended record; FinishTopLevel
  // waits on it before acknowledging, then resets it to 0.
  uint64_t wal_pending_commit_ = 0;
  // Journal position just past that record, handed to the replication
  // waiter (when installed) after the local durability wait.
  WalPosition wal_pending_pos_;
};

}  // namespace seltrig

#endif  // SELTRIG_ENGINE_SESSION_H_
