#include "engine/snapshot.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/fault_injector.h"
#include "engine/csv_loader.h"
#include "types/date.h"

namespace seltrig {

namespace {

const char* SqlTypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kNull:
      return "VARCHAR";
  }
  return "VARCHAR";
}

std::string CsvField(const Value& v) {
  if (v.is_null()) return "";
  std::string raw;
  switch (v.type()) {
    case TypeId::kString:
      raw = v.AsString();
      break;
    case TypeId::kDate:
      return FormatDate(v.AsDate());
    case TypeId::kBool:
      return v.AsBool() ? "true" : "false";
    case TypeId::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return buf;
    }
    default:
      return v.ToString();
  }
  // Quote strings containing separators/quotes/newlines; escape quotes.
  bool needs_quoting = raw.empty() || raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return raw;
  std::string quoted = "\"";
  for (char c : raw) {
    quoted += c;
    if (c == '"') quoted += '"';
  }
  quoted += '"';
  return quoted;
}

}  // namespace

namespace {

// Writes schema.sql plus one CSV per table into `dir`, probing the
// `snapshot.write` fault point before each file.
Status WriteSnapshotFiles(Database* db, const std::string& dir) {
  std::vector<std::string> tables = db->catalog()->TableNames();
  std::sort(tables.begin(), tables.end());

  SELTRIG_RETURN_IF_ERROR(fault::Maybe("snapshot.write"));
  std::ofstream schema_out(dir + "/schema.sql");
  if (!schema_out) return Status::InvalidArgument("cannot write " + dir + "/schema.sql");

  for (const std::string& name : tables) {
    SELTRIG_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(name));
    const Schema& schema = table->schema();

    schema_out << "CREATE TABLE " << name << " (";
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c > 0) schema_out << ", ";
      schema_out << schema.column(c).name << " " << SqlTypeName(schema.column(c).type);
      if (static_cast<int>(c) == table->primary_key_column()) {
        schema_out << " PRIMARY KEY";
      }
    }
    schema_out << ");\n";

    SELTRIG_RETURN_IF_ERROR(fault::Maybe("snapshot.write"));
    std::ofstream csv(dir + "/" + name + ".csv");
    if (!csv) return Status::InvalidArgument("cannot write " + dir + "/" + name + ".csv");
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c > 0) csv << ',';
      csv << schema.column(c).name;
    }
    csv << '\n';
    for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
      if (!table->IsLive(row_id)) continue;
      const Row& row = table->GetRow(row_id);
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) csv << ',';
        csv << CsvField(row[c]);
      }
      csv << '\n';
    }
    if (!csv) return Status::InvalidArgument("write failed for " + dir + "/" + name + ".csv");
  }
  schema_out.flush();
  if (!schema_out) return Status::InvalidArgument("write failed for " + dir + "/schema.sql");
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(Database* db, const std::string& dir) {
  // Fail-closed snapshotting: write into a temporary sibling directory and
  // swap it into place only once every file is complete, so a failure mid-way
  // (crash, full disk, injected fault) never leaves a half-written snapshot
  // where a later LoadSnapshot would find it. The target directory is
  // replaced wholesale on success.
  if (dir.empty()) return Status::InvalidArgument("snapshot directory is empty");
  const std::string tmp = dir + ".inprogress";
  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  std::filesystem::create_directories(tmp, ec);
  if (ec) return Status::InvalidArgument("cannot create directory " + tmp);

  Status written = WriteSnapshotFiles(db, tmp);
  if (!written.ok()) {
    std::filesystem::remove_all(tmp, ec);
    return written;
  }

  std::filesystem::remove_all(dir, ec);
  if (ec) {
    std::filesystem::remove_all(tmp, ec);
    return Status::InvalidArgument("cannot replace directory " + dir);
  }
  std::filesystem::rename(tmp, dir, ec);
  if (ec) {
    std::filesystem::remove_all(tmp, ec);
    return Status::InvalidArgument("cannot move snapshot into " + dir);
  }
  return Status::OK();
}

Status LoadSnapshot(Database* db, const std::string& dir) {
  std::ifstream schema_in(dir + "/schema.sql");
  if (!schema_in) return Status::NotFound("cannot open " + dir + "/schema.sql");
  std::string ddl((std::istreambuf_iterator<char>(schema_in)),
                  std::istreambuf_iterator<char>());
  SELTRIG_RETURN_IF_ERROR(db->ExecuteScript(ddl));

  std::vector<std::string> tables = db->catalog()->TableNames();
  std::sort(tables.begin(), tables.end());
  for (const std::string& name : tables) {
    std::string path = dir + "/" + name + ".csv";
    if (!std::filesystem::exists(path)) continue;  // table from another source
    Result<int64_t> loaded = LoadCsvFileIntoTable(db, name, path, /*has_header=*/true);
    SELTRIG_RETURN_IF_ERROR(loaded.status());
  }
  return Status::OK();
}

}  // namespace seltrig
