#include "engine/snapshot.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_injector.h"
#include "common/file_util.h"
#include "engine/csv_loader.h"
#include "types/date.h"

namespace seltrig {

namespace {

const char* SqlTypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kNull:
      return "VARCHAR";
  }
  return "VARCHAR";
}

std::string CsvField(const Value& v) {
  if (v.is_null()) return "";
  std::string raw;
  switch (v.type()) {
    case TypeId::kString:
      raw = v.AsString();
      break;
    case TypeId::kDate:
      return FormatDate(v.AsDate());
    case TypeId::kBool:
      return v.AsBool() ? "true" : "false";
    case TypeId::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return buf;
    }
    default:
      return v.ToString();
  }
  // Quote strings containing separators/quotes/newlines; escape quotes.
  bool needs_quoting = raw.empty() || raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return raw;
  std::string quoted = "\"";
  for (char c : raw) {
    quoted += c;
    if (c == '"') quoted += '"';
  }
  quoted += '"';
  return quoted;
}

}  // namespace

namespace {

// Separates the table DDL from the policy section inside schema.sql.
// LoadSnapshot applies everything before the marker, bulk-loads the CSVs,
// then applies everything after it.
constexpr const char* kPolicyMarker = "-- seltrig:policy";

// Writes schema.sql plus one CSV per table into `dir`, probing the
// `snapshot.write` fault point before each file.
Status WriteSnapshotFiles(Database* db, const std::string& dir,
                          const SnapshotOptions& options) {
  std::vector<std::string> tables = db->catalog()->TableNames();
  std::sort(tables.begin(), tables.end());

  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kSnapshotWrite));
  std::ofstream schema_out(dir + "/schema.sql");
  if (!schema_out) return Status::InvalidArgument("cannot write " + dir + "/schema.sql");

  for (const std::string& name : tables) {
    SELTRIG_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(name));
    const Schema& schema = table->schema();

    schema_out << "CREATE TABLE " << name << " (";
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c > 0) schema_out << ", ";
      schema_out << schema.column(c).name << " " << SqlTypeName(schema.column(c).type);
      if (static_cast<int>(c) == table->primary_key_column()) {
        schema_out << " PRIMARY KEY";
      }
    }
    schema_out << ");\n";

    SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kSnapshotWrite));
    std::ofstream csv(dir + "/" + name + ".csv");
    if (!csv) return Status::InvalidArgument("cannot write " + dir + "/" + name + ".csv");
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c > 0) csv << ',';
      csv << schema.column(c).name;
    }
    csv << '\n';
    for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
      if (!table->IsLive(row_id)) continue;
      const Row& row = table->GetRow(row_id);
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) csv << ',';
        csv << CsvField(row[c]);
      }
      csv << '\n';
    }
    csv.flush();
    if (!csv) return Status::InvalidArgument("write failed for " + dir + "/" + name + ".csv");
    SELTRIG_RETURN_IF_ERROR(SyncFile(dir + "/" + name + ".csv"));
  }
  if (options.include_policy) {
    // SECURITY TRADE-OFF (see SnapshotOptions::include_policy): this section
    // writes the audit policy — what is watched and what the triggers do —
    // into the snapshot so recovery is self-contained. Definitions captured
    // without source text cannot be replayed; fail the snapshot rather than
    // silently drop policy.
    schema_out << "\n" << kPolicyMarker
               << " -- audit expressions and triggers; applied after the CSV "
                  "load so DML triggers do not fire on snapshot rows.\n";
    for (const AuditExpressionDef* def : db->audit_manager()->All()) {
      if (def->definition_sql().empty()) {
        return Status::Unsupported("audit expression '" + def->name() +
                                   "' has no source text; cannot snapshot policy");
      }
      schema_out << def->definition_sql() << ";\n";
    }
    for (const TriggerDef* def : db->trigger_manager()->All()) {
      if (def->definition_sql.empty()) {
        return Status::Unsupported("trigger '" + def->name +
                                   "' has no source text; cannot snapshot policy");
      }
      schema_out << def->definition_sql << ";\n";
    }
  }
  schema_out.flush();
  if (!schema_out) return Status::InvalidArgument("write failed for " + dir + "/schema.sql");
  SELTRIG_RETURN_IF_ERROR(SyncFile(dir + "/schema.sql"));

  // Always written, even for plain snapshots (wal_seq 0): a snapshot that
  // does not declare its journal cut is ambiguous to recovery, which must
  // then refuse to replay any journal over it (see RecoverDatabase).
  SnapshotManifest manifest;
  manifest.wal_seq = options.wal_seq;
  if (options.include_policy) {
    for (const TriggerDef* def : db->trigger_manager()->Quarantined()) {
      manifest.quarantined.push_back({def->name, def->consecutive_failures});
    }
  }
  for (const std::string& name : tables) {
    SELTRIG_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(name));
    if (table->schema_version() > 1) {
      manifest.schema_versions.push_back({name, table->schema_version()});
    }
  }
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kSnapshotWrite));
  return WriteSnapshotManifest(dir, manifest);
}

}  // namespace

Status SaveSnapshot(Database* db, const std::string& dir,
                    const SnapshotOptions& options) {
  // Crash-atomic snapshotting: write into a temporary sibling directory,
  // fsync every file plus the directory, then swap it into place with
  // renames only — never a window where no complete snapshot exists:
  //
  //   1. <dir>         -> <dir>.old    (the previous snapshot, if any)
  //   2. <dir>.inprogress -> <dir>     (the new, fully-synced snapshot)
  //   3. fsync parent, remove <dir>.old
  //
  // A crash between 1 and 2 leaves the previous snapshot at <dir>.old; a
  // crash between 2 and 3 leaves both. RecoverDatabase resolves either state
  // (roll back to .old, or prefer <dir> and drop .old). Callers must delete
  // journal segments only after this returns OK — until then the previous
  // snapshot may be the one recovery falls back to. The `snapshot.swap`
  // fault point probes each window so the kill-point harness covers them.
  if (dir.empty()) return Status::InvalidArgument("snapshot directory is empty");
  const std::string tmp = dir + ".inprogress";
  const std::string old = dir + ".old";
  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  // A leftover .old means an earlier swap crashed after its snapshot was in
  // place (or recovery already resolved it); it is dead weight either way.
  std::filesystem::remove_all(old, ec);
  std::filesystem::create_directories(tmp, ec);
  if (ec) return Status::InvalidArgument("cannot create directory " + tmp);

  Status written = WriteSnapshotFiles(db, tmp, options);
  // File bytes are fsynced individually as written; sync the directory so
  // their names are durable before any rename makes the snapshot findable.
  if (written.ok()) written = SyncDirectory(tmp);
  if (written.ok()) written = fault::Maybe(fault_points::kSnapshotSwap);
  if (!written.ok()) {
    std::filesystem::remove_all(tmp, ec);
    return written;
  }

  std::filesystem::path parent = std::filesystem::path(dir).parent_path();
  if (parent.empty()) parent = ".";

  const bool replacing = std::filesystem::exists(dir);
  if (replacing) {
    std::filesystem::rename(dir, old, ec);
    if (ec) {
      std::filesystem::remove_all(tmp, ec);
      return Status::InvalidArgument("cannot move aside snapshot " + dir);
    }
  }
  Status swapped = fault::Maybe(fault_points::kSnapshotSwap);
  if (swapped.ok()) {
    std::filesystem::rename(tmp, dir, ec);
    if (ec) swapped = Status::InvalidArgument("cannot move snapshot into " + dir);
  }
  if (!swapped.ok()) {
    // Roll the previous snapshot back into place; the journal covering it is
    // still intact (callers delete segments only after success).
    if (replacing) std::filesystem::rename(old, dir, ec);
    std::filesystem::remove_all(tmp, ec);
    return swapped;
  }
  SELTRIG_RETURN_IF_ERROR(SyncDirectory(parent.string()));

  // The new snapshot is durably in place; only now may the old one go. An
  // error here leaves <dir>.old behind, which recovery and the next
  // checkpoint both clean up.
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kSnapshotSwap));
  if (replacing) {
    std::filesystem::remove_all(old, ec);
    // Advisory: only delays the removal's durability; a resurrected .old
    // directory is cleaned up by recovery and the next checkpoint anyway.
    (void)SyncDirectory(parent.string());
  }
  return Status::OK();
}

Status WriteSnapshotManifest(const std::string& dir,
                             const SnapshotManifest& manifest) {
  const std::string path = dir + "/MANIFEST";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << "seltrig-snapshot 1\n";
  out << "wal_seq " << manifest.wal_seq << "\n";
  for (const SnapshotManifest::QuarantineEntry& entry : manifest.quarantined) {
    out << "quarantined " << entry.trigger << " " << entry.failures << "\n";
  }
  for (const SnapshotManifest::SchemaVersionEntry& entry : manifest.schema_versions) {
    out << "schema_version " << entry.table << " " << entry.version << "\n";
  }
  out.flush();
  if (!out) return Status::InvalidArgument("write failed for " + path);
  return SyncFile(path);
}

Status LoadSnapshot(Database* db, const std::string& dir) {
  std::ifstream schema_in(dir + "/schema.sql");
  if (!schema_in) return Status::NotFound("cannot open " + dir + "/schema.sql");
  std::string ddl((std::istreambuf_iterator<char>(schema_in)),
                  std::istreambuf_iterator<char>());

  // Split off the policy section: tables first, then data, then policy, so
  // audit expressions materialize their ID views over the loaded rows and
  // DML triggers cannot fire mid-load.
  std::string policy;
  size_t marker = ddl.find(kPolicyMarker);
  if (marker != std::string::npos) {
    policy = ddl.substr(marker);
    ddl.resize(marker);
  }
  SELTRIG_RETURN_IF_ERROR(db->ExecuteScript(ddl));

  Result<SnapshotManifest> manifest = ReadSnapshotManifest(dir);
  if (!manifest.ok() && manifest.status().code() != ErrorCode::kNotFound) {
    return manifest.status();
  }

  // schema.sql wrote the final schema as plain CREATE TABLEs, resetting every
  // version counter to 1; restore the recorded counters before the policy
  // section runs so CREATE AUDIT EXPRESSION / CREATE TRIGGER bind against the
  // snapshot's true versions (and post-snapshot DDL records replay from the
  // right baseline).
  if (manifest.ok()) {
    for (const SnapshotManifest::SchemaVersionEntry& entry :
         manifest->schema_versions) {
      Result<Table*> table = db->catalog()->GetTable(entry.table);
      if (!table.ok()) {
        return Status::InvalidArgument("MANIFEST in " + dir +
                                       " records a schema version for table '" +
                                       entry.table + "' absent from schema.sql");
      }
      (*table)->set_schema_version(entry.version);
    }
  }

  std::vector<std::string> tables = db->catalog()->TableNames();
  std::sort(tables.begin(), tables.end());
  for (const std::string& name : tables) {
    std::string path = dir + "/" + name + ".csv";
    if (!std::filesystem::exists(path)) continue;  // table from another source
    Result<int64_t> loaded = LoadCsvFileIntoTable(db, name, path, /*has_header=*/true);
    SELTRIG_RETURN_IF_ERROR(loaded.status());
  }

  if (!policy.empty()) {
    SELTRIG_RETURN_IF_ERROR(db->ExecuteScript(policy));
  }

  if (manifest.ok()) {
    for (const SnapshotManifest::QuarantineEntry& entry : manifest->quarantined) {
      SELTRIG_RETURN_IF_ERROR(db->trigger_manager()->RestoreQuarantineState(
          entry.trigger, /*quarantined=*/true, entry.failures));
    }
  }
  return Status::OK();
}

Result<SnapshotManifest> ReadSnapshotManifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) return Status::NotFound("no MANIFEST in " + dir);
  SnapshotManifest manifest;
  std::string header;
  if (!std::getline(in, header) || header.rfind("seltrig-snapshot ", 0) != 0) {
    return Status::InvalidArgument("malformed MANIFEST in " + dir);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "wal_seq") {
      if (!(fields >> manifest.wal_seq)) {
        return Status::InvalidArgument("malformed wal_seq in " + dir + "/MANIFEST");
      }
    } else if (key == "quarantined") {
      SnapshotManifest::QuarantineEntry entry;
      if (!(fields >> entry.trigger >> entry.failures)) {
        return Status::InvalidArgument("malformed quarantined entry in " + dir +
                                       "/MANIFEST");
      }
      manifest.quarantined.push_back(std::move(entry));
    } else if (key == "schema_version") {
      SnapshotManifest::SchemaVersionEntry entry;
      if (!(fields >> entry.table >> entry.version)) {
        return Status::InvalidArgument("malformed schema_version entry in " +
                                       dir + "/MANIFEST");
      }
      manifest.schema_versions.push_back(std::move(entry));
    }
    // Unknown keys are ignored: newer writers stay readable.
  }
  return manifest;
}

}  // namespace seltrig
