#include "engine/session.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "expr/evaluator.h"
#include "sql/parser.h"

namespace seltrig {

Session::Session(Database* db)
    : db_(db), engine_mutex_(&db->storage_mutex()) {}

Session::~Session() = default;

Result<QueryResult> Session::Execute(const std::string& sql) {
  ExecOptions options;
  SELTRIG_ASSIGN_OR_RETURN(StatementResult result, ExecuteWithOptions(sql, options));
  return std::move(result.result);
}

Result<StatementResult> Session::ExecuteWithOptions(const std::string& sql,
                                                    const ExecOptions& options) {
  SELTRIG_ASSIGN_OR_RETURN(ast::StatementPtr stmt, ParseSql(sql));
  ctx_.sql_text = sql;
  return ExecuteStatement(*stmt, options, /*depth=*/0, /*action=*/nullptr);
}

Status Session::ExecuteScript(const std::string& sql) {
  SELTRIG_ASSIGN_OR_RETURN(std::vector<ast::StatementPtr> stmts, ParseSqlScript(sql));
  ExecOptions options;
  for (auto& stmt : stmts) {
    // Note: scripts cannot reconstruct per-statement text exactly; SQL_TEXT()
    // reports the whole script for statements run this way.
    ctx_.sql_text = sql;
    Result<StatementResult> result =
        ExecuteStatement(*stmt, options, /*depth=*/0, /*action=*/nullptr);
    SELTRIG_RETURN_IF_ERROR(result.status());
  }
  return Status::OK();
}

void Session::ConfigureBinder(Binder* binder, const ActionContext* action) const {
  if (action == nullptr) return;
  if (action->accessed != nullptr) {
    binder->AddVirtualTable("accessed", *action->accessed);
  }
  if (action->row_schema != nullptr) {
    binder->SetTriggerRowSchema(action->row_schema);
  }
}

Result<StatementResult> Session::ExecuteStatement(ast::Statement& stmt,
                                                  const ExecOptions& options, int depth,
                                                  const ActionContext* action) {
  if (depth > options.guards.max_cascade_depth) {
    return Status::ResourceExhausted(
        "trigger cascade depth limit (" +
        std::to_string(options.guards.max_cascade_depth) + ") exceeded");
  }
  // Top-level = a statement arriving from the client, which owns the locking
  // for everything it cascades into. Nested statements (trigger actions, IF
  // branches) run lock-free under the top-level statement's lock and journal
  // into the top-level statement's buffer.
  const bool top_level = depth == 0 && action == nullptr;
  if (!top_level) return DispatchStatement(stmt, options, depth, action);

  // SELECT and EXPLAIN manage the (shared) lock themselves; a SELECT's write
  // phase journals and rolls back inside ExecuteSelect, where the writer lock
  // lives. Every other statement kind can write shared state and is framed
  // here: writer lock + statement undo scope + one journal record.
  if (stmt.kind == ast::StatementKind::kSelect ||
      stmt.kind == ast::StatementKind::kExplain) {
    return FinishTopLevel(DispatchStatement(stmt, options, depth, action));
  }

  Result<StatementResult> result = [&]() -> Result<StatementResult> {
    WriterMutexLock write_lock(engine_mutex_);
    // The whole statement — its own writes plus everything its triggers
    // cascade into — runs in one undo scope, so any failure (including a
    // failed journal append: fail closed) rolls it back completely. Memory
    // state visible after a statement is therefore exactly the state journal
    // replay reproduces: failed statements leave no trace in either.
    TriggerTxnScope txn(this);
    const size_t undo_sp = trigger_undo_.Savepoint();
    const size_t wal_sp = wal_buffer_.size();  // 0 between top-level statements
    Result<StatementResult> inner = DispatchStatement(stmt, options, depth, action);
    if (inner.ok()) {
      Status appended = WalAppendLocked();
      if (!appended.ok()) inner = appended;
    }
    if (!inner.ok()) {
      SELTRIG_RETURN_IF_ERROR(RollbackTriggerWrites(undo_sp, wal_sp));
      // The rollback keeps what memory keeps: loss-accounting rows and
      // irreversible DDL stay buffered; journal them even though the
      // statement failed (best-effort — the statement is failing anyway).
      if (wal_buffer_.size() > wal_sp) (void)WalAppendLocked();
    }
    return inner;
  }();
  return FinishTopLevel(std::move(result));
}

Result<StatementResult> Session::FinishTopLevel(Result<StatementResult> result) {
  wal_buffer_.clear();
  const uint64_t pending = wal_pending_commit_;
  const WalPosition pending_pos = wal_pending_pos_;
  wal_pending_commit_ = 0;
  wal_pending_pos_ = WalPosition{};
  if (pending != 0 && WalEnabled()) {
    // No lock held here: group commit batches concurrent sessions' fsyncs.
    Status durable = db_->wal_->WaitDurable(pending);
    // A statement is acknowledged only once its record is on disk; surface a
    // durability failure even when the statement itself succeeded.
    if (result.ok() && !durable.ok()) return durable;
    // Synchronous replication: after the record is locally durable, wait for
    // follower acks up to its position (the shipper's ack mode and follower
    // health decide how long that is; a failure withholds the statement's
    // acknowledgement, never its local durability).
    ReplicationWaiter* waiter = db_->replication_waiter();
    if (result.ok() && waiter != nullptr) {
      Status replicated = waiter->WaitReplicated(pending_pos);
      if (!replicated.ok()) return replicated;
    }
  }
  return result;
}

Result<StatementResult> Session::DispatchStatement(ast::Statement& stmt,
                                                   const ExecOptions& options,
                                                   int depth,
                                                   const ActionContext* action) {
  const bool top_level = depth == 0 && action == nullptr;
  switch (stmt.kind) {
    case ast::StatementKind::kSelect:
      return ExecuteSelect(*static_cast<ast::SelectWrapper&>(stmt).select, options,
                           depth, action);
    case ast::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const ast::InsertStatement&>(stmt), options,
                           depth, action);
    case ast::StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const ast::UpdateStatement&>(stmt), options,
                           depth, action);
    case ast::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const ast::DeleteStatement&>(stmt), options,
                           depth, action);
    case ast::StatementKind::kCreateTable: {
      SELTRIG_RETURN_IF_ERROR(CheckDdlJournalable(stmt));
      Result<StatementResult> result =
          ExecuteCreateTable(static_cast<const ast::CreateTableStatement&>(stmt));
      if (result.ok()) JournalDdl(stmt);
      return result;
    }
    case ast::StatementKind::kCreateAuditExpression: {
      SELTRIG_RETURN_IF_ERROR(CheckDdlJournalable(stmt));
      auto& create = static_cast<ast::CreateAuditExpressionStatement&>(stmt);
      ast::CreateAuditExpressionStatement moved;
      moved.name = std::move(create.name);
      moved.select = std::move(create.select);
      moved.sensitive_table = std::move(create.sensitive_table);
      moved.partition_by = std::move(create.partition_by);
      moved.source = create.source;  // definition_sql for snapshots/replay
      SELTRIG_RETURN_IF_ERROR(db_->audit_.CreateAuditExpression(std::move(moved)));
      JournalDdl(stmt);
      return StatementResult{};
    }
    case ast::StatementKind::kCreateTrigger: {
      SELTRIG_RETURN_IF_ERROR(CheckDdlJournalable(stmt));
      Result<StatementResult> result =
          ExecuteCreateTrigger(static_cast<ast::CreateTriggerStatement&>(stmt));
      if (result.ok()) JournalDdl(stmt);
      return result;
    }
    case ast::StatementKind::kDropTable: {
      SELTRIG_RETURN_IF_ERROR(CheckDdlJournalable(stmt));
      const auto& drop = static_cast<const ast::DropStatement&>(stmt);
      SELTRIG_RETURN_IF_ERROR(db_->catalog_.DropTable(drop.name));
      JournalDdl(stmt);
      return StatementResult{};
    }
    case ast::StatementKind::kDropTrigger: {
      SELTRIG_RETURN_IF_ERROR(CheckDdlJournalable(stmt));
      const auto& drop = static_cast<const ast::DropStatement&>(stmt);
      SELTRIG_RETURN_IF_ERROR(db_->triggers_.DropTrigger(drop.name));
      JournalDdl(stmt);
      return StatementResult{};
    }
    case ast::StatementKind::kDropAuditExpression: {
      SELTRIG_RETURN_IF_ERROR(CheckDdlJournalable(stmt));
      const auto& drop = static_cast<const ast::DropStatement&>(stmt);
      SELTRIG_RETURN_IF_ERROR(db_->audit_.DropAuditExpression(drop.name));
      JournalDdl(stmt);
      return StatementResult{};
    }
    case ast::StatementKind::kAlterTable: {
      SELTRIG_RETURN_IF_ERROR(CheckDdlJournalable(stmt));
      // ExecuteAlterTable journals its own WalOp::Ddl record (stamped with the
      // resulting schema version) instead of the generic JournalDdl path.
      return ExecuteAlterTable(static_cast<const ast::AlterTableStatement&>(stmt));
    }
    case ast::StatementKind::kIf:
      return ExecuteIf(static_cast<ast::IfStatement&>(stmt), options, depth, action);
    case ast::StatementKind::kNotify:
      return ExecuteNotify(static_cast<const ast::NotifyStatement&>(stmt), options,
                           action);
    case ast::StatementKind::kRaise:
      return ExecuteRaise(static_cast<const ast::RaiseStatement&>(stmt), action);
    case ast::StatementKind::kExplain: {
      const auto& explain = static_cast<const ast::ExplainStatement&>(stmt);
      if (top_level) {
        ReaderMutexLock read_lock(engine_mutex_);
        return ExecuteExplain(explain, options, action);
      }
      // Nested EXPLAIN runs under the top-level statement's lock.
      return ExecuteExplain(explain, options, action);
    }
  }
  return Status::Internal("unhandled statement kind");
}

// --- Journal plumbing ---------------------------------------------------------

bool Session::WalEnabled() const { return db_->wal_ != nullptr; }

Status Session::CheckDdlJournalable(const ast::Statement& stmt) const {
  if (!WalEnabled() || !stmt.source.empty()) return Status::OK();
  return Status::Unsupported(
      "cannot journal DDL without source text: durable databases require "
      "SQL-driven DDL");
}

void Session::JournalDdl(const ast::Statement& stmt) {
  if (!WalEnabled()) return;
  wal_buffer_.push_back(WalOp::Statement(stmt.source));
}

Status Session::WalAppendLocked() {
  if (!WalEnabled() || wal_buffer_.empty()) return Status::OK();
  uint64_t seq = 0;
  WalPosition pos;
  SELTRIG_RETURN_IF_ERROR(db_->wal_->Append(wal_buffer_, &seq, &pos));
  wal_buffer_.clear();
  // Later appends of the same statement (loss records journaled on the
  // failure path) supersede earlier ones; durability is monotonic in seq.
  wal_pending_commit_ = seq;
  wal_pending_pos_ = pos;
  return Status::OK();
}

// --- SELECT -----------------------------------------------------------------

Result<PlanPtr> Session::PrepareSelectPlan(const ast::SelectStatement& stmt,
                                           const ExecOptions& options,
                                           const ActionContext* action,
                                           PlanValidation* validation) {
  Binder binder(&db_->catalog_);
  ConfigureBinder(&binder, action);
  SELTRIG_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelect(stmt));

  OptimizerOptions opt_options = options.optimizer;
  opt_options.catalog = &db_->catalog_;
  // Leaf retention / ID propagation for every registered audit expression
  // (Section IV-A1); column pruning keeps their partition keys reachable.
  for (const AuditExpressionDef* def : db_->audit_.All()) {
    opt_options.audit_keys.push_back(
        {def->sensitive_table(), def->partition_column(), def->partition_by()});
  }
  SELTRIG_ASSIGN_OR_RETURN(plan, OptimizePlan(std::move(plan), opt_options));

  // Audit-operator placement (Section IV-B: after logical optimization).
  std::vector<std::string> audit_names;
  if (options.enable_select_triggers) {
    audit_names = db_->triggers_.AuditedExpressionNames();
  }
  if (options.instrument_all_audit_expressions) {
    for (const AuditExpressionDef* def : db_->audit_.All()) {
      bool present = false;
      for (const std::string& n : audit_names) present = present || n == def->name();
      if (!present) audit_names.push_back(def->name());
    }
  }
  bool instrumented = false;
  for (const std::string& name : audit_names) {
    const AuditExpressionDef* def = db_->audit_.Find(name);
    if (def == nullptr) continue;
    PlacementOptions popts;
    popts.heuristic = options.heuristic;
    popts.use_id_view = options.use_id_views;
    popts.use_bloom_filter = options.use_bloom_filters;
    popts.bloom_fp_rate = options.bloom_fp_rate;
    SELTRIG_ASSIGN_OR_RETURN(plan, InstrumentPlan(*plan, *def, popts));
    instrumented = true;
    if (validation != nullptr) {
      validation->expected.push_back({def->name(), def->sensitive_table()});
    }
  }
  if (validation != nullptr) {
    // kHighestNode is the ablation that deliberately places above
    // non-commutative nodes and may drop the audit when no node exposes the
    // partition key; the linter's placement checks only hold elsewhere.
    const bool ablation = options.heuristic == PlacementHeuristic::kHighestNode;
    validation->check_domination = !ablation;
    validation->check_commutativity = !ablation;
  }
  if (instrumented && options.run_post_placement_rules) {
    SELTRIG_ASSIGN_OR_RETURN(plan,
                             OptimizeInstrumentedPlan(std::move(plan), opt_options));
  }
  return plan;
}

Result<StatementResult> Session::ExecuteExplain(const ast::ExplainStatement& stmt,
                                                const ExecOptions& options,
                                                const ActionContext* action) {
  SELTRIG_ASSIGN_OR_RETURN(
      PlanPtr plan,
      PrepareSelectPlan(*stmt.select, options, action, /*validation=*/nullptr));
  StatementResult result;
  result.plan_text = PlanToString(*plan);
  Column col;
  col.name = "plan";
  col.type = TypeId::kString;
  result.result.schema.AddColumn(col);
  std::string line;
  for (char c : result.plan_text) {
    if (c == '\n') {
      result.result.rows.push_back({Value::String(line)});
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) result.result.rows.push_back({Value::String(line)});
  return result;
}

Result<StatementResult> Session::RunSelectQuery(const ast::SelectStatement& stmt,
                                                const ExecOptions& options,
                                                bool top_level,
                                                const ActionContext* action,
                                                AccessedStateRegistry* registry) {
  PlanValidation validation;
  SELTRIG_ASSIGN_OR_RETURN(PlanPtr plan,
                           PrepareSelectPlan(stmt, options, action, &validation));

  // Execute.
  ExecContext ctx(&db_->catalog_, &ctx_);
  ctx.set_batch_size(options.batch_size);
  ctx.set_columnar(options.columnar);
  ctx.set_collect_profile(options.collect_profile);
  ctx.set_plan_validation(&validation, plan.get());
  ctx.set_validate_plans(options.validate_plans);
  // Morsel parallelism is a top-level-SELECT affair: trigger actions and
  // other nested statements always run serially (docs/CONCURRENCY.md).
  ctx.set_num_threads(top_level ? options.num_threads : 1);
  registry->set_limits(
      options.guards.max_accessed_ids > 0
          ? static_cast<size_t>(options.guards.max_accessed_ids)
          : 0,
      options.guards.overflow_policy);
  ctx.set_accessed(registry);
  Executor executor(&ctx);
  // Trigger-action SELECTs execute with the pseudo-row visible.
  Result<QueryResult> query_result = [&]() -> Result<QueryResult> {
    if (action != nullptr && action->row != nullptr) {
      SELTRIG_ASSIGN_OR_RETURN(std::vector<Row> raw,
                               executor.ExecutePlan(*plan, {action->row}));
      QueryResult qr;
      for (size_t i = 0; i < plan->schema.size(); ++i) {
        if (!plan->schema.column(i).hidden) qr.schema.AddColumn(plan->schema.column(i));
      }
      for (Row& row : raw) {
        Row stripped;
        for (size_t i = 0; i < plan->schema.size(); ++i) {
          if (!plan->schema.column(i).hidden) stripped.push_back(std::move(row[i]));
        }
        qr.rows.push_back(std::move(stripped));
      }
      return qr;
    }
    return executor.ExecuteQuery(*plan, options.max_rows);
  }();
  SELTRIG_RETURN_IF_ERROR(query_result.status());

  StatementResult result;
  result.result = std::move(query_result).value();
  result.stats = ctx.stats();
  result.plan_text = PlanToString(*plan);
  result.profile_text = std::move(ctx.profile_text());
  for (const auto& [name, state] : registry->states()) {
    result.accessed[name] = state.SortedIds();
  }
  return result;
}

Result<StatementResult> Session::ExecuteSelect(const ast::SelectStatement& stmt,
                                               const ExecOptions& options, int depth,
                                               const ActionContext* action) {
  const bool top_level = depth == 0 && action == nullptr;

  // Read phase: plan + execute under the shared lock (top level only; nested
  // SELECTs run under the top-level statement's lock).
  AccessedStateRegistry registry;
  Result<StatementResult> executed = [&]() -> Result<StatementResult> {
    if (!top_level) return RunSelectQuery(stmt, options, top_level, action, &registry);
    ReaderMutexLock read_lock(engine_mutex_);
    return RunSelectQuery(stmt, options, top_level, action, &registry);
  }();
  SELTRIG_RETURN_IF_ERROR(executed.status());
  StatementResult result = std::move(executed).value();

  bool any_overflow = false;
  for (const auto& [name, state] : registry.states()) {
    any_overflow = any_overflow || state.overflowed();
  }
  const bool fire_triggers =
      options.enable_select_triggers &&
      !db_->triggers_.AuditedExpressionNames().empty();
  if (!any_overflow && !fire_triggers) return result;

  // Write phase: loss accounting and trigger actions mutate shared state, so
  // re-acquire the lock exclusively (top level; a nested SELECT inherits the
  // top-level statement's writer lock). The window between the phases is
  // benign: ACCESSED is already fixed, and trigger actions observe the
  // database state current at their own execution (same as any cascading
  // statement).
  Status phase;
  if (top_level) {
    WriterMutexLock write_lock(engine_mutex_);
    phase = SelectWritePhase(registry, options, depth, top_level, fire_triggers);
  } else {
    AssertWriterHeld();
    phase = SelectWritePhase(registry, options, depth, top_level, fire_triggers);
  }
  SELTRIG_RETURN_IF_ERROR(phase);
  return result;
}

Status Session::SelectWritePhase(const AccessedStateRegistry& registry,
                                 const ExecOptions& options, int depth,
                                 bool top_level, bool fire_triggers) {
  // The write phase is the SELECT's commit unit: one undo scope, one journal
  // record, same framing as ExecuteStatement gives writer statements.
  TriggerTxnScope txn(this);
  const size_t undo_sp = trigger_undo_.Savepoint();
  const size_t wal_sp = wal_buffer_.size();

  // An ACCESSED set truncated under AccessedOverflowPolicy::kTruncate is a
  // (deliberate, bounded) audit loss; account for it before triggers fire.
  RecordAccessedOverflows(registry);

  // Fire SELECT triggers. BEFORE triggers run first: an error in their
  // actions (RAISE) denies the query and the result never reaches the
  // client. AFTER triggers then run; per Section II they execute even when
  // the client read only a prefix of the result.
  Status phase = Status::OK();
  if (fire_triggers) {
    phase = FireSelectTriggers(registry, options, depth, /*before_phase=*/true);
    if (phase.ok()) {
      phase = FireSelectTriggers(registry, options, depth, /*before_phase=*/false);
    }
  }
  // Journal before the writer lock is released so append order matches
  // commit order; the durability wait happens lock-free in FinishTopLevel.
  if (phase.ok() && top_level) phase = WalAppendLocked();
  if (!phase.ok()) {
    SELTRIG_RETURN_IF_ERROR(RollbackTriggerWrites(undo_sp, wal_sp));
    // Best-effort: the statement is already failing with `phase`; these are
    // surviving post-rollback records (quarantine transitions), and a second
    // journal error must not mask the original failure.
    if (top_level && wal_buffer_.size() > wal_sp) (void)WalAppendLocked();
    return phase;
  }
  return Status::OK();
}

Status Session::FireSelectTriggers(const AccessedStateRegistry& registry,
                                   const ExecOptions& options, int depth,
                                   bool before_phase) {
  for (const std::string& name : db_->triggers_.AuditedExpressionNames()) {
    const AuditExpressionDef* def = db_->audit_.Find(name);
    if (def == nullptr) continue;
    const AccessedState* state = registry.Find(name);

    // Bind ACCESSED: a single-column relation named after the partition key.
    std::vector<Row> accessed_rows = state == nullptr ? std::vector<Row>{} : state->ToRows();
    Result<Table*> table = db_->catalog_.GetTable(def->sensitive_table());
    SELTRIG_RETURN_IF_ERROR(table.status());
    VirtualTable accessed;
    Column key_col = (*table)->schema().column(def->partition_column());
    key_col.qualifier = "accessed";
    accessed.schema.AddColumn(key_col);
    accessed.rows = &accessed_rows;

    ActionContext action;
    action.accessed = &accessed;

    for (TriggerDef* trigger : db_->triggers_.SelectTriggersFor(name)) {
      if (trigger->before != before_phase) continue;
      SELTRIG_RETURN_IF_ERROR(RunTriggerGuarded(trigger, options, depth, &action));
    }
  }
  return Status::OK();
}

// --- Guarded trigger execution ------------------------------------------------

Session::TriggerTxnScope::TriggerTxnScope(Session* session) : session_(session) {
  if (session_->trigger_txn_depth_++ > 0) return;  // nested scopes share the log
  for (const std::string& name : session_->db_->catalog_.TableNames()) {
    // The loss-accounting table stays outside the transactional scope: its
    // rows must survive any rollback.
    if (name == Database::kAuditErrorsTable) continue;
    Result<Table*> table = session_->db_->catalog_.GetTable(name);
    if (table.ok()) (*table)->set_undo_log(&session_->trigger_undo_);
  }
}

Session::TriggerTxnScope::~TriggerTxnScope() {
  if (--session_->trigger_txn_depth_ > 0) return;
  for (const std::string& name : session_->db_->catalog_.TableNames()) {
    Result<Table*> table = session_->db_->catalog_.GetTable(name);
    if (table.ok()) (*table)->set_undo_log(nullptr);
  }
  session_->trigger_undo_.Clear();
}

Status Session::RunTriggerActions(TriggerDef* trigger, const ExecOptions& options,
                                  int depth, const ActionContext* action) {
  for (ast::StatementPtr& stmt : trigger->actions) {
    SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kTriggerAction));
    Result<StatementResult> result = ExecuteStatement(*stmt, options, depth + 1, action);
    SELTRIG_RETURN_IF_ERROR(result.status());
  }
  return Status::OK();
}

Status Session::RollbackTriggerWrites(size_t savepoint, size_t wal_savepoint) {
  // Rollback and view rebuilds must not themselves hit fault points, or a
  // single injected failure could corrupt the engine instead of isolating
  // the trigger.
  fault::ScopedSuspend suspend;
  // Journal parity: drop the undone physical ops from the pending record but
  // keep what memory keeps — loss-accounting rows (their table is excluded
  // from the undo scope), DDL, and quarantine transitions.
  if (wal_buffer_.size() > wal_savepoint) {
    std::vector<WalOp> kept;
    for (size_t i = wal_savepoint; i < wal_buffer_.size(); ++i) {
      WalOp& op = wal_buffer_[i];
      const bool physical = op.kind == WalOp::Kind::kInsert ||
                            op.kind == WalOp::Kind::kDelete ||
                            op.kind == WalOp::Kind::kUpdate;
      if (!physical || op.table == Database::kAuditErrorsTable) {
        kept.push_back(std::move(op));
      }
    }
    wal_buffer_.resize(wal_savepoint);
    for (WalOp& op : kept) wal_buffer_.push_back(std::move(op));
  }
  std::vector<std::string> touched;
  SELTRIG_RETURN_IF_ERROR(trigger_undo_.RollbackTo(savepoint, &touched));
  if (touched.empty()) return Status::OK();
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  // Sensitive-ID views were maintained incrementally while the now-undone
  // rows were written; rebuild every view over a touched table.
  for (const AuditExpressionDef* def : db_->audit_.All()) {
    bool affected = false;
    for (const std::string& table : def->referenced_tables()) {
      affected = affected || std::binary_search(touched.begin(), touched.end(), table);
    }
    if (!affected) continue;
    SELTRIG_RETURN_IF_ERROR(
        db_->audit_.RebuildView(db_->audit_.FindMutable(def->name())));
  }
  return Status::OK();
}

Status Session::RunTriggerGuarded(TriggerDef* trigger, const ExecOptions& options,
                                  int depth, const ActionContext* action) {
  // BEFORE-phase triggers always fail closed: erroring (RAISE) is how they
  // deny a query, so their failures propagate untouched -- but only after
  // their partial writes are rolled back.
  bool fail_open = !trigger->before &&
                   options.audit_failure_policy == AuditFailurePolicy::kFailOpen;
  int attempts = 1 + (fail_open ? std::max(0, options.guards.fail_open_retries) : 0);

  TriggerTxnScope txn(this);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    size_t savepoint = trigger_undo_.Savepoint();
    size_t wal_savepoint = wal_buffer_.size();
    last = RunTriggerActions(trigger, options, depth, action);
    if (last.ok()) {
      db_->triggers_.RecordSuccess(trigger->name);
      return Status::OK();
    }
    // The audit log must never hold a partial action list: undo this run
    // before retrying or reporting. A failed rollback is an engine-invariant
    // violation and always aborts the statement.
    SELTRIG_RETURN_IF_ERROR(RollbackTriggerWrites(savepoint, wal_savepoint));
  }
  if (trigger->before) return last;

  int failures = db_->triggers_.RecordFailure(trigger->name);
  bool quarantined = false;
  if (fail_open && options.guards.quarantine_after > 0 &&
      failures >= options.guards.quarantine_after) {
    // Cannot fail: `trigger` was just looked up and DROP TRIGGER is
    // serialized behind the engine writer lock this phase holds, so the
    // NotFound arm is unreachable here.
    (void)db_->triggers_.Quarantine(trigger->name);
    quarantined = true;
    // Quarantine is durable state: replay restores the circuit breaker so a
    // crashed-and-recovered database does not silently re-enable a trigger
    // that was being isolated.
    if (WalEnabled()) {
      wal_buffer_.push_back(WalOp::TriggerState(trigger->name, /*quarantined=*/true,
                                                failures));
    }
    notifications_.push_back(
        "trigger '" + trigger->name + "' quarantined after " +
        std::to_string(failures) +
        " consecutive failures: " + last.ToString());
  }
  RecordAuditError(trigger->name, last, attempts, quarantined);
  return fail_open ? Status::OK() : last;
}

void Session::RecordAuditError(const std::string& trigger_name, const Status& error,
                               int attempts, bool quarantined) {
  // Loss accounting must be as reliable as we can make it: no fault points,
  // no undo scope (the table is excluded in TriggerTxnScope), best-effort
  // otherwise.
  fault::ScopedSuspend suspend;
  Table* table = nullptr;
  if (db_->catalog_.HasTable(Database::kAuditErrorsTable)) {
    Result<Table*> found = db_->catalog_.GetTable(Database::kAuditErrorsTable);
    if (!found.ok()) return;
    table = *found;
  } else {
    Schema schema;
    auto add_col = [&schema](const char* name, TypeId type) {
      Column col;
      col.name = name;
      col.type = type;
      schema.AddColumn(col);
    };
    add_col("ts", TypeId::kString);
    add_col("userid", TypeId::kString);
    add_col("trigger_name", TypeId::kString);
    add_col("sql", TypeId::kString);
    add_col("error", TypeId::kString);
    add_col("attempts", TypeId::kInt);
    add_col("quarantined", TypeId::kBool);
    Result<Table*> created =
        db_->catalog_.CreateTable(Database::kAuditErrorsTable, std::move(schema));
    if (!created.ok()) return;
    table = *created;
    // The table is created outside any SQL statement, so journal a
    // synthesized DDL op: replay must recreate it before the loss rows.
    if (WalEnabled()) {
      wal_buffer_.push_back(WalOp::Statement(
          std::string("CREATE TABLE ") + Database::kAuditErrorsTable +
          " (ts VARCHAR, userid VARCHAR, trigger_name VARCHAR, sql VARCHAR, "
          "error VARCHAR, attempts INT, quarantined BOOLEAN)"));
    }
  }
  Row row = {Value::String(ctx_.now),          Value::String(ctx_.user),
             Value::String(trigger_name),      Value::String(ctx_.sql_text),
             Value::String(error.ToString()),  Value::Int(attempts),
             Value::Bool(quarantined)};
  Result<size_t> inserted = table->Insert(row);
  // Loss accounting is itself audit state: journal it so a crash between the
  // failed trigger and the statement's completion cannot erase the evidence
  // that audit records were lost.
  if (inserted.ok() && WalEnabled()) {
    wal_buffer_.push_back(
        WalOp::Insert(Database::kAuditErrorsTable, std::move(row)));
  }
}

void Session::RecordAccessedOverflows(const AccessedStateRegistry& registry) {
  for (const auto& [name, state] : registry.states()) {
    if (!state.overflowed()) continue;
    RecordAuditError("accessed:" + name,
                     Status::ResourceExhausted(
                         "ACCESSED cardinality cap reached; audit trail truncated"),
                     /*attempts=*/1, /*quarantined=*/false);
  }
}

// --- DML ----------------------------------------------------------------------

Status Session::CoerceRowToSchema(const Schema& schema, Row* row,
                                  const std::string& what) const {
  for (size_t i = 0; i < row->size(); ++i) {
    Value& v = (*row)[i];
    if (v.is_null()) continue;
    TypeId want = schema.column(i).type;
    if (v.type() == want) continue;
    if (v.type() == TypeId::kInt && want == TypeId::kDouble) {
      v = Value::Double(static_cast<double>(v.AsInt()));
      continue;
    }
    if (v.type() == TypeId::kDouble && want == TypeId::kInt) {
      v = Value::Int(static_cast<int64_t>(v.AsDouble()));
      continue;
    }
    return Status::ExecutionError(what + ": cannot store " +
                                  std::string(TypeName(v.type())) + " into column '" +
                                  schema.column(i).name + "' of type " +
                                  TypeName(want));
  }
  return Status::OK();
}

Result<StatementResult> Session::ExecuteInsert(const ast::InsertStatement& stmt,
                                               const ExecOptions& options, int depth,
                                               const ActionContext* action) {
  // Writer lock taken by the top-level statement's frame (ExecuteStatement or
  // a SELECT write phase); DML never runs outside it.
  AssertWriterHeld();
  Binder binder(&db_->catalog_);
  ConfigureBinder(&binder, action);
  SELTRIG_ASSIGN_OR_RETURN(BoundInsert bound, binder.BindInsert(stmt));
  SELTRIG_ASSIGN_OR_RETURN(Table * table, db_->catalog_.GetTable(bound.table));

  // Produce source rows.
  ExecContext ctx(&db_->catalog_, &ctx_);
  ctx.set_batch_size(options.batch_size);
  ctx.set_columnar(options.columnar);
  Executor executor(&ctx);
  std::vector<const Row*> outer;
  if (action != nullptr && action->row != nullptr) outer.push_back(action->row);
  SELTRIG_ASSIGN_OR_RETURN(std::vector<Row> source_rows,
                           executor.ExecutePlan(*bound.source, outer));

  // Visible column positions of the source plan.
  std::vector<int> visible;
  for (size_t i = 0; i < bound.source->schema.size(); ++i) {
    if (!bound.source->schema.column(i).hidden) visible.push_back(static_cast<int>(i));
  }

  std::vector<Row> inserted;
  for (Row& src : source_rows) {
    Row row(table->schema().size(), Value::Null());
    for (size_t i = 0; i < bound.column_map.size(); ++i) {
      row[bound.column_map[i]] = std::move(src[visible[i]]);
    }
    SELTRIG_RETURN_IF_ERROR(
        CoerceRowToSchema(table->schema(), &row, "insert into " + bound.table));
    Result<size_t> row_id = table->Insert(row);
    SELTRIG_RETURN_IF_ERROR(row_id.status());
    SELTRIG_RETURN_IF_ERROR(db_->audit_.OnInsert(bound.table, row));
    if (WalEnabled()) wal_buffer_.push_back(WalOp::Insert(bound.table, row));
    inserted.push_back(std::move(row));
  }

  SELTRIG_RETURN_IF_ERROR(FireDmlTriggers(bound.table, ast::DmlEvent::kInsert,
                                          /*old_rows=*/{}, inserted, options, depth));

  StatementResult result;
  result.result.affected_rows = static_cast<int64_t>(inserted.size());
  return result;
}

Result<StatementResult> Session::ExecuteUpdate(const ast::UpdateStatement& stmt,
                                               const ExecOptions& options, int depth,
                                               const ActionContext* action) {
  AssertWriterHeld();  // see ExecuteInsert
  Binder binder(&db_->catalog_);
  ConfigureBinder(&binder, action);
  SELTRIG_ASSIGN_OR_RETURN(BoundUpdate bound, binder.BindUpdate(stmt));
  SELTRIG_ASSIGN_OR_RETURN(Table * table, db_->catalog_.GetTable(bound.table));

  ExecContext ctx(&db_->catalog_, &ctx_);
  ctx.set_batch_size(options.batch_size);
  ctx.set_columnar(options.columnar);
  Executor executor(&ctx);  // installs the subquery runner for predicates

  // Phase 1: collect matching rows (avoids mutating while scanning).
  std::vector<size_t> row_ids;
  for (size_t id = 0; id < table->slot_count(); ++id) {
    if (!table->IsLive(id)) continue;
    const Row& row = table->GetRow(id);
    if (bound.filter != nullptr) {
      EvalContext ec;
      ec.row = &row;
      ec.exec = &ctx;
      if (action != nullptr && action->row != nullptr) ec.outer_rows = {action->row};
      SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*bound.filter, ec));
      if (!pass) continue;
    }
    row_ids.push_back(id);
  }

  // Phase 2: apply assignments (all reading the OLD row, per SQL semantics).
  std::vector<Row> old_rows, new_rows;
  for (size_t id : row_ids) {
    Row old_row = table->GetRow(id);
    Row new_row = old_row;
    EvalContext ec;
    ec.row = &old_row;
    ec.exec = &ctx;
    if (action != nullptr && action->row != nullptr) ec.outer_rows = {action->row};
    for (const auto& [col, expr] : bound.assignments) {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, ec));
      new_row[col] = std::move(v);
    }
    SELTRIG_RETURN_IF_ERROR(
        CoerceRowToSchema(table->schema(), &new_row, "update " + bound.table));
    SELTRIG_RETURN_IF_ERROR(table->Update(id, new_row));
    SELTRIG_RETURN_IF_ERROR(db_->audit_.OnUpdate(bound.table, old_row, new_row));
    if (WalEnabled()) {
      wal_buffer_.push_back(WalOp::Update(bound.table, old_row, new_row));
    }
    old_rows.push_back(std::move(old_row));
    new_rows.push_back(std::move(new_row));
  }

  SELTRIG_RETURN_IF_ERROR(FireDmlTriggers(bound.table, ast::DmlEvent::kUpdate,
                                          old_rows, new_rows, options, depth));

  StatementResult result;
  result.result.affected_rows = static_cast<int64_t>(row_ids.size());
  return result;
}

Result<StatementResult> Session::ExecuteDelete(const ast::DeleteStatement& stmt,
                                               const ExecOptions& options, int depth,
                                               const ActionContext* action) {
  AssertWriterHeld();  // see ExecuteInsert
  Binder binder(&db_->catalog_);
  ConfigureBinder(&binder, action);
  SELTRIG_ASSIGN_OR_RETURN(BoundDelete bound, binder.BindDelete(stmt));
  SELTRIG_ASSIGN_OR_RETURN(Table * table, db_->catalog_.GetTable(bound.table));

  ExecContext ctx(&db_->catalog_, &ctx_);
  ctx.set_batch_size(options.batch_size);
  ctx.set_columnar(options.columnar);
  Executor executor(&ctx);

  std::vector<size_t> row_ids;
  for (size_t id = 0; id < table->slot_count(); ++id) {
    if (!table->IsLive(id)) continue;
    const Row& row = table->GetRow(id);
    if (bound.filter != nullptr) {
      EvalContext ec;
      ec.row = &row;
      ec.exec = &ctx;
      if (action != nullptr && action->row != nullptr) ec.outer_rows = {action->row};
      SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*bound.filter, ec));
      if (!pass) continue;
    }
    row_ids.push_back(id);
  }

  std::vector<Row> deleted;
  for (size_t id : row_ids) {
    Row row = table->GetRow(id);
    SELTRIG_RETURN_IF_ERROR(table->Delete(id));
    SELTRIG_RETURN_IF_ERROR(db_->audit_.OnDelete(bound.table, row));
    if (WalEnabled()) wal_buffer_.push_back(WalOp::Delete(bound.table, row));
    deleted.push_back(std::move(row));
  }

  SELTRIG_RETURN_IF_ERROR(FireDmlTriggers(bound.table, ast::DmlEvent::kDelete, deleted,
                                          /*new_rows=*/{}, options, depth));

  StatementResult result;
  result.result.affected_rows = static_cast<int64_t>(row_ids.size());
  return result;
}

Status Session::FireDmlTriggers(const std::string& table, ast::DmlEvent event,
                                const std::vector<Row>& old_rows,
                                const std::vector<Row>& new_rows,
                                const ExecOptions& options, int depth) {
  std::vector<TriggerDef*> triggers = db_->triggers_.DmlTriggersFor(table, event);
  if (triggers.empty()) return Status::OK();

  Result<Table*> t = db_->catalog_.GetTable(table);
  SELTRIG_RETURN_IF_ERROR(t.status());

  // Pseudo-row schema: OLD-qualified columns, then NEW-qualified columns
  // (only the sides meaningful for the event).
  Schema row_schema;
  bool has_old = event != ast::DmlEvent::kInsert;
  bool has_new = event != ast::DmlEvent::kDelete;
  if (has_old) {
    for (size_t i = 0; i < (*t)->schema().size(); ++i) {
      Column col = (*t)->schema().column(i);
      col.qualifier = "old";
      row_schema.AddColumn(col);
    }
  }
  if (has_new) {
    for (size_t i = 0; i < (*t)->schema().size(); ++i) {
      Column col = (*t)->schema().column(i);
      col.qualifier = "new";
      row_schema.AddColumn(col);
    }
  }

  size_t count = has_old ? old_rows.size() : new_rows.size();
  for (size_t r = 0; r < count; ++r) {
    Row pseudo;
    if (has_old) pseudo.insert(pseudo.end(), old_rows[r].begin(), old_rows[r].end());
    if (has_new) pseudo.insert(pseudo.end(), new_rows[r].begin(), new_rows[r].end());

    ActionContext action;
    action.row_schema = &row_schema;
    action.row = &pseudo;
    for (TriggerDef* trigger : triggers) {
      if (!trigger->enabled) continue;  // quarantined mid-statement
      SELTRIG_RETURN_IF_ERROR(RunTriggerGuarded(trigger, options, depth, &action));
    }
  }
  return Status::OK();
}

// --- DDL / control ------------------------------------------------------------

Result<StatementResult> Session::ExecuteCreateTable(
    const ast::CreateTableStatement& stmt) {
  Schema schema;
  int pk = -1;
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    const ast::ColumnDef& def = stmt.columns[i];
    if (def.primary_key) {
      if (pk >= 0) {
        return Status::BindError("multiple PRIMARY KEY columns in " + stmt.table);
      }
      pk = static_cast<int>(i);
    }
    Column col;
    col.name = ToLower(def.name);
    col.type = def.type;
    schema.AddColumn(col);
  }
  Result<Table*> table = db_->catalog_.CreateTable(stmt.table, std::move(schema), pk);
  SELTRIG_RETURN_IF_ERROR(table.status());
  return StatementResult{};
}

Result<StatementResult> Session::ExecuteAlterTable(
    const ast::AlterTableStatement& stmt) {
  AssertWriterHeld();
  using Action = ast::AlterTableStatement::Action;
  Result<Table*> found = db_->catalog_.GetTable(ToLower(stmt.table));
  SELTRIG_RETURN_IF_ERROR(found.status());
  Table* table = *found;
  const std::string table_name = table->name();
  const std::string what = "alter table " + table_name;

  // --- Phase 1: metadata prevalidation --------------------------------------
  // The whole chain is simulated against a copy of the schema before anything
  // mutates, so every error below leaves the engine untouched.
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kCatalogAlterValidate));
  struct SimColumn {
    std::string name;
    TypeId type;
    std::string original;  // pre-ALTER name; empty for columns the chain adds
  };
  std::vector<SimColumn> sim;
  for (size_t i = 0; i < table->schema().size(); ++i) {
    const Column& col = table->schema().column(i);
    sim.push_back({col.name, col.type, col.name});
  }
  int pk_sim = table->primary_key_column();
  auto find_sim = [&sim](const std::string& name) -> int {
    for (size_t i = 0; i < sim.size(); ++i) {
      if (sim[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };

  struct NormalizedAction {
    Action::Kind kind = Action::Kind::kAdd;
    std::string name;
    std::string new_name;
    TypeId type = TypeId::kNull;
    Value default_value;  // kAdd: evaluated once, here
  };
  std::vector<NormalizedAction> acts;
  for (const Action& a : stmt.actions) {
    NormalizedAction act;
    act.kind = a.kind;
    act.name = ToLower(a.name);
    act.new_name = ToLower(a.new_name);
    act.type = a.type;
    switch (a.kind) {
      case Action::Kind::kAdd: {
        if (find_sim(act.name) >= 0) {
          return Status::BindError(what + ": column '" + act.name +
                                   "' already exists");
        }
        if (a.default_value != nullptr) {
          // DEFAULT must be a constant: bind against an empty schema and
          // evaluate now, before any storage mutation.
          Binder binder(&db_->catalog_);
          Schema empty;
          SELTRIG_ASSIGN_OR_RETURN(
              ExprPtr bound, binder.BindStandaloneExpr(*a.default_value, empty));
          ExecContext ctx(&db_->catalog_, &ctx_);
          Executor executor(&ctx);
          EvalContext ec;
          ec.exec = &ctx;
          SELTRIG_ASSIGN_OR_RETURN(act.default_value, EvalExpr(*bound, ec));
          if (!act.default_value.is_null() &&
              act.default_value.type() != act.type) {
            if (act.default_value.type() == TypeId::kInt &&
                act.type == TypeId::kDouble) {
              act.default_value =
                  Value::Double(static_cast<double>(act.default_value.AsInt()));
            } else if (act.default_value.type() == TypeId::kDouble &&
                       act.type == TypeId::kInt) {
              act.default_value =
                  Value::Int(static_cast<int64_t>(act.default_value.AsDouble()));
            } else {
              return Status::ExecutionError(
                  what + ": DEFAULT of type " +
                  std::string(TypeName(act.default_value.type())) +
                  " cannot initialize column '" + act.name + "' of type " +
                  TypeName(act.type));
            }
          }
        }
        sim.push_back({act.name, act.type, ""});
        break;
      }
      case Action::Kind::kDrop: {
        int idx = find_sim(act.name);
        if (idx < 0) return Status::BindError(what + ": no such column: " + act.name);
        if (idx == pk_sim) {
          return Status::ExecutionError(what + ": cannot drop primary key column '" +
                                        act.name + "'");
        }
        sim.erase(sim.begin() + idx);
        if (pk_sim > idx) --pk_sim;
        break;
      }
      case Action::Kind::kRename: {
        int idx = find_sim(act.name);
        if (idx < 0) return Status::BindError(what + ": no such column: " + act.name);
        int clash = find_sim(act.new_name);
        if (clash >= 0 && clash != idx) {
          return Status::BindError(what + ": column '" + act.new_name +
                                   "' already exists");
        }
        sim[idx].name = act.new_name;
        break;
      }
      case Action::Kind::kRetype: {
        int idx = find_sim(act.name);
        if (idx < 0) return Status::BindError(what + ": no such column: " + act.name);
        sim[idx].type = act.type;
        break;
      }
    }
    acts.push_back(std::move(act));
  }

  // Cumulative old-name -> final-name map, for rebinding audit definitions.
  AuditManager::ColumnRenames renames;
  for (const SimColumn& col : sim) {
    if (!col.original.empty() && col.original != col.name) {
      renames.push_back({col.original, col.name});
    }
  }

  // Fail-closed policy (still nothing mutated): an audit expression whose
  // partition key the chain drops or incompatibly retypes cannot be rebound.
  // With a live SELECT trigger the ALTER is rejected outright; without one
  // the expression and its view are cascade-dropped, never orphaned.
  auto compatible_retype = [](TypeId from, TypeId to) {
    return from == to || (from == TypeId::kInt && to == TypeId::kDouble) ||
           (from == TypeId::kDouble && to == TypeId::kInt);
  };
  std::vector<std::string> doomed;
  for (const AuditExpressionDef* def : db_->audit_.All()) {
    if (def->sensitive_table() != table_name) continue;
    const SimColumn* survived = nullptr;
    for (const SimColumn& col : sim) {
      if (col.original == def->partition_by()) survived = &col;
    }
    const TypeId old_type =
        table->schema().column(static_cast<size_t>(def->partition_column())).type;
    std::string reason;
    if (survived == nullptr) {
      reason = "drops its partition key '" + def->partition_by() + "'";
    } else if (!compatible_retype(old_type, survived->type)) {
      reason = "retypes its partition key '" + def->partition_by() + "' from " +
               std::string(TypeName(old_type)) + " to " + TypeName(survived->type);
    }
    if (reason.empty()) continue;
    if (!db_->triggers_.SelectTriggersFor(def->name()).empty()) {
      return Status::FailedPrecondition(
          what + ": " + reason + "; audit expression '" + def->name() +
          "' has live SELECT triggers bound to it -- drop the triggers (and "
          "the expression) first");
    }
    doomed.push_back(def->name());
  }

  // --- Phase 2: apply to storage under an inverse stack ----------------------
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kCatalogAlterApply));
  std::vector<std::function<void()>> inverses;
  auto rollback_storage = [&inverses]() {
    // Inverse application must not hit fault points: a second injected
    // failure here would corrupt the engine instead of failing the ALTER.
    fault::ScopedSuspend suspend;
    for (auto it = inverses.rbegin(); it != inverses.rend(); ++it) (*it)();
  };
  Status applied = Status::OK();
  for (const NormalizedAction& act : acts) {
    bool ambiguous = false;
    const int live = table->schema().TryResolve("", act.name, &ambiguous);
    switch (act.kind) {
      case Action::Kind::kAdd: {
        applied = table->AlterAddColumn(act.name, act.type, act.default_value);
        if (applied.ok()) {
          inverses.push_back([table]() { table->AlterDropLastColumn(); });
        }
        break;
      }
      case Action::Kind::kDrop: {
        Result<Table::DroppedColumn> dropped =
            table->AlterDropColumn(static_cast<size_t>(live));
        applied = dropped.status();
        if (applied.ok()) {
          // TableColumn is move-only; std::function requires copyable
          // captures, so the moved payload rides in a shared_ptr holder.
          auto holder = std::make_shared<Table::DroppedColumn>(std::move(*dropped));
          inverses.push_back(
              [table, holder]() { table->AlterRestoreColumn(std::move(*holder)); });
        }
        break;
      }
      case Action::Kind::kRename: {
        applied = table->AlterRenameColumn(static_cast<size_t>(live), act.new_name);
        if (applied.ok()) {
          const std::string old_name = act.name;
          const size_t idx = static_cast<size_t>(live);
          inverses.push_back([table, idx, old_name]() {
            // Renaming back to the name just vacated cannot collide, and a
            // rollback must run every inverse regardless.
            (void)table->AlterRenameColumn(idx, old_name);
          });
        }
        break;
      }
      case Action::Kind::kRetype: {
        const TypeId old_type =
            table->schema().column(static_cast<size_t>(live)).type;
        Result<TableColumn> old_data =
            table->AlterRetypeColumn(static_cast<size_t>(live), act.type);
        applied = old_data.status();
        if (applied.ok()) {
          auto holder = std::make_shared<TableColumn>(std::move(*old_data));
          const size_t idx = static_cast<size_t>(live);
          inverses.push_back([table, idx, holder, old_type]() {
            table->AlterRestoreColumnData(idx, std::move(*holder), old_type);
          });
        }
        break;
      }
    }
    if (!applied.ok()) {
      rollback_storage();
      return applied;
    }
  }
  // One committed ALTER = exactly one schema version step, regardless of how
  // many actions the chain holds: recovery replay and the replication applier
  // both rely on the resulting version being old + 1.
  const uint64_t old_version = table->schema_version();
  table->set_schema_version(old_version + 1);
  inverses.push_back(
      [table, old_version]() { table->set_schema_version(old_version); });

  // --- Phase 3: cascade-drop doomed definitions, rebind the rest -------------
  Status rebind = fault::Maybe(fault_points::kCatalogAlterRebind);
  std::vector<std::unique_ptr<AuditExpressionDef>> detached;
  if (rebind.ok()) {
    for (const std::string& name : doomed) {
      std::unique_ptr<AuditExpressionDef> def = db_->audit_.DetachForAlter(name);
      if (def != nullptr) detached.push_back(std::move(def));
    }
    rebind = db_->audit_.RebindAfterAlter(table_name, renames);
  }
  if (!rebind.ok()) {
    fault::ScopedSuspend suspend;
    for (auto& def : detached) db_->audit_.RestoreDetached(std::move(def));
    rollback_storage();
    // Storage is back on the old schema; recompute the views of every
    // definition referencing the table (partial rebinds already reverted
    // their own state, but views may have been rebuilt against the new
    // schema before the failure).
    for (const AuditExpressionDef* def : db_->audit_.All()) {
      for (const std::string& ref : def->referenced_tables()) {
        if (ref == table_name) {
          // Best-effort during rollback: a rebuild failure leaves the view
          // quarantined by its own error handling, never silently stale.
          (void)db_->audit_.RebuildView(db_->audit_.FindMutable(def->name()));
          break;
        }
      }
    }
    return rebind;
  }
  // Success: `detached` going out of scope destroys the cascade-dropped
  // definitions and their views — no orphans survive the statement.

  // --- Phase 4: stamp live trigger bindings, journal --------------------------
  const uint64_t new_version = table->schema_version();
  for (const AuditExpressionDef* def : db_->audit_.All()) {
    if (def->sensitive_table() != table_name) continue;
    // SelectTriggersFor returns enabled triggers only, so quarantined ones
    // keep their stale bound version until Rearm re-validates them.
    for (TriggerDef* t : db_->triggers_.SelectTriggersFor(def->name())) {
      t->bound_schema_version = def->bound_schema_version();
    }
  }
  for (ast::DmlEvent event :
       {ast::DmlEvent::kInsert, ast::DmlEvent::kUpdate, ast::DmlEvent::kDelete}) {
    for (TriggerDef* t : db_->triggers_.DmlTriggersFor(table_name, event)) {
      t->bound_schema_version = new_version;
    }
  }
  if (WalEnabled()) {
    // Logical DDL record stamped with the resulting version: replay
    // re-executes the statement and the replication applier NAKs any gap.
    wal_buffer_.push_back(WalOp::Ddl(table_name, stmt.source, new_version));
  }
  return StatementResult{};
}

Result<StatementResult> Session::ExecuteCreateTrigger(
    ast::CreateTriggerStatement& stmt) {
  auto def = std::make_unique<TriggerDef>();
  def->name = ToLower(stmt.name);
  def->is_select_trigger = stmt.is_select_trigger;
  def->before = stmt.before;
  if (stmt.is_select_trigger) {
    def->audit_expression = ToLower(stmt.audit_expression);
    const AuditExpressionDef* expr = db_->audit_.Find(def->audit_expression);
    if (expr == nullptr) {
      return Status::BindError("audit expression not found: " + def->audit_expression);
    }
    def->bound_schema_version = expr->bound_schema_version();
  } else {
    def->table = ToLower(stmt.table);
    Result<Table*> table = db_->catalog_.GetTable(def->table);
    if (!table.ok()) {
      return Status::BindError("table not found: " + def->table);
    }
    def->event = stmt.event;
    def->bound_schema_version = (*table)->schema_version();
  }
  def->actions = std::move(stmt.actions);
  def->definition_sql = stmt.source;
  SELTRIG_RETURN_IF_ERROR(db_->triggers_.CreateTrigger(std::move(def)));
  return StatementResult{};
}

Result<StatementResult> Session::ExecuteIf(ast::IfStatement& stmt,
                                           const ExecOptions& options, int depth,
                                           const ActionContext* action) {
  Binder binder(&db_->catalog_);
  ConfigureBinder(&binder, action);
  Schema empty;
  SELTRIG_ASSIGN_OR_RETURN(ExprPtr condition,
                           binder.BindStandaloneExpr(*stmt.condition, empty));

  ExecContext ctx(&db_->catalog_, &ctx_);
  Executor executor(&ctx);
  EvalContext ec;
  ec.exec = &ctx;
  if (action != nullptr && action->row != nullptr) ec.outer_rows = {action->row};
  SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*condition, ec));
  bool truthy = !v.is_null() && v.type() == TypeId::kBool && v.AsBool();
  if (truthy) {
    // A top-level IF already holds the writer lock (taken in the dispatch),
    // so its branch must run as a nested statement — re-locking the
    // non-recursive mutex from the same thread would deadlock.
    return ExecuteStatement(*stmt.then_branch, options,
                            depth == 0 ? 1 : depth, action);
  }
  return StatementResult{};
}

Result<StatementResult> Session::ExecuteNotify(const ast::NotifyStatement& stmt,
                                               const ExecOptions& options,
                                               const ActionContext* action) {
  (void)options;
  Binder binder(&db_->catalog_);
  ConfigureBinder(&binder, action);
  Schema empty;
  SELTRIG_ASSIGN_OR_RETURN(ExprPtr message, binder.BindStandaloneExpr(*stmt.message, empty));

  ExecContext ctx(&db_->catalog_, &ctx_);
  Executor executor(&ctx);
  EvalContext ec;
  ec.exec = &ctx;
  if (action != nullptr && action->row != nullptr) ec.outer_rows = {action->row};
  SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*message, ec));
  notifications_.push_back(v.type() == TypeId::kString ? v.AsString() : v.ToString());
  return StatementResult{};
}

Result<StatementResult> Session::ExecuteRaise(const ast::RaiseStatement& stmt,
                                              const ActionContext* action) {
  Binder binder(&db_->catalog_);
  ConfigureBinder(&binder, action);
  Schema empty;
  SELTRIG_ASSIGN_OR_RETURN(ExprPtr message, binder.BindStandaloneExpr(*stmt.message, empty));

  ExecContext ctx(&db_->catalog_, &ctx_);
  Executor executor(&ctx);
  EvalContext ec;
  ec.exec = &ctx;
  if (action != nullptr && action->row != nullptr) ec.outer_rows = {action->row};
  SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*message, ec));
  return Status::ExecutionError(v.type() == TypeId::kString ? v.AsString()
                                                            : v.ToString());
}

}  // namespace seltrig
