#include "engine/database.h"

#include <filesystem>
#include <utility>

#include "engine/snapshot.h"
#include "sql/parser.h"

namespace seltrig {

Database::Database()
    : default_session_(new Session(this)),
      audit_(&catalog_, default_session_->context()) {
  // Fail-closed re-arm after online schema changes: a quarantined SELECT
  // trigger whose audit expression was cascade-dropped by an ALTER TABLE must
  // not resume firing; one whose expression was successfully rebound picks up
  // the expression's current bound schema version on re-arm.
  triggers_.set_rearm_validator([this](TriggerDef* def) -> Status {
    if (!def->is_select_trigger) {
      Result<Table*> table = catalog_.GetTable(def->table);
      if (!table.ok()) {
        return Status::FailedPrecondition(
            "cannot re-arm trigger '" + def->name + "': table '" + def->table +
            "' no longer exists; drop and recreate the trigger");
      }
      def->bound_schema_version = (*table)->schema_version();
      return Status::OK();
    }
    const AuditExpressionDef* expr = audit_.Find(def->audit_expression);
    if (expr == nullptr) {
      return Status::FailedPrecondition(
          "cannot re-arm trigger '" + def->name + "': audit expression '" +
          def->audit_expression +
          "' no longer exists (dropped or cascade-dropped by ALTER TABLE); "
          "drop and recreate the trigger");
    }
    def->bound_schema_version = expr->bound_schema_version();
    return Status::OK();
  });
}

Database::~Database() = default;

std::unique_ptr<Session> Database::CreateSession() {
  return std::make_unique<Session>(this);
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  return default_session_->Execute(sql);
}

Result<StatementResult> Database::ExecuteWithOptions(const std::string& sql,
                                                     const ExecOptions& options) {
  return default_session_->ExecuteWithOptions(sql, options);
}

Status Database::ExecuteScript(const std::string& sql) {
  return default_session_->ExecuteScript(sql);
}

SessionContext* Database::session() { return default_session_->context(); }

const std::vector<std::string>& Database::notifications() const {
  return default_session_->notifications();
}

void Database::ClearNotifications() { default_session_->ClearNotifications(); }

Status Database::EnableWal(const std::string& dir, uint64_t epoch) {
  if (wal_ != nullptr) return Status::InvalidArgument("WAL already enabled");
  if (dir.empty()) return Status::InvalidArgument("WAL directory is empty");
  SELTRIG_ASSIGN_OR_RETURN(wal_, WalWriter::Open(dir + "/wal", epoch));
  data_dir_ = dir;
  return Status::OK();
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "CHECKPOINT requires a journaled database (Database::EnableWal)");
  }
  // The writer lock freezes table state and keeps sessions out of Append, so
  // the snapshot and the journal cut are mutually consistent: everything
  // committed before the checkpoint is in the snapshot, everything after is
  // in segments >= the recorded sequence.
  WriterMutexLock lock(&storage_mutex_);
  uint64_t new_seq = 0;
  SELTRIG_RETURN_IF_ERROR(wal_->Rotate(&new_seq));  // syncs the old segment
  SnapshotOptions opts;
  opts.include_policy = true;
  opts.wal_seq = new_seq;
  SELTRIG_RETURN_IF_ERROR(SaveSnapshot(this, data_dir_ + "/snapshot", opts));
  // Only after the snapshot is atomically in place may the journal history
  // it supersedes be dropped.
  return wal_->DeleteSegmentsBelow(new_seq);
}

Result<PlanPtr> Database::PlanSelect(const std::string& sql,
                                     const OptimizerOptions& options) {
  SELTRIG_ASSIGN_OR_RETURN(ast::StatementPtr stmt, ParseSql(sql));
  if (stmt->kind != ast::StatementKind::kSelect) {
    return Status::InvalidArgument("PlanSelect expects a SELECT statement");
  }
  auto& wrapper = static_cast<ast::SelectWrapper&>(*stmt);
  ReaderMutexLock lock(&storage_mutex_);
  Binder binder(&catalog_);
  SELTRIG_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelect(*wrapper.select));
  OptimizerOptions opt_options = options;
  opt_options.catalog = &catalog_;
  for (const AuditExpressionDef* def : audit_.All()) {
    opt_options.audit_keys.push_back(
        {def->sensitive_table(), def->partition_column(), def->partition_by()});
  }
  return OptimizePlan(std::move(plan), opt_options);
}

}  // namespace seltrig
