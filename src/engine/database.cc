#include "engine/database.h"

#include <utility>

#include "sql/parser.h"

namespace seltrig {

Database::Database()
    : default_session_(new Session(this)),
      audit_(&catalog_, default_session_->context()) {}

Database::~Database() = default;

std::unique_ptr<Session> Database::CreateSession() {
  return std::make_unique<Session>(this);
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  return default_session_->Execute(sql);
}

Result<StatementResult> Database::ExecuteWithOptions(const std::string& sql,
                                                     const ExecOptions& options) {
  return default_session_->ExecuteWithOptions(sql, options);
}

Status Database::ExecuteScript(const std::string& sql) {
  return default_session_->ExecuteScript(sql);
}

SessionContext* Database::session() { return default_session_->context(); }

const std::vector<std::string>& Database::notifications() const {
  return default_session_->notifications();
}

void Database::ClearNotifications() { default_session_->ClearNotifications(); }

Result<PlanPtr> Database::PlanSelect(const std::string& sql,
                                     const OptimizerOptions& options) {
  SELTRIG_ASSIGN_OR_RETURN(ast::StatementPtr stmt, ParseSql(sql));
  if (stmt->kind != ast::StatementKind::kSelect) {
    return Status::InvalidArgument("PlanSelect expects a SELECT statement");
  }
  auto& wrapper = static_cast<ast::SelectWrapper&>(*stmt);
  std::shared_lock<std::shared_mutex> lock(storage_mutex_);
  Binder binder(&catalog_);
  SELTRIG_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelect(*wrapper.select));
  OptimizerOptions opt_options = options;
  opt_options.catalog = &catalog_;
  for (const AuditExpressionDef* def : audit_.All()) {
    opt_options.audit_keys.push_back(
        {def->sensitive_table(), def->partition_column(), def->partition_by()});
  }
  return OptimizePlan(std::move(plan), opt_options);
}

}  // namespace seltrig
