// Bulk-loads CSV text into an existing table, coercing fields to the table's
// column types (empty fields become NULL). DML triggers and audit-view
// maintenance fire exactly as they would for INSERT statements.

#ifndef SELTRIG_ENGINE_CSV_LOADER_H_
#define SELTRIG_ENGINE_CSV_LOADER_H_

#include <string>

#include "common/status.h"
#include "engine/database.h"

namespace seltrig {

// Returns the number of rows loaded. With `has_header`, the first record is
// validated against the table's column names (case-insensitive, in order).
Result<int64_t> LoadCsvIntoTable(Database* db, const std::string& table,
                                 const std::string& csv_text, bool has_header);

// Convenience: reads `path` and delegates to LoadCsvIntoTable.
Result<int64_t> LoadCsvFileIntoTable(Database* db, const std::string& table,
                                     const std::string& path, bool has_header);

}  // namespace seltrig

#endif  // SELTRIG_ENGINE_CSV_LOADER_H_
