#include "engine/csv_loader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/string_util.h"
#include "types/date.h"

namespace seltrig {

namespace {

Result<Value> CoerceField(const std::string& field, TypeId type,
                          const std::string& column) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case TypeId::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("CSV: '" + field + "' is not an INT for column " +
                                       column);
      }
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("CSV: '" + field + "' is not a DOUBLE for column " +
                                       column);
      }
      return Value::Double(v);
    }
    case TypeId::kString:
      return Value::String(field);
    case TypeId::kDate: {
      SELTRIG_ASSIGN_OR_RETURN(int32_t days, ParseDate(field));
      return Value::Date(days);
    }
    case TypeId::kBool: {
      std::string lower = ToLower(field);
      if (lower == "true" || lower == "1" || lower == "t") return Value::Bool(true);
      if (lower == "false" || lower == "0" || lower == "f") return Value::Bool(false);
      return Status::InvalidArgument("CSV: '" + field + "' is not a BOOLEAN for column " +
                                     column);
    }
    case TypeId::kNull:
      return Value::Null();
  }
  return Status::Internal("bad column type");
}

}  // namespace

Result<int64_t> LoadCsvIntoTable(Database* db, const std::string& table_name,
                                 const std::string& csv_text, bool has_header) {
  SELTRIG_ASSIGN_OR_RETURN(Table * table, db->catalog()->GetTable(table_name));
  const Schema& schema = table->schema();

  std::vector<std::string> records = SplitCsvRecords(csv_text);
  size_t start = 0;
  if (has_header && !records.empty()) {
    SELTRIG_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(records[0]));
    if (header.size() != schema.size()) {
      return Status::InvalidArgument("CSV header has " + std::to_string(header.size()) +
                                     " columns; table " + table_name + " has " +
                                     std::to_string(schema.size()));
    }
    for (size_t i = 0; i < header.size(); ++i) {
      if (ToLower(header[i]) != schema.column(i).name) {
        return Status::InvalidArgument("CSV header column '" + header[i] +
                                       "' does not match table column '" +
                                       schema.column(i).name + "'");
      }
    }
    start = 1;
  }

  // Loading goes through the SQL layer so that DML triggers and audit-view
  // maintenance observe every row. Rows are batched into multi-row INSERTs.
  int64_t loaded = 0;
  for (size_t r = start; r < records.size(); ++r) {
    if (records[r].empty()) continue;
    SELTRIG_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(records[r]));
    if (fields.size() != schema.size()) {
      return Status::InvalidArgument("CSV record " + std::to_string(r + 1) + " has " +
                                     std::to_string(fields.size()) + " fields; expected " +
                                     std::to_string(schema.size()));
    }
    std::string sql = "INSERT INTO " + table_name + " VALUES (";
    for (size_t c = 0; c < fields.size(); ++c) {
      SELTRIG_ASSIGN_OR_RETURN(Value v, CoerceField(fields[c], schema.column(c).type,
                                                    schema.column(c).name));
      if (c > 0) sql += ", ";
      if (v.is_null()) {
        sql += "NULL";
      } else if (v.type() == TypeId::kString) {
        std::string escaped;
        for (char ch : v.AsString()) {
          escaped += ch;
          if (ch == '\'') escaped += '\'';
        }
        sql += "'" + escaped + "'";
      } else if (v.type() == TypeId::kDate) {
        sql += "DATE '" + FormatDate(v.AsDate()) + "'";
      } else {
        sql += v.ToString();
      }
    }
    sql += ")";
    SELTRIG_RETURN_IF_ERROR(db->Execute(sql).status());
    ++loaded;
  }
  return loaded;
}

Result<int64_t> LoadCsvFileIntoTable(Database* db, const std::string& table,
                                     const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsvIntoTable(db, table, buffer.str(), has_header);
}

}  // namespace seltrig
