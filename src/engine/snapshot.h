// Database snapshots: save the catalog and every table's contents to a
// directory; load them back into a fresh Database.
//
// Format: <dir>/schema.sql holds CREATE TABLE statements; <dir>/<table>.csv
// holds each table's rows (with a header); <dir>/MANIFEST holds the journal
// cut sequence and quarantine state (always written; wal_seq 0 marks a plain
// snapshot taken outside any journal).
//
// Policy capture: by default audit expressions and triggers are NOT saved —
// their definitions are security policy and are expected to live in
// versioned setup scripts, re-applied after a load (the ID views are rebuilt
// from data at CREATE AUDIT EXPRESSION time anyway). Checkpoints of a
// journaled database set SnapshotOptions::include_policy so recovery is
// self-contained; see the trade-off note on the field.

#ifndef SELTRIG_ENGINE_SNAPSHOT_H_
#define SELTRIG_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace seltrig {

struct SnapshotOptions {
  // Append a policy section to schema.sql carrying the CREATE AUDIT
  // EXPRESSION / CREATE TRIGGER statements (their original SQL), and record
  // quarantine state in MANIFEST. SECURITY TRADE-OFF: with this on, the
  // snapshot directory reveals what is audited and how — anyone who can read
  // the snapshot learns the audit policy, and anyone who can write it can
  // weaken the policy that a recovery will re-arm. Keep checkpoint
  // directories at least as protected as the audit log itself. Off by
  // default: plain snapshots then stay policy-free as before.
  bool include_policy = false;
  // Journal segment sequence this snapshot supersedes: recovery replays only
  // segments >= wal_seq over it. 0 = snapshot of an unjournaled database.
  uint64_t wal_seq = 0;
};

// What MANIFEST records. A missing MANIFEST (hand-built snapshot) reads as
// NotFound; recovery treats that — and an explicit wal_seq 0 — as "no journal
// cut recorded" and refuses to replay an existing journal over the snapshot
// (see RecoverDatabase), since doing so would double-apply commits.
struct SnapshotManifest {
  uint64_t wal_seq = 0;
  struct QuarantineEntry {
    std::string trigger;
    int failures = 0;
  };
  std::vector<QuarantineEntry> quarantined;
  // Per-table schema version counters. schema.sql writes the FINAL schema as
  // a plain CREATE TABLE, which resets the counter to 1 on load; these
  // entries restore the version history cut so post-snapshot DDL records
  // (stamped old + 1) replay against the right baseline. Only tables that
  // have been ALTERed (version > 1) are recorded; readers predating this key
  // ignore it.
  struct SchemaVersionEntry {
    std::string table;
    uint64_t version = 1;
  };
  std::vector<SchemaVersionEntry> schema_versions;
};

// Writes schema.sql plus one CSV per table into `dir` (created if needed).
// Every file and directory is fsynced, then the snapshot is swapped into
// place with renames so that a crash at any instant leaves either the old or
// the new snapshot fully intact (never neither); see SaveSnapshot in
// snapshot.cc for the exact sequence and the crash states recovery resolves.
Status SaveSnapshot(Database* db, const std::string& dir,
                    const SnapshotOptions& options = SnapshotOptions());

// Replays schema.sql and bulk-loads every CSV. Fails if any table to be
// created already exists. Policy statements (the include_policy section) are
// applied only after all CSVs are loaded, so DML triggers do not fire during
// the load; quarantine state from MANIFEST is restored last. Loaded rows are
// NOT journaled — Database::Recover enables the WAL only afterwards.
Status LoadSnapshot(Database* db, const std::string& dir);

Result<SnapshotManifest> ReadSnapshotManifest(const std::string& dir);

// Rewrites <dir>/MANIFEST (fsynced). Used by SaveSnapshot and by recovery to
// stamp the journal cut onto a plain snapshot it is bootstrapping from.
Status WriteSnapshotManifest(const std::string& dir,
                             const SnapshotManifest& manifest);

}  // namespace seltrig

#endif  // SELTRIG_ENGINE_SNAPSHOT_H_
