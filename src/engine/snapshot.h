// Database snapshots: save the catalog (DDL + audit expressions + triggers
// are NOT captured -- see below) and every table's contents to a directory;
// load them back into a fresh Database.
//
// Format: <dir>/schema.sql holds CREATE TABLE statements; <dir>/<table>.csv
// holds each table's rows (with a header). Audit expressions and triggers
// are intentionally excluded: their definitions are security policy and are
// expected to live in versioned setup scripts, re-applied after a load (the
// ID views are rebuilt from data at CREATE AUDIT EXPRESSION time anyway).

#ifndef SELTRIG_ENGINE_SNAPSHOT_H_
#define SELTRIG_ENGINE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "engine/database.h"

namespace seltrig {

// Writes schema.sql plus one CSV per table into `dir` (created if needed).
Status SaveSnapshot(Database* db, const std::string& dir);

// Replays schema.sql and bulk-loads every CSV. Fails if any table to be
// created already exists.
Status LoadSnapshot(Database* db, const std::string& dir);

}  // namespace seltrig

#endif  // SELTRIG_ENGINE_SNAPSHOT_H_
