// Database snapshots: save the catalog and every table's contents to a
// directory; load them back into a fresh Database.
//
// Format: <dir>/schema.sql holds CREATE TABLE statements; <dir>/<table>.csv
// holds each table's rows (with a header); <dir>/MANIFEST holds the journal
// cut sequence and quarantine state (only written when SnapshotOptions are
// non-default).
//
// Policy capture: by default audit expressions and triggers are NOT saved —
// their definitions are security policy and are expected to live in
// versioned setup scripts, re-applied after a load (the ID views are rebuilt
// from data at CREATE AUDIT EXPRESSION time anyway). Checkpoints of a
// journaled database set SnapshotOptions::include_policy so recovery is
// self-contained; see the trade-off note on the field.

#ifndef SELTRIG_ENGINE_SNAPSHOT_H_
#define SELTRIG_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace seltrig {

struct SnapshotOptions {
  // Append a policy section to schema.sql carrying the CREATE AUDIT
  // EXPRESSION / CREATE TRIGGER statements (their original SQL), and record
  // quarantine state in MANIFEST. SECURITY TRADE-OFF: with this on, the
  // snapshot directory reveals what is audited and how — anyone who can read
  // the snapshot learns the audit policy, and anyone who can write it can
  // weaken the policy that a recovery will re-arm. Keep checkpoint
  // directories at least as protected as the audit log itself. Off by
  // default: plain snapshots then stay policy-free as before.
  bool include_policy = false;
  // Journal segment sequence this snapshot supersedes: recovery replays only
  // segments >= wal_seq over it. 0 = snapshot of an unjournaled database.
  uint64_t wal_seq = 0;
};

// What MANIFEST records (absent in pre-journal snapshots: ReadSnapshotManifest
// then returns NotFound and recovery treats the snapshot as wal_seq 0).
struct SnapshotManifest {
  uint64_t wal_seq = 0;
  struct QuarantineEntry {
    std::string trigger;
    int failures = 0;
  };
  std::vector<QuarantineEntry> quarantined;
};

// Writes schema.sql plus one CSV per table into `dir` (created if needed;
// written to a temp directory and atomically swapped into place). MANIFEST is
// written when options are non-default.
Status SaveSnapshot(Database* db, const std::string& dir,
                    const SnapshotOptions& options = SnapshotOptions());

// Replays schema.sql and bulk-loads every CSV. Fails if any table to be
// created already exists. Policy statements (the include_policy section) are
// applied only after all CSVs are loaded, so DML triggers do not fire during
// the load; quarantine state from MANIFEST is restored last. Loaded rows are
// NOT journaled — Database::Recover enables the WAL only afterwards.
Status LoadSnapshot(Database* db, const std::string& dir);

Result<SnapshotManifest> ReadSnapshotManifest(const std::string& dir);

}  // namespace seltrig

#endif  // SELTRIG_ENGINE_SNAPSHOT_H_
