// Database: the shared engine core. Owns the catalog (table storage), the
// audit subsystem (expressions + sensitive-ID views), the trigger registry,
// and the reader–writer lock that coordinates sessions. Per-connection
// execution state — options, SQL_TEXT/user/clock context, notifications,
// trigger undo — lives in Session (engine/session.h); Database keeps a
// built-in default session so single-connection callers can use it directly.

#ifndef SELTRIG_ENGINE_DATABASE_H_
#define SELTRIG_ENGINE_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit_expression.h"
#include "audit/trigger.h"
#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/session.h"
#include "storage/wal.h"

namespace seltrig {

struct RecoveryStats;

// Hook a replication shipper installs on a primary so statement
// acknowledgement can wait for follower acks (docs/REPLICATION.md). Sessions
// call WaitReplicated after their commit record is locally durable and
// before acknowledging the statement; the implementation decides what the
// configured ack mode requires (async: return immediately; sync: wait until
// every healthy sync follower acked `pos`, degrading followers that exceed
// their ack timeout rather than wedging the primary).
class ReplicationWaiter {
 public:
  virtual ~ReplicationWaiter() = default;
  virtual Status WaitReplicated(const WalPosition& pos) = 0;
};

class Database {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Opens a new connection over this shared core. Sessions may execute
  // concurrently from different threads; the Database's reader–writer lock
  // coordinates them (see engine/session.h and docs/CONCURRENCY.md). The
  // returned session must not outlive the Database.
  std::unique_ptr<Session> CreateSession();

  // --- Single-connection convenience API (delegates to a default session) ---
  Result<QueryResult> Execute(const std::string& sql);
  Result<StatementResult> ExecuteWithOptions(const std::string& sql,
                                             const ExecOptions& options);
  Status ExecuteScript(const std::string& sql);

  // Parses, binds and logically optimizes a SELECT without executing it.
  Result<PlanPtr> PlanSelect(const std::string& sql,
                             const OptimizerOptions& options = OptimizerOptions());

  Catalog* catalog() { return &catalog_; }
  AuditManager* audit_manager() { return &audit_; }
  TriggerManager* trigger_manager() { return &triggers_; }
  Session* default_session() { return default_session_.get(); }
  // The default session's user / SQL_TEXT / clock state.
  SessionContext* session();

  // Messages emitted by NOTIFY actions of the default session.
  const std::vector<std::string>& notifications() const;
  void ClearNotifications();

  // Reader–writer lock over everything sessions share: table storage, the
  // catalog, sensitive-ID views, and trigger definitions. SELECT execution
  // holds it shared; DML, DDL, incremental view maintenance, and trigger
  // actions hold it exclusively. Exposed for tests and embedders that touch
  // the catalog directly while sessions are live (e.g. bulk loaders must
  // hold it exclusively). SharedMutex keeps the standard lock/lock_shared
  // method names, so std::unique_lock / std::shared_lock still work.
  SharedMutex& storage_mutex() SELTRIG_RETURN_CAPABILITY(storage_mutex_) {
    return storage_mutex_;
  }

  // Tells the thread-safety analysis the exclusive (writer) capability is
  // held. The seam for dynamically-established holds the analysis cannot see
  // statically: trigger actions re-entering the engine under the writer lock
  // taken frames above, and recovery paths that own the database exclusively
  // before any session exists.
  void AssertWriterHeld() const SELTRIG_ASSERT_CAPABILITY(storage_mutex_) {}

  // Name of the fail-open loss-accounting side table (created on demand):
  // (ts, userid, trigger_name, sql, error, attempts, quarantined).
  static constexpr const char* kAuditErrorsTable = "seltrig_audit_errors";

  // --- Durability (storage/wal.h, engine/recovery.h; docs/DURABILITY.md) ---

  // Attaches a write-ahead journal under `dir` (`<dir>/wal/`, created if
  // needed; a fresh segment is always started, stamped with failover epoch
  // `epoch`). From then on every committed top-level statement is journaled
  // before it is acknowledged. Call before concurrent sessions start —
  // typically indirectly, via Database::Recover.
  // Note: bulk loads that write tables directly (CSV/TPC-H loaders) bypass
  // the journal; run Checkpoint() after them.
  Status EnableWal(const std::string& dir, uint64_t epoch = 0);
  WalWriter* wal() { return wal_.get(); }
  // The directory EnableWal was given ("" when the WAL is disabled); the
  // checkpoint snapshot lives at <data_dir>/snapshot.
  const std::string& data_dir() const { return data_dir_; }

  // CHECKPOINT: under the writer lock, flushes the journal, rotates to a new
  // segment, saves a snapshot (with the security policy and quarantine state)
  // that records the new segment, then deletes the covered segments.
  // Requires EnableWal.
  Status Checkpoint();

  // Opens (or creates) a durable database at `dir`: loads the checkpoint
  // snapshot if present, replays the journal over it (truncating any torn
  // tail), rebuilds the sensitive-ID views, re-arms triggers, and enables
  // the WAL on a fresh segment. Implemented in engine/recovery.cc.
  static Result<std::unique_ptr<Database>> Recover(const std::string& dir,
                                                   RecoveryStats* stats = nullptr);

  // Crash-failover promotion of a follower's durable directory: like Recover
  // — the torn-tail truncation IS the cut back to the follower's verified
  // prefix — but the fresh segment opens under epoch max_epoch + 1, so
  // segments a deposed primary keeps writing under the old epoch are
  // rejected everywhere. For promoting a live follower, see
  // ReplicaApplier::Promote (replication/applier.h).
  static Result<std::unique_ptr<Database>> Promote(const std::string& dir,
                                                   RecoveryStats* stats = nullptr);

  // --- Replication (src/replication/; docs/REPLICATION.md) ------------------

  // Installs (or clears, with nullptr) the shipper's ack-wait hook. The
  // waiter must outlive every in-flight statement; LogShipper clears it
  // before stopping.
  void set_replication_waiter(ReplicationWaiter* waiter) {
    replication_waiter_.store(waiter, std::memory_order_release);
  }
  ReplicationWaiter* replication_waiter() const {
    return replication_waiter_.load(std::memory_order_acquire);
  }

 private:
  friend class Session;

  Catalog catalog_;
  // Declared before audit_: the AuditManager borrows the default session's
  // context for its clock.
  std::unique_ptr<Session> default_session_;
  AuditManager audit_;
  TriggerManager triggers_;
  mutable SharedMutex storage_mutex_;
  // Non-null once EnableWal succeeded. Sessions append through it while
  // holding the writer lock (see Session::WalAppendLocked).
  std::unique_ptr<WalWriter> wal_;
  std::string data_dir_;
  std::atomic<ReplicationWaiter*> replication_waiter_{nullptr};
};

}  // namespace seltrig

#endif  // SELTRIG_ENGINE_DATABASE_H_
