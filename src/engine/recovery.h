// Crash recovery: rebuild a Database from a durable directory laid out as
//
//   <dir>/snapshot/   latest checkpoint (engine/snapshot.h; optional)
//   <dir>/wal/        journal segments (storage/wal.h)
//
// Recovery loads the snapshot (tables, data, policy, quarantine state), then
// replays every journal segment at or above the snapshot's recorded cut in
// ascending order. Each record is one committed top-level statement and is
// applied all-or-nothing; the first torn or corrupt record marks the crash
// frontier — it and everything after it was never acknowledged, so the tail
// is truncated and replay stops. Physical row ops are applied directly to
// tables (triggers do NOT re-fire: their writes were journaled as part of the
// original commit); logical statement ops (DDL, policy) re-execute their SQL;
// trigger-state ops restore the quarantine circuit breaker. Sensitive-ID
// views are rebuilt once at the end.
//
// Invariant (enforced by tools/seltrig_crashtest.cc at every fault point):
// after recovery, every acknowledged statement's effects — including every
// audit-log row for an acknowledged SELECT — are present, and no
// unacknowledged statement left any effect.

#ifndef SELTRIG_ENGINE_RECOVERY_H_
#define SELTRIG_ENGINE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "engine/database.h"

namespace seltrig {

struct RecoveryStats {
  bool snapshot_loaded = false;
  // The journal cut recorded in the snapshot's MANIFEST (0 = none).
  uint64_t snapshot_wal_seq = 0;
  uint64_t segments_replayed = 0;
  uint64_t commits_replayed = 0;
  uint64_t ops_applied = 0;
  // A torn/corrupt tail was found and truncated (the crash frontier).
  bool truncated_torn_tail = false;
  // Highest failover epoch seen across the replayed segments (0 when the
  // journal predates replication or is empty). Epochs must be non-decreasing
  // in segment order; a regression fails recovery.
  uint64_t max_epoch = 0;
};

struct RecoverOptions {
  // Re-arm the journal on a fresh segment once replay finishes. Followers
  // pass false: the replication applier writes the received segments itself
  // and the follower database must not journal replayed statements again.
  bool enable_wal = true;
  // Failover promotion: open the new segment under max_epoch + 1 instead of
  // max_epoch, so anything a deposed primary still writes under the old
  // epoch is rejected by followers and by later recoveries.
  bool promote = false;
};

// Rebuilds a database from `dir` and returns it with the WAL enabled on a
// fresh segment (see RecoverOptions). A missing or empty directory is not an
// error: it yields an empty journaled database. This is Database::Recover's
// implementation.
Result<std::unique_ptr<Database>> RecoverDatabase(
    const std::string& dir, RecoveryStats* stats,
    const RecoverOptions& options = RecoverOptions());

// Applies one journaled commit record to `db`, op by op. `live` = a
// replication applier feeding a follower that concurrent sessions may read:
// physical row ops and trigger-state ops then take the database's writer
// lock, and the sensitive-ID views over touched tables are rebuilt before
// the lock is released (replay skips both — recovery owns the database
// exclusively and rebuilds views once at the end). Logical kStatement ops
// always run through the default session, which takes its own locks.
Status ApplyWalCommit(Database* db, const std::vector<WalOp>& commit, bool live,
                      RecoveryStats* stats = nullptr);

}  // namespace seltrig

#endif  // SELTRIG_ENGINE_RECOVERY_H_
