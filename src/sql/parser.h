// Recursive-descent SQL parser producing the AST in sql/ast.h.

#ifndef SELTRIG_SQL_PARSER_H_
#define SELTRIG_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace seltrig {

// Parses a single SQL statement (a trailing semicolon is allowed).
Result<ast::StatementPtr> ParseSql(const std::string& sql);

// Parses a semicolon-separated sequence of statements.
Result<std::vector<ast::StatementPtr>> ParseSqlScript(const std::string& sql);

}  // namespace seltrig

#endif  // SELTRIG_SQL_PARSER_H_
