// SQL tokenizer. Identifiers and keywords are case-insensitive; identifiers
// are normalized to lower case.

#ifndef SELTRIG_SQL_LEXER_H_
#define SELTRIG_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace seltrig {

enum class TokenType : uint8_t {
  kIdentifier,
  kKeyword,  // normalized lower-case keyword in `text`
  kInteger,
  kFloat,
  kString,  // contents without quotes, '' unescaped
  kOperator,  // = <> != < <= > >= + - * /
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // identifier/keyword (lower-case), operator, or string body
  int64_t int_value = 0;
  double float_value = 0.0;
  int position = 0;  // byte offset, for error messages
};

// Tokenizes `sql`. The token stream always ends with a kEof token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

// True if `word` (lower-case) is a reserved SQL keyword in this dialect.
bool IsKeyword(const std::string& word);

}  // namespace seltrig

#endif  // SELTRIG_SQL_LEXER_H_
