// Abstract syntax tree produced by the parser. Names are unresolved (the
// binder maps them to catalog objects and column indexes).

#ifndef SELTRIG_SQL_AST_H_
#define SELTRIG_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "types/data_type.h"

namespace seltrig::ast {

struct SelectStatement;

enum class ExprType : uint8_t {
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kDateLiteral,  // int_value holds days since epoch
  kBoolLiteral,
  kNullLiteral,
  kColumnRef,   // qualifier (optional) + name
  kUnaryOp,     // op: "-", "not"
  kBinaryOp,    // op: + - * / = <> < <= > >= and or
  kBetween,     // children: {operand, lo, hi}; negated
  kInList,      // children: {operand, v1, v2, ...}; negated
  kInSubquery,  // children: {operand}; subquery; negated
  kExists,      // subquery; negated
  kScalarSubquery,
  kIsNull,  // children: {operand}; negated
  kLike,    // children: {operand, pattern}; negated
  kCase,    // children: {when, then, ...[, else]}; has_else
  kFunctionCall,  // name + children; `distinct` for aggregate calls
  kStar,          // COUNT(*) argument marker
};

struct Expression {
  explicit Expression(ExprType t) : type(t) {}
  ~Expression();

  ExprType type;
  int64_t int_value = 0;
  double float_value = 0.0;
  std::string string_value;
  bool bool_value = false;

  std::string qualifier;  // kColumnRef
  std::string name;       // kColumnRef / kFunctionCall (lower-case)
  std::string op;         // kUnaryOp / kBinaryOp (lower-case)
  bool negated = false;
  bool has_else = false;
  bool distinct = false;  // aggregate calls: COUNT(DISTINCT x)

  std::vector<std::unique_ptr<Expression>> children;
  std::unique_ptr<SelectStatement> subquery;
};

using ExprNode = std::unique_ptr<Expression>;

struct TableRef {
  std::string table;  // lower-case; empty for derived tables
  std::string alias;  // lower-case; defaults to table name
  // Derived table: FROM (SELECT ...) alias. When set, `table` is empty and
  // `alias` is mandatory.
  std::unique_ptr<SelectStatement> derived;
};

struct JoinClause {
  enum class Kind : uint8_t { kInner, kLeft };
  Kind kind = Kind::kInner;
  TableRef table;
  ExprNode condition;
};

// One comma-separated FROM element: a base table plus chained explicit joins.
struct FromClause {
  TableRef base;
  std::vector<JoinClause> joins;
};

struct SelectItem {
  ExprNode expr;              // null when is_star
  std::string alias;          // lower-case, may be empty
  bool is_star = false;       // `*` or `t.*`
  std::string star_qualifier; // for `t.*`
};

struct OrderByItem {
  ExprNode expr;
  bool ascending = true;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<FromClause> from;  // empty = constant SELECT
  ExprNode where;
  std::vector<ExprNode> group_by;
  ExprNode having;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;  // LIMIT n or TOP n; -1 = none
};

enum class StatementKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateAuditExpression,
  kCreateTrigger,
  kDropTable,
  kDropTrigger,
  kDropAuditExpression,
  kIf,
  kNotify,
  kRaise,
  kExplain,
  kAlterTable,
};

struct Statement {
  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement();
  StatementKind kind;
  // The statement's own SQL text (trimmed, no trailing semicolon), captured
  // by the parser from token offsets — per statement even inside scripts.
  // The engine journals DDL and policy statements logically by this text, and
  // snapshots store trigger / audit-expression definitions with it. Empty for
  // hand-built ASTs.
  std::string source;
};

using StatementPtr = std::unique_ptr<Statement>;

struct SelectWrapper : Statement {
  SelectWrapper() : Statement(StatementKind::kSelect) {}
  std::unique_ptr<SelectStatement> select;
};

// EXPLAIN <select>: returns the optimized (and, when audit expressions with
// triggers exist, instrumented) plan as text, one row per plan line.
struct ExplainStatement : Statement {
  ExplainStatement() : Statement(StatementKind::kExplain) {}
  std::unique_ptr<SelectStatement> select;
};

struct InsertStatement : Statement {
  InsertStatement() : Statement(StatementKind::kInsert) {}
  std::string table;
  std::vector<std::string> columns;                // empty = all, in order
  std::vector<std::vector<ExprNode>> values_rows;  // VALUES form
  std::unique_ptr<SelectStatement> select;         // INSERT ... SELECT form
};

struct UpdateStatement : Statement {
  UpdateStatement() : Statement(StatementKind::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, ExprNode>> assignments;
  ExprNode where;
};

struct DeleteStatement : Statement {
  DeleteStatement() : Statement(StatementKind::kDelete) {}
  std::string table;
  ExprNode where;
};

struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kNull;
  bool primary_key = false;
};

struct CreateTableStatement : Statement {
  CreateTableStatement() : Statement(StatementKind::kCreateTable) {}
  std::string table;
  std::vector<ColumnDef> columns;
};

// ALTER TABLE <t> <action> [, <action> ...] — chained actions apply left to
// right as one atomic statement against the evolving schema:
//   ADD    [COLUMN] <name> <type> [DEFAULT <expr>]
//   DROP   [COLUMN] <name>
//   RENAME [COLUMN] <name> TO <new_name>
//   RETYPE [COLUMN] <name> [TO] <type>
struct AlterTableStatement : Statement {
  AlterTableStatement() : Statement(StatementKind::kAlterTable) {}

  struct Action {
    enum class Kind : uint8_t { kAdd, kDrop, kRename, kRetype };
    Kind kind = Kind::kAdd;
    std::string name;          // the column acted on (lower-case)
    std::string new_name;      // kRename target
    TypeId type = TypeId::kNull;  // kAdd / kRetype
    ExprNode default_value;    // kAdd: constant DEFAULT; null = NULL backfill
  };

  std::string table;
  std::vector<Action> actions;
};

// CREATE AUDIT EXPRESSION <name> AS SELECT ... FROM ... [WHERE ...]
// FOR SENSITIVE TABLE <t> PARTITION BY <key>   (Section II-A).
struct CreateAuditExpressionStatement : Statement {
  CreateAuditExpressionStatement() : Statement(StatementKind::kCreateAuditExpression) {}
  std::string name;
  std::unique_ptr<SelectStatement> select;
  std::string sensitive_table;
  std::string partition_by;
};

enum class DmlEvent : uint8_t { kInsert, kUpdate, kDelete };

// Both trigger flavors:
//   CREATE TRIGGER n ON ACCESS TO <audit expr> [BEFORE] AS <stmts>  (SELECT)
//   CREATE TRIGGER n ON <table> AFTER INSERT|UPDATE|DELETE AS ...   (DML)
// The BEFORE variant fires before the query result is returned to the
// client (the alternative semantics Section II sketches as future work);
// a RAISE in its action suppresses the result entirely.
struct CreateTriggerStatement : Statement {
  CreateTriggerStatement() : Statement(StatementKind::kCreateTrigger) {}
  std::string name;
  bool is_select_trigger = false;
  bool before = false;           // SELECT triggers: fire before result return
  std::string audit_expression;  // SELECT triggers
  std::string table;             // DML triggers
  DmlEvent event = DmlEvent::kInsert;
  std::vector<StatementPtr> actions;
};

struct DropStatement : Statement {
  explicit DropStatement(StatementKind k) : Statement(k) {}
  std::string name;
};

struct IfStatement : Statement {
  IfStatement() : Statement(StatementKind::kIf) {}
  ExprNode condition;
  StatementPtr then_branch;
};

// NOTIFY <expr>: appends the evaluated message to the session's notification
// queue; stands in for the paper's "SEND EMAIL" action.
struct NotifyStatement : Statement {
  NotifyStatement() : Statement(StatementKind::kNotify) {}
  ExprNode message;
};

// RAISE <expr>: aborts the enclosing statement with an error. Inside a
// BEFORE SELECT trigger this denies the query: the client never sees the
// result.
struct RaiseStatement : Statement {
  RaiseStatement() : Statement(StatementKind::kRaise) {}
  ExprNode message;
};

}  // namespace seltrig::ast

#endif  // SELTRIG_SQL_AST_H_
