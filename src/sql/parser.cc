#include "sql/parser.h"

#include <unordered_set>
#include <utility>

#include "types/date.h"

namespace seltrig {

namespace ast {
Expression::~Expression() = default;
Statement::~Statement() = default;
}  // namespace ast

namespace {

using ast::ExprNode;
using ast::ExprType;
using ast::Expression;
using ast::StatementPtr;

// Keywords that may also appear as identifiers (column/table/trigger names);
// notably "date", since audit-log tables conventionally carry a Date column,
// and "notify", the paper's example trigger name.
const std::unordered_set<std::string>& SoftKeywords() {
  static const auto* kSoft = new std::unordered_set<std::string>{
      "date",      "key",   "access", "to",     "top",
      "partition", "after", "expression", "notify",
  };
  return *kSoft;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const std::string& sql)
      : tokens_(std::move(tokens)), sql_(sql) {}

  Result<StatementPtr> ParseSingleStatement() {
    SELTRIG_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSpannedStatement());
    while (Check(TokenType::kSemicolon)) Advance();
    if (!Check(TokenType::kEof)) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

  Result<std::vector<StatementPtr>> ParseScript() {
    std::vector<StatementPtr> stmts;
    while (Check(TokenType::kSemicolon)) Advance();
    while (!Check(TokenType::kEof)) {
      SELTRIG_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSpannedStatement());
      stmts.push_back(std::move(stmt));
      bool saw_semi = false;
      while (Check(TokenType::kSemicolon)) {
        Advance();
        saw_semi = true;
      }
      if (!saw_semi && !Check(TokenType::kEof)) {
        return Error("expected ';' between statements");
      }
    }
    return stmts;
  }

 private:
  // Parses one statement and records its source span (first token up to the
  // terminating semicolon / end of input) in Statement::source.
  Result<StatementPtr> ParseSpannedStatement() {
    size_t begin = static_cast<size_t>(Peek().position);
    SELTRIG_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement());
    size_t end = static_cast<size_t>(Peek().position);
    if (begin <= end && end <= sql_.size()) {
      std::string span = sql_.substr(begin, end - begin);
      while (!span.empty() && (span.back() == ' ' || span.back() == '\t' ||
                               span.back() == '\n' || span.back() == '\r')) {
        span.pop_back();
      }
      stmt->source = std::move(span);
    }
    return stmt;
  }

  // --- token helpers --------------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    if (i >= tokens_.size()) return tokens_.back();
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckKeyword(const std::string& kw, int ahead = 0) const {
    return Peek(ahead).type == TokenType::kKeyword && Peek(ahead).text == kw;
  }
  bool MatchKeyword(const std::string& kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool CheckOperator(const std::string& op) const {
    return Peek().type == TokenType::kOperator && Peek().text == op;
  }
  bool MatchOperator(const std::string& op) {
    if (CheckOperator(op)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Match(TokenType t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (near offset " +
                              std::to_string(Peek().position) + ", token '" +
                              Peek().text + "')");
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) return Error("expected '" + kw + "'");
    return Status::OK();
  }
  Status Expect(TokenType t, const std::string& what) {
    if (!Match(t)) return Error("expected " + what);
    return Status::OK();
  }
  // An identifier, also accepting soft keywords.
  Result<std::string> ParseIdentifier(const std::string& what) {
    if (Check(TokenType::kIdentifier) ||
        (Check(TokenType::kKeyword) && SoftKeywords().count(Peek().text) > 0)) {
      return Advance().text;
    }
    return Error("expected " + what);
  }
  bool CheckIdentifierLike() const {
    return Check(TokenType::kIdentifier) ||
           (Check(TokenType::kKeyword) && SoftKeywords().count(Peek().text) > 0);
  }
  // Statement words that are not reserved keywords (ALTER, ADD, COLUMN,
  // RENAME, RETYPE, DEFAULT tokenize as plain identifiers): matched by text
  // regardless of token class, so they stay usable as ordinary identifiers
  // everywhere else.
  bool CheckWord(const std::string& w, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return (t.type == TokenType::kIdentifier || t.type == TokenType::kKeyword) &&
           t.text == w;
  }
  bool MatchWord(const std::string& w) {
    if (CheckWord(w)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectWord(const std::string& w) {
    if (!MatchWord(w)) return Error("expected '" + w + "'");
    return Status::OK();
  }

  // --- statements -----------------------------------------------------------
  Result<StatementPtr> ParseStatement() {
    if (CheckKeyword("select")) {
      auto wrapper = std::make_unique<ast::SelectWrapper>();
      SELTRIG_ASSIGN_OR_RETURN(wrapper->select, ParseSelect());
      return StatementPtr(std::move(wrapper));
    }
    if (CheckKeyword("insert")) return ParseInsert();
    if (CheckKeyword("update")) return ParseUpdate();
    if (CheckKeyword("delete")) return ParseDelete();
    if (CheckKeyword("create")) return ParseCreate();
    if (CheckKeyword("drop")) return ParseDrop();
    if (CheckKeyword("if")) return ParseIf();
    if (CheckKeyword("notify")) return ParseNotify();
    if (CheckKeyword("raise")) return ParseRaise();
    if (CheckKeyword("explain")) {
      Advance();
      auto stmt = std::make_unique<ast::ExplainStatement>();
      SELTRIG_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
      return StatementPtr(std::move(stmt));
    }
    // ALTER is not a reserved keyword; dispatch on the word so that no
    // existing identifier use changes meaning.
    if (CheckWord("alter")) return ParseAlterTable();
    return Error("expected a statement");
  }

  Result<std::unique_ptr<ast::SelectStatement>> ParseSelect() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto select = std::make_unique<ast::SelectStatement>();
    if (MatchKeyword("distinct")) select->distinct = true;
    if (MatchKeyword("top")) {
      if (!Check(TokenType::kInteger)) return Error("expected integer after TOP");
      select->limit = Advance().int_value;
    }
    // Select list.
    while (true) {
      ast::SelectItem item;
      if (CheckOperator("*")) {
        Advance();
        item.is_star = true;
      } else if (CheckIdentifierLike() && Peek(1).type == TokenType::kDot &&
                 Peek(2).type == TokenType::kOperator && Peek(2).text == "*") {
        item.is_star = true;
        item.star_qualifier = Advance().text;
        Advance();  // dot
        Advance();  // star
      } else {
        SELTRIG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("as")) {
          SELTRIG_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
        } else if (CheckIdentifierLike()) {
          item.alias = Advance().text;
        }
      }
      select->items.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
    // FROM.
    if (MatchKeyword("from")) {
      while (true) {
        SELTRIG_ASSIGN_OR_RETURN(ast::FromClause fc, ParseFromClause());
        select->from.push_back(std::move(fc));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("where")) {
      SELTRIG_ASSIGN_OR_RETURN(select->where, ParseExpr());
    }
    if (MatchKeyword("group")) {
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        SELTRIG_ASSIGN_OR_RETURN(ExprNode e, ParseExpr());
        select->group_by.push_back(std::move(e));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("having")) {
      SELTRIG_ASSIGN_OR_RETURN(select->having, ParseExpr());
    }
    if (MatchKeyword("order")) {
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        ast::OrderByItem item;
        SELTRIG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc")) {
          item.ascending = false;
        } else {
          MatchKeyword("asc");
        }
        select->order_by.push_back(std::move(item));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("limit")) {
      if (select->limit >= 0) return Error("both TOP and LIMIT specified");
      if (!Check(TokenType::kInteger)) return Error("expected integer after LIMIT");
      select->limit = Advance().int_value;
    }
    return select;
  }

  Result<ast::TableRef> ParseTableRef() {
    ast::TableRef ref;
    if (Check(TokenType::kLParen)) {
      Advance();
      SELTRIG_ASSIGN_OR_RETURN(ref.derived, ParseSelect());
      SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      MatchKeyword("as");
      SELTRIG_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier("derived table alias"));
      return ref;
    }
    SELTRIG_ASSIGN_OR_RETURN(ref.table, ParseIdentifier("table name"));
    if (MatchKeyword("as")) {
      SELTRIG_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier("table alias"));
    } else if (CheckIdentifierLike()) {
      ref.alias = Advance().text;
    } else {
      ref.alias = ref.table;
    }
    return ref;
  }

  Result<ast::FromClause> ParseFromClause() {
    ast::FromClause fc;
    SELTRIG_ASSIGN_OR_RETURN(fc.base, ParseTableRef());
    while (CheckKeyword("join") || CheckKeyword("inner") || CheckKeyword("left")) {
      ast::JoinClause join;
      if (MatchKeyword("left")) {
        MatchKeyword("outer");
        join.kind = ast::JoinClause::Kind::kLeft;
      } else {
        MatchKeyword("inner");
        join.kind = ast::JoinClause::Kind::kInner;
      }
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("join"));
      SELTRIG_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("on"));
      SELTRIG_ASSIGN_OR_RETURN(join.condition, ParseExpr());
      fc.joins.push_back(std::move(join));
    }
    return fc;
  }

  Result<StatementPtr> ParseInsert() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("insert"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("into"));
    auto stmt = std::make_unique<ast::InsertStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    if (Check(TokenType::kLParen)) {
      Advance();
      while (true) {
        SELTRIG_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column name"));
        stmt->columns.push_back(std::move(col));
        if (!Match(TokenType::kComma)) break;
      }
      SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    if (MatchKeyword("values")) {
      while (true) {
        SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        std::vector<ExprNode> row;
        while (true) {
          SELTRIG_ASSIGN_OR_RETURN(ExprNode e, ParseExpr());
          row.push_back(std::move(e));
          if (!Match(TokenType::kComma)) break;
        }
        SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        stmt->values_rows.push_back(std::move(row));
        if (!Match(TokenType::kComma)) break;
      }
    } else if (CheckKeyword("select")) {
      SELTRIG_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    } else {
      return Error("expected VALUES or SELECT in INSERT");
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseUpdate() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("update"));
    auto stmt = std::make_unique<ast::UpdateStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("set"));
    while (true) {
      SELTRIG_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column name"));
      if (!MatchOperator("=")) return Error("expected '=' in SET clause");
      SELTRIG_ASSIGN_OR_RETURN(ExprNode e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
    if (MatchKeyword("where")) {
      SELTRIG_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDelete() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("delete"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("from"));
    auto stmt = std::make_unique<ast::DeleteStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    if (MatchKeyword("where")) {
      SELTRIG_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreate() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("create"));
    if (MatchKeyword("table")) return ParseCreateTable();
    if (MatchKeyword("audit")) {
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("expression"));
      return ParseCreateAuditExpression();
    }
    if (MatchKeyword("trigger")) return ParseCreateTrigger();
    return Error("expected TABLE, AUDIT EXPRESSION or TRIGGER after CREATE");
  }

  Result<TypeId> ParseColumnType() {
    SELTRIG_ASSIGN_OR_RETURN(std::string t, ParseIdentifier("column type"));
    // Optional (p[, s]) length/precision, accepted and ignored.
    if (Check(TokenType::kLParen)) {
      Advance();
      while (!Check(TokenType::kRParen) && !Check(TokenType::kEof)) Advance();
      SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    if (t == "int" || t == "integer" || t == "bigint" || t == "smallint") {
      return TypeId::kInt;
    }
    if (t == "double" || t == "float" || t == "decimal" || t == "numeric" || t == "real") {
      return TypeId::kDouble;
    }
    if (t == "varchar" || t == "char" || t == "text" || t == "string") {
      return TypeId::kString;
    }
    if (t == "date") return TypeId::kDate;
    if (t == "boolean" || t == "bool") return TypeId::kBool;
    return Status::ParseError("unknown column type: " + t);
  }

  Result<StatementPtr> ParseCreateTable() {
    auto stmt = std::make_unique<ast::CreateTableStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    while (true) {
      ast::ColumnDef col;
      SELTRIG_ASSIGN_OR_RETURN(col.name, ParseIdentifier("column name"));
      SELTRIG_ASSIGN_OR_RETURN(col.type, ParseColumnType());
      if (MatchKeyword("primary")) {
        SELTRIG_RETURN_IF_ERROR(ExpectKeyword("key"));
        col.primary_key = true;
      }
      stmt->columns.push_back(std::move(col));
      if (!Match(TokenType::kComma)) break;
    }
    SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreateAuditExpression() {
    auto stmt = std::make_unique<ast::CreateAuditExpressionStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("audit expression name"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("as"));
    SELTRIG_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("for"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("sensitive"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("table"));
    SELTRIG_ASSIGN_OR_RETURN(stmt->sensitive_table, ParseIdentifier("sensitive table"));
    Match(TokenType::kComma);  // optional comma before PARTITION BY
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("partition"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("by"));
    SELTRIG_ASSIGN_OR_RETURN(stmt->partition_by, ParseIdentifier("partition column"));
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreateTrigger() {
    auto stmt = std::make_unique<ast::CreateTriggerStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("trigger name"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("on"));
    if (MatchKeyword("access")) {
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("to"));
      stmt->is_select_trigger = true;
      SELTRIG_ASSIGN_OR_RETURN(stmt->audit_expression,
                               ParseIdentifier("audit expression name"));
      if (MatchKeyword("before")) stmt->before = true;
    } else {
      SELTRIG_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("after"));
      if (MatchKeyword("insert")) {
        stmt->event = ast::DmlEvent::kInsert;
      } else if (MatchKeyword("update")) {
        stmt->event = ast::DmlEvent::kUpdate;
      } else if (MatchKeyword("delete")) {
        stmt->event = ast::DmlEvent::kDelete;
      } else {
        return Error("expected INSERT, UPDATE or DELETE after AFTER");
      }
    }
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("as"));
    bool block = MatchKeyword("begin");
    while (true) {
      SELTRIG_ASSIGN_OR_RETURN(StatementPtr action, ParseSpannedStatement());
      stmt->actions.push_back(std::move(action));
      while (Match(TokenType::kSemicolon)) {
      }
      if (block) {
        if (MatchKeyword("end")) break;
        if (Check(TokenType::kEof)) return Error("expected END");
      } else {
        if (Check(TokenType::kEof)) break;
      }
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDrop() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("drop"));
    if (MatchKeyword("table")) {
      auto stmt = std::make_unique<ast::DropStatement>(ast::StatementKind::kDropTable);
      SELTRIG_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("table name"));
      return StatementPtr(std::move(stmt));
    }
    if (MatchKeyword("trigger")) {
      auto stmt = std::make_unique<ast::DropStatement>(ast::StatementKind::kDropTrigger);
      SELTRIG_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("trigger name"));
      return StatementPtr(std::move(stmt));
    }
    if (MatchKeyword("audit")) {
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("expression"));
      auto stmt =
          std::make_unique<ast::DropStatement>(ast::StatementKind::kDropAuditExpression);
      SELTRIG_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("audit expression name"));
      return StatementPtr(std::move(stmt));
    }
    return Error("expected TABLE, TRIGGER or AUDIT EXPRESSION after DROP");
  }

  // ALTER TABLE t <action> [, <action> ...]
  //   ADD    [COLUMN] name type [DEFAULT expr]
  //   DROP   [COLUMN] name
  //   RENAME [COLUMN] name TO new_name
  //   RETYPE [COLUMN] name [TO] type
  Result<StatementPtr> ParseAlterTable() {
    SELTRIG_RETURN_IF_ERROR(ExpectWord("alter"));
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("table"));
    auto stmt = std::make_unique<ast::AlterTableStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->table, ParseIdentifier("table name"));
    while (true) {
      ast::AlterTableStatement::Action action;
      if (MatchWord("add")) {
        action.kind = ast::AlterTableStatement::Action::Kind::kAdd;
        MatchWord("column");
        SELTRIG_ASSIGN_OR_RETURN(action.name, ParseIdentifier("column name"));
        SELTRIG_ASSIGN_OR_RETURN(action.type, ParseColumnType());
        if (MatchWord("default")) {
          SELTRIG_ASSIGN_OR_RETURN(action.default_value, ParseExpr());
        }
      } else if (MatchKeyword("drop")) {
        action.kind = ast::AlterTableStatement::Action::Kind::kDrop;
        MatchWord("column");
        SELTRIG_ASSIGN_OR_RETURN(action.name, ParseIdentifier("column name"));
      } else if (MatchWord("rename")) {
        action.kind = ast::AlterTableStatement::Action::Kind::kRename;
        MatchWord("column");
        SELTRIG_ASSIGN_OR_RETURN(action.name, ParseIdentifier("column name"));
        SELTRIG_RETURN_IF_ERROR(ExpectKeyword("to"));
        SELTRIG_ASSIGN_OR_RETURN(action.new_name, ParseIdentifier("new column name"));
      } else if (MatchWord("retype")) {
        action.kind = ast::AlterTableStatement::Action::Kind::kRetype;
        MatchWord("column");
        SELTRIG_ASSIGN_OR_RETURN(action.name, ParseIdentifier("column name"));
        MatchKeyword("to");
        SELTRIG_ASSIGN_OR_RETURN(action.type, ParseColumnType());
      } else {
        return Error("expected ADD, DROP, RENAME or RETYPE");
      }
      stmt->actions.push_back(std::move(action));
      if (!Match(TokenType::kComma)) break;
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseIf() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("if"));
    auto stmt = std::make_unique<ast::IfStatement>();
    // The condition is an ordinary (usually parenthesized) expression; this
    // also admits the paper's `IF (SELECT ... ) NOTIFY ...` form, where the
    // condition is a boolean scalar subquery.
    SELTRIG_ASSIGN_OR_RETURN(stmt->condition, ParseExpr());
    MatchKeyword("then");
    SELTRIG_ASSIGN_OR_RETURN(stmt->then_branch, ParseSpannedStatement());
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseNotify() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("notify"));
    auto stmt = std::make_unique<ast::NotifyStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->message, ParseExpr());
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseRaise() {
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("raise"));
    auto stmt = std::make_unique<ast::RaiseStatement>();
    SELTRIG_ASSIGN_OR_RETURN(stmt->message, ParseExpr());
    return StatementPtr(std::move(stmt));
  }

  // --- expressions ----------------------------------------------------------
  Result<ExprNode> ParseExpr() { return ParseOr(); }

  Result<ExprNode> ParseOr() {
    SELTRIG_ASSIGN_OR_RETURN(ExprNode lhs, ParseAnd());
    while (MatchKeyword("or")) {
      SELTRIG_ASSIGN_OR_RETURN(ExprNode rhs, ParseAnd());
      lhs = MakeBinary("or", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprNode> ParseAnd() {
    SELTRIG_ASSIGN_OR_RETURN(ExprNode lhs, ParseNot());
    while (MatchKeyword("and")) {
      SELTRIG_ASSIGN_OR_RETURN(ExprNode rhs, ParseNot());
      lhs = MakeBinary("and", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprNode> ParseNot() {
    // NOT EXISTS is a primary form (negated existential), not a NOT wrapper.
    if (CheckKeyword("not") && CheckKeyword("exists", 1)) {
      return ParseComparison();
    }
    if (MatchKeyword("not")) {
      SELTRIG_ASSIGN_OR_RETURN(ExprNode operand, ParseNot());
      auto e = std::make_unique<Expression>(ExprType::kUnaryOp);
      e->op = "not";
      e->children.push_back(std::move(operand));
      return e;
    }
    return ParseComparison();
  }

  Result<ExprNode> ParseComparison() {
    SELTRIG_ASSIGN_OR_RETURN(ExprNode lhs, ParseAdditive());
    // Postfix predicates: IS [NOT] NULL, [NOT] BETWEEN/IN/LIKE.
    while (true) {
      if (CheckKeyword("is")) {
        Advance();
        bool negated = MatchKeyword("not");
        SELTRIG_RETURN_IF_ERROR(ExpectKeyword("null"));
        auto e = std::make_unique<Expression>(ExprType::kIsNull);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        lhs = std::move(e);
        continue;
      }
      bool negated = false;
      if (CheckKeyword("not") &&
          (CheckKeyword("between", 1) || CheckKeyword("in", 1) || CheckKeyword("like", 1))) {
        Advance();
        negated = true;
      }
      if (MatchKeyword("between")) {
        SELTRIG_ASSIGN_OR_RETURN(ExprNode lo, ParseAdditive());
        SELTRIG_RETURN_IF_ERROR(ExpectKeyword("and"));
        SELTRIG_ASSIGN_OR_RETURN(ExprNode hi, ParseAdditive());
        auto e = std::make_unique<Expression>(ExprType::kBetween);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->children.push_back(std::move(lo));
        e->children.push_back(std::move(hi));
        lhs = std::move(e);
        continue;
      }
      if (MatchKeyword("in")) {
        SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after IN"));
        if (CheckKeyword("select")) {
          auto e = std::make_unique<Expression>(ExprType::kInSubquery);
          e->negated = negated;
          e->children.push_back(std::move(lhs));
          SELTRIG_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
          SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          lhs = std::move(e);
        } else {
          auto e = std::make_unique<Expression>(ExprType::kInList);
          e->negated = negated;
          e->children.push_back(std::move(lhs));
          while (true) {
            SELTRIG_ASSIGN_OR_RETURN(ExprNode item, ParseExpr());
            e->children.push_back(std::move(item));
            if (!Match(TokenType::kComma)) break;
          }
          SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          lhs = std::move(e);
        }
        continue;
      }
      if (MatchKeyword("like")) {
        SELTRIG_ASSIGN_OR_RETURN(ExprNode pattern, ParseAdditive());
        auto e = std::make_unique<Expression>(ExprType::kLike);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->children.push_back(std::move(pattern));
        lhs = std::move(e);
        continue;
      }
      if (negated) return Error("expected BETWEEN, IN or LIKE after NOT");
      break;
    }
    // Binary comparisons (non-associative chain, applied left to right).
    while (Check(TokenType::kOperator) &&
           (Peek().text == "=" || Peek().text == "<>" || Peek().text == "<" ||
            Peek().text == "<=" || Peek().text == ">" || Peek().text == ">=")) {
      std::string op = Advance().text;
      SELTRIG_ASSIGN_OR_RETURN(ExprNode rhs, ParseAdditive());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprNode> ParseAdditive() {
    SELTRIG_ASSIGN_OR_RETURN(ExprNode lhs, ParseMultiplicative());
    while (CheckOperator("+") || CheckOperator("-")) {
      std::string op = Advance().text;
      SELTRIG_ASSIGN_OR_RETURN(ExprNode rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprNode> ParseMultiplicative() {
    SELTRIG_ASSIGN_OR_RETURN(ExprNode lhs, ParseUnary());
    while (CheckOperator("*") || CheckOperator("/")) {
      std::string op = Advance().text;
      SELTRIG_ASSIGN_OR_RETURN(ExprNode rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprNode> ParseUnary() {
    if (MatchOperator("-")) {
      SELTRIG_ASSIGN_OR_RETURN(ExprNode operand, ParseUnary());
      auto e = std::make_unique<Expression>(ExprType::kUnaryOp);
      e->op = "-";
      e->children.push_back(std::move(operand));
      return e;
    }
    if (MatchOperator("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprNode> ParsePrimary() {
    // Literals.
    if (Check(TokenType::kInteger)) {
      auto e = std::make_unique<Expression>(ExprType::kIntLiteral);
      e->int_value = Advance().int_value;
      return ExprNode(std::move(e));
    }
    if (Check(TokenType::kFloat)) {
      auto e = std::make_unique<Expression>(ExprType::kFloatLiteral);
      e->float_value = Advance().float_value;
      return ExprNode(std::move(e));
    }
    if (Check(TokenType::kString)) {
      auto e = std::make_unique<Expression>(ExprType::kStringLiteral);
      e->string_value = Advance().text;
      return ExprNode(std::move(e));
    }
    if (CheckKeyword("null")) {
      Advance();
      return ExprNode(std::make_unique<Expression>(ExprType::kNullLiteral));
    }
    if (CheckKeyword("true") || CheckKeyword("false")) {
      auto e = std::make_unique<Expression>(ExprType::kBoolLiteral);
      e->bool_value = Advance().text == "true";
      return ExprNode(std::move(e));
    }
    // DATE 'yyyy-mm-dd' (the keyword is soft, so only treat it as a literal
    // prefix when followed by a string).
    if (CheckKeyword("date") && Peek(1).type == TokenType::kString) {
      Advance();
      std::string text = Advance().text;
      SELTRIG_ASSIGN_OR_RETURN(int32_t days, ParseDate(text));
      auto e = std::make_unique<Expression>(ExprType::kDateLiteral);
      e->int_value = days;
      return ExprNode(std::move(e));
    }
    if (MatchKeyword("case")) return ParseCase();
    if (CheckKeyword("exists") ||
        (CheckKeyword("not") && CheckKeyword("exists", 1))) {
      bool negated = MatchKeyword("not");
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("exists"));
      SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after EXISTS"));
      auto e = std::make_unique<Expression>(ExprType::kExists);
      e->negated = negated;
      SELTRIG_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return ExprNode(std::move(e));
    }
    if (Check(TokenType::kLParen)) {
      Advance();
      if (CheckKeyword("select")) {
        auto e = std::make_unique<Expression>(ExprType::kScalarSubquery);
        SELTRIG_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
        SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return ExprNode(std::move(e));
      }
      SELTRIG_ASSIGN_OR_RETURN(ExprNode inner, ParseExpr());
      SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    // Identifier: column ref, qualified column ref, or function call.
    if (CheckIdentifierLike()) {
      std::string first = Advance().text;
      if (Check(TokenType::kLParen)) {
        Advance();
        auto e = std::make_unique<Expression>(ExprType::kFunctionCall);
        e->name = first;
        if (CheckOperator("*")) {
          Advance();
          e->children.push_back(std::make_unique<Expression>(ExprType::kStar));
        } else if (!Check(TokenType::kRParen)) {
          if (MatchKeyword("distinct")) e->distinct = true;
          while (true) {
            SELTRIG_ASSIGN_OR_RETURN(ExprNode arg, ParseExpr());
            e->children.push_back(std::move(arg));
            if (!Match(TokenType::kComma)) break;
          }
        }
        SELTRIG_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return ExprNode(std::move(e));
      }
      auto e = std::make_unique<Expression>(ExprType::kColumnRef);
      if (Check(TokenType::kDot)) {
        Advance();
        e->qualifier = first;
        SELTRIG_ASSIGN_OR_RETURN(e->name, ParseIdentifier("column name"));
      } else {
        e->name = first;
      }
      return ExprNode(std::move(e));
    }
    return Error("expected an expression");
  }

  Result<ExprNode> ParseCase() {
    auto e = std::make_unique<Expression>(ExprType::kCase);
    while (MatchKeyword("when")) {
      SELTRIG_ASSIGN_OR_RETURN(ExprNode when, ParseExpr());
      SELTRIG_RETURN_IF_ERROR(ExpectKeyword("then"));
      SELTRIG_ASSIGN_OR_RETURN(ExprNode then, ParseExpr());
      e->children.push_back(std::move(when));
      e->children.push_back(std::move(then));
    }
    if (e->children.empty()) return Error("CASE requires at least one WHEN");
    if (MatchKeyword("else")) {
      SELTRIG_ASSIGN_OR_RETURN(ExprNode els, ParseExpr());
      e->has_else = true;
      e->children.push_back(std::move(els));
    }
    SELTRIG_RETURN_IF_ERROR(ExpectKeyword("end"));
    return ExprNode(std::move(e));
  }

  static ExprNode MakeBinary(const std::string& op, ExprNode lhs, ExprNode rhs) {
    auto e = std::make_unique<Expression>(ExprType::kBinaryOp);
    e->op = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  std::vector<Token> tokens_;
  const std::string& sql_;
  size_t pos_ = 0;
};

}  // namespace

Result<ast::StatementPtr> ParseSql(const std::string& sql) {
  SELTRIG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), sql);
  return parser.ParseSingleStatement();
}

Result<std::vector<ast::StatementPtr>> ParseSqlScript(const std::string& sql) {
  SELTRIG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), sql);
  return parser.ParseScript();
}

}  // namespace seltrig
