#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/string_util.h"

namespace seltrig {

namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "select", "distinct", "top",       "from",      "where",     "group",
      "by",     "having",   "order",     "asc",       "desc",      "limit",
      "offset", "as",       "and",       "or",        "not",       "in",
      "exists", "between",  "like",      "is",        "null",      "true",
      "false",  "case",     "when",      "then",      "else",      "end",
      "join",   "inner",    "left",      "outer",     "on",        "insert",
      "into",   "values",   "update",    "set",       "delete",    "create",
      "table",  "primary",  "key",       "drop",      "trigger",   "audit",
      "expression",         "for",       "sensitive", "partition", "access",
      "to",     "after",    "date",      "if",        "notify",    "begin",
      "before", "raise",  "explain",
  };
  return *kKeywords;
}

}  // namespace

bool IsKeyword(const std::string& word) { return KeywordSet().count(word) > 0; }

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto error_at = [&](size_t pos, const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_')) {
        ++i;
      }
      tok.text = ToLower(sql.substr(start, i - start));
      tok.type = IsKeyword(tok.text) ? TokenType::kKeyword : TokenType::kIdentifier;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            body += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body += sql[i];
        ++i;
      }
      if (!closed) return error_at(tok.position, "unterminated string literal");
      tok.type = TokenType::kString;
      tok.text = std::move(body);
      tokens.push_back(std::move(tok));
      continue;
    }

    switch (c) {
      case '(':
        tok.type = TokenType::kLParen;
        ++i;
        break;
      case ')':
        tok.type = TokenType::kRParen;
        ++i;
        break;
      case ',':
        tok.type = TokenType::kComma;
        ++i;
        break;
      case '.':
        tok.type = TokenType::kDot;
        ++i;
        break;
      case ';':
        tok.type = TokenType::kSemicolon;
        ++i;
        break;
      case '=':
        tok.type = TokenType::kOperator;
        tok.text = "=";
        ++i;
        break;
      case '+':
      case '*':
      case '/':
      case '-':
        tok.type = TokenType::kOperator;
        tok.text = std::string(1, c);
        ++i;
        break;
      case '<':
        tok.type = TokenType::kOperator;
        ++i;
        if (i < n && sql[i] == '=') {
          tok.text = "<=";
          ++i;
        } else if (i < n && sql[i] == '>') {
          tok.text = "<>";
          ++i;
        } else {
          tok.text = "<";
        }
        break;
      case '>':
        tok.type = TokenType::kOperator;
        ++i;
        if (i < n && sql[i] == '=') {
          tok.text = ">=";
          ++i;
        } else {
          tok.text = ">";
        }
        break;
      case '!':
        ++i;
        if (i < n && sql[i] == '=') {
          tok.type = TokenType::kOperator;
          tok.text = "<>";
          ++i;
        } else {
          return error_at(tok.position, "unexpected character '!'");
        }
        break;
      default:
        return error_at(tok.position, std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(tok));
  }

  Token eof;
  eof.type = TokenType::kEof;
  eof.position = static_cast<int>(n);
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace seltrig
