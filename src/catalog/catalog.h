// Catalog: the registry of tables. Audit expressions and triggers are owned
// by the audit subsystem (see audit/) and registered with the Database.

#ifndef SELTRIG_CATALOG_CATALOG_H_
#define SELTRIG_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace seltrig {

// Table names are case-insensitive and stored lower-case.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Creates a table; fails if the name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             int primary_key_column = -1);

  // Looks up a table by (case-insensitive) name.
  Result<Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  // All table names, unordered.
  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace seltrig

#endif  // SELTRIG_CATALOG_CATALOG_H_
