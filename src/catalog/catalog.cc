#include "catalog/catalog.h"

#include "common/string_util.h"

namespace seltrig {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema,
                                    int primary_key_column) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(key, std::move(schema), primary_key_column);
  Table* ptr = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace seltrig
