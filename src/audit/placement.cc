#include "audit/placement.h"

#include <utility>

namespace seltrig {

const char* PlacementHeuristicName(PlacementHeuristic h) {
  switch (h) {
    case PlacementHeuristic::kLeafNode:
      return "leaf-node";
    case PlacementHeuristic::kHighestNode:
      return "highest-node";
    case PlacementHeuristic::kHighestCommutativeNode:
      return "highest-commutative-node";
  }
  return "?";
}

namespace {

void DeepCloneSubqueryPlans(Expr& e) {
  if (e.kind == ExprKind::kSubquery && e.subquery_plan != nullptr) {
    e.subquery_plan = ClonePlanDeep(*e.subquery_plan);
  }
  for (auto& c : e.children) DeepCloneSubqueryPlans(*c);
}

// Applies `fn` to every subquery-plan slot reachable from `plan`'s node
// expressions (but not recursively into those plans; `fn` decides).
void ForEachSubqueryPlanSlot(LogicalOperator& plan,
                             const std::function<void(std::shared_ptr<LogicalOperator>&)>& fn) {
  VisitNodeExprs(plan, [&fn](ExprPtr& e) {
    std::function<void(Expr&)> walk = [&fn, &walk](Expr& x) {
      if (x.kind == ExprKind::kSubquery && x.subquery_plan != nullptr) {
        fn(x.subquery_plan);
      }
      for (auto& c : x.children) walk(*c);
    };
    walk(*e);
  });
  for (auto& child : plan.children) ForEachSubqueryPlanSlot(*child, fn);
}

}  // namespace

PlanPtr ClonePlanDeep(const LogicalOperator& plan) {
  PlanPtr copy = plan.Clone();
  // Clone() deep-copies children and expressions but shares subquery plans;
  // replace each shared subquery plan with its own deep clone.
  std::function<void(LogicalOperator&)> fix = [&fix](LogicalOperator& node) {
    VisitNodeExprs(node, [](ExprPtr& e) { DeepCloneSubqueryPlans(*e); });
    for (auto& child : node.children) fix(*child);
  };
  fix(*copy);
  return copy;
}

bool AuditCommutesWith(const LogicalOperator& parent, int child_index, int key_column,
                       int* new_key_column) {
  *new_key_column = key_column;
  switch (parent.kind()) {
    case PlanKind::kFilter:
    case PlanKind::kSort:
      // Filters only remove rows below/above symmetrically; sorts reorder.
      // Neither changes which rows flow, so no accessed tuple is missed.
      return true;
    case PlanKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(parent);
      // A join behaves as a filter for the preserved side: a sensitive tuple
      // eliminated by the join predicate cannot influence the result
      // (Theorem 3.7 reasoning). The null-supplying side of an outer join
      // does not commute (its tuples can vanish into padding).
      if (join.join_type == JoinType::kLeft && child_index == 1) return false;
      if (child_index == 1) {
        *new_key_column = key_column + static_cast<int>(join.children[0]->schema.size());
      }
      return true;
    }
    case PlanKind::kProject: {
      // Commutes only when the projection passes the partition-by key
      // through unchanged (forced ID propagation, Section IV-A1).
      const auto& project = static_cast<const LogicalProject&>(parent);
      for (size_t i = 0; i < project.exprs.size(); ++i) {
        const Expr& e = *project.exprs[i];
        if (e.kind == ExprKind::kColumnRef && e.column_index == key_column) {
          *new_key_column = static_cast<int>(i);
          return true;
        }
      }
      return false;
    }
    case PlanKind::kAggregate:  // IDs do not survive grouping
    case PlanKind::kLimit:      // top-k consumes rows it does not emit (Ex. 3.2)
    case PlanKind::kDistinct:   // duplicate elimination can hide accesses
    default:
      return false;
  }
}

namespace {

// Inserts an audit operator above every scan of the sensitive table in this
// plan (not descending into subquery plans; the caller walks those).
Status InsertAboveLeaves(std::shared_ptr<LogicalOperator>* slot,
                         const AuditExpressionDef& def,
                         const PlacementOptions& options) {
  LogicalOperator& node = **slot;
  if (node.kind() == PlanKind::kScan) {
    const auto& scan = static_cast<const LogicalScan&>(node);
    if (scan.virtual_rows == nullptr && scan.table_name == def.sensitive_table()) {
      // Locate the partition-by key in the scan's (possibly pruned) output.
      int key = -1;
      for (size_t i = 0; i < scan.schema.size(); ++i) {
        if (scan.BaseColumn(static_cast<int>(i)) == def.partition_column()) {
          key = static_cast<int>(i);
          break;
        }
      }
      if (key < 0) {
        // Column pruning must retain the key at sensitive leaves (leaf
        // retention, Section IV-A1); a missing key would silently produce
        // false negatives, so fail loudly instead.
        return Status::Internal("partition-by key '" + def.partition_by() +
                                "' pruned from scan of " + def.sensitive_table());
      }
      auto audit = std::make_shared<LogicalAudit>();
      audit->audit_name = def.name();
      audit->key_column = key;
      audit->schema = node.schema;
      if (options.use_id_view && options.use_bloom_filter) {
        audit->bloom = def.view().BuildBloomFilter(options.bloom_fp_rate);
      } else if (options.use_id_view) {
        audit->id_view = &def.view();
      } else if (def.single_table_predicate() != nullptr) {
        // The fallback predicate is bound against the base schema; remap it
        // into the scan's output space. If pruning removed a column the
        // predicate needs -- the extra-I/O problem the ID-view design avoids
        // (Section IV-A) -- fall back to the view.
        ExprPtr pred = def.single_table_predicate()->Clone();
        bool remappable = true;
        std::function<void(Expr&)> remap = [&](Expr& e) {
          if (e.kind == ExprKind::kColumnRef) {
            int out = -1;
            for (size_t i = 0; i < scan.schema.size(); ++i) {
              if (scan.BaseColumn(static_cast<int>(i)) == e.column_index) {
                out = static_cast<int>(i);
                break;
              }
            }
            if (out < 0) {
              remappable = false;
            } else {
              e.column_index = out;
            }
          }
          for (auto& c : e.children) remap(*c);
        };
        remap(*pred);
        if (remappable) {
          audit->fallback_predicate = std::move(pred);
        } else {
          audit->id_view = &def.view();
        }
      } else {
        // No single-table predicate available: fall back to the view.
        audit->id_view = &def.view();
      }
      audit->children = {*slot};
      *slot = std::move(audit);
    }
    return Status::OK();
  }
  for (auto& child : node.children) {
    SELTRIG_RETURN_IF_ERROR(InsertAboveLeaves(&child, def, options));
  }
  return Status::OK();
}

// One bottom-up pull-up step of Algorithm 1. Returns true if any audit
// operator moved.
bool PullUpOnce(std::shared_ptr<LogicalOperator>* slot) {
  LogicalOperator& node = **slot;
  bool moved = false;
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i]->kind() == PlanKind::kAudit) {
      auto audit = std::static_pointer_cast<LogicalAudit>(node.children[i]);
      int new_key = -1;
      if (AuditCommutesWith(node, static_cast<int>(i), audit->key_column, &new_key)) {
        // Swap: parent adopts the audit operator's child; the audit operator
        // moves above the parent.
        PlanPtr parent = *slot;
        parent->children[i] = audit->children[0];
        audit->children[0] = parent;
        audit->key_column = new_key;
        audit->schema = parent->schema;
        *slot = audit;
        return true;  // restart from this position (the tree changed)
      }
    }
  }
  for (auto& child : node.children) {
    moved = moved || PullUpOnce(&child);
    if (moved) return true;
  }
  return false;
}

// Highest-node heuristic: place at the topmost position whose schema exposes
// the sensitive table's partition-by key; returns true when placed.
bool PlaceHighest(std::shared_ptr<LogicalOperator>* slot, const AuditExpressionDef& def,
                  const PlacementOptions& options) {
  LogicalOperator& node = **slot;
  bool ambiguous = false;
  int idx = node.schema.TryResolve("", def.partition_by(), &ambiguous);
  if (idx < 0 && !ambiguous) {
    // Try any qualifier: search by name only across qualified columns.
    for (size_t i = 0; i < node.schema.size(); ++i) {
      if (node.schema.column(i).name == def.partition_by()) {
        idx = static_cast<int>(i);
        break;
      }
    }
  }
  if (idx >= 0) {
    auto audit = std::make_shared<LogicalAudit>();
    audit->audit_name = def.name();
    audit->key_column = idx;
    audit->schema = node.schema;
    if (options.use_id_view && options.use_bloom_filter) {
      audit->bloom = def.view().BuildBloomFilter(options.bloom_fp_rate);
    } else if (options.use_id_view || def.single_table_predicate() == nullptr) {
      audit->id_view = &def.view();
    } else {
      audit->fallback_predicate = def.single_table_predicate()->Clone();
    }
    audit->children = {*slot};
    *slot = std::move(audit);
    return true;
  }
  for (auto& child : node.children) {
    if (PlaceHighest(&child, def, options)) return true;
  }
  return false;
}

bool PlanReferencesSensitiveTable(const LogicalOperator& plan, const std::string& table) {
  if (plan.kind() == PlanKind::kScan) {
    const auto& scan = static_cast<const LogicalScan&>(plan);
    if (scan.virtual_rows == nullptr && scan.table_name == table) return true;
  }
  for (const auto& child : plan.children) {
    if (PlanReferencesSensitiveTable(*child, table)) return true;
  }
  return false;
}

// Instruments one (sub)plan in place.
Status InstrumentSubplan(std::shared_ptr<LogicalOperator>* root,
                         const AuditExpressionDef& def,
                         const PlacementOptions& options) {
  switch (options.heuristic) {
    case PlacementHeuristic::kLeafNode:
      return InsertAboveLeaves(root, def, options);
    case PlacementHeuristic::kHighestNode:
      if (PlanReferencesSensitiveTable(**root, def.sensitive_table())) {
        PlaceHighest(root, def, options);
      }
      return Status::OK();
    case PlacementHeuristic::kHighestCommutativeNode:
      SELTRIG_RETURN_IF_ERROR(InsertAboveLeaves(root, def, options));
      while (PullUpOnce(root)) {
      }
      return Status::OK();
  }
  return Status::Internal("unknown placement heuristic");
}

}  // namespace

Result<PlanPtr> InstrumentPlan(const LogicalOperator& plan, const AuditExpressionDef& def,
                               const PlacementOptions& options) {
  PlanPtr copy = ClonePlanDeep(plan);
  // Instrument every nested subquery plan first (audit operators must not
  // cross subquery boundaries: their data is out of scope above, Fig. 4(c)).
  Status status = Status::OK();
  std::function<void(PlanPtr&)> instrument_all = [&](PlanPtr& p) {
    ForEachSubqueryPlanSlot(*p, [&](std::shared_ptr<LogicalOperator>& sub) {
      instrument_all(sub);
    });
    Status s = InstrumentSubplan(&p, def, options);
    if (!s.ok()) status = s;
  };
  instrument_all(copy);
  SELTRIG_RETURN_IF_ERROR(status);
  return copy;
}

int CountAuditOperators(const LogicalOperator& plan) {
  int count = plan.kind() == PlanKind::kAudit ? 1 : 0;
  VisitNodeExprs(plan, [&count](const Expr& e) {
    std::function<void(const Expr&)> walk = [&count, &walk](const Expr& x) {
      if (x.kind == ExprKind::kSubquery && x.subquery_plan != nullptr) {
        count += CountAuditOperators(*x.subquery_plan);
      }
      for (const auto& c : x.children) walk(*c);
    };
    walk(e);
  });
  for (const auto& child : plan.children) count += CountAuditOperators(*child);
  return count;
}

}  // namespace seltrig
