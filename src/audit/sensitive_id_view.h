// SensitiveIdView: an audit expression compiled to the materialized set of
// partition-by IDs it selects (Section IV-A1). The physical audit operator
// probes this set -- a hash lookup whose cost is independent of the audit
// expression's complexity -- instead of re-evaluating the expression's
// predicate per row.

#ifndef SELTRIG_AUDIT_SENSITIVE_ID_VIEW_H_
#define SELTRIG_AUDIT_SENSITIVE_ID_VIEW_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/bloom_filter.h"
#include "types/value.h"

namespace seltrig {

class SensitiveIdView {
 public:
  bool Contains(const Value& id) const { return ids_.count(id) > 0; }
  size_t size() const { return ids_.size(); }
  const std::unordered_set<Value, ValueHash, ValueEq>& ids() const { return ids_; }

  std::vector<Value> SortedIds() const;

  // Builds a Bloom filter over the current IDs (Section IV-A2's fallback for
  // sets too large to probe exactly). The filter is a snapshot: rebuild
  // after DML when exactness of the summary matters.
  std::shared_ptr<const BloomFilter> BuildBloomFilter(double target_fp_rate) const {
    auto bloom = std::make_shared<BloomFilter>(ids_.size(), target_fp_rate);
    for (const Value& id : ids_) bloom->Add(static_cast<uint64_t>(id.Hash()));
    return bloom;
  }

  // Maintenance entry points, driven by the AuditManager's DML hooks
  // (standard incremental materialized-view maintenance).
  void Add(const Value& id) { ids_.insert(id); }
  void Remove(const Value& id) { ids_.erase(id); }
  void Clear() { ids_.clear(); }

 private:
  std::unordered_set<Value, ValueHash, ValueEq> ids_;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_SENSITIVE_ID_VIEW_H_
