// SensitiveIdView: an audit expression compiled to the materialized set of
// partition-by IDs it selects (Section IV-A1). The physical audit operator
// probes this set -- a hash lookup whose cost is independent of the audit
// expression's complexity -- instead of re-evaluating the expression's
// predicate per row.

#ifndef SELTRIG_AUDIT_SENSITIVE_ID_VIEW_H_
#define SELTRIG_AUDIT_SENSITIVE_ID_VIEW_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/bloom_filter.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "types/value.h"

namespace seltrig {

class SensitiveIdView {
 public:
  bool Contains(const Value& id) const { return ids_.count(id) > 0; }
  size_t size() const { return ids_.size(); }
  const std::unordered_set<Value, ValueHash, ValueEq>& ids() const { return ids_; }

  std::vector<Value> SortedIds() const;

  // Builds a Bloom filter over the current IDs (Section IV-A2's fallback for
  // sets too large to probe exactly). The filter is a snapshot: rebuild
  // after DML when exactness of the summary matters.
  std::shared_ptr<const BloomFilter> BuildBloomFilter(double target_fp_rate) const {
    auto bloom = std::make_shared<BloomFilter>(ids_.size(), target_fp_rate);
    for (const Value& id : ids_) bloom->Add(static_cast<uint64_t>(id.Hash()));
    return bloom;
  }

  // Bloom pre-screen for the batch audit probe: a lazily-built summary the
  // physical audit operator consults to skip a whole batch's exact probes
  // when no row can contain a sensitive ID. No false negatives (a negative
  // screen is definitive), so ACCESSED is unaffected. Invalidated by every
  // maintenance call; returns null for sets too small to be worth screening.
  //
  // Safe under concurrent readers: the lazy build races between parallel scan
  // workers, so it is serialized by a mutex. The returned pointer stays valid
  // while readers are active — maintenance (which resets the screen) only
  // runs behind the engine's writer lock, which excludes all readers.
  const BloomFilter* Screen() const SELTRIG_EXCLUDES(screen_mutex_) {
    if (ids_.size() < kScreenMinIds) return nullptr;
    MutexLock lock(&screen_mutex_);
    if (screen_ == nullptr) {
      screen_ = BuildBloomFilter(kScreenFpRate);
    }
    return screen_.get();
  }

  // Maintenance entry points, driven by the AuditManager's DML hooks
  // (standard incremental materialized-view maintenance). Every mutation
  // invalidates the screen (Bloom filters cannot delete, and rebuilding
  // keeps the false-positive rate at its target); the next batch probe
  // rebuilds it lazily.
  void Add(const Value& id) {
    ids_.insert(id);
    ResetScreen();
  }
  void Remove(const Value& id) {
    ids_.erase(id);
    ResetScreen();
  }
  void Clear() {
    ids_.clear();
    ResetScreen();
  }

 private:
  // Below this cardinality the exact hash probes are cheap enough that a
  // pre-screen pass would only add work.
  static constexpr size_t kScreenMinIds = 16;
  static constexpr double kScreenFpRate = 0.01;

  void ResetScreen() SELTRIG_EXCLUDES(screen_mutex_) {
    MutexLock lock(&screen_mutex_);
    screen_.reset();
  }

  std::unordered_set<Value, ValueHash, ValueEq> ids_;
  mutable Mutex screen_mutex_;  // serializes the lazy screen build
  mutable std::shared_ptr<const BloomFilter> screen_ SELTRIG_GUARDED_BY(screen_mutex_);
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_SENSITIVE_ID_VIEW_H_
