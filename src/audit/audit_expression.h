// Audit expressions (Section II-A): declarative specifications of sensitive
// data, compiled to materialized sensitive-ID views (Section IV-A1) that are
// maintained incrementally under DML.

#ifndef SELTRIG_AUDIT_AUDIT_EXPRESSION_H_
#define SELTRIG_AUDIT_AUDIT_EXPRESSION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/sensitive_id_view.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "expr/expr.h"
#include "sql/ast.h"

namespace seltrig {

// A registered audit expression: its defining query, the sensitive table, the
// partition-by key, and the compiled ID view.
class AuditExpressionDef {
 public:
  const std::string& name() const { return name_; }
  const std::string& sensitive_table() const { return sensitive_table_; }
  const std::string& partition_by() const { return partition_by_; }
  int partition_column() const { return partition_column_; }
  const SensitiveIdView& view() const { return view_; }
  SensitiveIdView* mutable_view() { return &view_; }

  // Bound predicate over the sensitive table's schema, or null when the
  // audit expression joins other tables (then only full rebuild maintenance
  // applies and the static auditor cannot reason about it).
  const Expr* single_table_predicate() const { return single_table_predicate_.get(); }

  // Lower-cased names of all tables referenced by the definition.
  const std::vector<std::string>& referenced_tables() const {
    return referenced_tables_;
  }

  // The CREATE AUDIT EXPRESSION statement's own SQL, as parsed (empty for
  // hand-built ASTs). Snapshots with include_policy and the journal replay
  // this text to restore the definition.
  const std::string& definition_sql() const { return definition_sql_; }

  // schema_version() of the sensitive table this definition is currently
  // bound against. Set at CREATE and refreshed by a successful
  // RebindAfterAlter; the shell surfaces it next to each trigger's bound
  // version.
  uint64_t bound_schema_version() const { return bound_schema_version_; }

 private:
  friend class AuditManager;

  std::string name_;
  std::string sensitive_table_;
  std::string partition_by_;
  std::string definition_sql_;
  uint64_t bound_schema_version_ = 0;
  int partition_column_ = -1;
  ExprPtr single_table_predicate_;
  std::vector<std::string> referenced_tables_;
  // The defining SELECT, rewritten to produce only the partition-by key.
  std::unique_ptr<ast::SelectStatement> id_select_;
  SensitiveIdView view_;
};

// Registry and maintenance engine for audit expressions.
class AuditManager {
 public:
  AuditManager(Catalog* catalog, SessionContext* session)
      : catalog_(catalog), session_(session) {}

  AuditManager(const AuditManager&) = delete;
  AuditManager& operator=(const AuditManager&) = delete;

  // Registers the audit expression and materializes its ID view.
  Status CreateAuditExpression(ast::CreateAuditExpressionStatement stmt);

  Status DropAuditExpression(const std::string& name);

  const AuditExpressionDef* Find(const std::string& name) const;
  AuditExpressionDef* FindMutable(const std::string& name);

  std::vector<const AuditExpressionDef*> All() const;

  // Incremental view maintenance, invoked by the Database after DML commits.
  // Single-table audit expressions are maintained per-row; expressions with
  // joins fall back to a full recompute when any referenced table changes.
  Status OnInsert(const std::string& table, const Row& row);
  Status OnDelete(const std::string& table, const Row& row);
  Status OnUpdate(const std::string& table, const Row& old_row, const Row& new_row);

  // Recomputes the view from scratch by executing the defining query.
  // Exposed as the maintenance test oracle.
  Status RebuildView(AuditExpressionDef* def);

  // --- Online schema change (engine/session.cc ExecuteAlterTable) -----------

  // Column renames produced by one ALTER TABLE chain: original name -> final
  // name, for every surviving column whose name changed.
  using ColumnRenames = std::vector<std::pair<std::string, std::string>>;

  // Re-binds every audit expression that references `table` against the
  // table's post-ALTER schema: rewrites renamed column references in the
  // defining AST, re-resolves the partition key, re-binds the single-table
  // maintenance predicate, stamps bound_schema_version, and rebuilds the ID
  // views. All-or-nothing: on any failure (e.g. the definition references a
  // dropped column) every definition is restored to its pre-call binding and
  // the error propagates — the session then rolls the storage change back
  // wholesale, so the ALTER fails closed rather than orphaning a view.
  Status RebindAfterAlter(const std::string& table, const ColumnRenames& renames);

  // Detaches a definition during ALTER (cascade-drop of an expression whose
  // partition key the change destroys, allowed only when no live trigger
  // depends on it). The session keeps the returned definition until the
  // statement commits so a later failure can RestoreDetached it.
  std::unique_ptr<AuditExpressionDef> DetachForAlter(const std::string& name);
  void RestoreDetached(std::unique_ptr<AuditExpressionDef> def);

 private:
  Status MaintainRow(AuditExpressionDef* def, const std::string& table,
                     const Row& row, bool inserted);

  Catalog* catalog_;
  SessionContext* session_;
  std::unordered_map<std::string, std::unique_ptr<AuditExpressionDef>> defs_;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_AUDIT_EXPRESSION_H_
