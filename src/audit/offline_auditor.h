// Offline auditor: ground-truth access semantics per Definition 2.5. A
// sensitive tuple t is accessed by query Q over database D iff the results of
// Q(D) and Q(D - t) differ (bag semantics). Evaluated non-destructively by
// re-running the plan with a scan-level exclusion of t.
//
// This is the component the paper assumes as the back end of the auditing
// pipeline (Figure 1): SELECT triggers are an online filter in front of it,
// guaranteed to produce a superset of these IDs (no false negatives).

#ifndef SELTRIG_AUDIT_OFFLINE_AUDITOR_H_
#define SELTRIG_AUDIT_OFFLINE_AUDITOR_H_

#include <vector>

#include "audit/audit_expression.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "plan/logical_plan.h"

namespace seltrig {

struct OfflineAuditOptions {
  // Restrict Definition 2.5 evaluation to the IDs produced by a leaf-node
  // instrumented run. Sound: the leaf-node heuristic has no false negatives
  // (Claim 3.5), so tuples outside its audit set cannot be accessed. Cuts
  // the number of re-executions from |sensitiveIDs| to |leaf auditIDs|.
  bool prune_with_leaf_audit = true;
  // When non-null, test exactly these IDs instead (overrides pruning). The
  // caller must supply a no-false-negative superset of the accessed IDs --
  // e.g. an hcn audit set (Claim 3.6) -- for the result to stay exact.
  const std::vector<Value>* candidates = nullptr;
};

struct OfflineAuditReport {
  std::vector<Value> accessed_ids;  // sorted
  size_t candidates_tested = 0;
  size_t query_executions = 0;  // including the baseline run
};

class OfflineAuditor {
 public:
  OfflineAuditor(Catalog* catalog, SessionContext* session)
      : catalog_(catalog), session_(session) {}

  // Computes accessedIDs for (plan, def). `plan` must be the uninstrumented
  // optimized plan of the query.
  Result<OfflineAuditReport> Audit(const LogicalOperator& plan,
                                   const AuditExpressionDef& def,
                                   const OfflineAuditOptions& options = {});

 private:
  Catalog* catalog_;
  SessionContext* session_;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_OFFLINE_AUDITOR_H_
