// Trigger definitions and registry. SELECT triggers (ON ACCESS TO <audit
// expression>) fire after a query completes, with the ACCESSED internal state
// bound as a relation; DML triggers (ON <table> AFTER INSERT/UPDATE/DELETE)
// fire per affected row with NEW/OLD bound. Actions are ordinary statements,
// so triggers cascade (Section II). Action execution lives in the Database.

#ifndef SELTRIG_AUDIT_TRIGGER_H_
#define SELTRIG_AUDIT_TRIGGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace seltrig {

struct TriggerDef {
  std::string name;  // lower-case
  bool is_select_trigger = false;
  // SELECT triggers only: fire before the result is returned to the client
  // (the Section II "warn users" variant); an erroring action (RAISE) then
  // denies the query.
  bool before = false;
  std::string audit_expression;  // SELECT triggers: lower-case expr name
  std::string table;             // DML triggers: lower-case table name
  ast::DmlEvent event = ast::DmlEvent::kInsert;
  std::vector<ast::StatementPtr> actions;  // parsed once at CREATE TRIGGER
  bool enabled = true;
  // Circuit-breaker state (ExecOptions::guards.quarantine_after): runs of the
  // action list that failed with no intervening success. Once the threshold
  // is crossed under the fail-open policy the trigger is quarantined --
  // disabled and excluded from firing until re-created or re-armed.
  int consecutive_failures = 0;
  bool quarantined = false;
};

class TriggerManager {
 public:
  TriggerManager() = default;
  TriggerManager(const TriggerManager&) = delete;
  TriggerManager& operator=(const TriggerManager&) = delete;

  Status CreateTrigger(std::unique_ptr<TriggerDef> def);
  Status DropTrigger(const std::string& name);

  const TriggerDef* Find(const std::string& name) const;
  TriggerDef* FindMutable(const std::string& name);

  // Quarantines `name`: disables it and marks it quarantined. NotFound if no
  // such trigger.
  Status Quarantine(const std::string& name);

  // Clears quarantine and the failure counter, re-enabling the trigger.
  Status Rearm(const std::string& name);

  // Every quarantined trigger, sorted by name.
  std::vector<const TriggerDef*> Quarantined() const;

  // SELECT triggers registered on `audit_expression`.
  std::vector<TriggerDef*> SelectTriggersFor(const std::string& audit_expression);

  // DML triggers for (table, event).
  std::vector<TriggerDef*> DmlTriggersFor(const std::string& table, ast::DmlEvent event);

  // Audit expression names that have at least one enabled SELECT trigger --
  // the expressions queries must be instrumented for.
  std::vector<std::string> AuditedExpressionNames() const;

  // Every registered trigger, sorted by name.
  std::vector<const TriggerDef*> All() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<TriggerDef>> triggers_;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_TRIGGER_H_
