// Trigger definitions and registry. SELECT triggers (ON ACCESS TO <audit
// expression>) fire after a query completes, with the ACCESSED internal state
// bound as a relation; DML triggers (ON <table> AFTER INSERT/UPDATE/DELETE)
// fire per affected row with NEW/OLD bound. Actions are ordinary statements,
// so triggers cascade (Section II). Action execution lives in the Database.

#ifndef SELTRIG_AUDIT_TRIGGER_H_
#define SELTRIG_AUDIT_TRIGGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sql/ast.h"

namespace seltrig {

struct TriggerDef {
  std::string name;  // lower-case
  bool is_select_trigger = false;
  // SELECT triggers only: fire before the result is returned to the client
  // (the Section II "warn users" variant); an erroring action (RAISE) then
  // denies the query.
  bool before = false;
  std::string audit_expression;  // SELECT triggers: lower-case expr name
  std::string table;             // DML triggers: lower-case table name
  ast::DmlEvent event = ast::DmlEvent::kInsert;
  std::vector<ast::StatementPtr> actions;  // parsed once at CREATE TRIGGER
  // The CREATE TRIGGER statement's own SQL, as parsed (empty for hand-built
  // ASTs). Snapshots with include_policy and the journal replay this text to
  // restore the trigger.
  std::string definition_sql;
  // schema_version() of the table this trigger is bound against (the audit
  // expression's sensitive table for SELECT triggers, the subject table for
  // DML triggers). Set at CREATE, refreshed when an ALTER TABLE rebind
  // succeeds — but only for enabled triggers: a quarantined trigger keeps
  // its stale version (the shell flags it) until Rearm re-validates it.
  // Mutated only under the engine's writer lock.
  uint64_t bound_schema_version = 0;
  // enabled/quarantined are atomic so concurrent reader sessions can check
  // them while another session quarantines or re-arms the trigger (the
  // trigger-firing phase itself runs under the engine's writer lock).
  std::atomic<bool> enabled{true};
  // Circuit-breaker state (ExecOptions::guards.quarantine_after): runs of the
  // action list that failed with no intervening success. Once the threshold
  // is crossed under the fail-open policy the trigger is quarantined --
  // disabled and excluded from firing until re-created or re-armed. Mutated
  // through TriggerManager::RecordFailure/RecordSuccess (manager mutex).
  int consecutive_failures = 0;
  std::atomic<bool> quarantined{false};
};

class TriggerManager {
 public:
  TriggerManager() = default;
  TriggerManager(const TriggerManager&) = delete;
  TriggerManager& operator=(const TriggerManager&) = delete;

  Status CreateTrigger(std::unique_ptr<TriggerDef> def) SELTRIG_EXCLUDES(mutex_);
  Status DropTrigger(const std::string& name) SELTRIG_EXCLUDES(mutex_);

  const TriggerDef* Find(const std::string& name) const SELTRIG_EXCLUDES(mutex_);
  TriggerDef* FindMutable(const std::string& name) SELTRIG_EXCLUDES(mutex_);

  // Quarantines `name`: disables it and marks it quarantined. NotFound if no
  // such trigger.
  Status Quarantine(const std::string& name) SELTRIG_EXCLUDES(mutex_);

  // Clears quarantine and the failure counter, re-enabling the trigger.
  // When a re-arm validator is installed (set_rearm_validator) it runs first;
  // a non-OK result leaves the trigger quarantined — e.g. its audit
  // expression was cascade-dropped by an ALTER TABLE while it was offline.
  Status Rearm(const std::string& name) SELTRIG_EXCLUDES(mutex_);

  // Re-validation hook for Rearm, installed by the Database: checks that a
  // SELECT trigger's audit expression still exists after online schema
  // changes and refreshes the trigger's bound_schema_version.
  using RearmValidator = std::function<Status(TriggerDef*)>;
  void set_rearm_validator(RearmValidator v) { rearm_validator_ = std::move(v); }

  // Restores circuit-breaker state verbatim (recovery replaying a journaled
  // quarantine transition or a checkpoint's quarantine list).
  Status RestoreQuarantineState(const std::string& name, bool quarantined,
                                int consecutive_failures)
      SELTRIG_EXCLUDES(mutex_);

  // Circuit-breaker bookkeeping for one guarded run of `name`'s action list.
  // RecordFailure bumps the consecutive-failure counter and returns its new
  // value (0 if the trigger vanished); RecordSuccess resets it.
  int RecordFailure(const std::string& name) SELTRIG_EXCLUDES(mutex_);
  void RecordSuccess(const std::string& name) SELTRIG_EXCLUDES(mutex_);

  // Every quarantined trigger, sorted by name.
  std::vector<const TriggerDef*> Quarantined() const SELTRIG_EXCLUDES(mutex_);

  // SELECT triggers registered on `audit_expression`.
  std::vector<TriggerDef*> SelectTriggersFor(const std::string& audit_expression)
      SELTRIG_EXCLUDES(mutex_);

  // DML triggers for (table, event).
  std::vector<TriggerDef*> DmlTriggersFor(const std::string& table, ast::DmlEvent event)
      SELTRIG_EXCLUDES(mutex_);

  // Audit expression names that have at least one enabled SELECT trigger --
  // the expressions queries must be instrumented for.
  std::vector<std::string> AuditedExpressionNames() const SELTRIG_EXCLUDES(mutex_);

  // Every registered trigger, sorted by name.
  std::vector<const TriggerDef*> All() const SELTRIG_EXCLUDES(mutex_);

 private:
  // Guards the registry map and the non-atomic TriggerDef counters
  // (TriggerDef::consecutive_failures is mutated only under this mutex; it
  // lives in TriggerDef, so the guard is documented rather than annotated).
  // TriggerDef pointers handed out remain stable (defs are heap-allocated and
  // only freed by DropTrigger, which the engine serializes behind its writer
  // lock).
  mutable Mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<TriggerDef>> triggers_
      SELTRIG_GUARDED_BY(mutex_);
  // Set once at Database construction, before any concurrent use.
  RearmValidator rearm_validator_;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_TRIGGER_H_
