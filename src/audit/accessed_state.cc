#include "audit/accessed_state.h"

#include <algorithm>

#include "audit/sensitive_id_view.h"

namespace seltrig {

namespace {

std::vector<Value> SortedValues(
    const std::unordered_set<Value, ValueHash, ValueEq>& set) {
  std::vector<Value> out(set.begin(), set.end());
  std::sort(out.begin(), out.end(),
            [](const Value& a, const Value& b) { return Value::Compare(a, b) < 0; });
  return out;
}

}  // namespace

std::vector<Row> AccessedState::ToRows() const {
  std::vector<Row> rows;
  rows.reserve(ids_.size());
  for (const Value& id : SortedValues(ids_)) {
    rows.push_back({id});
  }
  return rows;
}

std::vector<Value> AccessedState::SortedIds() const { return SortedValues(ids_); }

std::vector<Value> SensitiveIdView::SortedIds() const { return SortedValues(ids_); }

}  // namespace seltrig
