// Rewrite-based offline auditing (the approach of Kaushik & Ramamurthy,
// SIGMOD 2011 -- reference [9] of the paper, which the authors' own offline
// tool implements). For the class of select-join queries, the accessed IDs
// are exactly the distinct partition-by keys appearing in the query's
// pre-projection result (the same fact behind Theorem 3.7), so auditing
// reduces to rewriting the query to return those keys -- ONE extra query
// execution instead of Definition 2.5's one-per-candidate re-runs.
//
// The rewriter is deliberately conservative: it applies only when the plan
// provably falls in the supported class (scans, filters, inner joins,
// ID-preserving projections, sorts -- with no subqueries over the sensitive
// table); everything else reports NotApplicable and must go through the
// general OfflineAuditor. The equivalence of the two auditors on the
// supported class is property-tested.

#ifndef SELTRIG_AUDIT_REWRITE_AUDITOR_H_
#define SELTRIG_AUDIT_REWRITE_AUDITOR_H_

#include <vector>

#include "audit/audit_expression.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "plan/logical_plan.h"

namespace seltrig {

struct RewriteAuditReport {
  bool applicable = false;
  std::vector<Value> accessed_ids;  // sorted; meaningful when applicable
};

class RewriteAuditor {
 public:
  RewriteAuditor(Catalog* catalog, SessionContext* session)
      : catalog_(catalog), session_(session) {}

  // True when `plan` is in the supported select-join class with respect to
  // `def` (exactly the precondition of Theorem 3.7 plus "the sensitive table
  // does not appear inside subqueries").
  static bool IsApplicable(const LogicalOperator& plan, const AuditExpressionDef& def);

  // Computes accessedIDs by rewriting: instrument the plan with an hcn audit
  // operator and run it once. On the supported class this equals the
  // Definition 2.5 result; otherwise returns applicable = false.
  Result<RewriteAuditReport> Audit(const LogicalOperator& plan,
                                   const AuditExpressionDef& def);

 private:
  Catalog* catalog_;
  SessionContext* session_;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_REWRITE_AUDITOR_H_
