#include "audit/rewrite_auditor.h"

#include <functional>

#include "audit/accessed_state.h"
#include "audit/placement.h"
#include "exec/executor.h"

namespace seltrig {

namespace {

bool PlanReferencesTable(const LogicalOperator& plan, const std::string& table) {
  if (plan.kind() == PlanKind::kScan) {
    const auto& scan = static_cast<const LogicalScan&>(plan);
    if (scan.virtual_rows == nullptr && scan.table_name == table) return true;
  }
  bool found = false;
  VisitNodeExprs(plan, [&](const Expr& e) {
    std::function<void(const Expr&)> walk = [&](const Expr& x) {
      if (x.kind == ExprKind::kSubquery && x.subquery_plan != nullptr &&
          PlanReferencesTable(*x.subquery_plan, table)) {
        found = true;
      }
      for (const auto& c : x.children) walk(*c);
    };
    walk(e);
  });
  if (found) return true;
  for (const auto& child : plan.children) {
    if (PlanReferencesTable(*child, table)) return true;
  }
  return false;
}

bool NodeInSelectJoinClass(const LogicalOperator& node, const std::string& sensitive) {
  switch (node.kind()) {
    case PlanKind::kScan:
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kValues:
      break;
    case PlanKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      if (join.join_type == JoinType::kLeft) return false;
      break;
    }
    // Row-consuming / duplicate-eliminating operators break the
    // filter-commutativity argument (Examples 3.2 / 3.9).
    case PlanKind::kAggregate:
    case PlanKind::kLimit:
    case PlanKind::kDistinct:
    case PlanKind::kAudit:
      return false;
  }
  // Subqueries are admissible as opaque predicates only while they do not
  // read the sensitive table (otherwise deleting a sensitive tuple could
  // change the predicate itself).
  bool ok = true;
  VisitNodeExprs(node, [&](const Expr& e) {
    std::function<void(const Expr&)> walk = [&](const Expr& x) {
      if (x.kind == ExprKind::kSubquery && x.subquery_plan != nullptr &&
          PlanReferencesTable(*x.subquery_plan, sensitive)) {
        ok = false;
      }
      for (const auto& c : x.children) walk(*c);
    };
    walk(e);
  });
  if (!ok) return false;
  for (const auto& child : node.children) {
    if (!NodeInSelectJoinClass(*child, sensitive)) return false;
  }
  return true;
}

}  // namespace

bool RewriteAuditor::IsApplicable(const LogicalOperator& plan,
                                  const AuditExpressionDef& def) {
  return NodeInSelectJoinClass(plan, def.sensitive_table());
}

Result<RewriteAuditReport> RewriteAuditor::Audit(const LogicalOperator& plan,
                                                 const AuditExpressionDef& def) {
  RewriteAuditReport report;
  if (!IsApplicable(plan, def)) {
    return report;  // applicable = false
  }
  report.applicable = true;

  PlacementOptions popts;
  popts.heuristic = PlacementHeuristic::kHighestCommutativeNode;
  SELTRIG_ASSIGN_OR_RETURN(PlanPtr instrumented, InstrumentPlan(plan, def, popts));

  ExecContext ctx(catalog_, session_);
  AccessedStateRegistry registry;
  ctx.set_accessed(&registry);
  Executor executor(&ctx);
  Result<std::vector<Row>> rows = executor.ExecutePlan(*instrumented, {});
  SELTRIG_RETURN_IF_ERROR(rows.status());

  const AccessedState* state = registry.Find(def.name());
  if (state != nullptr) report.accessed_ids = state->SortedIds();
  return report;
}

}  // namespace seltrig
