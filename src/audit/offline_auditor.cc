#include "audit/offline_auditor.h"

#include <algorithm>

#include "audit/accessed_state.h"
#include "audit/placement.h"
#include "exec/executor.h"

namespace seltrig {

namespace {

// Canonical bag form: rows sorted lexicographically by total Value order.
void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
}

bool SameBag(const std::vector<Row>& sorted_a, std::vector<Row> b) {
  if (sorted_a.size() != b.size()) return false;
  SortRows(&b);
  RowEq eq;
  for (size_t i = 0; i < sorted_a.size(); ++i) {
    if (!eq(sorted_a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

Result<OfflineAuditReport> OfflineAuditor::Audit(const LogicalOperator& plan,
                                                 const AuditExpressionDef& def,
                                                 const OfflineAuditOptions& options) {
  OfflineAuditReport report;

  // Baseline: Q(D).
  std::vector<Row> baseline;
  {
    ExecContext ctx(catalog_, session_);
    Executor executor(&ctx);
    SELTRIG_ASSIGN_OR_RETURN(baseline, executor.ExecutePlan(plan, {}));
    report.query_executions++;
  }
  SortRows(&baseline);

  // Candidate set.
  std::vector<Value> candidates;
  if (options.candidates != nullptr) {
    candidates = *options.candidates;
  } else if (options.prune_with_leaf_audit) {
    PlacementOptions popts;
    popts.heuristic = PlacementHeuristic::kLeafNode;
    SELTRIG_ASSIGN_OR_RETURN(PlanPtr leaf_plan, InstrumentPlan(plan, def, popts));
    ExecContext ctx(catalog_, session_);
    AccessedStateRegistry registry;
    ctx.set_accessed(&registry);
    Executor executor(&ctx);
    Result<std::vector<Row>> rows = executor.ExecutePlan(*leaf_plan, {});
    SELTRIG_RETURN_IF_ERROR(rows.status());
    report.query_executions++;
    const AccessedState* state = registry.Find(def.name());
    if (state != nullptr) candidates = state->SortedIds();
  } else {
    candidates = def.view().SortedIds();
  }

  // Definition 2.5: delete, re-run, compare.
  for (const Value& id : candidates) {
    ExecContext ctx(catalog_, session_);
    ScanExclusion exclusion;
    exclusion.table = def.sensitive_table();
    exclusion.column = def.partition_column();
    exclusion.value = id;
    ctx.AddExclusion(std::move(exclusion));
    Executor executor(&ctx);
    SELTRIG_ASSIGN_OR_RETURN(std::vector<Row> without, executor.ExecutePlan(plan, {}));
    report.query_executions++;
    report.candidates_tested++;
    if (!SameBag(baseline, std::move(without))) {
      report.accessed_ids.push_back(id);
    }
  }
  std::sort(report.accessed_ids.begin(), report.accessed_ids.end(),
            [](const Value& a, const Value& b) { return Value::Compare(a, b) < 0; });
  return report;
}

}  // namespace seltrig
