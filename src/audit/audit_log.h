// Convenience layer for the paper's canonical auditing deployment
// (Section II-C / Figure 1): a standard access-log table, a helper that
// installs the logging SELECT trigger for an audit expression, and the
// queries a compliance officer runs against the log -- including the HIPAA
// disclosure report of Example 1.1.

#ifndef SELTRIG_AUDIT_AUDIT_LOG_H_
#define SELTRIG_AUDIT_AUDIT_LOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace seltrig {

// One parsed audit-log entry.
struct AuditLogEntry {
  std::string timestamp;
  std::string user;
  std::string sql;
  Value partition_id;
  int32_t day = 0;
};

class AuditLogger {
 public:
  // Manages the log table `table_name` in `db` (created on Install if
  // absent). The schema is (ts VARCHAR, userid VARCHAR, sql VARCHAR,
  // pid <key type>, day DATE).
  AuditLogger(Database* db, std::string table_name = "seltrig_access_log")
      : db_(db), table_(std::move(table_name)) {}

  // Creates the log table (if needed) and a SELECT trigger
  // `log_<audit expression>` that appends one row per accessed ID.
  Status Install(const std::string& audit_expression);

  // Removes the trigger installed for `audit_expression` (the log table and
  // its contents are preserved).
  Status Uninstall(const std::string& audit_expression);

  // All log entries for one individual's partition-by ID, oldest first --
  // the HIPAA "who saw my record" disclosure report (Example 1.1).
  Result<std::vector<AuditLogEntry>> DisclosureReport(const Value& id);

  // Distinct individuals accessed by `user` on `day`; powers
  // more-than-N-records-per-day alerting (Section II-C's Notify trigger).
  Result<int64_t> DistinctAccessesBy(const std::string& user, int32_t day);

  // Users ordered by the number of distinct individuals accessed
  // (Section I's "patients accessed by each doctor, ordered").
  Result<QueryResult> AccessRanking();

  const std::string& table_name() const { return table_; }

 private:
  Status EnsureTable();

  Database* db_;
  std::string table_;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_AUDIT_LOG_H_
