// Static-analysis auditor in the style of Oracle Fine-Grained Auditing
// (Section VI, Example 6.1): without executing anything, flags a query as
// potentially accessing an audit expression unless the query's single-table
// predicates on the sensitive table are *provably disjoint* from the audit
// expression's predicate (instance-independent semantics). Efficient, but
// produces false positives for almost every realistic query -- the
// comparison point motivating execution-based audit operators.

#ifndef SELTRIG_AUDIT_STATIC_AUDITOR_H_
#define SELTRIG_AUDIT_STATIC_AUDITOR_H_

#include <string>

#include "audit/audit_expression.h"
#include "plan/logical_plan.h"

namespace seltrig {

struct StaticAuditResult {
  bool flagged = false;
  std::string reason;
};

// Analyzes an (optimized, uninstrumented) plan against `def`. The plan should
// have single-table predicates pushed into scans (the optimizer does this).
StaticAuditResult StaticAnalyzeQuery(const LogicalOperator& plan,
                                     const AuditExpressionDef& def);

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_STATIC_AUDITOR_H_
