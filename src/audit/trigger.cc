#include "audit/trigger.h"

#include <algorithm>

#include "common/string_util.h"

namespace seltrig {

Status TriggerManager::CreateTrigger(std::unique_ptr<TriggerDef> def) {
  std::string key = ToLower(def->name);
  def->name = key;
  MutexLock lock(&mutex_);
  if (triggers_.count(key) > 0) {
    return Status::AlreadyExists("trigger already exists: " + key);
  }
  triggers_.emplace(std::move(key), std::move(def));
  return Status::OK();
}

Status TriggerManager::DropTrigger(const std::string& name) {
  MutexLock lock(&mutex_);
  if (triggers_.erase(ToLower(name)) == 0) {
    return Status::NotFound("trigger not found: " + name);
  }
  return Status::OK();
}

const TriggerDef* TriggerManager::Find(const std::string& name) const {
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = triggers_.find(key);
  return it == triggers_.end() ? nullptr : it->second.get();
}

TriggerDef* TriggerManager::FindMutable(const std::string& name) {
  std::string key = ToLower(name);
  MutexLock lock(&mutex_);
  auto it = triggers_.find(key);
  return it == triggers_.end() ? nullptr : it->second.get();
}

Status TriggerManager::Quarantine(const std::string& name) {
  TriggerDef* def = FindMutable(name);
  if (def == nullptr) return Status::NotFound("trigger not found: " + name);
  def->enabled = false;
  def->quarantined = true;
  return Status::OK();
}

Status TriggerManager::Rearm(const std::string& name) {
  TriggerDef* def = FindMutable(name);
  if (def == nullptr) return Status::NotFound("trigger not found: " + name);
  // Fail-closed re-validation: a trigger that went stale while quarantined
  // (its audit expression dropped, possibly cascaded by an ALTER TABLE) must
  // not silently resume firing against bindings that no longer exist.
  if (rearm_validator_ != nullptr) SELTRIG_RETURN_IF_ERROR(rearm_validator_(def));
  {
    MutexLock lock(&mutex_);
    def->consecutive_failures = 0;
  }
  def->quarantined = false;
  def->enabled = true;
  return Status::OK();
}

Status TriggerManager::RestoreQuarantineState(const std::string& name,
                                              bool quarantined,
                                              int consecutive_failures) {
  TriggerDef* def = FindMutable(name);
  if (def == nullptr) return Status::NotFound("trigger not found: " + name);
  {
    MutexLock lock(&mutex_);
    def->consecutive_failures = consecutive_failures;
  }
  def->quarantined = quarantined;
  def->enabled = !quarantined;
  return Status::OK();
}

int TriggerManager::RecordFailure(const std::string& name) {
  TriggerDef* def = FindMutable(name);
  if (def == nullptr) return 0;
  MutexLock lock(&mutex_);
  return ++def->consecutive_failures;
}

void TriggerManager::RecordSuccess(const std::string& name) {
  TriggerDef* def = FindMutable(name);
  if (def == nullptr) return;
  MutexLock lock(&mutex_);
  def->consecutive_failures = 0;
}

std::vector<const TriggerDef*> TriggerManager::Quarantined() const {
  std::vector<const TriggerDef*> out;
  {
    MutexLock lock(&mutex_);
    for (const auto& [name, def] : triggers_) {
      if (def->quarantined) out.push_back(def.get());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TriggerDef* a, const TriggerDef* b) { return a->name < b->name; });
  return out;
}

std::vector<TriggerDef*> TriggerManager::SelectTriggersFor(
    const std::string& audit_expression) {
  std::vector<TriggerDef*> out;
  {
    MutexLock lock(&mutex_);
    for (auto& [name, def] : triggers_) {
      if (def->enabled && def->is_select_trigger &&
          def->audit_expression == audit_expression) {
        out.push_back(def.get());
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TriggerDef* a, const TriggerDef* b) { return a->name < b->name; });
  return out;
}

std::vector<TriggerDef*> TriggerManager::DmlTriggersFor(const std::string& table,
                                                        ast::DmlEvent event) {
  std::vector<TriggerDef*> out;
  {
    MutexLock lock(&mutex_);
    for (auto& [name, def] : triggers_) {
      if (def->enabled && !def->is_select_trigger && def->table == table &&
          def->event == event) {
        out.push_back(def.get());
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TriggerDef* a, const TriggerDef* b) { return a->name < b->name; });
  return out;
}

std::vector<const TriggerDef*> TriggerManager::All() const {
  std::vector<const TriggerDef*> out;
  {
    MutexLock lock(&mutex_);
    out.reserve(triggers_.size());
    for (const auto& [name, def] : triggers_) out.push_back(def.get());
  }
  std::sort(out.begin(), out.end(),
            [](const TriggerDef* a, const TriggerDef* b) { return a->name < b->name; });
  return out;
}

std::vector<std::string> TriggerManager::AuditedExpressionNames() const {
  std::vector<std::string> names;
  {
    MutexLock lock(&mutex_);
    for (const auto& [name, def] : triggers_) {
      if (def->enabled && def->is_select_trigger) {
        if (std::find(names.begin(), names.end(), def->audit_expression) ==
            names.end()) {
          names.push_back(def->audit_expression);
        }
      }
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace seltrig
