#include "audit/audit_expression.h"

#include <utility>

#include "binder/binder.h"
#include "common/fault_injector.h"
#include "common/string_util.h"
#include "exec/executor.h"
#include "expr/evaluator.h"

namespace seltrig {

Status AuditManager::CreateAuditExpression(ast::CreateAuditExpressionStatement stmt) {
  std::string key = ToLower(stmt.name);
  if (defs_.count(key) > 0) {
    return Status::AlreadyExists("audit expression already exists: " + stmt.name);
  }
  auto def = std::make_unique<AuditExpressionDef>();
  def->name_ = key;
  def->sensitive_table_ = ToLower(stmt.sensitive_table);
  def->partition_by_ = ToLower(stmt.partition_by);
  def->definition_sql_ = stmt.source;

  Result<Table*> table = catalog_->GetTable(def->sensitive_table_);
  SELTRIG_RETURN_IF_ERROR(table.status());
  Result<int> pcol = (*table)->schema().Resolve("", def->partition_by_);
  SELTRIG_RETURN_IF_ERROR(pcol.status());
  def->partition_column_ = *pcol;
  def->bound_schema_version_ = (*table)->schema_version();

  // Collect referenced tables and detect the single-table case.
  bool sensitive_in_from = false;
  for (const ast::FromClause& fc : stmt.select->from) {
    def->referenced_tables_.push_back(fc.base.table);
    if (fc.base.table == def->sensitive_table_) sensitive_in_from = true;
    for (const ast::JoinClause& jc : fc.joins) {
      def->referenced_tables_.push_back(jc.table.table);
      if (jc.table.table == def->sensitive_table_) sensitive_in_from = true;
    }
  }
  if (!sensitive_in_from) {
    return Status::BindError("sensitive table " + def->sensitive_table_ +
                             " is not referenced by the audit expression");
  }

  // Single-table audit expression: bind the WHERE clause against the
  // sensitive table for per-row incremental maintenance and static analysis.
  bool single_table = def->referenced_tables_.size() == 1 &&
                      stmt.select->from.size() == 1 &&
                      stmt.select->from[0].joins.empty();
  if (single_table && stmt.select->where != nullptr) {
    Schema schema = (*table)->schema();
    const std::string alias = stmt.select->from[0].base.alias.empty()
                                  ? stmt.select->from[0].base.table
                                  : stmt.select->from[0].base.alias;
    for (size_t i = 0; i < schema.size(); ++i) schema.column(i).qualifier = alias;
    Binder binder(catalog_);
    Result<ExprPtr> pred = binder.BindStandaloneExpr(*stmt.select->where, schema);
    SELTRIG_RETURN_IF_ERROR(pred.status());
    def->single_table_predicate_ = std::move(pred).value();
  } else if (single_table && stmt.select->where == nullptr) {
    def->single_table_predicate_ = MakeLiteral(Value::Bool(true));
  }

  // Rewrite the defining SELECT to produce only the partition-by key
  // (Section IV-A1: audit expressions are compiled to ID sets).
  def->id_select_ = std::move(stmt.select);
  def->id_select_->items.clear();
  ast::SelectItem item;
  item.expr = std::make_unique<ast::Expression>(ast::ExprType::kColumnRef);
  item.expr->name = def->partition_by_;
  // Qualify with the sensitive table's binding alias to disambiguate joins.
  for (const ast::FromClause& fc : def->id_select_->from) {
    if (fc.base.table == def->sensitive_table_) {
      item.expr->qualifier = fc.base.alias.empty() ? fc.base.table : fc.base.alias;
    }
    for (const ast::JoinClause& jc : fc.joins) {
      if (jc.table.table == def->sensitive_table_) {
        item.expr->qualifier = jc.table.alias.empty() ? jc.table.table : jc.table.alias;
      }
    }
  }
  def->id_select_->items.push_back(std::move(item));
  def->id_select_->distinct = true;
  def->id_select_->order_by.clear();

  AuditExpressionDef* raw = def.get();
  defs_.emplace(key, std::move(def));
  Status rebuilt = RebuildView(raw);
  if (!rebuilt.ok()) {
    defs_.erase(key);
    return rebuilt;
  }
  return Status::OK();
}

Status AuditManager::DropAuditExpression(const std::string& name) {
  if (defs_.erase(ToLower(name)) == 0) {
    return Status::NotFound("audit expression not found: " + name);
  }
  return Status::OK();
}

const AuditExpressionDef* AuditManager::Find(const std::string& name) const {
  auto it = defs_.find(ToLower(name));
  return it == defs_.end() ? nullptr : it->second.get();
}

AuditExpressionDef* AuditManager::FindMutable(const std::string& name) {
  auto it = defs_.find(ToLower(name));
  return it == defs_.end() ? nullptr : it->second.get();
}

std::vector<const AuditExpressionDef*> AuditManager::All() const {
  std::vector<const AuditExpressionDef*> out;
  out.reserve(defs_.size());
  for (const auto& [name, def] : defs_) out.push_back(def.get());
  return out;
}

Status AuditManager::RebuildView(AuditExpressionDef* def) {
  Binder binder(catalog_);
  Result<PlanPtr> plan = binder.BindSelect(*def->id_select_);
  SELTRIG_RETURN_IF_ERROR(plan.status());

  ExecContext ctx(catalog_, session_);
  Executor executor(&ctx);
  Result<std::vector<Row>> rows = executor.ExecutePlan(**plan, {});
  SELTRIG_RETURN_IF_ERROR(rows.status());

  def->view_.Clear();
  for (const Row& row : *rows) {
    if (!row[0].is_null()) def->view_.Add(row[0]);
  }
  return Status::OK();
}

// --- Online schema change -----------------------------------------------------

namespace {

// One applied column-reference rename, recorded so a failed rebind can put
// the AST back exactly as it was.
struct AppliedRename {
  ast::Expression* expr;
  std::string old_name;
};

// Aliases under which `table` is visible in one SELECT scope.
void CollectTableAliases(const ast::SelectStatement& select, const std::string& table,
                         std::vector<std::string>* aliases) {
  for (const ast::FromClause& fc : select.from) {
    if (fc.base.table == table) {
      aliases->push_back(fc.base.alias.empty() ? fc.base.table : fc.base.alias);
    }
    for (const ast::JoinClause& jc : fc.joins) {
      if (jc.table.table == table) {
        aliases->push_back(jc.table.alias.empty() ? jc.table.table : jc.table.alias);
      }
    }
  }
}

void RewriteSelectRefs(ast::SelectStatement* select, const std::string& table,
                       const AuditManager::ColumnRenames& renames,
                       const std::vector<std::string>& outer_aliases,
                       std::vector<AppliedRename>* applied);

void RewriteExprRefs(ast::Expression* expr, const std::string& table,
                     const AuditManager::ColumnRenames& renames,
                     const std::vector<std::string>& aliases,
                     std::vector<AppliedRename>* applied) {
  if (expr == nullptr) return;
  if (expr->type == ast::ExprType::kColumnRef) {
    bool in_scope = expr->qualifier.empty();
    for (const std::string& alias : aliases) {
      in_scope = in_scope || expr->qualifier == alias;
    }
    if (in_scope) {
      for (const auto& [from, to] : renames) {
        if (expr->name == from) {
          applied->push_back({expr, expr->name});
          expr->name = to;
          break;
        }
      }
    }
  }
  for (const ast::ExprNode& child : expr->children) {
    RewriteExprRefs(child.get(), table, renames, aliases, applied);
  }
  if (expr->subquery != nullptr) {
    RewriteSelectRefs(expr->subquery.get(), table, renames, aliases, applied);
  }
}

void RewriteSelectRefs(ast::SelectStatement* select, const std::string& table,
                       const AuditManager::ColumnRenames& renames,
                       const std::vector<std::string>& outer_aliases,
                       std::vector<AppliedRename>* applied) {
  // A subquery sees the altered table under its own FROM aliases plus any
  // correlated outer bindings.
  std::vector<std::string> aliases = outer_aliases;
  CollectTableAliases(*select, table, &aliases);
  for (ast::SelectItem& item : select->items) {
    RewriteExprRefs(item.expr.get(), table, renames, aliases, applied);
  }
  for (ast::FromClause& fc : select->from) {
    if (fc.base.derived != nullptr) {
      RewriteSelectRefs(fc.base.derived.get(), table, renames, outer_aliases, applied);
    }
    for (ast::JoinClause& jc : fc.joins) {
      if (jc.table.derived != nullptr) {
        RewriteSelectRefs(jc.table.derived.get(), table, renames, outer_aliases,
                          applied);
      }
      RewriteExprRefs(jc.condition.get(), table, renames, aliases, applied);
    }
  }
  RewriteExprRefs(select->where.get(), table, renames, aliases, applied);
  for (ast::ExprNode& e : select->group_by) {
    RewriteExprRefs(e.get(), table, renames, aliases, applied);
  }
  RewriteExprRefs(select->having.get(), table, renames, aliases, applied);
  for (ast::OrderByItem& item : select->order_by) {
    RewriteExprRefs(item.expr.get(), table, renames, aliases, applied);
  }
}

}  // namespace

Status AuditManager::RebindAfterAlter(const std::string& table,
                                      const ColumnRenames& renames) {
  const std::string key = ToLower(table);

  // Saved pre-call binding of one definition, for the all-or-nothing revert.
  struct Saved {
    AuditExpressionDef* def;
    std::string partition_by;
    int partition_column;
    uint64_t bound_schema_version;
    ExprPtr predicate;
    std::vector<AppliedRename> edits;
  };
  std::vector<Saved> saved;
  auto revert_all = [&saved]() {
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      for (auto e = it->edits.rbegin(); e != it->edits.rend(); ++e) {
        e->expr->name = e->old_name;
      }
      it->def->partition_by_ = it->partition_by;
      it->def->partition_column_ = it->partition_column;
      it->def->bound_schema_version_ = it->bound_schema_version;
      it->def->single_table_predicate_ = std::move(it->predicate);
    }
  };

  Status failed = Status::OK();
  std::vector<AuditExpressionDef*> rebound;
  for (auto& [name, def] : defs_) {
    bool references = false;
    for (const std::string& ref : def->referenced_tables_) {
      references = references || ref == key;
    }
    if (!references) continue;

    Saved s;
    s.def = def.get();
    s.partition_by = def->partition_by_;
    s.partition_column = def->partition_column_;
    s.bound_schema_version = def->bound_schema_version_;

    RewriteSelectRefs(def->id_select_.get(), key, renames, {}, &s.edits);

    if (def->sensitive_table_ == key) {
      for (const auto& [from, to] : renames) {
        if (def->partition_by_ == from) def->partition_by_ = to;
      }
      Result<Table*> t = catalog_->GetTable(key);
      if (!t.ok()) {
        failed = t.status();
      } else {
        Result<int> pcol = (*t)->schema().Resolve("", def->partition_by_);
        if (!pcol.ok()) {
          failed = Status::FailedPrecondition(
              "audit expression '" + def->name_ + "': partition key '" +
              def->partition_by_ + "' no longer resolves after ALTER TABLE " +
              key + ": " + pcol.status().ToString());
        } else {
          def->partition_column_ = *pcol;
          def->bound_schema_version_ = (*t)->schema_version();
        }
      }
      // Re-bind the single-table maintenance predicate from the (rewritten)
      // defining WHERE: its column indexes are stale after any add/drop.
      if (failed.ok() && def->single_table_predicate_ != nullptr) {
        s.predicate = std::move(def->single_table_predicate_);
        if (def->id_select_->where == nullptr) {
          def->single_table_predicate_ = MakeLiteral(Value::Bool(true));
        } else {
          Schema schema = (*catalog_->GetTable(key))->schema();
          const std::string alias = def->id_select_->from[0].base.alias.empty()
                                        ? def->id_select_->from[0].base.table
                                        : def->id_select_->from[0].base.alias;
          for (size_t i = 0; i < schema.size(); ++i) {
            schema.column(i).qualifier = alias;
          }
          Binder binder(catalog_);
          Result<ExprPtr> pred =
              binder.BindStandaloneExpr(*def->id_select_->where, schema);
          if (!pred.ok()) {
            failed = pred.status();
          } else {
            def->single_table_predicate_ = std::move(pred).value();
          }
        }
      }
    }
    rebound.push_back(def.get());
    saved.push_back(std::move(s));
    if (!failed.ok()) break;
  }

  if (failed.ok()) {
    for (AuditExpressionDef* def : rebound) {
      failed = RebuildView(def);
      if (!failed.ok()) break;
    }
  }
  if (!failed.ok()) {
    revert_all();
    // Views rebuilt before the failure were computed under bindings that are
    // now reverted; recompute them. The caller is about to roll the storage
    // change back too and rebuilds views again afterwards, so this is only
    // needed for callers that mutated nothing (best-effort either way).
    for (AuditExpressionDef* def : rebound) (void)RebuildView(def);
    return failed;
  }
  return Status::OK();
}

std::unique_ptr<AuditExpressionDef> AuditManager::DetachForAlter(
    const std::string& name) {
  auto it = defs_.find(ToLower(name));
  if (it == defs_.end()) return nullptr;
  std::unique_ptr<AuditExpressionDef> def = std::move(it->second);
  defs_.erase(it);
  return def;
}

void AuditManager::RestoreDetached(std::unique_ptr<AuditExpressionDef> def) {
  if (def == nullptr) return;
  std::string key = def->name_;
  defs_.emplace(std::move(key), std::move(def));
}

Status AuditManager::MaintainRow(AuditExpressionDef* def, const std::string& table,
                                 const Row& row, bool inserted) {
  if (def->single_table_predicate_ != nullptr && table == def->sensitive_table_) {
    // Per-row maintenance: the partition key is the primary key of the
    // sensitive table, so a delete of a satisfying row removes its ID and an
    // insert adds it.
    ExecContext ctx(catalog_, session_);
    EvalContext ec;
    ec.row = &row;
    ec.exec = &ctx;
    Result<bool> satisfies = EvalPredicate(*def->single_table_predicate_, ec);
    SELTRIG_RETURN_IF_ERROR(satisfies.status());
    if (*satisfies) {
      const Value& key = row[def->partition_column_];
      if (!key.is_null()) {
        if (inserted) {
          def->view_.Add(key);
        } else {
          def->view_.Remove(key);
        }
      }
    }
    return Status::OK();
  }
  // Join audit expressions: recompute when any referenced table changes.
  for (const std::string& ref : def->referenced_tables_) {
    if (ref == table) return RebuildView(def);
  }
  return Status::OK();
}

Status AuditManager::OnInsert(const std::string& table, const Row& row) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kAuditMaintain));
  for (auto& [name, def] : defs_) {
    SELTRIG_RETURN_IF_ERROR(MaintainRow(def.get(), table, row, /*inserted=*/true));
  }
  return Status::OK();
}

Status AuditManager::OnDelete(const std::string& table, const Row& row) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kAuditMaintain));
  for (auto& [name, def] : defs_) {
    SELTRIG_RETURN_IF_ERROR(MaintainRow(def.get(), table, row, /*inserted=*/false));
  }
  return Status::OK();
}

Status AuditManager::OnUpdate(const std::string& table, const Row& old_row,
                              const Row& new_row) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kAuditMaintain));
  for (auto& [name, def] : defs_) {
    SELTRIG_RETURN_IF_ERROR(MaintainRow(def.get(), table, old_row, /*inserted=*/false));
    SELTRIG_RETURN_IF_ERROR(MaintainRow(def.get(), table, new_row, /*inserted=*/true));
  }
  return Status::OK();
}

}  // namespace seltrig
