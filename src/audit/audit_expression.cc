#include "audit/audit_expression.h"

#include <utility>

#include "binder/binder.h"
#include "common/fault_injector.h"
#include "common/string_util.h"
#include "exec/executor.h"
#include "expr/evaluator.h"

namespace seltrig {

Status AuditManager::CreateAuditExpression(ast::CreateAuditExpressionStatement stmt) {
  std::string key = ToLower(stmt.name);
  if (defs_.count(key) > 0) {
    return Status::AlreadyExists("audit expression already exists: " + stmt.name);
  }
  auto def = std::make_unique<AuditExpressionDef>();
  def->name_ = key;
  def->sensitive_table_ = ToLower(stmt.sensitive_table);
  def->partition_by_ = ToLower(stmt.partition_by);
  def->definition_sql_ = stmt.source;

  Result<Table*> table = catalog_->GetTable(def->sensitive_table_);
  SELTRIG_RETURN_IF_ERROR(table.status());
  Result<int> pcol = (*table)->schema().Resolve("", def->partition_by_);
  SELTRIG_RETURN_IF_ERROR(pcol.status());
  def->partition_column_ = *pcol;

  // Collect referenced tables and detect the single-table case.
  bool sensitive_in_from = false;
  for (const ast::FromClause& fc : stmt.select->from) {
    def->referenced_tables_.push_back(fc.base.table);
    if (fc.base.table == def->sensitive_table_) sensitive_in_from = true;
    for (const ast::JoinClause& jc : fc.joins) {
      def->referenced_tables_.push_back(jc.table.table);
      if (jc.table.table == def->sensitive_table_) sensitive_in_from = true;
    }
  }
  if (!sensitive_in_from) {
    return Status::BindError("sensitive table " + def->sensitive_table_ +
                             " is not referenced by the audit expression");
  }

  // Single-table audit expression: bind the WHERE clause against the
  // sensitive table for per-row incremental maintenance and static analysis.
  bool single_table = def->referenced_tables_.size() == 1 &&
                      stmt.select->from.size() == 1 &&
                      stmt.select->from[0].joins.empty();
  if (single_table && stmt.select->where != nullptr) {
    Schema schema = (*table)->schema();
    const std::string alias = stmt.select->from[0].base.alias.empty()
                                  ? stmt.select->from[0].base.table
                                  : stmt.select->from[0].base.alias;
    for (size_t i = 0; i < schema.size(); ++i) schema.column(i).qualifier = alias;
    Binder binder(catalog_);
    Result<ExprPtr> pred = binder.BindStandaloneExpr(*stmt.select->where, schema);
    SELTRIG_RETURN_IF_ERROR(pred.status());
    def->single_table_predicate_ = std::move(pred).value();
  } else if (single_table && stmt.select->where == nullptr) {
    def->single_table_predicate_ = MakeLiteral(Value::Bool(true));
  }

  // Rewrite the defining SELECT to produce only the partition-by key
  // (Section IV-A1: audit expressions are compiled to ID sets).
  def->id_select_ = std::move(stmt.select);
  def->id_select_->items.clear();
  ast::SelectItem item;
  item.expr = std::make_unique<ast::Expression>(ast::ExprType::kColumnRef);
  item.expr->name = def->partition_by_;
  // Qualify with the sensitive table's binding alias to disambiguate joins.
  for (const ast::FromClause& fc : def->id_select_->from) {
    if (fc.base.table == def->sensitive_table_) {
      item.expr->qualifier = fc.base.alias.empty() ? fc.base.table : fc.base.alias;
    }
    for (const ast::JoinClause& jc : fc.joins) {
      if (jc.table.table == def->sensitive_table_) {
        item.expr->qualifier = jc.table.alias.empty() ? jc.table.table : jc.table.alias;
      }
    }
  }
  def->id_select_->items.push_back(std::move(item));
  def->id_select_->distinct = true;
  def->id_select_->order_by.clear();

  AuditExpressionDef* raw = def.get();
  defs_.emplace(key, std::move(def));
  Status rebuilt = RebuildView(raw);
  if (!rebuilt.ok()) {
    defs_.erase(key);
    return rebuilt;
  }
  return Status::OK();
}

Status AuditManager::DropAuditExpression(const std::string& name) {
  if (defs_.erase(ToLower(name)) == 0) {
    return Status::NotFound("audit expression not found: " + name);
  }
  return Status::OK();
}

const AuditExpressionDef* AuditManager::Find(const std::string& name) const {
  auto it = defs_.find(ToLower(name));
  return it == defs_.end() ? nullptr : it->second.get();
}

AuditExpressionDef* AuditManager::FindMutable(const std::string& name) {
  auto it = defs_.find(ToLower(name));
  return it == defs_.end() ? nullptr : it->second.get();
}

std::vector<const AuditExpressionDef*> AuditManager::All() const {
  std::vector<const AuditExpressionDef*> out;
  out.reserve(defs_.size());
  for (const auto& [name, def] : defs_) out.push_back(def.get());
  return out;
}

Status AuditManager::RebuildView(AuditExpressionDef* def) {
  Binder binder(catalog_);
  Result<PlanPtr> plan = binder.BindSelect(*def->id_select_);
  SELTRIG_RETURN_IF_ERROR(plan.status());

  ExecContext ctx(catalog_, session_);
  Executor executor(&ctx);
  Result<std::vector<Row>> rows = executor.ExecutePlan(**plan, {});
  SELTRIG_RETURN_IF_ERROR(rows.status());

  def->view_.Clear();
  for (const Row& row : *rows) {
    if (!row[0].is_null()) def->view_.Add(row[0]);
  }
  return Status::OK();
}

Status AuditManager::MaintainRow(AuditExpressionDef* def, const std::string& table,
                                 const Row& row, bool inserted) {
  if (def->single_table_predicate_ != nullptr && table == def->sensitive_table_) {
    // Per-row maintenance: the partition key is the primary key of the
    // sensitive table, so a delete of a satisfying row removes its ID and an
    // insert adds it.
    ExecContext ctx(catalog_, session_);
    EvalContext ec;
    ec.row = &row;
    ec.exec = &ctx;
    Result<bool> satisfies = EvalPredicate(*def->single_table_predicate_, ec);
    SELTRIG_RETURN_IF_ERROR(satisfies.status());
    if (*satisfies) {
      const Value& key = row[def->partition_column_];
      if (!key.is_null()) {
        if (inserted) {
          def->view_.Add(key);
        } else {
          def->view_.Remove(key);
        }
      }
    }
    return Status::OK();
  }
  // Join audit expressions: recompute when any referenced table changes.
  for (const std::string& ref : def->referenced_tables_) {
    if (ref == table) return RebuildView(def);
  }
  return Status::OK();
}

Status AuditManager::OnInsert(const std::string& table, const Row& row) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe("audit.maintain"));
  for (auto& [name, def] : defs_) {
    SELTRIG_RETURN_IF_ERROR(MaintainRow(def.get(), table, row, /*inserted=*/true));
  }
  return Status::OK();
}

Status AuditManager::OnDelete(const std::string& table, const Row& row) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe("audit.maintain"));
  for (auto& [name, def] : defs_) {
    SELTRIG_RETURN_IF_ERROR(MaintainRow(def.get(), table, row, /*inserted=*/false));
  }
  return Status::OK();
}

Status AuditManager::OnUpdate(const std::string& table, const Row& old_row,
                              const Row& new_row) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe("audit.maintain"));
  for (auto& [name, def] : defs_) {
    SELTRIG_RETURN_IF_ERROR(MaintainRow(def.get(), table, old_row, /*inserted=*/false));
    SELTRIG_RETURN_IF_ERROR(MaintainRow(def.get(), table, new_row, /*inserted=*/true));
  }
  return Status::OK();
}

}  // namespace seltrig
