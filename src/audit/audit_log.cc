#include "audit/audit_log.h"

#include "common/string_util.h"
#include "types/date.h"

namespace seltrig {

Status AuditLogger::EnsureTable() {
  if (db_->catalog()->HasTable(table_)) return Status::OK();
  return db_
      ->Execute("CREATE TABLE " + table_ +
                " (ts VARCHAR, userid VARCHAR, sql VARCHAR, pid INT, day DATE)")
      .status();
}

Status AuditLogger::Install(const std::string& audit_expression) {
  std::string expr = ToLower(audit_expression);
  const AuditExpressionDef* def = db_->audit_manager()->Find(expr);
  if (def == nullptr) {
    return Status::NotFound("audit expression not found: " + audit_expression);
  }
  SELTRIG_RETURN_IF_ERROR(EnsureTable());
  return db_
      ->Execute("CREATE TRIGGER log_" + expr + " ON ACCESS TO " + expr +
                " AS INSERT INTO " + table_ +
                " SELECT now(), user_id(), sql_text(), " + def->partition_by() +
                ", current_date() FROM accessed")
      .status();
}

Status AuditLogger::Uninstall(const std::string& audit_expression) {
  return db_->Execute("DROP TRIGGER log_" + ToLower(audit_expression)).status();
}

Result<std::vector<AuditLogEntry>> AuditLogger::DisclosureReport(const Value& id) {
  // Read the raw table directly: the report itself must not fire triggers or
  // perturb the log (and the ID may be of any key type).
  SELTRIG_ASSIGN_OR_RETURN(Table * table, db_->catalog()->GetTable(table_));
  std::vector<AuditLogEntry> entries;
  for (size_t row_id = 0; row_id < table->slot_count(); ++row_id) {
    if (!table->IsLive(row_id)) continue;
    const Row& row = table->GetRow(row_id);
    if (row[3] != id) continue;
    AuditLogEntry entry;
    entry.timestamp = row[0].is_null() ? "" : row[0].AsString();
    entry.user = row[1].is_null() ? "" : row[1].AsString();
    entry.sql = row[2].is_null() ? "" : row[2].AsString();
    entry.partition_id = row[3];
    entry.day = row[4].is_null() ? 0 : row[4].AsDate();
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<int64_t> AuditLogger::DistinctAccessesBy(const std::string& user, int32_t day) {
  ExecOptions options;
  options.enable_select_triggers = false;  // reporting must not re-trigger
  SELTRIG_ASSIGN_OR_RETURN(
      StatementResult result,
      db_->ExecuteWithOptions("SELECT COUNT(DISTINCT pid) FROM " + table_ +
                                  " WHERE userid = '" + user + "' AND day = DATE '" +
                                  FormatDate(day) + "'",
                              options));
  return result.result.rows[0][0].AsInt();
}

Result<QueryResult> AuditLogger::AccessRanking() {
  ExecOptions options;
  options.enable_select_triggers = false;
  SELTRIG_ASSIGN_OR_RETURN(
      StatementResult result,
      db_->ExecuteWithOptions(
          "SELECT userid, COUNT(DISTINCT pid) AS individuals FROM " + table_ +
              " GROUP BY userid ORDER BY individuals DESC, userid",
          options));
  return std::move(result.result);
}

}  // namespace seltrig
