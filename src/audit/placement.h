// Audit-operator placement (Section III-C, Algorithm 1).
//
// Three heuristics are implemented:
//  * kLeafNode — one audit operator directly above each (predicate-pushed)
//    scan of the sensitive table. No false negatives (Claim 3.5), many false
//    positives.
//  * kHighestNode — at the highest edge where the partition-by key is
//    visible, ignoring operator commutativity. Fewest false positives but
//    can produce FALSE NEGATIVES (Example 3.2, top-k); included as the
//    cautionary baseline.
//  * kHighestCommutativeNode — Algorithm 1: start at the leaves, pull the
//    audit operator up through commuting operators (filters, joins, sorts,
//    ID-preserving projections), stop at non-commuting ones (group-by,
//    limit/top-k, distinct, subquery boundaries). No false negatives
//    (Claim 3.6); exact for select-join queries (Theorem 3.7).

#ifndef SELTRIG_AUDIT_PLACEMENT_H_
#define SELTRIG_AUDIT_PLACEMENT_H_

#include "audit/audit_expression.h"
#include "common/status.h"
#include "plan/logical_plan.h"

namespace seltrig {

enum class PlacementHeuristic {
  kLeafNode,
  kHighestNode,
  kHighestCommutativeNode,
};

const char* PlacementHeuristicName(PlacementHeuristic h);

struct PlacementOptions {
  PlacementHeuristic heuristic = PlacementHeuristic::kHighestCommutativeNode;
  // Probe the materialized ID view (Section IV-A). When false, the audit
  // operator evaluates the audit expression's single-table predicate per row
  // instead -- the naive physical design ablated in the evaluation.
  bool use_id_view = true;
  // Probe a Bloom summary of the ID view instead of the exact hash set
  // (Section IV-A2's fallback for sets that do not fit in memory). Collisions
  // surface as audit false positives; no false negatives are introduced.
  bool use_bloom_filter = false;
  double bloom_fp_rate = 0.01;
};

// Returns a deep copy of `plan` instrumented with audit operators for `def`.
// Nested subquery plans are copied and instrumented as well (an audit
// operator never escapes its subquery: Figure 4(c)).
Result<PlanPtr> InstrumentPlan(const LogicalOperator& plan, const AuditExpressionDef& def,
                               const PlacementOptions& options);

// Deep-copies a plan *including* the plans nested in subquery expressions
// (LogicalOperator::Clone alone shares those).
PlanPtr ClonePlanDeep(const LogicalOperator& plan);

// True when an audit operator sitting at `child_index` of `parent` may be
// pulled above `parent` without introducing false negatives; on success
// `*new_key_column` is the key's position in the parent's output. Exposed for
// tests of the commutativity table.
bool AuditCommutesWith(const LogicalOperator& parent, int child_index, int key_column,
                       int* new_key_column);

// Counts audit operators in the plan (including subquery plans).
int CountAuditOperators(const LogicalOperator& plan);

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_PLACEMENT_H_
