// The ACCESSED internal state (Section II): a per-query, in-memory relation
// of partition-by IDs recorded by audit operators, consumed by SELECT-trigger
// actions after the query completes.

#ifndef SELTRIG_AUDIT_ACCESSED_STATE_H_
#define SELTRIG_AUDIT_ACCESSED_STATE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "types/value.h"

namespace seltrig {

// The set of audited partition-by IDs for one audit expression. When a plan
// contains multiple audit operators for the same expression (e.g. one inside
// a subquery), the state is their union (Section III-C).
class AccessedState {
 public:
  void Record(const Value& id) { ids_.insert(id); }

  bool Contains(const Value& id) const { return ids_.count(id) > 0; }
  size_t size() const { return ids_.size(); }
  const std::unordered_set<Value, ValueHash, ValueEq>& ids() const { return ids_; }

  // Materializes as a single-column relation, sorted for determinism, for
  // binding as the ACCESSED virtual table in trigger actions.
  std::vector<Row> ToRows() const;

  // Sorted ID list (tests, benchmarks).
  std::vector<Value> SortedIds() const;

 private:
  std::unordered_set<Value, ValueHash, ValueEq> ids_;
};

// All ACCESSED states of one query execution, keyed by audit expression name
// (lower-case). Owned by the Database per statement; referenced by the
// ExecContext so physical audit operators can record into it.
class AccessedStateRegistry {
 public:
  AccessedState& GetOrCreate(const std::string& audit_name) {
    return states_[audit_name];
  }
  const AccessedState* Find(const std::string& audit_name) const {
    auto it = states_.find(audit_name);
    return it == states_.end() ? nullptr : &it->second;
  }
  const std::unordered_map<std::string, AccessedState>& states() const {
    return states_;
  }
  void Clear() { states_.clear(); }

 private:
  std::unordered_map<std::string, AccessedState> states_;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_ACCESSED_STATE_H_
