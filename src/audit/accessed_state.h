// The ACCESSED internal state (Section II): a per-query, in-memory relation
// of partition-by IDs recorded by audit operators, consumed by SELECT-trigger
// actions after the query completes.

#ifndef SELTRIG_AUDIT_ACCESSED_STATE_H_
#define SELTRIG_AUDIT_ACCESSED_STATE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "types/value.h"

namespace seltrig {

// What happens when a query's ACCESSED set for one audit expression exceeds
// the configured cap (ExecOptions::guards.max_accessed_ids).
enum class AccessedOverflowPolicy {
  // Abort the query with kResourceExhausted: no result leaves the engine
  // with an incomplete audit trail (the fail-closed choice).
  kFail,
  // Stop recording, mark the state overflowed, and let the engine surface
  // the truncation (a seltrig_audit_errors row when triggers fire).
  kTruncate,
};

// The set of audited partition-by IDs for one audit expression. When a plan
// contains multiple audit operators for the same expression (e.g. one inside
// a subquery), the state is their union (Section III-C).
class AccessedState {
 public:
  // Records `id`. Returns false iff the capacity cap rejected a new ID (the
  // state is then marked overflowed and the caller applies the policy).
  bool Record(const Value& id) {
    if (capacity_ > 0 && ids_.size() >= capacity_ && ids_.count(id) == 0) {
      overflowed_ = true;
      return false;
    }
    ids_.insert(id);
    return true;
  }

  // Maximum number of distinct IDs to hold; 0 = unlimited.
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  bool overflowed() const { return overflowed_; }

  bool Contains(const Value& id) const { return ids_.count(id) > 0; }
  size_t size() const { return ids_.size(); }
  const std::unordered_set<Value, ValueHash, ValueEq>& ids() const { return ids_; }

  // Materializes as a single-column relation, sorted for determinism, for
  // binding as the ACCESSED virtual table in trigger actions.
  std::vector<Row> ToRows() const;

  // Sorted ID list (tests, benchmarks).
  std::vector<Value> SortedIds() const;

 private:
  std::unordered_set<Value, ValueHash, ValueEq> ids_;
  size_t capacity_ = 0;
  bool overflowed_ = false;
};

// All ACCESSED states of one query execution, keyed by audit expression name
// (lower-case). Owned by the Database per statement; referenced by the
// ExecContext so physical audit operators can record into it.
class AccessedStateRegistry {
 public:
  // Per-expression cardinality cap and overflow policy, applied to states as
  // they are created (ExecOptions::guards).
  void set_limits(size_t capacity, AccessedOverflowPolicy policy) {
    capacity_ = capacity;
    overflow_policy_ = policy;
  }
  AccessedOverflowPolicy overflow_policy() const { return overflow_policy_; }
  // 0 = unlimited. Parallel scan gathers require an uncapped registry: a cap
  // makes ACCESSED depend on arrival order, which a merge cannot replay.
  size_t capacity() const { return capacity_; }

  AccessedState& GetOrCreate(const std::string& audit_name) {
    auto [it, inserted] = states_.try_emplace(audit_name);
    if (inserted) it->second.set_capacity(capacity_);
    return it->second;
  }
  const AccessedState* Find(const std::string& audit_name) const {
    auto it = states_.find(audit_name);
    return it == states_.end() ? nullptr : &it->second;
  }
  const std::unordered_map<std::string, AccessedState>& states() const {
    return states_;
  }
  void Clear() { states_.clear(); }

 private:
  std::unordered_map<std::string, AccessedState> states_;
  size_t capacity_ = 0;
  AccessedOverflowPolicy overflow_policy_ = AccessedOverflowPolicy::kFail;
};

}  // namespace seltrig

#endif  // SELTRIG_AUDIT_ACCESSED_STATE_H_
