#include "audit/static_auditor.h"

#include <functional>

#include "expr/analysis.h"

namespace seltrig {

StaticAuditResult StaticAnalyzeQuery(const LogicalOperator& plan,
                                     const AuditExpressionDef& def) {
  StaticAuditResult result;

  bool references_sensitive = false;
  bool all_scans_disjoint = true;

  std::function<void(const LogicalOperator&)> walk =
      [&](const LogicalOperator& node) {
        if (node.kind() == PlanKind::kScan) {
          const auto& scan = static_cast<const LogicalScan&>(node);
          if (scan.virtual_rows == nullptr &&
              scan.table_name == def.sensitive_table()) {
            references_sensitive = true;
            // Provable disjointness requires predicates on both sides.
            if (def.single_table_predicate() == nullptr || scan.filter == nullptr ||
                !PredicatesDisjoint(*scan.filter, *def.single_table_predicate())) {
              all_scans_disjoint = false;
            }
          }
        }
        VisitNodeExprs(node, [&walk](const Expr& e) {
          std::function<void(const Expr&)> expr_walk = [&](const Expr& x) {
            if (x.kind == ExprKind::kSubquery && x.subquery_plan != nullptr) {
              walk(*x.subquery_plan);
            }
            for (const auto& c : x.children) expr_walk(*c);
          };
          expr_walk(e);
        });
        for (const auto& child : node.children) walk(*child);
      };
  walk(plan);

  if (!references_sensitive) {
    result.flagged = false;
    result.reason = "query does not reference the sensitive table";
    return result;
  }
  if (all_scans_disjoint) {
    result.flagged = false;
    result.reason = "query predicates are provably disjoint from the audit expression";
    return result;
  }
  result.flagged = true;
  result.reason = "selection conditions may intersect the audit expression";
  return result;
}

}  // namespace seltrig
