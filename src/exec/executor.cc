#include "exec/executor.h"

#include <algorithm>
#include <utility>

#include "audit/accessed_state.h"
#include "catalog/catalog.h"
#include "common/fault_injector.h"
#include "exec/gather.h"
#include "expr/analysis.h"
#include "plan/plan_validator.h"

namespace seltrig {

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out += " | ";
    out += schema.column(i).name;
  }
  out += "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows[r][c].ToString();
    }
    out += "\n";
  }
  if (rows.size() > max_rows) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

Executor::Executor(ExecContext* ctx) : ctx_(ctx) {
  ctx_->set_subquery_runner(
      [this](const LogicalOperator& plan, const std::vector<const Row*>& outer_rows) {
        return ExecutePlan(plan, outer_rows);
      });
}

namespace {

// Extracts hash-join equi-keys from a join condition: conjuncts of the form
// `left_expr = right_expr` where each side references exactly one input.
// Returns remaining conjuncts combined as the residual.
void ExtractEquiKeys(const Expr& condition, int left_width, int total_width,
                     std::vector<ExprPtr>* left_keys, std::vector<ExprPtr>* right_keys,
                     ExprPtr* residual) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition.Clone(), &conjuncts);
  std::vector<ExprPtr> rest;
  for (auto& c : conjuncts) {
    bool used = false;
    if (c->kind == ExprKind::kComparison && c->cmp_op == CompareOp::kEq) {
      Expr* l = c->children[0].get();
      Expr* r = c->children[1].get();
      bool l_left = ExprReferencesOnlyRange(*l, 0, left_width);
      bool l_right = ExprReferencesOnlyRange(*l, left_width, total_width);
      bool r_left = ExprReferencesOnlyRange(*r, 0, left_width);
      bool r_right = ExprReferencesOnlyRange(*r, left_width, total_width);
      if (l_left && r_right) {
        left_keys->push_back(std::move(c->children[0]));
        ShiftColumnRefs(r, -left_width);
        right_keys->push_back(std::move(c->children[1]));
        used = true;
      } else if (l_right && r_left) {
        left_keys->push_back(std::move(c->children[1]));
        ShiftColumnRefs(l, -left_width);
        right_keys->push_back(std::move(c->children[0]));
        used = true;
      }
    }
    if (!used) rest.push_back(std::move(c));
  }
  *residual = CombineConjuncts(std::move(rest));
}

// Whether an audit operator sits on the *lazy spine* of `node`: the chain of
// operators whose pull granularity is observable from above. Pipeline
// breakers (Sort, Aggregate, a join's build side) consume their inputs to
// exhaustion during Init, so everything below them sees the same rows no
// matter how the top of the tree is paced — only audit operators reachable
// through purely streaming edges can observe batch-size differences when an
// early-stopping consumer (LIMIT, or a client's max_rows prefix-abort) stops
// pulling. Those spines get batch capacity 1 ("exact mode"), making the flow
// bit-for-bit identical to the row-at-a-time engine; audit-free spines below
// an early stop are merely capped at the row budget so scans stay lazy.
bool LazySpineHasAudit(const LogicalOperator& node) {
  switch (node.kind()) {
    case PlanKind::kAudit:
      return true;
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kDistinct:
    case PlanKind::kLimit:
      return LazySpineHasAudit(*node.children[0]);
    case PlanKind::kJoin:
      // Only the probe (left) side streams; the build side materializes.
      return LazySpineHasAudit(*node.children[0]);
    default:
      // Scan, Values, Sort, Aggregate: no audit below a streaming edge.
      return false;
  }
}

// Combines two spine capacity caps (0 = uncapped).
size_t CombineCaps(size_t a, size_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

}  // namespace

Result<OperatorPtr> Executor::Build(const LogicalOperator& node,
                                    const std::vector<const Row*>& outer_rows) {
  return BuildNode(node, outer_rows, /*spine_cap=*/0);
}

Result<OperatorPtr> Executor::BuildNode(const LogicalOperator& node,
                                        const std::vector<const Row*>& outer_rows,
                                        size_t spine_cap) {
  // Morsel-parallel path: an eligible scan spine becomes a single gather
  // operator instead of the serial chain. Requires an uncapped spine (a cap
  // means an early-stopping consumer observes pull pacing), no correlation
  // stack, and no ACCESSED cardinality cap (a cap makes ACCESSED depend on
  // arrival order, which the deterministic merge cannot replay).
  if (ctx_->num_threads() > 1 && spine_cap == 0 && outer_rows.empty()) {
    AccessedStateRegistry* registry = ctx_->accessed();
    if (registry == nullptr || registry->capacity() == 0) {
      const LogicalScan* scan = ParallelSpineScan(node);
      if (scan != nullptr) {
        Result<Table*> table = ctx_->catalog()->GetTable(scan->table_name);
        if (table.ok()) {
          auto gather = std::make_unique<PhysicalGatherOp>(ctx_, node, *scan, *table);
          gather->set_logical_node(&node);
          return OperatorPtr(std::move(gather));
        }
      }
    }
  }
  OperatorPtr op;
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      Table* table = nullptr;
      if (scan.virtual_rows == nullptr) {
        SELTRIG_ASSIGN_OR_RETURN(table, ctx_->catalog()->GetTable(scan.table_name));
      }
      op = std::make_unique<SeqScanOp>(ctx_, outer_rows, scan, table);
      break;
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const LogicalFilter&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child,
                               BuildNode(*node.children[0], outer_rows, spine_cap));
      op = std::make_unique<FilterOp>(ctx_, outer_rows, filter, std::move(child));
      break;
    }
    case PlanKind::kProject: {
      const auto& project = static_cast<const LogicalProject&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child,
                               BuildNode(*node.children[0], outer_rows, spine_cap));
      op = std::make_unique<ProjectOp>(ctx_, outer_rows, project, std::move(child));
      break;
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      // The probe side streams (inherits the spine cap); the build side is
      // consumed to exhaustion during Init, so it always runs fully batched.
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr left,
                               BuildNode(*node.children[0], outer_rows, spine_cap));
      SELTRIG_ASSIGN_OR_RETURN(
          OperatorPtr right, BuildNode(*node.children[1], outer_rows, /*spine_cap=*/0));
      bool built_hash = false;
      if (join.condition != nullptr) {
        int left_width = static_cast<int>(node.children[0]->schema.size());
        int total_width = left_width + static_cast<int>(node.children[1]->schema.size());
        std::vector<ExprPtr> left_keys, right_keys;
        ExprPtr residual;
        ExtractEquiKeys(*join.condition, left_width, total_width, &left_keys,
                        &right_keys, &residual);
        if (!left_keys.empty()) {
          op = std::make_unique<HashJoinOp>(
              ctx_, outer_rows, join, std::move(left), std::move(right),
              std::move(left_keys), std::move(right_keys), std::move(residual));
          built_hash = true;
        }
      }
      if (!built_hash) {
        op = std::make_unique<NLJoinOp>(ctx_, outer_rows, join, std::move(left),
                                        std::move(right));
      }
      break;
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const LogicalAggregate&>(node);
      SELTRIG_ASSIGN_OR_RETURN(
          OperatorPtr child, BuildNode(*node.children[0], outer_rows, /*spine_cap=*/0));
      op = std::make_unique<HashAggregateOp>(ctx_, outer_rows, agg, std::move(child));
      break;
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const LogicalSort&>(node);
      SELTRIG_ASSIGN_OR_RETURN(
          OperatorPtr child, BuildNode(*node.children[0], outer_rows, /*spine_cap=*/0));
      op = std::make_unique<SortOp>(ctx_, outer_rows, sort, std::move(child));
      break;
    }
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const LogicalLimit&>(node);
      size_t child_cap = spine_cap;
      if (limit.limit >= 0) {
        if (LazySpineHasAudit(*node.children[0])) {
          // An audit op below an early-stopping LIMIT must see the exact
          // row-at-a-time flow: ACCESSED depends on which tuples are pulled.
          child_cap = 1;
        } else {
          size_t budget = static_cast<size_t>(limit.limit + limit.offset);
          child_cap = CombineCaps(child_cap, budget == 0 ? 1 : budget);
        }
      }
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child,
                               BuildNode(*node.children[0], outer_rows, child_cap));
      op = std::make_unique<LimitOp>(ctx_, outer_rows, limit, std::move(child));
      break;
    }
    case PlanKind::kDistinct: {
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child,
                               BuildNode(*node.children[0], outer_rows, spine_cap));
      op = std::make_unique<DistinctOp>(ctx_, outer_rows, std::move(child));
      break;
    }
    case PlanKind::kValues: {
      const auto& values = static_cast<const LogicalValues&>(node);
      op = std::make_unique<ValuesOp>(ctx_, outer_rows, values);
      break;
    }
    case PlanKind::kAudit: {
      const auto& audit = static_cast<const LogicalAudit&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child,
                               BuildNode(*node.children[0], outer_rows, spine_cap));
      op = std::make_unique<PhysicalAuditOp>(ctx_, outer_rows, audit, std::move(child));
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unknown plan node kind");
  op->set_logical_node(&node);
  if (spine_cap != 0 && spine_cap < op->batch_capacity()) {
    op->set_batch_capacity(spine_cap);
  }
  return op;
}

Status Executor::MaybeValidatePlan(const PhysicalOperator& root,
                                   const LogicalOperator& plan, int64_t max_rows,
                                   const std::vector<const Row*>& outer_rows) {
#ifdef NDEBUG
  if (!ctx_->validate_plans()) return Status::OK();
#endif
  PlanExecutionInfo info;
  info.max_rows = max_rows;
  info.correlated = !outer_rows.empty();
  info.catalog = ctx_->catalog();
  AccessedStateRegistry* registry = ctx_->accessed();
  info.accessed_capacity = registry == nullptr ? 0 : registry->capacity();
  const PlanValidation* validation =
      ctx_->validation_root() == &plan ? ctx_->plan_validation() : nullptr;
  return ValidatePhysicalPlan(root, validation, info);
}

Result<std::vector<Row>> Executor::ExecutePlan(
    const LogicalOperator& plan, const std::vector<const Row*>& outer_rows) {
  // Plans run here always run to completion (subqueries, trigger conditions,
  // the offline auditor), so the flow through every operator is independent
  // of batch size — no exact-mode pinning needed.
  SELTRIG_ASSIGN_OR_RETURN(OperatorPtr root, BuildNode(plan, outer_rows, 0));
  SELTRIG_RETURN_IF_ERROR(
      MaybeValidatePlan(*root, plan, /*max_rows=*/-1, outer_rows));
  SELTRIG_RETURN_IF_ERROR(root->Init());
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kExecutorBatch));
  std::vector<Row> rows;
  ColumnBatch batch;
  while (true) {
    Result<bool> has = root->NextBatch(&batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows.emplace_back();
      batch.MoveRowTo(i, &rows.back());
    }
    SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kExecutorBatch));
  }
  return rows;
}

Result<QueryResult> Executor::ExecuteQuery(const LogicalOperator& plan,
                                           int64_t max_rows) {
  // A max_rows prefix-abort stops pulling mid-stream. If an audit operator
  // would observe that pacing, pin the streaming spine to capacity 1 so
  // ACCESSED reflects exactly the tuples the row-at-a-time engine would have
  // flowed; otherwise just cap the spine at the row budget so the scan stays
  // lazy (Volcano semantics: only the rows needed are pulled).
  size_t spine_cap = 0;
  if (max_rows >= 0) {
    spine_cap = LazySpineHasAudit(plan)
                    ? 1
                    : std::max<size_t>(1, static_cast<size_t>(max_rows));
  }
  SELTRIG_ASSIGN_OR_RETURN(OperatorPtr root, BuildNode(plan, {}, spine_cap));
  SELTRIG_RETURN_IF_ERROR(MaybeValidatePlan(*root, plan, max_rows, {}));
  SELTRIG_RETURN_IF_ERROR(root->Init());
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kExecutorBatch));

  QueryResult result;
  std::vector<int> visible;
  for (size_t i = 0; i < plan.schema.size(); ++i) {
    if (!plan.schema.column(i).hidden) {
      visible.push_back(static_cast<int>(i));
      result.schema.AddColumn(plan.schema.column(i));
    }
  }
  bool any_hidden = visible.size() != plan.schema.size();

  ColumnBatch batch;
  Row row_scratch;
  while (max_rows < 0 || static_cast<int64_t>(result.rows.size()) < max_rows) {
    Result<bool> has = root->NextBatch(&batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    size_t take = batch.size();
    if (max_rows >= 0) {
      int64_t remaining = max_rows - static_cast<int64_t>(result.rows.size());
      take = std::min(take, static_cast<size_t>(remaining));
    }
    for (size_t r = 0; r < take; ++r) {
      if (any_hidden) {
        batch.MoveRowTo(r, &row_scratch);
        Row stripped;
        stripped.reserve(visible.size());
        for (int i : visible) stripped.push_back(std::move(row_scratch[i]));
        result.rows.push_back(std::move(stripped));
      } else {
        result.rows.emplace_back();
        batch.MoveRowTo(r, &result.rows.back());
      }
    }
    SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kExecutorBatch));
  }

  if (ctx_->collect_profile()) {
    ctx_->profile_text() += FormatOperatorProfile(*root);
  }
  return result;
}

}  // namespace seltrig
