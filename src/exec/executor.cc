#include "exec/executor.h"

#include <utility>

#include "catalog/catalog.h"
#include "common/fault_injector.h"
#include "expr/analysis.h"

namespace seltrig {

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out += " | ";
    out += schema.column(i).name;
  }
  out += "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows[r][c].ToString();
    }
    out += "\n";
  }
  if (rows.size() > max_rows) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

Executor::Executor(ExecContext* ctx) : ctx_(ctx) {
  ctx_->set_subquery_runner(
      [this](const LogicalOperator& plan, const std::vector<const Row*>& outer_rows) {
        return ExecutePlan(plan, outer_rows);
      });
}

namespace {

// Extracts hash-join equi-keys from a join condition: conjuncts of the form
// `left_expr = right_expr` where each side references exactly one input.
// Returns remaining conjuncts combined as the residual.
void ExtractEquiKeys(const Expr& condition, int left_width, int total_width,
                     std::vector<ExprPtr>* left_keys, std::vector<ExprPtr>* right_keys,
                     ExprPtr* residual) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition.Clone(), &conjuncts);
  std::vector<ExprPtr> rest;
  for (auto& c : conjuncts) {
    bool used = false;
    if (c->kind == ExprKind::kComparison && c->cmp_op == CompareOp::kEq) {
      Expr* l = c->children[0].get();
      Expr* r = c->children[1].get();
      bool l_left = ExprReferencesOnlyRange(*l, 0, left_width);
      bool l_right = ExprReferencesOnlyRange(*l, left_width, total_width);
      bool r_left = ExprReferencesOnlyRange(*r, 0, left_width);
      bool r_right = ExprReferencesOnlyRange(*r, left_width, total_width);
      if (l_left && r_right) {
        left_keys->push_back(std::move(c->children[0]));
        ShiftColumnRefs(r, -left_width);
        right_keys->push_back(std::move(c->children[1]));
        used = true;
      } else if (l_right && r_left) {
        left_keys->push_back(std::move(c->children[1]));
        ShiftColumnRefs(l, -left_width);
        right_keys->push_back(std::move(c->children[0]));
        used = true;
      }
    }
    if (!used) rest.push_back(std::move(c));
  }
  *residual = CombineConjuncts(std::move(rest));
}

}  // namespace

Result<OperatorPtr> Executor::Build(const LogicalOperator& node,
                                    const std::vector<const Row*>& outer_rows) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      Table* table = nullptr;
      if (scan.virtual_rows == nullptr) {
        SELTRIG_ASSIGN_OR_RETURN(table, ctx_->catalog()->GetTable(scan.table_name));
      }
      return OperatorPtr(std::make_unique<SeqScanOp>(ctx_, outer_rows, scan, table));
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const LogicalFilter&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child, Build(*node.children[0], outer_rows));
      return OperatorPtr(
          std::make_unique<FilterOp>(ctx_, outer_rows, filter, std::move(child)));
    }
    case PlanKind::kProject: {
      const auto& project = static_cast<const LogicalProject&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child, Build(*node.children[0], outer_rows));
      return OperatorPtr(
          std::make_unique<ProjectOp>(ctx_, outer_rows, project, std::move(child)));
    }
    case PlanKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr left, Build(*node.children[0], outer_rows));
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr right, Build(*node.children[1], outer_rows));
      if (join.condition != nullptr) {
        int left_width = static_cast<int>(node.children[0]->schema.size());
        int total_width = left_width + static_cast<int>(node.children[1]->schema.size());
        std::vector<ExprPtr> left_keys, right_keys;
        ExprPtr residual;
        ExtractEquiKeys(*join.condition, left_width, total_width, &left_keys,
                        &right_keys, &residual);
        if (!left_keys.empty()) {
          return OperatorPtr(std::make_unique<HashJoinOp>(
              ctx_, outer_rows, join, std::move(left), std::move(right),
              std::move(left_keys), std::move(right_keys), std::move(residual)));
        }
      }
      return OperatorPtr(std::make_unique<NLJoinOp>(ctx_, outer_rows, join,
                                                    std::move(left), std::move(right)));
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const LogicalAggregate&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child, Build(*node.children[0], outer_rows));
      return OperatorPtr(
          std::make_unique<HashAggregateOp>(ctx_, outer_rows, agg, std::move(child)));
    }
    case PlanKind::kSort: {
      const auto& sort = static_cast<const LogicalSort&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child, Build(*node.children[0], outer_rows));
      return OperatorPtr(
          std::make_unique<SortOp>(ctx_, outer_rows, sort, std::move(child)));
    }
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const LogicalLimit&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child, Build(*node.children[0], outer_rows));
      return OperatorPtr(
          std::make_unique<LimitOp>(ctx_, outer_rows, limit, std::move(child)));
    }
    case PlanKind::kDistinct: {
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child, Build(*node.children[0], outer_rows));
      return OperatorPtr(
          std::make_unique<DistinctOp>(ctx_, outer_rows, std::move(child)));
    }
    case PlanKind::kValues: {
      const auto& values = static_cast<const LogicalValues&>(node);
      return OperatorPtr(std::make_unique<ValuesOp>(ctx_, outer_rows, values));
    }
    case PlanKind::kAudit: {
      const auto& audit = static_cast<const LogicalAudit&>(node);
      SELTRIG_ASSIGN_OR_RETURN(OperatorPtr child, Build(*node.children[0], outer_rows));
      return OperatorPtr(
          std::make_unique<PhysicalAuditOp>(ctx_, outer_rows, audit, std::move(child)));
    }
  }
  return Status::Internal("unknown plan node kind");
}

Result<std::vector<Row>> Executor::ExecutePlan(
    const LogicalOperator& plan, const std::vector<const Row*>& outer_rows) {
  SELTRIG_ASSIGN_OR_RETURN(OperatorPtr root, Build(plan, outer_rows));
  SELTRIG_RETURN_IF_ERROR(root->Init());
  SELTRIG_RETURN_IF_ERROR(fault::Maybe("executor.batch"));
  std::vector<Row> rows;
  Row row;
  while (true) {
    Result<bool> has = root->Next(&row);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    rows.push_back(std::move(row));
    if ((rows.size() & 63) == 0) {
      SELTRIG_RETURN_IF_ERROR(fault::Maybe("executor.batch"));
    }
  }
  return rows;
}

Result<QueryResult> Executor::ExecuteQuery(const LogicalOperator& plan,
                                           int64_t max_rows) {
  SELTRIG_ASSIGN_OR_RETURN(OperatorPtr root, Build(plan, {}));
  SELTRIG_RETURN_IF_ERROR(root->Init());
  SELTRIG_RETURN_IF_ERROR(fault::Maybe("executor.batch"));

  QueryResult result;
  std::vector<int> visible;
  for (size_t i = 0; i < plan.schema.size(); ++i) {
    if (!plan.schema.column(i).hidden) {
      visible.push_back(static_cast<int>(i));
      result.schema.AddColumn(plan.schema.column(i));
    }
  }
  bool any_hidden = visible.size() != plan.schema.size();

  Row row;
  while (max_rows < 0 || static_cast<int64_t>(result.rows.size()) < max_rows) {
    Result<bool> has = root->Next(&row);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    if (any_hidden) {
      Row stripped;
      stripped.reserve(visible.size());
      for (int i : visible) stripped.push_back(std::move(row[i]));
      result.rows.push_back(std::move(stripped));
    } else {
      result.rows.push_back(std::move(row));
    }
    if ((result.rows.size() & 63) == 0) {
      SELTRIG_RETURN_IF_ERROR(fault::Maybe("executor.batch"));
    }
  }
  return result;
}

}  // namespace seltrig
