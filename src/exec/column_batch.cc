#include "exec/column_batch.h"

namespace seltrig {

void ColumnBatch::ApplyProjection(const std::vector<int>& projection) {
  proj_scratch_.resize(projection.size());
  for (size_t i = 0; i < projection.size(); ++i) {
    const ColumnVector& src = cols_[static_cast<size_t>(projection[i])];
    assert(src.is_view() && "ApplyProjection is view-mode only");
    proj_scratch_[i].BindView(src.view());
  }
  cols_.swap(proj_scratch_);
}

void ColumnBatch::DropFrontLogical(size_t n) {
  if (n == 0) return;
  if (n >= size()) {
    TruncateLogical(0);
    return;
  }
  if (!has_selection_) {
    selection_.clear();
    selection_.reserve(count_ - n);
    for (size_t i = n; i < count_; ++i) {
      selection_.push_back(static_cast<uint32_t>(i));
    }
    has_selection_ = true;
  } else {
    selection_.erase(selection_.begin(),
                     selection_.begin() + static_cast<ptrdiff_t>(n));
  }
}

}  // namespace seltrig
