#include "exec/exec_context.h"

// ExecContext is header-only today; this translation unit anchors the header
// in the build so include errors surface early.
