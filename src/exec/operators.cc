#include "exec/operators.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "audit/accessed_state.h"
#include "audit/sensitive_id_view.h"
#include "catalog/catalog.h"
#include "common/bloom_filter.h"
#include "common/fault_injector.h"
#include "expr/analysis.h"

namespace seltrig {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Finds an equality conjunct `column = <row-invariant expr>` usable for a
// secondary-index probe. Returns the column index, or -1.
int FindIndexableConjunct(const Expr& pred, const Expr** value_expr) {
  if (pred.kind == ExprKind::kLogical && pred.logical_op == LogicalOp::kAnd) {
    int col = FindIndexableConjunct(*pred.children[0], value_expr);
    if (col >= 0) return col;
    return FindIndexableConjunct(*pred.children[1], value_expr);
  }
  if (pred.kind == ExprKind::kComparison && pred.cmp_op == CompareOp::kEq) {
    const Expr& l = *pred.children[0];
    const Expr& r = *pred.children[1];
    if (l.kind == ExprKind::kColumnRef && ExprIsRowInvariant(r)) {
      *value_expr = &r;
      return l.column_index;
    }
    if (r.kind == ExprKind::kColumnRef && ExprIsRowInvariant(l)) {
      *value_expr = &l;
      return r.column_index;
    }
  }
  return -1;
}

// Rough output-cardinality estimate for sizing hash tables before a build.
// Only has to be the right order of magnitude: it seeds reserve() calls, so
// an underestimate costs rehashes and an overestimate costs memory.
size_t EstimateCardinality(const LogicalOperator& node, ExecContext* ctx) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      if (scan.virtual_rows != nullptr) return scan.virtual_rows->size();
      Result<Table*> table = ctx->catalog()->GetTable(scan.table_name);
      size_t n = table.ok() ? (*table)->live_row_count() : 0;
      if (scan.filter != nullptr) n = n / 3 + 1;
      return n;
    }
    case PlanKind::kValues:
      return static_cast<const LogicalValues&>(node).rows.size();
    case PlanKind::kFilter:
      return EstimateCardinality(*node.children[0], ctx) / 3 + 1;
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const LogicalLimit&>(node);
      size_t child = EstimateCardinality(*node.children[0], ctx);
      if (limit.limit >= 0) {
        return std::min(child, static_cast<size_t>(limit.limit));
      }
      return child;
    }
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kAudit:
      return EstimateCardinality(*node.children[0], ctx);
    case PlanKind::kAggregate:
      return EstimateCardinality(*node.children[0], ctx) / 4 + 1;
    case PlanKind::kJoin:
      return std::max(EstimateCardinality(*node.children[0], ctx),
                      EstimateCardinality(*node.children[1], ctx));
  }
  return 16;
}

void FormatProfileNode(const PhysicalOperator& op, int indent, std::string* out) {
  const OperatorProfile& p = op.profile();
  char line[256];
  std::snprintf(line, sizeof(line),
                "%*s%s  rows=%llu batches=%llu init=%.3fms next=%.3fms\n", indent * 2,
                "", op.DebugName().c_str(),
                static_cast<unsigned long long>(p.rows_out),
                static_cast<unsigned long long>(p.batches),
                static_cast<double>(p.init_ns) / 1e6,
                static_cast<double>(p.next_ns) / 1e6);
  *out += line;
  op.AppendProfileLines(indent + 1, out);
  for (const PhysicalOperator* child : op.profile_children()) {
    FormatProfileNode(*child, indent + 1, out);
  }
}

}  // namespace

int FindIndexableScanColumn(const Expr& pred) {
  const Expr* value_expr = nullptr;
  return FindIndexableConjunct(pred, &value_expr);
}

// --- PhysicalOperator --------------------------------------------------------

PhysicalOperator::~PhysicalOperator() = default;

Status PhysicalOperator::Init() {
  if (!ctx_->collect_profile()) return InitImpl();
  uint64_t start = NowNs();
  Status status = InitImpl();
  profile_.init_ns += NowNs() - start;
  return status;
}

Result<bool> PhysicalOperator::NextBatch(RowBatch* out) {
  out->Clear();
  if (!ctx_->collect_profile()) {
    SELTRIG_ASSIGN_OR_RETURN(bool has, NextBatchImpl(out));
    if (has) {
      profile_.batches++;
      profile_.rows_out += out->size();
    }
    return has;
  }
  uint64_t start = NowNs();
  Result<bool> has = NextBatchImpl(out);
  profile_.next_ns += NowNs() - start;
  SELTRIG_RETURN_IF_ERROR(has.status());
  if (*has) {
    profile_.batches++;
    profile_.rows_out += out->size();
  }
  return has;
}

std::string FormatOperatorProfile(const PhysicalOperator& root) {
  std::string out;
  FormatProfileNode(root, 0, &out);
  return out;
}

// --- SeqScan -----------------------------------------------------------------

SeqScanOp::SeqScanOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                     const LogicalScan& node, Table* table)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), table_(table) {}

std::string SeqScanOp::DebugName() const { return node_.Describe(); }

Status SeqScanOp::InitImpl() {
  cursor_ = range_mode_ ? slot_begin_ : 0;
  exclusions_.clear();
  index_mode_ = false;
  candidates_.clear();
  eval_ctx_ = MakeEvalContext(nullptr);
  scan_buffer_.reserve(batch_capacity_);
  simple_filter_.reset();
  if (node_.filter != nullptr) {
    simple_filter_ = SimplePredicate::Compile(*node_.filter);
  }
  if (table_ != nullptr) {
    for (const ScanExclusion& e : ctx_->exclusions()) {
      if (e.table == node_.table_name) {
        exclusions_.emplace_back(e.column, e.value);
      }
    }
    // A morsel-range scan walks its slots directly; index probing would
    // examine rows outside the morsel (and a different total slot set).
    if (node_.filter != nullptr && !range_mode_) {
      const Expr* value_expr = nullptr;
      int col = FindIndexableConjunct(*node_.filter, &value_expr);
      if (col >= 0) {
        eval_ctx_.row = nullptr;
        SELTRIG_ASSIGN_OR_RETURN(Value key, EvalExpr(*value_expr, eval_ctx_));
        index_mode_ = true;
        if (!key.is_null()) {
          candidates_ = table_->LookupBySecondary(col, key);
        }
      }
    }
  }
  return Status::OK();
}

Result<bool> SeqScanOp::EmitIfPassing(const Row& src, RowBatch* out) {
  ctx_->stats().rows_scanned++;
  for (const auto& [col, value] : exclusions_) {
    if (src[col] == value) return false;
  }
  if (node_.filter != nullptr) {
    if (simple_filter_) {
      if (!simple_filter_->Matches(src)) return false;
    } else {
      eval_ctx_.row = &src;
      SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node_.filter, eval_ctx_));
      if (!pass) return false;
    }
  }
  if (node_.projection.empty()) {
    out->AppendCopy(src);
  } else {
    Row* slot = out->AppendRow();
    slot->reserve(node_.projection.size());
    for (int col : node_.projection) slot->push_back(src[col]);
  }
  return true;
}

Result<bool> SeqScanOp::NextBatchImpl(RowBatch* out) {
  const size_t cap = batch_capacity_;
  if (node_.virtual_rows != nullptr) {
    const std::vector<Row>& rows = *node_.virtual_rows;
    if (cursor_ >= rows.size()) return false;
    size_t end = std::min(rows.size(), cursor_ + cap);
    for (; cursor_ < end; ++cursor_) {
      SELTRIG_RETURN_IF_ERROR(EmitIfPassing(rows[cursor_], out).status());
    }
    return true;
  }
  if (index_mode_) {
    if (cursor_ >= candidates_.size()) return false;
    size_t examined = 0;
    while (cursor_ < candidates_.size() && examined < cap) {
      size_t row_id = candidates_[cursor_++];
      if (!table_->IsLive(row_id)) continue;
      ++examined;
      SELTRIG_RETURN_IF_ERROR(EmitIfPassing(table_->GetRow(row_id), out).status());
    }
    return true;
  }
  scan_buffer_.clear();
  size_t end_slot = range_mode_ ? slot_end_ : table_->slot_count();
  size_t n = table_->ScanBatchRange(&cursor_, end_slot, cap, &scan_buffer_);
  if (n == 0) return false;
  for (const Row* src : scan_buffer_) {
    SELTRIG_RETURN_IF_ERROR(EmitIfPassing(*src, out).status());
  }
  return true;
}

// --- Filter ------------------------------------------------------------------

FilterOp::FilterOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalFilter& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string FilterOp::DebugName() const { return node_.Describe(); }

Status FilterOp::InitImpl() {
  eval_ctx_ = MakeEvalContext(nullptr);
  simple_pred_ = SimplePredicate::Compile(*node_.predicate);
  return child_->Init();
}

Result<bool> FilterOp::NextBatchImpl(RowBatch* out) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  if (simple_pred_) {
    simple_pred_->FilterBatch(out);
    return true;
  }
  SELTRIG_RETURN_IF_ERROR(EvalPredicateBatch(*node_.predicate, eval_ctx_, out));
  return true;
}

// --- Project -----------------------------------------------------------------

ProjectOp::ProjectOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                     const LogicalProject& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string ProjectOp::DebugName() const { return node_.Describe(); }

Status ProjectOp::InitImpl() {
  eval_ctx_ = MakeEvalContext(nullptr);
  return child_->Init();
}

Result<bool> ProjectOp::NextBatchImpl(RowBatch* out) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  size_t n = out->size();
  if (n == 0) return true;
  size_t ncols = node_.exprs.size();
  if (cols_.size() < ncols) cols_.resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    cols_[c].clear();
    SELTRIG_RETURN_IF_ERROR(
        EvalExprBatch(*node_.exprs[c], eval_ctx_, *out, &cols_[c]));
  }
  // All inputs are evaluated; rewrite the selected slots in place.
  for (size_t i = 0; i < n; ++i) {
    scratch_.clear();
    scratch_.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) scratch_.push_back(std::move(cols_[c][i]));
    out->mutable_row(i).swap(scratch_);
  }
  return true;
}

// --- HashJoin ----------------------------------------------------------------

HashJoinOp::HashJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                       const LogicalJoin& node, OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
                       ExprPtr residual)
    : PhysicalOperator(ctx, std::move(outer_rows)),
      node_(node),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  profile_children_ = {left_.get(), right_.get()};
}

std::string HashJoinOp::DebugName() const { return node_.Describe(); }

Status HashJoinOp::InitImpl() {
  SELTRIG_RETURN_IF_ERROR(left_->Init());
  SELTRIG_RETURN_IF_ERROR(right_->Init());
  hash_table_.clear();
  eval_ctx_ = MakeEvalContext(nullptr);
  left_batch_.Clear();
  left_pos_ = 0;
  left_done_ = false;
  left_row_ = nullptr;
  matches_ = nullptr;
  left_matched_ = false;

  // Build side: size the table from the child's estimated cardinality up
  // front (one allocation instead of a rehash cascade), and move rows out of
  // the child's batches instead of copying them.
  hash_table_.reserve(EstimateCardinality(*node_.children[1], ctx_));
  right_width_ = 0;
  RowBatch build_batch;
  while (true) {
    Result<bool> has = right_->NextBatch(&build_batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t i = 0; i < build_batch.size(); ++i) {
      Row& row = build_batch.mutable_row(i);
      right_width_ = row.size();
      eval_ctx_.row = &row;
      Row key;
      key.reserve(right_keys_.size());
      bool null_key = false;
      for (const auto& k : right_keys_) {
        Result<Value> v = EvalExpr(*k, eval_ctx_);
        SELTRIG_RETURN_IF_ERROR(v.status());
        if (v->is_null()) {
          null_key = true;
          break;
        }
        key.push_back(std::move(*v));
      }
      if (null_key) continue;  // SQL equality never matches NULL keys
      hash_table_[std::move(key)].push_back(std::move(row));
    }
  }
  if (right_width_ == 0) {
    // Right side empty: width from the schema (needed for LEFT OUTER nulls).
    right_width_ = node_.children[1]->schema.size();
  }
  return Status::OK();
}

Result<bool> HashJoinOp::AdvanceLeft() {
  while (true) {
    if (left_pos_ >= left_batch_.size()) {
      if (left_done_) return false;
      SELTRIG_ASSIGN_OR_RETURN(bool has, left_->NextBatch(&left_batch_));
      left_pos_ = 0;
      if (!has) {
        left_done_ = true;
        return false;
      }
      continue;  // batch may be empty; pull again
    }
    left_row_ = &left_batch_.row(left_pos_++);
    left_matched_ = false;
    match_idx_ = 0;
    matches_ = nullptr;

    eval_ctx_.row = left_row_;
    key_scratch_.clear();
    key_scratch_.reserve(left_keys_.size());
    bool null_key = false;
    for (const auto& k : left_keys_) {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, eval_ctx_));
      if (v.is_null()) {
        null_key = true;
        break;
      }
      key_scratch_.push_back(std::move(v));
    }
    if (!null_key) {
      auto it = hash_table_.find(key_scratch_);
      if (it != hash_table_.end()) matches_ = &it->second;
    }
    return true;
  }
}

Result<bool> HashJoinOp::NextBatchImpl(RowBatch* out) {
  while (out->size() < batch_capacity_) {
    if (left_row_ == nullptr) {
      SELTRIG_ASSIGN_OR_RETURN(bool has, AdvanceLeft());
      if (!has) break;
    }
    while (matches_ != nullptr && match_idx_ < matches_->size() &&
           out->size() < batch_capacity_) {
      const Row& right_row = (*matches_)[match_idx_++];
      Row* slot = out->AppendRow();
      slot->reserve(left_row_->size() + right_row.size());
      slot->insert(slot->end(), left_row_->begin(), left_row_->end());
      slot->insert(slot->end(), right_row.begin(), right_row.end());
      if (residual_ != nullptr) {
        eval_ctx_.row = slot;
        SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*residual_, eval_ctx_));
        if (!pass) {
          out->PopRow();
          continue;
        }
      }
      left_matched_ = true;
    }
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      break;  // output batch is full; resume this left row next call
    }
    // Exhausted matches for this left row.
    if (node_.join_type == JoinType::kLeft && !left_matched_) {
      if (out->size() >= batch_capacity_) break;  // pad on the next call
      Row* slot = out->AppendRow();
      slot->reserve(left_row_->size() + right_width_);
      slot->insert(slot->end(), left_row_->begin(), left_row_->end());
      slot->resize(left_row_->size() + right_width_, Value::Null());
      left_matched_ = true;  // padded exactly once
    }
    left_row_ = nullptr;
  }
  return !(out->empty() && left_done_ && left_row_ == nullptr &&
           left_pos_ >= left_batch_.size());
}

// --- NLJoin ------------------------------------------------------------------

NLJoinOp::NLJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalJoin& node, OperatorPtr left, OperatorPtr right)
    : PhysicalOperator(ctx, std::move(outer_rows)),
      node_(node),
      left_(std::move(left)),
      right_(std::move(right)) {
  profile_children_ = {left_.get(), right_.get()};
}

std::string NLJoinOp::DebugName() const { return node_.Describe(); }

Status NLJoinOp::InitImpl() {
  SELTRIG_RETURN_IF_ERROR(left_->Init());
  SELTRIG_RETURN_IF_ERROR(right_->Init());
  eval_ctx_ = MakeEvalContext(nullptr);
  left_batch_.Clear();
  left_pos_ = 0;
  left_done_ = false;
  left_row_ = nullptr;
  right_idx_ = 0;
  left_matched_ = false;
  right_rows_.clear();
  RowBatch batch;
  while (true) {
    Result<bool> has = right_->NextBatch(&batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      right_rows_.push_back(std::move(batch.mutable_row(i)));
    }
  }
  right_width_ = node_.children[1]->schema.size();
  return Status::OK();
}

Result<bool> NLJoinOp::AdvanceLeft() {
  while (true) {
    if (left_pos_ >= left_batch_.size()) {
      if (left_done_) return false;
      SELTRIG_ASSIGN_OR_RETURN(bool has, left_->NextBatch(&left_batch_));
      left_pos_ = 0;
      if (!has) {
        left_done_ = true;
        return false;
      }
      continue;  // batch may be empty; pull again
    }
    left_row_ = &left_batch_.row(left_pos_++);
    left_matched_ = false;
    right_idx_ = 0;
    return true;
  }
}

Result<bool> NLJoinOp::NextBatchImpl(RowBatch* out) {
  while (out->size() < batch_capacity_) {
    if (left_row_ == nullptr) {
      SELTRIG_ASSIGN_OR_RETURN(bool has, AdvanceLeft());
      if (!has) break;
    }
    while (right_idx_ < right_rows_.size() && out->size() < batch_capacity_) {
      const Row& right_row = right_rows_[right_idx_++];
      Row* slot = out->AppendRow();
      slot->reserve(left_row_->size() + right_row.size());
      slot->insert(slot->end(), left_row_->begin(), left_row_->end());
      slot->insert(slot->end(), right_row.begin(), right_row.end());
      if (node_.condition != nullptr) {
        eval_ctx_.row = slot;
        SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node_.condition, eval_ctx_));
        if (!pass) {
          out->PopRow();
          continue;
        }
      }
      left_matched_ = true;
    }
    if (right_idx_ < right_rows_.size()) {
      break;  // output batch is full; resume this left row next call
    }
    // Exhausted the right side for this left row.
    if (node_.join_type == JoinType::kLeft && !left_matched_) {
      if (out->size() >= batch_capacity_) break;  // pad on the next call
      Row* slot = out->AppendRow();
      slot->reserve(left_row_->size() + right_width_);
      slot->insert(slot->end(), left_row_->begin(), left_row_->end());
      slot->resize(left_row_->size() + right_width_, Value::Null());
      left_matched_ = true;  // padded exactly once
    }
    left_row_ = nullptr;
  }
  return !(out->empty() && left_done_ && left_row_ == nullptr &&
           left_pos_ >= left_batch_.size());
}

// --- HashAggregate -----------------------------------------------------------

HashAggregateOp::HashAggregateOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                                 const LogicalAggregate& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string HashAggregateOp::DebugName() const { return node_.Describe(); }

Status HashAggregateOp::Accumulate(std::vector<AggState>* states, const Row& input,
                                   EvalContext& ec) {
  ec.row = &input;
  for (size_t i = 0; i < node_.aggregates.size(); ++i) {
    const AggregateSpec& spec = node_.aggregates[i];
    AggState& st = (*states)[i];
    if (spec.kind == AggKind::kCountStar) {
      st.count++;
      continue;
    }
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*spec.arg, ec));
    if (v.is_null()) continue;  // aggregates ignore NULLs
    if (spec.distinct) {
      if (st.distinct == nullptr) {
        st.distinct =
            std::make_unique<std::unordered_set<Value, ValueHash, ValueEq>>();
      }
      st.distinct->insert(std::move(v));
      continue;
    }
    switch (spec.kind) {
      case AggKind::kCount:
        st.count++;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        st.count++;
        if (v.type() == TypeId::kInt) {
          st.sum_int += v.AsInt();
        }
        st.sum_double += v.NumericAsDouble();
        st.saw_value = true;
        break;
      case AggKind::kMin:
        if (!st.saw_value || Value::Compare(v, st.min_max) < 0) st.min_max = v;
        st.saw_value = true;
        break;
      case AggKind::kMax:
        if (!st.saw_value || Value::Compare(v, st.min_max) > 0) st.min_max = v;
        st.saw_value = true;
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

Value HashAggregateOp::Finalize(const AggregateSpec& spec, const AggState& st) const {
  if (spec.distinct) {
    size_t n = st.distinct == nullptr ? 0 : st.distinct->size();
    switch (spec.kind) {
      case AggKind::kCount:
        return Value::Int(static_cast<int64_t>(n));
      case AggKind::kSum: {
        if (n == 0) return Value::Null();
        if (spec.result_type == TypeId::kInt) {
          int64_t sum = 0;
          for (const Value& v : *st.distinct) sum += v.AsInt();
          return Value::Int(sum);
        }
        double sum = 0;
        for (const Value& v : *st.distinct) sum += v.NumericAsDouble();
        return Value::Double(sum);
      }
      case AggKind::kAvg: {
        if (n == 0) return Value::Null();
        double sum = 0;
        for (const Value& v : *st.distinct) sum += v.NumericAsDouble();
        return Value::Double(sum / static_cast<double>(n));
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        if (n == 0) return Value::Null();
        const Value* best = nullptr;
        for (const Value& v : *st.distinct) {
          if (best == nullptr ||
              (spec.kind == AggKind::kMin ? Value::Compare(v, *best) < 0
                                          : Value::Compare(v, *best) > 0)) {
            best = &v;
          }
        }
        return *best;
      }
      default:
        return Value::Null();
    }
  }
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int(st.count);
    case AggKind::kSum:
      if (!st.saw_value) return Value::Null();
      if (spec.result_type == TypeId::kInt) return Value::Int(st.sum_int);
      return Value::Double(st.sum_double);
    case AggKind::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Double(st.sum_double / static_cast<double>(st.count));
    case AggKind::kMin:
    case AggKind::kMax:
      if (!st.saw_value) return Value::Null();
      return st.min_max;
  }
  return Value::Null();
}

Status HashAggregateOp::InitImpl() {
  SELTRIG_RETURN_IF_ERROR(child_->Init());
  results_.clear();
  cursor_ = 0;

  // Group rows; preserve first-seen order for deterministic output.
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index;
  std::vector<Row> group_keys;
  std::vector<std::vector<AggState>> group_states;

  EvalContext ec = MakeEvalContext(nullptr);
  RowBatch batch;
  while (true) {
    Result<bool> has = child_->NextBatch(&batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t r = 0; r < batch.size(); ++r) {
      const Row& input = batch.row(r);
      ec.row = &input;
      Row key;
      key.reserve(node_.group_exprs.size());
      for (const auto& g : node_.group_exprs) {
        Result<Value> v = EvalExpr(*g, ec);
        SELTRIG_RETURN_IF_ERROR(v.status());
        key.push_back(std::move(*v));
      }
      auto [it, inserted] = group_index.try_emplace(key, group_keys.size());
      if (inserted) {
        group_keys.push_back(std::move(key));
        group_states.emplace_back(node_.aggregates.size());
      }
      SELTRIG_RETURN_IF_ERROR(Accumulate(&group_states[it->second], input, ec));
    }
  }

  // Scalar aggregation over an empty input still yields one row.
  if (group_keys.empty() && node_.group_exprs.empty()) {
    group_keys.emplace_back();
    group_states.emplace_back(node_.aggregates.size());
  }

  results_.reserve(group_keys.size());
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row out = group_keys[g];
    out.reserve(out.size() + node_.aggregates.size());
    for (size_t i = 0; i < node_.aggregates.size(); ++i) {
      out.push_back(Finalize(node_.aggregates[i], group_states[g][i]));
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::NextBatchImpl(RowBatch* out) {
  if (cursor_ >= results_.size()) return false;
  size_t end = std::min(results_.size(), cursor_ + batch_capacity_);
  for (; cursor_ < end; ++cursor_) {
    out->AppendMove(std::move(results_[cursor_]));
  }
  return true;
}

// --- Sort ----------------------------------------------------------------

SortOp::SortOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
               const LogicalSort& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string SortOp::DebugName() const { return node_.Describe(); }

Status SortOp::InitImpl() {
  SELTRIG_RETURN_IF_ERROR(child_->Init());
  rows_.clear();
  cursor_ = 0;
  RowBatch batch;
  while (true) {
    Result<bool> has = child_->NextBatch(&batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows_.push_back(std::move(batch.mutable_row(i)));
    }
  }
  // Precompute key values per row to keep the comparator total and cheap.
  size_t nkeys = node_.keys.size();
  EvalContext ec = MakeEvalContext(nullptr);
  std::vector<std::vector<Value>> keys(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    ec.row = &rows_[r];
    keys[r].reserve(nkeys);
    for (const SortKey& k : node_.keys) {
      Result<Value> v = EvalExpr(*k.expr, ec);
      SELTRIG_RETURN_IF_ERROR(v.status());
      keys[r].push_back(std::move(*v));
    }
  }
  std::vector<size_t> order(rows_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < nkeys; ++k) {
      int c = Value::Compare(keys[a][k], keys[b][k]);
      if (c != 0) return node_.keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (size_t i : order) sorted.push_back(std::move(rows_[i]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOp::NextBatchImpl(RowBatch* out) {
  if (cursor_ >= rows_.size()) return false;
  size_t end = std::min(rows_.size(), cursor_ + batch_capacity_);
  for (; cursor_ < end; ++cursor_) {
    out->AppendMove(std::move(rows_[cursor_]));
  }
  return true;
}

// --- Limit ---------------------------------------------------------------

LimitOp::LimitOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                 const LogicalLimit& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string LimitOp::DebugName() const { return node_.Describe(); }

Status LimitOp::InitImpl() {
  produced_ = 0;
  skipped_ = 0;
  return child_->Init();
}

Result<bool> LimitOp::NextBatchImpl(RowBatch* out) {
  if (node_.limit >= 0 && produced_ >= node_.limit) return false;
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  if (skipped_ < node_.offset) {
    size_t drop = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(out->size()), node_.offset - skipped_));
    out->DropFrontLogical(drop);
    skipped_ += static_cast<int64_t>(drop);
  }
  if (node_.limit >= 0) {
    int64_t remaining = node_.limit - produced_;
    if (static_cast<int64_t>(out->size()) > remaining) {
      out->TruncateLogical(static_cast<size_t>(remaining));
    }
  }
  produced_ += static_cast<int64_t>(out->size());
  return true;
}

// --- Distinct --------------------------------------------------------------

DistinctOp::DistinctOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                       OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string DistinctOp::DebugName() const { return "Distinct"; }

Status DistinctOp::InitImpl() {
  seen_.clear();
  return child_->Init();
}

Result<bool> DistinctOp::NextBatchImpl(RowBatch* out) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  size_t n = out->size();
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (seen_.insert(out->row(i)).second) {
      keep.push_back(static_cast<uint32_t>(out->PhysicalIndex(i)));
    }
  }
  if (keep.size() != n) out->SetSelection(std::move(keep));
  return true;
}

// --- Values ----------------------------------------------------------------

ValuesOp::ValuesOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalValues& node)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node) {}

std::string ValuesOp::DebugName() const { return node_.Describe(); }

Status ValuesOp::InitImpl() {
  cursor_ = 0;
  eval_ctx_ = MakeEvalContext(nullptr);
  return Status::OK();
}

Result<bool> ValuesOp::NextBatchImpl(RowBatch* out) {
  if (cursor_ >= node_.rows.size()) return false;
  size_t end = std::min(node_.rows.size(), cursor_ + batch_capacity_);
  for (; cursor_ < end; ++cursor_) {
    const auto& exprs = node_.rows[cursor_];
    Row* slot = out->AppendRow();
    slot->reserve(exprs.size());
    eval_ctx_.row = nullptr;
    for (const auto& e : exprs) {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, eval_ctx_));
      slot->push_back(std::move(v));
    }
  }
  return true;
}

// --- PhysicalAuditOp ---------------------------------------------------------

PhysicalAuditOp::PhysicalAuditOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                                 const LogicalAudit& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string PhysicalAuditOp::DebugName() const { return node_.Describe(); }

Status PhysicalAuditOp::InitImpl() {
  eval_ctx_ = MakeEvalContext(nullptr);
  return child_->Init();
}

Status PhysicalAuditOp::RecordHit(const Value& key) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe("audit.record"));
  ctx_->stats().audit_probe_hits++;
  if (!ctx_->accessed()->GetOrCreate(node_.audit_name).Record(key) &&
      ctx_->accessed()->overflow_policy() == AccessedOverflowPolicy::kFail) {
    return Status::ResourceExhausted(
        "ACCESSED cardinality cap exceeded for audit expression '" +
        node_.audit_name + "'");
  }
  return Status::OK();
}

Result<bool> PhysicalAuditOp::NextBatchImpl(RowBatch* out) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  size_t n = out->size();
  ctx_->stats().rows_through_audit_ops += n;

  AccessedStateRegistry* registry = ctx_->accessed();
  if (registry == nullptr || node_.key_column < 0 || n == 0) {
    return true;  // pass-through: the audit operator is a no-op for the query
  }
  const int kc = node_.key_column;

  // Bloom pre-screen (exact ID-view probes only): one pass over the batch's
  // keys against the view's summary. A clean batch — the common case for
  // selective queries — skips the exact probes and the ACCESSED bookkeeping
  // entirely; the filter's one-sided error keeps ACCESSED exact.
  if (node_.id_view != nullptr && node_.bloom == nullptr) {
    const BloomFilter* screen = node_.id_view->Screen();
    if (screen != nullptr) {
      bool any_maybe = false;
      for (size_t i = 0; i < n; ++i) {
        const Row& row = out->row(i);
        if (kc >= static_cast<int>(row.size())) continue;
        const Value& key = row[kc];
        if (!key.is_null() &&
            screen->MayContain(static_cast<uint64_t>(key.Hash()))) {
          any_maybe = true;
          break;
        }
      }
      if (!any_maybe) {
        ctx_->stats().audit_batches_prescreened++;
        return true;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    const Row& row = out->row(i);
    if (kc >= static_cast<int>(row.size())) continue;
    const Value& key = row[kc];
    if (key.is_null()) continue;
    bool hit;
    if (node_.bloom != nullptr) {
      hit = node_.bloom->MayContain(static_cast<uint64_t>(key.Hash()));
    } else if (node_.id_view != nullptr) {
      hit = node_.id_view->Contains(key);
    } else if (node_.fallback_predicate != nullptr) {
      eval_ctx_.row = &row;
      SELTRIG_ASSIGN_OR_RETURN(hit,
                               EvalPredicate(*node_.fallback_predicate, eval_ctx_));
    } else {
      hit = false;
    }
    if (hit) {
      SELTRIG_RETURN_IF_ERROR(RecordHit(key));
    }
  }
  return true;
}

}  // namespace seltrig
