#include "exec/operators.h"

#include <algorithm>

#include "audit/accessed_state.h"
#include "common/bloom_filter.h"
#include "common/fault_injector.h"
#include "audit/sensitive_id_view.h"
#include "catalog/catalog.h"
#include "expr/analysis.h"

namespace seltrig {

PhysicalOperator::~PhysicalOperator() = default;

namespace {

bool ExprIsRowIndependent(const Expr& e) {
  if (e.kind == ExprKind::kColumnRef || e.kind == ExprKind::kSubquery) return false;
  for (const auto& c : e.children) {
    if (!ExprIsRowIndependent(*c)) return false;
  }
  return true;
}

// Finds an equality conjunct `column = <row-independent expr>` usable for a
// secondary-index probe. Returns the column index, or -1.
int FindIndexableConjunct(const Expr& pred, const Expr** value_expr) {
  if (pred.kind == ExprKind::kLogical && pred.logical_op == LogicalOp::kAnd) {
    int col = FindIndexableConjunct(*pred.children[0], value_expr);
    if (col >= 0) return col;
    return FindIndexableConjunct(*pred.children[1], value_expr);
  }
  if (pred.kind == ExprKind::kComparison && pred.cmp_op == CompareOp::kEq) {
    const Expr& l = *pred.children[0];
    const Expr& r = *pred.children[1];
    if (l.kind == ExprKind::kColumnRef && ExprIsRowIndependent(r)) {
      *value_expr = &r;
      return l.column_index;
    }
    if (r.kind == ExprKind::kColumnRef && ExprIsRowIndependent(l)) {
      *value_expr = &l;
      return r.column_index;
    }
  }
  return -1;
}

}  // namespace

// --- SeqScan -----------------------------------------------------------------

SeqScanOp::SeqScanOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                     const LogicalScan& node, Table* table)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), table_(table) {}

Status SeqScanOp::Init() {
  cursor_ = 0;
  exclusions_.clear();
  index_mode_ = false;
  candidates_.clear();
  if (table_ != nullptr) {
    for (const ScanExclusion& e : ctx_->exclusions()) {
      if (e.table == node_.table_name) {
        exclusions_.emplace_back(e.column, e.value);
      }
    }
    if (node_.filter != nullptr) {
      const Expr* value_expr = nullptr;
      int col = FindIndexableConjunct(*node_.filter, &value_expr);
      if (col >= 0) {
        EvalContext ec = MakeEvalContext(nullptr);
        SELTRIG_ASSIGN_OR_RETURN(Value key, EvalExpr(*value_expr, ec));
        index_mode_ = true;
        if (!key.is_null()) {
          candidates_ = table_->LookupBySecondary(col, key);
        }
      }
    }
  }
  return Status::OK();
}

Result<bool> SeqScanOp::Next(Row* row) {
  while (true) {
    const Row* src = nullptr;
    if (node_.virtual_rows != nullptr) {
      if (cursor_ >= node_.virtual_rows->size()) return false;
      src = &(*node_.virtual_rows)[cursor_++];
    } else if (index_mode_) {
      if (cursor_ >= candidates_.size()) return false;
      size_t row_id = candidates_[cursor_++];
      if (!table_->IsLive(row_id)) continue;
      src = &table_->GetRow(row_id);
    } else {
      // Skip tombstones.
      while (cursor_ < table_->slot_count() && !table_->IsLive(cursor_)) ++cursor_;
      if (cursor_ >= table_->slot_count()) return false;
      src = &table_->GetRow(cursor_++);
    }
    ctx_->stats().rows_scanned++;

    bool excluded = false;
    for (const auto& [col, value] : exclusions_) {
      if ((*src)[col] == value) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;

    if (node_.filter != nullptr) {
      EvalContext ec = MakeEvalContext(src);
      SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node_.filter, ec));
      if (!pass) continue;
    }
    if (node_.projection.empty()) {
      *row = *src;
    } else {
      row->clear();
      row->reserve(node_.projection.size());
      for (int col : node_.projection) row->push_back((*src)[col]);
    }
    return true;
  }
}

// --- Filter ------------------------------------------------------------------

FilterOp::FilterOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalFilter& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {}

Status FilterOp::Init() { return child_->Init(); }

Result<bool> FilterOp::Next(Row* row) {
  while (true) {
    SELTRIG_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    EvalContext ec = MakeEvalContext(row);
    SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node_.predicate, ec));
    if (pass) return true;
  }
}

// --- Project -----------------------------------------------------------------

ProjectOp::ProjectOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                     const LogicalProject& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {}

Status ProjectOp::Init() { return child_->Init(); }

Result<bool> ProjectOp::Next(Row* row) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->Next(&input_));
  if (!has) return false;
  row->clear();
  row->reserve(node_.exprs.size());
  EvalContext ec = MakeEvalContext(&input_);
  for (const auto& e : node_.exprs) {
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ec));
    row->push_back(std::move(v));
  }
  return true;
}

// --- HashJoin ----------------------------------------------------------------

HashJoinOp::HashJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                       const LogicalJoin& node, OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
                       ExprPtr residual)
    : PhysicalOperator(ctx, std::move(outer_rows)),
      node_(node),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {}

Status HashJoinOp::Init() {
  SELTRIG_RETURN_IF_ERROR(left_->Init());
  SELTRIG_RETURN_IF_ERROR(right_->Init());
  hash_table_.clear();
  left_valid_ = false;
  matches_ = nullptr;

  Row row;
  right_width_ = 0;
  while (true) {
    Result<bool> has = right_->Next(&row);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    right_width_ = row.size();
    EvalContext ec = MakeEvalContext(&row);
    Row key;
    key.reserve(right_keys_.size());
    bool null_key = false;
    for (const auto& k : right_keys_) {
      Result<Value> v = EvalExpr(*k, ec);
      SELTRIG_RETURN_IF_ERROR(v.status());
      if (v->is_null()) {
        null_key = true;
        break;
      }
      key.push_back(std::move(*v));
    }
    if (null_key) continue;  // SQL equality never matches NULL keys
    hash_table_[std::move(key)].push_back(std::move(row));
  }
  if (right_width_ == 0) {
    // Right side empty: width from the schema (needed for LEFT OUTER nulls).
    right_width_ = node_.children[1]->schema.size();
  }
  return Status::OK();
}

Result<bool> HashJoinOp::AdvanceLeft() {
  while (true) {
    SELTRIG_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
    if (!has) {
      left_valid_ = false;
      return false;
    }
    left_valid_ = true;
    left_matched_ = false;
    match_idx_ = 0;
    matches_ = nullptr;

    EvalContext ec = MakeEvalContext(&left_row_);
    Row key;
    key.reserve(left_keys_.size());
    bool null_key = false;
    for (const auto& k : left_keys_) {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, ec));
      if (v.is_null()) {
        null_key = true;
        break;
      }
      key.push_back(std::move(v));
    }
    if (!null_key) {
      auto it = hash_table_.find(key);
      if (it != hash_table_.end()) matches_ = &it->second;
    }
    return true;
  }
}

Result<bool> HashJoinOp::Next(Row* row) {
  while (true) {
    if (!left_valid_) {
      SELTRIG_ASSIGN_OR_RETURN(bool has, AdvanceLeft());
      if (!has) return false;
    }
    while (matches_ != nullptr && match_idx_ < matches_->size()) {
      const Row& right_row = (*matches_)[match_idx_++];
      Row combined = left_row_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      if (residual_ != nullptr) {
        EvalContext ec = MakeEvalContext(&combined);
        SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*residual_, ec));
        if (!pass) continue;
      }
      left_matched_ = true;
      *row = std::move(combined);
      return true;
    }
    // Exhausted matches for this left row.
    bool emit_null_padded =
        node_.join_type == JoinType::kLeft && !left_matched_;
    left_valid_ = false;
    if (emit_null_padded) {
      *row = left_row_;
      row->resize(left_row_.size() + right_width_, Value::Null());
      return true;
    }
  }
}

// --- NLJoin ------------------------------------------------------------------

NLJoinOp::NLJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalJoin& node, OperatorPtr left, OperatorPtr right)
    : PhysicalOperator(ctx, std::move(outer_rows)),
      node_(node),
      left_(std::move(left)),
      right_(std::move(right)) {}

Status NLJoinOp::Init() {
  SELTRIG_RETURN_IF_ERROR(left_->Init());
  SELTRIG_RETURN_IF_ERROR(right_->Init());
  right_rows_.clear();
  left_valid_ = false;
  Row row;
  while (true) {
    Result<bool> has = right_->Next(&row);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    right_rows_.push_back(std::move(row));
  }
  right_width_ = node_.children[1]->schema.size();
  return Status::OK();
}

Result<bool> NLJoinOp::Next(Row* row) {
  while (true) {
    if (!left_valid_) {
      SELTRIG_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
      if (!has) return false;
      left_valid_ = true;
      left_matched_ = false;
      right_idx_ = 0;
    }
    while (right_idx_ < right_rows_.size()) {
      const Row& right_row = right_rows_[right_idx_++];
      Row combined = left_row_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      if (node_.condition != nullptr) {
        EvalContext ec = MakeEvalContext(&combined);
        SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node_.condition, ec));
        if (!pass) continue;
      }
      left_matched_ = true;
      *row = std::move(combined);
      return true;
    }
    bool emit_null_padded = node_.join_type == JoinType::kLeft && !left_matched_;
    left_valid_ = false;
    if (emit_null_padded) {
      *row = left_row_;
      row->resize(left_row_.size() + right_width_, Value::Null());
      return true;
    }
  }
}

// --- HashAggregate -----------------------------------------------------------

HashAggregateOp::HashAggregateOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                                 const LogicalAggregate& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {}

Status HashAggregateOp::Accumulate(std::vector<AggState>* states, const Row& input) {
  EvalContext ec = MakeEvalContext(&input);
  for (size_t i = 0; i < node_.aggregates.size(); ++i) {
    const AggregateSpec& spec = node_.aggregates[i];
    AggState& st = (*states)[i];
    if (spec.kind == AggKind::kCountStar) {
      st.count++;
      continue;
    }
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*spec.arg, ec));
    if (v.is_null()) continue;  // aggregates ignore NULLs
    if (spec.distinct) {
      if (st.distinct == nullptr) {
        st.distinct =
            std::make_unique<std::unordered_set<Value, ValueHash, ValueEq>>();
      }
      st.distinct->insert(std::move(v));
      continue;
    }
    switch (spec.kind) {
      case AggKind::kCount:
        st.count++;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        st.count++;
        if (v.type() == TypeId::kInt) {
          st.sum_int += v.AsInt();
        }
        st.sum_double += v.NumericAsDouble();
        st.saw_value = true;
        break;
      case AggKind::kMin:
        if (!st.saw_value || Value::Compare(v, st.min_max) < 0) st.min_max = v;
        st.saw_value = true;
        break;
      case AggKind::kMax:
        if (!st.saw_value || Value::Compare(v, st.min_max) > 0) st.min_max = v;
        st.saw_value = true;
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

Value HashAggregateOp::Finalize(const AggregateSpec& spec, const AggState& st) const {
  if (spec.distinct) {
    size_t n = st.distinct == nullptr ? 0 : st.distinct->size();
    switch (spec.kind) {
      case AggKind::kCount:
        return Value::Int(static_cast<int64_t>(n));
      case AggKind::kSum: {
        if (n == 0) return Value::Null();
        if (spec.result_type == TypeId::kInt) {
          int64_t sum = 0;
          for (const Value& v : *st.distinct) sum += v.AsInt();
          return Value::Int(sum);
        }
        double sum = 0;
        for (const Value& v : *st.distinct) sum += v.NumericAsDouble();
        return Value::Double(sum);
      }
      case AggKind::kAvg: {
        if (n == 0) return Value::Null();
        double sum = 0;
        for (const Value& v : *st.distinct) sum += v.NumericAsDouble();
        return Value::Double(sum / static_cast<double>(n));
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        if (n == 0) return Value::Null();
        const Value* best = nullptr;
        for (const Value& v : *st.distinct) {
          if (best == nullptr ||
              (spec.kind == AggKind::kMin ? Value::Compare(v, *best) < 0
                                          : Value::Compare(v, *best) > 0)) {
            best = &v;
          }
        }
        return *best;
      }
      default:
        return Value::Null();
    }
  }
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int(st.count);
    case AggKind::kSum:
      if (!st.saw_value) return Value::Null();
      if (spec.result_type == TypeId::kInt) return Value::Int(st.sum_int);
      return Value::Double(st.sum_double);
    case AggKind::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Double(st.sum_double / static_cast<double>(st.count));
    case AggKind::kMin:
    case AggKind::kMax:
      if (!st.saw_value) return Value::Null();
      return st.min_max;
  }
  return Value::Null();
}

Status HashAggregateOp::Init() {
  SELTRIG_RETURN_IF_ERROR(child_->Init());
  results_.clear();
  cursor_ = 0;

  // Group rows; preserve first-seen order for deterministic output.
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index;
  std::vector<Row> group_keys;
  std::vector<std::vector<AggState>> group_states;

  Row input;
  while (true) {
    Result<bool> has = child_->Next(&input);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    EvalContext ec = MakeEvalContext(&input);
    Row key;
    key.reserve(node_.group_exprs.size());
    for (const auto& g : node_.group_exprs) {
      Result<Value> v = EvalExpr(*g, ec);
      SELTRIG_RETURN_IF_ERROR(v.status());
      key.push_back(std::move(*v));
    }
    auto [it, inserted] = group_index.try_emplace(key, group_keys.size());
    if (inserted) {
      group_keys.push_back(std::move(key));
      group_states.emplace_back(node_.aggregates.size());
    }
    SELTRIG_RETURN_IF_ERROR(Accumulate(&group_states[it->second], input));
  }

  // Scalar aggregation over an empty input still yields one row.
  if (group_keys.empty() && node_.group_exprs.empty()) {
    group_keys.emplace_back();
    group_states.emplace_back(node_.aggregates.size());
  }

  results_.reserve(group_keys.size());
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row out = group_keys[g];
    out.reserve(out.size() + node_.aggregates.size());
    for (size_t i = 0; i < node_.aggregates.size(); ++i) {
      out.push_back(Finalize(node_.aggregates[i], group_states[g][i]));
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::Next(Row* row) {
  if (cursor_ >= results_.size()) return false;
  *row = results_[cursor_++];
  return true;
}

// --- Sort ----------------------------------------------------------------

SortOp::SortOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
               const LogicalSort& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {}

Status SortOp::Init() {
  SELTRIG_RETURN_IF_ERROR(child_->Init());
  rows_.clear();
  cursor_ = 0;
  Row row;
  while (true) {
    Result<bool> has = child_->Next(&row);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    rows_.push_back(std::move(row));
  }
  // Precompute key values per row to keep the comparator total and cheap.
  size_t nkeys = node_.keys.size();
  std::vector<std::vector<Value>> keys(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    EvalContext ec = MakeEvalContext(&rows_[r]);
    keys[r].reserve(nkeys);
    for (const SortKey& k : node_.keys) {
      Result<Value> v = EvalExpr(*k.expr, ec);
      SELTRIG_RETURN_IF_ERROR(v.status());
      keys[r].push_back(std::move(*v));
    }
  }
  std::vector<size_t> order(rows_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < nkeys; ++k) {
      int c = Value::Compare(keys[a][k], keys[b][k]);
      if (c != 0) return node_.keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (size_t i : order) sorted.push_back(std::move(rows_[i]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOp::Next(Row* row) {
  if (cursor_ >= rows_.size()) return false;
  *row = rows_[cursor_++];
  return true;
}

// --- Limit ---------------------------------------------------------------

LimitOp::LimitOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                 const LogicalLimit& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {}

Status LimitOp::Init() {
  produced_ = 0;
  skipped_ = 0;
  return child_->Init();
}

Result<bool> LimitOp::Next(Row* row) {
  while (skipped_ < node_.offset) {
    SELTRIG_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++skipped_;
  }
  if (node_.limit >= 0 && produced_ >= node_.limit) return false;
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  ++produced_;
  return true;
}

// --- Distinct --------------------------------------------------------------

DistinctOp::DistinctOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                       OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), child_(std::move(child)) {}

Status DistinctOp::Init() {
  seen_.clear();
  return child_->Init();
}

Result<bool> DistinctOp::Next(Row* row) {
  while (true) {
    SELTRIG_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    if (seen_.insert(*row).second) return true;
  }
}

// --- Values ----------------------------------------------------------------

ValuesOp::ValuesOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalValues& node)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node) {}

Status ValuesOp::Init() {
  cursor_ = 0;
  return Status::OK();
}

Result<bool> ValuesOp::Next(Row* row) {
  if (cursor_ >= node_.rows.size()) return false;
  const auto& exprs = node_.rows[cursor_++];
  row->clear();
  row->reserve(exprs.size());
  EvalContext ec = MakeEvalContext(nullptr);
  for (const auto& e : exprs) {
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ec));
    row->push_back(std::move(v));
  }
  return true;
}

// --- PhysicalAuditOp ---------------------------------------------------------

PhysicalAuditOp::PhysicalAuditOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                                 const LogicalAudit& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {}

Status PhysicalAuditOp::Init() { return child_->Init(); }

Result<bool> PhysicalAuditOp::Next(Row* row) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  ctx_->stats().rows_through_audit_ops++;

  AccessedStateRegistry* registry = ctx_->accessed();
  if (registry != nullptr && node_.key_column >= 0 &&
      node_.key_column < static_cast<int>(row->size())) {
    const Value& key = (*row)[node_.key_column];
    if (!key.is_null()) {
      bool hit;
      if (node_.bloom != nullptr) {
        hit = node_.bloom->MayContain(static_cast<uint64_t>(key.Hash()));
      } else if (node_.id_view != nullptr) {
        hit = node_.id_view->Contains(key);
      } else if (node_.fallback_predicate != nullptr) {
        EvalContext ec = MakeEvalContext(row);
        SELTRIG_ASSIGN_OR_RETURN(hit, EvalPredicate(*node_.fallback_predicate, ec));
      } else {
        hit = false;
      }
      if (hit) {
        SELTRIG_RETURN_IF_ERROR(fault::Maybe("audit.record"));
        ctx_->stats().audit_probe_hits++;
        if (!registry->GetOrCreate(node_.audit_name).Record(key) &&
            registry->overflow_policy() == AccessedOverflowPolicy::kFail) {
          return Status::ResourceExhausted(
              "ACCESSED cardinality cap exceeded for audit expression '" +
              node_.audit_name + "'");
        }
      }
    }
  }
  return true;  // pass-through: the audit operator is a no-op for the query
}

}  // namespace seltrig
