#include "exec/operators.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "audit/accessed_state.h"
#include "audit/sensitive_id_view.h"
#include "catalog/catalog.h"
#include "common/bloom_filter.h"
#include "common/fault_injector.h"
#include "expr/analysis.h"

namespace seltrig {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Finds an equality conjunct `column = <row-invariant expr>` usable for a
// secondary-index probe. Returns the column index, or -1.
int FindIndexableConjunct(const Expr& pred, const Expr** value_expr) {
  if (pred.kind == ExprKind::kLogical && pred.logical_op == LogicalOp::kAnd) {
    int col = FindIndexableConjunct(*pred.children[0], value_expr);
    if (col >= 0) return col;
    return FindIndexableConjunct(*pred.children[1], value_expr);
  }
  if (pred.kind == ExprKind::kComparison && pred.cmp_op == CompareOp::kEq) {
    const Expr& l = *pred.children[0];
    const Expr& r = *pred.children[1];
    if (l.kind == ExprKind::kColumnRef && ExprIsRowInvariant(r)) {
      *value_expr = &r;
      return l.column_index;
    }
    if (r.kind == ExprKind::kColumnRef && ExprIsRowInvariant(l)) {
      *value_expr = &l;
      return r.column_index;
    }
  }
  return -1;
}

// Rough output-cardinality estimate for sizing hash tables before a build.
// Only has to be the right order of magnitude: it seeds reserve() calls, so
// an underestimate costs rehashes and an overestimate costs memory.
size_t EstimateCardinality(const LogicalOperator& node, ExecContext* ctx) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      if (scan.virtual_rows != nullptr) return scan.virtual_rows->size();
      Result<Table*> table = ctx->catalog()->GetTable(scan.table_name);
      size_t n = table.ok() ? (*table)->live_row_count() : 0;
      if (scan.filter != nullptr) n = n / 3 + 1;
      return n;
    }
    case PlanKind::kValues:
      return static_cast<const LogicalValues&>(node).rows.size();
    case PlanKind::kFilter:
      return EstimateCardinality(*node.children[0], ctx) / 3 + 1;
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const LogicalLimit&>(node);
      size_t child = EstimateCardinality(*node.children[0], ctx);
      if (limit.limit >= 0) {
        return std::min(child, static_cast<size_t>(limit.limit));
      }
      return child;
    }
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kAudit:
      return EstimateCardinality(*node.children[0], ctx);
    case PlanKind::kAggregate:
      return EstimateCardinality(*node.children[0], ctx) / 4 + 1;
    case PlanKind::kJoin:
      return std::max(EstimateCardinality(*node.children[0], ctx),
                      EstimateCardinality(*node.children[1], ctx));
  }
  return 16;
}

void FormatProfileNode(const PhysicalOperator& op, int indent, std::string* out) {
  const OperatorProfile& p = op.profile();
  char line[256];
  std::snprintf(line, sizeof(line),
                "%*s%s  rows=%llu batches=%llu init=%.3fms next=%.3fms\n", indent * 2,
                "", op.DebugName().c_str(),
                static_cast<unsigned long long>(p.rows_out),
                static_cast<unsigned long long>(p.batches),
                static_cast<double>(p.init_ns) / 1e6,
                static_cast<double>(p.next_ns) / 1e6);
  *out += line;
  op.AppendProfileLines(indent + 1, out);
  for (const PhysicalOperator* child : op.profile_children()) {
    FormatProfileNode(*child, indent + 1, out);
  }
}

}  // namespace

int FindIndexableScanColumn(const Expr& pred) {
  const Expr* value_expr = nullptr;
  return FindIndexableConjunct(pred, &value_expr);
}

// --- PhysicalOperator --------------------------------------------------------

PhysicalOperator::~PhysicalOperator() = default;

Status PhysicalOperator::Init() {
  if (!ctx_->collect_profile()) return InitImpl();
  uint64_t start = NowNs();
  Status status = InitImpl();
  profile_.init_ns += NowNs() - start;
  return status;
}

Result<bool> PhysicalOperator::NextBatch(ColumnBatch* out) {
  out->Clear();
  if (!ctx_->collect_profile()) {
    SELTRIG_ASSIGN_OR_RETURN(bool has, NextBatchImpl(out));
    if (has) {
      profile_.batches++;
      profile_.rows_out += out->size();
    }
    return has;
  }
  uint64_t start = NowNs();
  Result<bool> has = NextBatchImpl(out);
  profile_.next_ns += NowNs() - start;
  SELTRIG_RETURN_IF_ERROR(has.status());
  if (*has) {
    profile_.batches++;
    profile_.rows_out += out->size();
  }
  return has;
}

std::string FormatOperatorProfile(const PhysicalOperator& root) {
  std::string out;
  FormatProfileNode(root, 0, &out);
  return out;
}

// --- SeqScan -----------------------------------------------------------------

SeqScanOp::SeqScanOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                     const LogicalScan& node, Table* table)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), table_(table) {}

std::string SeqScanOp::DebugName() const { return node_.Describe(); }

Status SeqScanOp::InitImpl() {
  cursor_ = range_mode_ ? slot_begin_ : 0;
  exclusions_.clear();
  index_mode_ = false;
  candidates_.clear();
  eval_ctx_ = MakeEvalContext(nullptr);
  scan_slots_.reserve(batch_capacity_);
  simple_filter_.reset();
  if (node_.filter != nullptr) {
    simple_filter_ = SimplePredicate::Compile(*node_.filter);
  }
  if (table_ != nullptr) {
    for (const ScanExclusion& e : ctx_->exclusions()) {
      if (e.table == node_.table_name) {
        exclusions_.emplace_back(e.column, e.value);
      }
    }
    // A morsel-range scan walks its slots directly; index probing would
    // examine rows outside the morsel (and a different total slot set).
    if (node_.filter != nullptr && !range_mode_) {
      const Expr* value_expr = nullptr;
      int col = FindIndexableConjunct(*node_.filter, &value_expr);
      if (col >= 0) {
        eval_ctx_.row = nullptr;
        SELTRIG_ASSIGN_OR_RETURN(Value key, EvalExpr(*value_expr, eval_ctx_));
        index_mode_ = true;
        if (!key.is_null()) {
          candidates_ = table_->LookupBySecondary(col, key);
        }
      }
    }
  }
  return Status::OK();
}

Result<bool> SeqScanOp::EmitIfPassing(const Row& src, ColumnBatch* out) {
  ctx_->stats().rows_scanned++;
  for (const auto& [col, value] : exclusions_) {
    if (src[col] == value) return false;
  }
  if (node_.filter != nullptr) {
    if (simple_filter_) {
      if (!simple_filter_->Matches(src)) return false;
    } else {
      eval_ctx_.BindRow(&src);
      SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node_.filter, eval_ctx_));
      if (!pass) return false;
    }
  }
  if (node_.projection.empty()) {
    out->AppendRow(src);
  } else {
    row_proj_scratch_.clear();
    row_proj_scratch_.reserve(node_.projection.size());
    for (int col : node_.projection) row_proj_scratch_.push_back(src[col]);
    out->AppendRow(std::move(row_proj_scratch_));
  }
  return true;
}

Result<bool> SeqScanOp::FillColumnarBatch(ColumnBatch* out) {
  // Pull up to batch_capacity_ live slots: identical batch segmentation to
  // the row pipeline (ScanLiveRange is the pacing in both modes), so audit
  // batch boundaries — and audit_batches_prescreened — match bit-for-bit.
  scan_slots_.clear();
  size_t end_slot = range_mode_ ? slot_end_ : table_->slot_count();
  size_t n = table_->ScanLiveRange(&cursor_, end_slot, batch_capacity_, &scan_slots_);
  if (n == 0) return false;
  ctx_->stats().rows_scanned += n;

  const size_t width = table_->schema().size();
  out->BeginViews(width);
  for (size_t c = 0; c < width; ++c) {
    out->BindViewColumn(c, &table_->column_data(c));
  }
  // Swap-install the slot ids: the scan's buffer and the batch's selection
  // ping-pong, so the steady state allocates nothing.
  out->AdoptSelection(&scan_slots_);

  for (const auto& [col, value] : exclusions_) {
    size_t m = out->size();
    keep_scratch_.clear();
    keep_scratch_.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      const size_t phys = out->PhysicalIndex(i);
      if (!(out->column(static_cast<size_t>(col)).GetValue(phys) == value)) {
        keep_scratch_.push_back(static_cast<uint32_t>(phys));
      }
    }
    if (keep_scratch_.size() != m) out->AdoptSelection(&keep_scratch_);
  }
  if (node_.filter != nullptr) {
    if (simple_filter_) {
      simple_filter_->FilterBatch(out);
    } else {
      SELTRIG_RETURN_IF_ERROR(EvalPredicateBatch(*node_.filter, eval_ctx_, out));
    }
  }
  if (!node_.projection.empty()) out->ApplyProjection(node_.projection);
  return true;
}

Result<bool> SeqScanOp::NextBatchImpl(ColumnBatch* out) {
  const size_t cap = batch_capacity_;
  if (node_.virtual_rows != nullptr) {
    const std::vector<Row>& rows = *node_.virtual_rows;
    if (cursor_ >= rows.size()) return false;
    out->ResetOwned(OutputWidth(rows.empty() ? 0 : rows[0].size()));
    size_t end = std::min(rows.size(), cursor_ + cap);
    for (; cursor_ < end; ++cursor_) {
      SELTRIG_RETURN_IF_ERROR(EmitIfPassing(rows[cursor_], out).status());
    }
    return true;
  }
  if (index_mode_) {
    if (cursor_ >= candidates_.size()) return false;
    out->ResetOwned(OutputWidth(table_->schema().size()));
    size_t examined = 0;
    while (cursor_ < candidates_.size() && examined < cap) {
      size_t row_id = candidates_[cursor_++];
      if (!table_->IsLive(row_id)) continue;
      ++examined;
      table_->MaterializeRow(row_id, &row_scratch_);
      SELTRIG_RETURN_IF_ERROR(EmitIfPassing(row_scratch_, out).status());
    }
    return true;
  }
  if (ctx_->columnar()) return FillColumnarBatch(out);
  // Row-pipeline escape hatch (ExecOptions::columnar = false): materialize
  // every live row and append generically — the honest row-at-a-time
  // baseline the benchmarks compare against.
  scan_slots_.clear();
  size_t end_slot = range_mode_ ? slot_end_ : table_->slot_count();
  size_t n = table_->ScanLiveRange(&cursor_, end_slot, cap, &scan_slots_);
  if (n == 0) return false;
  out->ResetOwned(OutputWidth(table_->schema().size()));
  for (uint32_t slot : scan_slots_) {
    table_->MaterializeRow(slot, &row_scratch_);
    SELTRIG_RETURN_IF_ERROR(EmitIfPassing(row_scratch_, out).status());
  }
  return true;
}

// --- Filter ------------------------------------------------------------------

FilterOp::FilterOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalFilter& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string FilterOp::DebugName() const { return node_.Describe(); }

Status FilterOp::InitImpl() {
  eval_ctx_ = MakeEvalContext(nullptr);
  simple_pred_ = SimplePredicate::Compile(*node_.predicate);
  return child_->Init();
}

Result<bool> FilterOp::NextBatchImpl(ColumnBatch* out) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  if (simple_pred_) {
    simple_pred_->FilterBatch(out);
    return true;
  }
  SELTRIG_RETURN_IF_ERROR(EvalPredicateBatch(*node_.predicate, eval_ctx_, out));
  return true;
}

// --- Project -----------------------------------------------------------------

ProjectOp::ProjectOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                     const LogicalProject& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string ProjectOp::DebugName() const { return node_.Describe(); }

Status ProjectOp::InitImpl() {
  eval_ctx_ = MakeEvalContext(nullptr);
  return child_->Init();
}

Result<bool> ProjectOp::NextBatchImpl(ColumnBatch* out) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  size_t n = out->size();
  if (n == 0) return true;
  size_t ncols = node_.exprs.size();
  if (cols_.size() != ncols) cols_.resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    cols_[c].clear();
    SELTRIG_RETURN_IF_ERROR(
        EvalExprBatch(*node_.exprs[c], eval_ctx_, *out, &cols_[c]));
  }
  // All inputs are evaluated; swap the result columns in as the batch's
  // owned storage (the displaced vectors ride back into cols_ for reuse).
  out->AdoptOwnedColumns(&cols_, n);
  return true;
}

// --- HashJoin ----------------------------------------------------------------

HashJoinOp::HashJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                       const LogicalJoin& node, OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
                       ExprPtr residual)
    : PhysicalOperator(ctx, std::move(outer_rows)),
      node_(node),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  profile_children_ = {left_.get(), right_.get()};
}

std::string HashJoinOp::DebugName() const { return node_.Describe(); }

Status HashJoinOp::InitImpl() {
  SELTRIG_RETURN_IF_ERROR(left_->Init());
  SELTRIG_RETURN_IF_ERROR(right_->Init());
  hash_table_.clear();
  eval_ctx_ = MakeEvalContext(nullptr);
  left_batch_.Clear();
  left_pos_ = 0;
  left_done_ = false;
  have_left_ = false;
  matches_ = nullptr;
  left_matched_ = false;

  // Build side: size the table from the child's estimated cardinality up
  // front (one allocation instead of a rehash cascade), and move rows out of
  // the child's batches instead of copying them (view cells are copied; table
  // storage is never moved from).
  size_t estimate = EstimateCardinality(*node_.children[1], ctx_);
  int64_path_ = left_keys_.size() == 1 && right_keys_.size() == 1;
  int_buckets_.clear();
  if (int64_path_) {
    int_index_.Reset(estimate);
    int_buckets_.reserve(estimate);
  } else {
    hash_table_.reserve(estimate);
  }
  right_width_ = 0;
  ColumnBatch build_batch;
  Row row;
  while (true) {
    Result<bool> has = right_->NextBatch(&build_batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t i = 0; i < build_batch.size(); ++i) {
      // Keys are evaluated against the batch first; the row is only
      // materialized (moving owned cells out) afterwards.
      eval_ctx_.BindBatch(&build_batch, i);
      Row key;
      key.reserve(right_keys_.size());
      bool null_key = false;
      for (const auto& k : right_keys_) {
        Result<Value> v = EvalExpr(*k, eval_ctx_);
        SELTRIG_RETURN_IF_ERROR(v.status());
        if (v->is_null()) {
          null_key = true;
          break;
        }
        key.push_back(std::move(*v));
      }
      if (null_key) continue;  // SQL equality never matches NULL keys
      build_batch.MoveRowTo(i, &row);
      right_width_ = row.size();
      if (int64_path_ && key[0].type() != TypeId::kInt) DegradeToGenericTable();
      if (int64_path_) {
        auto [slot, inserted] = int_index_.FindOrInsert(
            key[0].AsInt(), static_cast<uint32_t>(int_buckets_.size()));
        if (inserted) int_buckets_.emplace_back();
        int_buckets_[slot].push_back(std::move(row));
      } else {
        hash_table_[std::move(key)].push_back(std::move(row));
      }
    }
  }
  if (right_width_ == 0) {
    // Right side empty: width from the schema (needed for LEFT OUTER nulls).
    right_width_ = node_.children[1]->schema.size();
  }
  return Status::OK();
}

void HashJoinOp::DegradeToGenericTable() {
  int64_path_ = false;
  hash_table_.reserve(int_index_.size());
  int_index_.ForEach([&](int64_t key, uint32_t slot) {
    Row k;
    k.push_back(Value::Int(key));
    hash_table_[std::move(k)] = std::move(int_buckets_[slot]);
  });
  int_index_.Clear();
  int_buckets_.clear();
}

Result<bool> HashJoinOp::AdvanceLeft() {
  while (true) {
    if (left_pos_ >= left_batch_.size()) {
      if (left_done_) return false;
      SELTRIG_ASSIGN_OR_RETURN(bool has, left_->NextBatch(&left_batch_));
      left_pos_ = 0;
      if (!has) {
        left_done_ = true;
        return false;
      }
      continue;  // batch may be empty; pull again
    }
    left_li_ = left_pos_++;
    have_left_ = true;
    left_matched_ = false;
    match_idx_ = 0;
    matches_ = nullptr;

    eval_ctx_.BindBatch(&left_batch_, left_li_);
    key_scratch_.clear();
    key_scratch_.reserve(left_keys_.size());
    bool null_key = false;
    for (const auto& k : left_keys_) {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, eval_ctx_));
      if (v.is_null()) {
        null_key = true;
        break;
      }
      key_scratch_.push_back(std::move(v));
    }
    if (!null_key) {
      if (int64_path_) {
        // A probe key outside the int64 domain (string/date/bool, or a
        // non-integral double) cannot equal any all-integer build key.
        int64_t k;
        if (Int64ProbeKey(key_scratch_[0], &k)) {
          uint32_t slot = int_index_.Find(k);
          if (slot != Int64HashIndex::kNone) matches_ = &int_buckets_[slot];
        }
      } else {
        auto it = hash_table_.find(key_scratch_);
        if (it != hash_table_.end()) matches_ = &it->second;
      }
    }
    return true;
  }
}

Result<bool> HashJoinOp::NextBatchImpl(ColumnBatch* out) {
  out->ResetOwned(node_.schema.size());
  while (out->size() < batch_capacity_) {
    if (!have_left_) {
      SELTRIG_ASSIGN_OR_RETURN(bool has, AdvanceLeft());
      if (!has) break;
    }
    while (matches_ != nullptr && match_idx_ < matches_->size() &&
           out->size() < batch_capacity_) {
      const Row& right_row = (*matches_)[match_idx_++];
      out->AppendConcat(left_batch_, left_li_, right_row);
      if (residual_ != nullptr) {
        // Evaluate over the just-appended output row (append-then-pop).
        eval_ctx_.BindBatch(out, out->size() - 1);
        SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*residual_, eval_ctx_));
        if (!pass) {
          out->PopRow();
          continue;
        }
      }
      left_matched_ = true;
    }
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      break;  // output batch is full; resume this left row next call
    }
    // Exhausted matches for this left row.
    if (node_.join_type == JoinType::kLeft && !left_matched_) {
      if (out->size() >= batch_capacity_) break;  // pad on the next call
      out->AppendConcatPad(left_batch_, left_li_, right_width_);
      left_matched_ = true;  // padded exactly once
    }
    have_left_ = false;
  }
  return !(out->empty() && left_done_ && !have_left_ &&
           left_pos_ >= left_batch_.size());
}

// --- NLJoin ------------------------------------------------------------------

NLJoinOp::NLJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalJoin& node, OperatorPtr left, OperatorPtr right)
    : PhysicalOperator(ctx, std::move(outer_rows)),
      node_(node),
      left_(std::move(left)),
      right_(std::move(right)) {
  profile_children_ = {left_.get(), right_.get()};
}

std::string NLJoinOp::DebugName() const { return node_.Describe(); }

Status NLJoinOp::InitImpl() {
  SELTRIG_RETURN_IF_ERROR(left_->Init());
  SELTRIG_RETURN_IF_ERROR(right_->Init());
  eval_ctx_ = MakeEvalContext(nullptr);
  left_batch_.Clear();
  left_pos_ = 0;
  left_done_ = false;
  have_left_ = false;
  right_idx_ = 0;
  left_matched_ = false;
  right_rows_.clear();
  ColumnBatch batch;
  while (true) {
    Result<bool> has = right_->NextBatch(&batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      right_rows_.emplace_back();
      batch.MoveRowTo(i, &right_rows_.back());
    }
  }
  right_width_ = node_.children[1]->schema.size();
  return Status::OK();
}

Result<bool> NLJoinOp::AdvanceLeft() {
  while (true) {
    if (left_pos_ >= left_batch_.size()) {
      if (left_done_) return false;
      SELTRIG_ASSIGN_OR_RETURN(bool has, left_->NextBatch(&left_batch_));
      left_pos_ = 0;
      if (!has) {
        left_done_ = true;
        return false;
      }
      continue;  // batch may be empty; pull again
    }
    left_li_ = left_pos_++;
    have_left_ = true;
    left_matched_ = false;
    right_idx_ = 0;
    return true;
  }
}

Result<bool> NLJoinOp::NextBatchImpl(ColumnBatch* out) {
  out->ResetOwned(node_.schema.size());
  while (out->size() < batch_capacity_) {
    if (!have_left_) {
      SELTRIG_ASSIGN_OR_RETURN(bool has, AdvanceLeft());
      if (!has) break;
    }
    while (right_idx_ < right_rows_.size() && out->size() < batch_capacity_) {
      const Row& right_row = right_rows_[right_idx_++];
      out->AppendConcat(left_batch_, left_li_, right_row);
      if (node_.condition != nullptr) {
        // Evaluate over the just-appended output row (append-then-pop).
        eval_ctx_.BindBatch(out, out->size() - 1);
        SELTRIG_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*node_.condition, eval_ctx_));
        if (!pass) {
          out->PopRow();
          continue;
        }
      }
      left_matched_ = true;
    }
    if (right_idx_ < right_rows_.size()) {
      break;  // output batch is full; resume this left row next call
    }
    // Exhausted the right side for this left row.
    if (node_.join_type == JoinType::kLeft && !left_matched_) {
      if (out->size() >= batch_capacity_) break;  // pad on the next call
      out->AppendConcatPad(left_batch_, left_li_, right_width_);
      left_matched_ = true;  // padded exactly once
    }
    have_left_ = false;
  }
  return !(out->empty() && left_done_ && !have_left_ &&
           left_pos_ >= left_batch_.size());
}

// --- HashAggregate -----------------------------------------------------------

HashAggregateOp::HashAggregateOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                                 const LogicalAggregate& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string HashAggregateOp::DebugName() const { return node_.Describe(); }

Status HashAggregateOp::Accumulate(std::vector<AggState>* states, EvalContext& ec) {
  for (size_t i = 0; i < node_.aggregates.size(); ++i) {
    const AggregateSpec& spec = node_.aggregates[i];
    AggState& st = (*states)[i];
    if (spec.kind == AggKind::kCountStar) {
      st.count++;
      continue;
    }
    SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*spec.arg, ec));
    if (v.is_null()) continue;  // aggregates ignore NULLs
    if (spec.distinct) {
      if (st.distinct == nullptr) {
        st.distinct =
            std::make_unique<std::unordered_set<Value, ValueHash, ValueEq>>();
      }
      st.distinct->insert(std::move(v));
      continue;
    }
    switch (spec.kind) {
      case AggKind::kCount:
        st.count++;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        st.count++;
        if (v.type() == TypeId::kInt) {
          st.sum_int += v.AsInt();
        }
        st.sum_double += v.NumericAsDouble();
        st.saw_value = true;
        break;
      case AggKind::kMin:
        if (!st.saw_value || Value::Compare(v, st.min_max) < 0) st.min_max = v;
        st.saw_value = true;
        break;
      case AggKind::kMax:
        if (!st.saw_value || Value::Compare(v, st.min_max) > 0) st.min_max = v;
        st.saw_value = true;
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

Value HashAggregateOp::Finalize(const AggregateSpec& spec, const AggState& st) const {
  if (spec.distinct) {
    size_t n = st.distinct == nullptr ? 0 : st.distinct->size();
    switch (spec.kind) {
      case AggKind::kCount:
        return Value::Int(static_cast<int64_t>(n));
      case AggKind::kSum: {
        if (n == 0) return Value::Null();
        if (spec.result_type == TypeId::kInt) {
          int64_t sum = 0;
          for (const Value& v : *st.distinct) sum += v.AsInt();
          return Value::Int(sum);
        }
        double sum = 0;
        for (const Value& v : *st.distinct) sum += v.NumericAsDouble();
        return Value::Double(sum);
      }
      case AggKind::kAvg: {
        if (n == 0) return Value::Null();
        double sum = 0;
        for (const Value& v : *st.distinct) sum += v.NumericAsDouble();
        return Value::Double(sum / static_cast<double>(n));
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        if (n == 0) return Value::Null();
        const Value* best = nullptr;
        for (const Value& v : *st.distinct) {
          if (best == nullptr ||
              (spec.kind == AggKind::kMin ? Value::Compare(v, *best) < 0
                                          : Value::Compare(v, *best) > 0)) {
            best = &v;
          }
        }
        return *best;
      }
      default:
        return Value::Null();
    }
  }
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int(st.count);
    case AggKind::kSum:
      if (!st.saw_value) return Value::Null();
      if (spec.result_type == TypeId::kInt) return Value::Int(st.sum_int);
      return Value::Double(st.sum_double);
    case AggKind::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Double(st.sum_double / static_cast<double>(st.count));
    case AggKind::kMin:
    case AggKind::kMax:
      if (!st.saw_value) return Value::Null();
      return st.min_max;
  }
  return Value::Null();
}

Status HashAggregateOp::InitImpl() {
  SELTRIG_RETURN_IF_ERROR(child_->Init());
  results_.clear();
  cursor_ = 0;

  // Group rows; preserve first-seen order for deterministic output.
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index;
  std::vector<Row> group_keys;
  std::vector<std::vector<AggState>> group_states;

  // Single-int64-key fast path: raw open-addressing group index, plus one
  // out-of-table slot for the NULL group (GROUP BY collects NULLs together).
  // Degrades to the generic Row-keyed index the moment a key of any other
  // type appears — group_keys holds every key Row either way, so migration
  // is a rebuild of the index, not of the groups.
  bool int64_groups = node_.group_exprs.size() == 1;
  Int64HashIndex int_group_index;
  if (int64_groups) int_group_index.Reset(256);
  size_t null_group = SIZE_MAX;

  EvalContext ec = MakeEvalContext(nullptr);
  ColumnBatch batch;
  while (true) {
    Result<bool> has = child_->NextBatch(&batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t r = 0; r < batch.size(); ++r) {
      ec.BindBatch(&batch, r);
      Row key;
      key.reserve(node_.group_exprs.size());
      for (const auto& g : node_.group_exprs) {
        Result<Value> v = EvalExpr(*g, ec);
        SELTRIG_RETURN_IF_ERROR(v.status());
        key.push_back(std::move(*v));
      }
      size_t group;
      if (int64_groups && key[0].type() != TypeId::kInt &&
          key[0].type() != TypeId::kNull) {
        int64_groups = false;
        for (size_t g = 0; g < group_keys.size(); ++g) {
          group_index[group_keys[g]] = g;
        }
        int_group_index.Clear();
      }
      if (int64_groups) {
        if (key[0].is_null()) {
          if (null_group == SIZE_MAX) {
            null_group = group_keys.size();
            group_keys.push_back(std::move(key));
            group_states.emplace_back(node_.aggregates.size());
          }
          group = null_group;
        } else {
          auto [slot, inserted] = int_group_index.FindOrInsert(
              key[0].AsInt(), static_cast<uint32_t>(group_keys.size()));
          if (inserted) {
            group_keys.push_back(std::move(key));
            group_states.emplace_back(node_.aggregates.size());
          }
          group = slot;
        }
      } else {
        auto [it, inserted] = group_index.try_emplace(key, group_keys.size());
        if (inserted) {
          group_keys.push_back(std::move(key));
          group_states.emplace_back(node_.aggregates.size());
        }
        group = it->second;
      }
      SELTRIG_RETURN_IF_ERROR(Accumulate(&group_states[group], ec));
    }
  }

  // Scalar aggregation over an empty input still yields one row.
  if (group_keys.empty() && node_.group_exprs.empty()) {
    group_keys.emplace_back();
    group_states.emplace_back(node_.aggregates.size());
  }

  results_.reserve(group_keys.size());
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row out = group_keys[g];
    out.reserve(out.size() + node_.aggregates.size());
    for (size_t i = 0; i < node_.aggregates.size(); ++i) {
      out.push_back(Finalize(node_.aggregates[i], group_states[g][i]));
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::NextBatchImpl(ColumnBatch* out) {
  if (cursor_ >= results_.size()) return false;
  out->ResetOwned(results_[cursor_].size());
  size_t end = std::min(results_.size(), cursor_ + batch_capacity_);
  for (; cursor_ < end; ++cursor_) {
    out->AppendRow(std::move(results_[cursor_]));
  }
  return true;
}

// --- Sort ----------------------------------------------------------------

SortOp::SortOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
               const LogicalSort& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string SortOp::DebugName() const { return node_.Describe(); }

Status SortOp::InitImpl() {
  SELTRIG_RETURN_IF_ERROR(child_->Init());
  rows_.clear();
  cursor_ = 0;
  ColumnBatch batch;
  while (true) {
    Result<bool> has = child_->NextBatch(&batch);
    SELTRIG_RETURN_IF_ERROR(has.status());
    if (!*has) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      rows_.emplace_back();
      batch.MoveRowTo(i, &rows_.back());
    }
  }
  // Precompute key values per row to keep the comparator total and cheap.
  size_t nkeys = node_.keys.size();
  EvalContext ec = MakeEvalContext(nullptr);
  std::vector<std::vector<Value>> keys(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    ec.BindRow(&rows_[r]);
    keys[r].reserve(nkeys);
    for (const SortKey& k : node_.keys) {
      Result<Value> v = EvalExpr(*k.expr, ec);
      SELTRIG_RETURN_IF_ERROR(v.status());
      keys[r].push_back(std::move(*v));
    }
  }
  std::vector<size_t> order(rows_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < nkeys; ++k) {
      int c = Value::Compare(keys[a][k], keys[b][k]);
      if (c != 0) return node_.keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (size_t i : order) sorted.push_back(std::move(rows_[i]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOp::NextBatchImpl(ColumnBatch* out) {
  if (cursor_ >= rows_.size()) return false;
  out->ResetOwned(rows_[cursor_].size());
  size_t end = std::min(rows_.size(), cursor_ + batch_capacity_);
  for (; cursor_ < end; ++cursor_) {
    out->AppendRow(std::move(rows_[cursor_]));
  }
  return true;
}

// --- Limit ---------------------------------------------------------------

LimitOp::LimitOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                 const LogicalLimit& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string LimitOp::DebugName() const { return node_.Describe(); }

Status LimitOp::InitImpl() {
  produced_ = 0;
  skipped_ = 0;
  return child_->Init();
}

Result<bool> LimitOp::NextBatchImpl(ColumnBatch* out) {
  if (node_.limit >= 0 && produced_ >= node_.limit) return false;
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  if (skipped_ < node_.offset) {
    size_t drop = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(out->size()), node_.offset - skipped_));
    out->DropFrontLogical(drop);
    skipped_ += static_cast<int64_t>(drop);
  }
  if (node_.limit >= 0) {
    int64_t remaining = node_.limit - produced_;
    if (static_cast<int64_t>(out->size()) > remaining) {
      out->TruncateLogical(static_cast<size_t>(remaining));
    }
  }
  produced_ += static_cast<int64_t>(out->size());
  return true;
}

// --- Distinct --------------------------------------------------------------

DistinctOp::DistinctOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                       OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string DistinctOp::DebugName() const { return "Distinct"; }

Status DistinctOp::InitImpl() {
  seen_.clear();
  return child_->Init();
}

Result<bool> DistinctOp::NextBatchImpl(ColumnBatch* out) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  size_t n = out->size();
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->MaterializeRow(i, &row_scratch_);
    if (seen_.insert(row_scratch_).second) {
      keep.push_back(static_cast<uint32_t>(out->PhysicalIndex(i)));
    }
  }
  if (keep.size() != n) out->SetSelection(std::move(keep));
  return true;
}

// --- Values ----------------------------------------------------------------

ValuesOp::ValuesOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                   const LogicalValues& node)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node) {}

std::string ValuesOp::DebugName() const { return node_.Describe(); }

Status ValuesOp::InitImpl() {
  cursor_ = 0;
  eval_ctx_ = MakeEvalContext(nullptr);
  return Status::OK();
}

Result<bool> ValuesOp::NextBatchImpl(ColumnBatch* out) {
  if (cursor_ >= node_.rows.size()) return false;
  out->ResetOwned(node_.rows[cursor_].size());
  size_t end = std::min(node_.rows.size(), cursor_ + batch_capacity_);
  for (; cursor_ < end; ++cursor_) {
    const auto& exprs = node_.rows[cursor_];
    row_scratch_.clear();
    row_scratch_.reserve(exprs.size());
    eval_ctx_.BindRow(nullptr);
    for (const auto& e : exprs) {
      SELTRIG_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, eval_ctx_));
      row_scratch_.push_back(std::move(v));
    }
    out->AppendRow(std::move(row_scratch_));
  }
  return true;
}

// --- PhysicalAuditOp ---------------------------------------------------------

namespace {

// Bloom pre-screen over the raw key column, hashing typed cells directly —
// no Value construction per row. The per-type hashes mirror Value::Hash
// exactly (ints hash through double so Int(2) and Double(2.0) screen
// identically; dates/bools hash their int64 slot), so the screen's one-sided
// error is unchanged from the generic path. Strings and degraded columns
// fall back to per-cell Values.
bool AnyKeyMaybeInScreen(const ColumnBatch& batch, const ColumnVector& key_col,
                         const BloomFilter& screen) {
  const size_t n = batch.size();
  const TableColumn* view = key_col.view();
  if (view != nullptr && (view->rep() == TableColumn::Rep::kInt64 ||
                          view->rep() == TableColumn::Rep::kDouble)) {
    const NullBits& nulls = view->nulls();
    const bool has_nulls = nulls.any();
    if (view->rep() == TableColumn::Rep::kInt64) {
      const int64_t* data = view->ints();
      const bool hash_as_double = view->type() == TypeId::kInt;
      for (size_t i = 0; i < n; ++i) {
        const size_t phys = batch.PhysicalIndex(i);
        if (has_nulls && nulls.Test(phys)) continue;
        const size_t h =
            hash_as_double
                ? std::hash<double>{}(static_cast<double>(data[phys]))
                : std::hash<int64_t>{}(data[phys]);
        if (screen.MayContain(static_cast<uint64_t>(h))) return true;
      }
      return false;
    }
    const double* data = view->doubles();
    for (size_t i = 0; i < n; ++i) {
      const size_t phys = batch.PhysicalIndex(i);
      if (has_nulls && nulls.Test(phys)) continue;
      if (screen.MayContain(
              static_cast<uint64_t>(std::hash<double>{}(data[phys])))) {
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < n; ++i) {
    const Value key = key_col.GetValue(batch.PhysicalIndex(i));
    if (!key.is_null() &&
        screen.MayContain(static_cast<uint64_t>(key.Hash()))) {
      return true;
    }
  }
  return false;
}

}  // namespace

PhysicalAuditOp::PhysicalAuditOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                                 const LogicalAudit& node, OperatorPtr child)
    : PhysicalOperator(ctx, std::move(outer_rows)), node_(node), child_(std::move(child)) {
  profile_children_ = {child_.get()};
}

std::string PhysicalAuditOp::DebugName() const { return node_.Describe(); }

Status PhysicalAuditOp::InitImpl() {
  eval_ctx_ = MakeEvalContext(nullptr);
  return child_->Init();
}

Status PhysicalAuditOp::RecordHit(const Value& key) {
  SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kAuditRecord));
  ctx_->stats().audit_probe_hits++;
  if (!ctx_->accessed()->GetOrCreate(node_.audit_name).Record(key) &&
      ctx_->accessed()->overflow_policy() == AccessedOverflowPolicy::kFail) {
    return Status::ResourceExhausted(
        "ACCESSED cardinality cap exceeded for audit expression '" +
        node_.audit_name + "'");
  }
  return Status::OK();
}

Result<bool> PhysicalAuditOp::NextBatchImpl(ColumnBatch* out) {
  SELTRIG_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
  if (!has) return false;
  size_t n = out->size();
  ctx_->stats().rows_through_audit_ops += n;

  AccessedStateRegistry* registry = ctx_->accessed();
  if (registry == nullptr || node_.key_column < 0 || n == 0) {
    return true;  // pass-through: the audit operator is a no-op for the query
  }
  const int kc = node_.key_column;
  if (kc >= static_cast<int>(out->num_columns())) return true;
  const ColumnVector& key_col = out->column(static_cast<size_t>(kc));

  // Bloom pre-screen (exact ID-view probes only): one pass over the batch's
  // key column against the view's summary. A clean batch — the common case
  // for selective queries — skips the exact probes and the ACCESSED
  // bookkeeping entirely; the filter's one-sided error keeps ACCESSED exact.
  if (node_.id_view != nullptr && node_.bloom == nullptr) {
    const BloomFilter* screen = node_.id_view->Screen();
    if (screen != nullptr && !AnyKeyMaybeInScreen(*out, key_col, *screen)) {
      ctx_->stats().audit_batches_prescreened++;
      return true;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    const Value key = key_col.GetValue(out->PhysicalIndex(i));
    if (key.is_null()) continue;
    bool hit;
    if (node_.bloom != nullptr) {
      hit = node_.bloom->MayContain(static_cast<uint64_t>(key.Hash()));
    } else if (node_.id_view != nullptr) {
      hit = node_.id_view->Contains(key);
    } else if (node_.fallback_predicate != nullptr) {
      eval_ctx_.BindBatch(out, i);
      SELTRIG_ASSIGN_OR_RETURN(hit,
                               EvalPredicate(*node_.fallback_predicate, eval_ctx_));
    } else {
      hit = false;
    }
    if (hit) {
      SELTRIG_RETURN_IF_ERROR(RecordHit(key));
    }
  }
  return true;
}

}  // namespace seltrig
