#include "exec/row_batch.h"

#include "exec/operators.h"

namespace seltrig {

Result<const Row*> BatchRowReader::Next() {
  while (!done_) {
    if (pos_ < batch_.size()) return &batch_.row(pos_++);
    SELTRIG_ASSIGN_OR_RETURN(bool has, source_->NextBatch(&batch_));
    pos_ = 0;
    if (!has) done_ = true;
  }
  return nullptr;
}

}  // namespace seltrig
