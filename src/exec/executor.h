// Executor: lowers logical plans to physical operators and runs them.

#ifndef SELTRIG_EXEC_EXECUTOR_H_
#define SELTRIG_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/operators.h"
#include "plan/logical_plan.h"
#include "types/schema.h"
#include "types/value.h"

namespace seltrig {

// Materialized result of a statement. `schema`/`rows` contain only visible
// columns (hidden helper columns are stripped).
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  int64_t affected_rows = 0;

  // Rendering helper for examples and debugging.
  std::string ToString(size_t max_rows = 50) const;
};

class Executor {
 public:
  // Installs itself as the context's subquery runner for the duration of its
  // lifetime (subquery expressions re-enter the executor).
  explicit Executor(ExecContext* ctx);

  // Runs `plan` to completion and returns all rows (hidden columns included).
  // `outer_rows` is the correlation stack for subquery plans.
  Result<std::vector<Row>> ExecutePlan(const LogicalOperator& plan,
                                       const std::vector<const Row*>& outer_rows);

  // Runs a top-level query, stripping hidden columns. If `max_rows` >= 0,
  // stops after that many rows — modeling a client that reads a result
  // prefix and aborts (SELECT triggers still see everything that flowed
  // through the plan up to that point).
  Result<QueryResult> ExecuteQuery(const LogicalOperator& plan, int64_t max_rows = -1);

  // Builds the physical operator tree without running it (benchmarks).
  Result<OperatorPtr> Build(const LogicalOperator& node,
                            const std::vector<const Row*>& outer_rows);

 private:
  // `spine_cap` caps the batch capacity of the created operator and its
  // lazy-spine descendants (0 = uncapped). Early-stopping consumers (LIMIT,
  // max_rows) cap their subtree's spine at the row budget so scans stay lazy,
  // and pin it to 1 when an audit operator on the spine must observe exact
  // row-at-a-time flow. See LazySpineHasAudit in the .cc.
  Result<OperatorPtr> BuildNode(const LogicalOperator& node,
                                const std::vector<const Row*>& outer_rows,
                                size_t spine_cap);

  // Runs the plan-invariant linter (plan/plan_validator.h) over the built
  // tree: always in debug builds, behind ExecContext::validate_plans() in
  // release. Placement checks apply when `plan` is the context's validation
  // root; other plans (subqueries) get the universal checks only.
  Status MaybeValidatePlan(const PhysicalOperator& root,
                           const LogicalOperator& plan, int64_t max_rows,
                           const std::vector<const Row*>& outer_rows);

  ExecContext* ctx_;
};

}  // namespace seltrig

#endif  // SELTRIG_EXEC_EXECUTOR_H_
