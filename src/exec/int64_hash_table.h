// Int64HashIndex: open-addressing hash index from raw int64 keys to caller-
// assigned uint32 payload slots. This is the specialized hash table behind
// the single-int64-key fast paths in HashJoinOp (build-side bucket lists) and
// HashAggregateOp (group index): one linear-probe array of (key, slot) pairs,
// no per-entry allocation, no Value construction on the probe path.
//
// The index stores only keys the caller has proven non-null; NULL handling
// (SQL joins never match NULL keys, GROUP BY collects NULLs into one group)
// stays with the caller. Callers degrade to the generic Row-keyed tables the
// first time a non-integer key appears — ForEach exists to migrate the
// entries across. Single-threaded by design: each operator owns its index
// outright (morsel workers build per-worker operators), so there is nothing
// to annotate for the thread-safety analysis.

#ifndef SELTRIG_EXEC_INT64_HASH_TABLE_H_
#define SELTRIG_EXEC_INT64_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace seltrig {

class Int64HashIndex {
 public:
  static constexpr uint32_t kNone = UINT32_MAX;

  // Clears the index and sizes it for `expected` distinct keys (load factor
  // is kept <= 1/2; growth doubles).
  void Reset(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    keys_.assign(cap, 0);
    slots_.assign(cap, kNone);
    mask_ = cap - 1;
    size_ = 0;
  }

  // Drops all storage (after migrating to a generic table).
  void Clear() {
    keys_.clear();
    keys_.shrink_to_fit();
    slots_.clear();
    slots_.shrink_to_fit();
    mask_ = 0;
    size_ = 0;
  }

  size_t size() const { return size_; }

  // Payload slot for `key`, or kNone if absent.
  uint32_t Find(int64_t key) const {
    if (slots_.empty()) return kNone;
    size_t i = Mix(key) & mask_;
    while (slots_[i] != kNone) {
      if (keys_[i] == key) return slots_[i];
      i = (i + 1) & mask_;
    }
    return kNone;
  }

  // Existing slot for `key`, or inserts it with `slot_if_new`. Returns
  // {slot, inserted}.
  std::pair<uint32_t, bool> FindOrInsert(int64_t key, uint32_t slot_if_new) {
    if (slots_.empty()) Reset(16);
    if ((size_ + 1) * 2 > mask_ + 1) Grow();
    size_t i = Mix(key) & mask_;
    while (slots_[i] != kNone) {
      if (keys_[i] == key) return {slots_[i], false};
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    slots_[i] = slot_if_new;
    ++size_;
    return {slot_if_new, true};
  }

  // Visits every (key, slot) pair in table order (fallback migration).
  template <typename Fn>
  void ForEach(const Fn& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] != kNone) fn(keys_[i], slots_[i]);
    }
  }

 private:
  // splitmix64 finalizer: full-avalanche mix so dense key ranges (TPC-H
  // surrogate keys) spread across the table instead of clustering.
  static size_t Mix(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  void Grow() {
    std::vector<int64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_slots = std::move(slots_);
    size_t cap = (mask_ + 1) * 2;
    keys_.assign(cap, 0);
    slots_.assign(cap, kNone);
    mask_ = cap - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_slots[i] == kNone) continue;
      size_t j = Mix(old_keys[i]) & mask_;
      while (slots_[j] != kNone) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      slots_[j] = old_slots[i];
    }
  }

  std::vector<int64_t> keys_;
  std::vector<uint32_t> slots_;  // kNone = empty probe slot
  size_t mask_ = 0;
  size_t size_ = 0;
};

// Converts a probe-side key Value to the raw int64 domain of an all-integer
// build side. Returns false when nothing in that domain can compare equal to
// `v` (strings/dates/bools are cross-type-incomparable with ints; a
// non-integral or out-of-range double widens unequal to every int64) — the
// probe then has no matches by construction, mirroring Value::Compare.
inline bool Int64ProbeKey(const Value& v, int64_t* out) {
  if (v.type() == TypeId::kInt) {
    *out = v.AsInt();
    return true;
  }
  if (v.type() == TypeId::kDouble) {
    double d = v.AsDouble();
    if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
      return false;
    }
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) != d) return false;
    *out = i;
    return true;
  }
  return false;
}

}  // namespace seltrig

#endif  // SELTRIG_EXEC_INT64_HASH_TABLE_H_
