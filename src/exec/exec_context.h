// ExecContext: per-statement execution state shared by all operators of a
// query, including operators of nested subquery plans.

#ifndef SELTRIG_EXEC_EXEC_CONTEXT_H_
#define SELTRIG_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace seltrig {

class Catalog;
class Expr;
class LogicalOperator;
class AccessedStateRegistry;  // audit/accessed_state.h
struct PlanValidation;        // plan/plan_validator.h

// Who is running the statement, what the statement text is, and what "now"
// is. The clock is injectable so tests and examples get deterministic logs.
struct SessionContext {
  std::string user = "dba";
  // The SQL text reported by SQL_TEXT(). During trigger-action execution this
  // remains the *audited* statement's text, not the action's.
  std::string sql_text;
  // Wall-clock string reported by NOW().
  std::string now = "2026-01-01 00:00:00";
  // Date reported by CURRENT_DATE(), days since epoch.
  int32_t current_date = 0;
};

// Hides one row from a table scan: rows of `table` whose column `column`
// equals `value` are skipped. Used by the offline auditor to evaluate
// Q(D - t) without mutating the database (Definition 2.5).
struct ScanExclusion {
  std::string table;  // lower-case table name
  int column = -1;    // column index in the table schema
  Value value;
};

// Result of materializing a subquery once; cached for uncorrelated
// subqueries. For IN probes a value set over the first output column is built
// lazily.
struct MaterializedSubquery {
  std::vector<Row> rows;
  bool set_built = false;
  bool has_null = false;
  std::unordered_set<Value, ValueHash, ValueEq> value_set;
};

// Execution statistics, used by benchmarks and tests.
struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_through_audit_ops = 0;
  uint64_t audit_probe_hits = 0;
  uint64_t subquery_executions = 0;
  // Batches whose exact audit probes were skipped because the ID view's
  // Bloom pre-screen proved no row could contain a sensitive ID.
  uint64_t audit_batches_prescreened = 0;
};

class ExecContext {
 public:
  ExecContext(Catalog* catalog, SessionContext* session)
      : catalog_(catalog), session_(session) {}

  Catalog* catalog() const { return catalog_; }
  SessionContext* session() const { return session_; }

  // --- Offline-auditor exclusions ------------------------------------------
  const std::vector<ScanExclusion>& exclusions() const { return exclusions_; }
  void AddExclusion(ScanExclusion e) { exclusions_.push_back(std::move(e)); }
  void ClearExclusions() { exclusions_.clear(); }

  // --- Audit state ----------------------------------------------------------
  // Registry the physical audit operators write accessed IDs into. Owned by
  // the caller (Database); may be null when no audit instrumentation is
  // active.
  AccessedStateRegistry* accessed() const { return accessed_; }
  void set_accessed(AccessedStateRegistry* registry) { accessed_ = registry; }

  // --- Subquery execution -----------------------------------------------
  // Installed by the Executor: runs `plan` to completion with the given outer
  // row stack and returns the produced rows. The indirection breaks the
  // dependency cycle between the evaluator and the executor.
  using SubqueryRunner = std::function<Result<std::vector<Row>>(
      const LogicalOperator& plan, const std::vector<const Row*>& outer_rows)>;

  void set_subquery_runner(SubqueryRunner runner) { subquery_runner_ = std::move(runner); }
  const SubqueryRunner& subquery_runner() const { return subquery_runner_; }

  // Cache for uncorrelated subqueries, keyed by expression identity.
  std::unordered_map<const Expr*, MaterializedSubquery>& subquery_cache() {
    return subquery_cache_;
  }

  ExecStats& stats() { return stats_; }

  // --- Vectorized execution -------------------------------------------------
  // Logical rows per batch flowing through the operator pipeline
  // (ExecOptions::batch_size). The executor pins individual operators to
  // capacity 1 where exact row-at-a-time flow is required.
  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }

  // Columnar execution (ExecOptions::columnar, default on): scans bind
  // zero-copy views over table storage and predicates run typed column
  // kernels. Off = the row-pipeline escape hatch: scans materialize generic
  // owned batches, every operator downstream behaves identically either way.
  bool columnar() const { return columnar_; }
  void set_columnar(bool on) { columnar_ = on; }

  // --- Intra-query parallelism ----------------------------------------------
  // Worker threads for eligible scan spines (ExecOptions::num_threads). 1 =
  // serial. The executor decides eligibility per spine (see
  // ParallelSpineScan in exec/gather.h); ineligible plans run serially at any
  // setting.
  int num_threads() const { return num_threads_; }
  void set_num_threads(int n) { num_threads_ = n < 1 ? 1 : n; }

  // --- Plan validation ------------------------------------------------------
  // Placement expectations for the statement's top-level plan and the plan
  // node they describe (plan/plan_validator.h). Subquery plans executed
  // through this context get only the validator's universal checks. Owned by
  // the caller (Session::RunSelectQuery); may be null.
  const PlanValidation* plan_validation() const { return plan_validation_; }
  const LogicalOperator* validation_root() const { return validation_root_; }
  void set_plan_validation(const PlanValidation* validation,
                           const LogicalOperator* root) {
    plan_validation_ = validation;
    validation_root_ = root;
  }

  // Run the plan validator in release builds too (ExecOptions::validate_plans;
  // debug builds always validate).
  bool validate_plans() const { return validate_plans_; }
  void set_validate_plans(bool on) { validate_plans_ = on; }

  // --- Profiling ------------------------------------------------------------
  // When enabled, operators sample wall-clock time per Init/NextBatch and the
  // executor appends an annotated operator tree to profile_text() after each
  // top-level query.
  bool collect_profile() const { return collect_profile_; }
  void set_collect_profile(bool on) { collect_profile_ = on; }
  std::string& profile_text() { return profile_text_; }

 private:
  Catalog* catalog_;
  SessionContext* session_;
  std::vector<ScanExclusion> exclusions_;
  AccessedStateRegistry* accessed_ = nullptr;
  SubqueryRunner subquery_runner_;
  std::unordered_map<const Expr*, MaterializedSubquery> subquery_cache_;
  ExecStats stats_;
  size_t batch_size_ = 1024;
  bool columnar_ = true;
  int num_threads_ = 1;
  const PlanValidation* plan_validation_ = nullptr;
  const LogicalOperator* validation_root_ = nullptr;
  bool validate_plans_ = false;
  bool collect_profile_ = false;
  std::string profile_text_;
};

}  // namespace seltrig

#endif  // SELTRIG_EXEC_EXEC_CONTEXT_H_
