// ColumnBatch: the unit of data flow in the vectorized execution pipeline —
// a set of ColumnVectors (exec/column_vector.h) plus an optional selection
// vector over physical row indexes.
//
// Producers either bind zero-copy table views (scans: physical indexes are
// table slot ids, the selection holds the live slots) or append rows into
// owned columns (joins, aggregates, sorts, VALUES). In-place operators
// (filter, audit, limit, distinct) narrow the *selection* without touching
// column storage. Consumers only ever see the logical view: `size()` logical
// rows addressed through GetValue(col, i) or the row-materialization shim.
//
// Column storage is retained across Clear()/ResetOwned() calls, so a batch
// that is refilled every iteration reaches a steady state with zero heap
// allocation — the same contract RowBatch (exec/row_batch.h) had.
//
// Appending is only legal while no selection is installed: an append under a
// selection would silently corrupt the logical view, so the producer API
// asserts against it in debug builds.
//
// Thread confinement: a batch lives on one thread (a serial statement or a
// single morsel worker) for its whole lifetime — no locks, no annotations.
// View bindings are safe across workers because the statement holds the
// engine's shared storage lock for its full duration (docs/STATIC_ANALYSIS.md).

#ifndef SELTRIG_EXEC_COLUMN_BATCH_H_
#define SELTRIG_EXEC_COLUMN_BATCH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "exec/column_vector.h"
#include "types/value.h"

namespace seltrig {

class ColumnBatch {
 public:
  // Default logical capacity of the pipeline (ExecOptions::batch_size).
  static constexpr size_t kDefaultCapacity = 1024;

  ColumnBatch() = default;

  ColumnBatch(const ColumnBatch&) = delete;
  ColumnBatch& operator=(const ColumnBatch&) = delete;

  // --- Logical (selected) view ----------------------------------------------
  size_t size() const { return has_selection_ ? selection_.size() : count_; }
  bool empty() const { return size() == 0; }
  size_t num_columns() const { return cols_.size(); }

  // Physical index backing logical row `i` (stable across selection changes;
  // used to build narrowed selections).
  size_t PhysicalIndex(size_t i) const {
    return has_selection_ ? selection_[i] : i;
  }

  const ColumnVector& column(size_t c) const { return cols_[c]; }
  ColumnVector& mutable_column(size_t c) { return cols_[c]; }

  // Cell of logical row `i`, column `c` — the exact stored Value.
  Value GetValue(size_t c, size_t i) const {
    return cols_[c].GetValue(PhysicalIndex(i));
  }

  // --- Row-materialization shim ---------------------------------------------
  // Gathers logical row `i` into *out (cleared first). Cells are the exact
  // stored Values, so consumers that need full row images (joins, sorts, DML,
  // the executor's result collection) are independent of the columnar layout.
  void MaterializeRow(size_t i, Row* out) const {
    out->clear();
    out->reserve(cols_.size());
    const size_t phys = PhysicalIndex(i);
    for (const ColumnVector& col : cols_) col.AppendValueTo(phys, out);
  }
  Row GetRow(size_t i) const {
    Row r;
    MaterializeRow(i, &r);
    return r;
  }
  // Like MaterializeRow, but moves cells out of owned columns (view cells are
  // copied; table storage is never mutated through a batch).
  void MoveRowTo(size_t i, Row* out) {
    out->clear();
    out->reserve(cols_.size());
    const size_t phys = PhysicalIndex(i);
    for (ColumnVector& col : cols_) col.MoveValueTo(phys, out);
  }

  // --- Producer API: owned mode ---------------------------------------------
  // Empties the batch and configures `width` owned columns (storage reused).
  void ResetOwned(size_t width) {
    Clear();
    if (cols_.size() != width) cols_.resize(width);
    for (ColumnVector& col : cols_) col.ResetOwned();
  }

  // Appends one row by scattering its cells across the owned columns.
  // Illegal once a selection is installed (would corrupt the logical view).
  void AppendRow(const Row& src) {
    assert(!has_selection_ && "AppendRow under an installed selection");
    assert(src.size() == cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].Append(src[c]);
    ++count_;
  }
  void AppendRow(Row&& src) {
    assert(!has_selection_ && "AppendRow under an installed selection");
    assert(src.size() == cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].Append(std::move(src[c]));
    ++count_;
  }

  // Join emit: appends the concatenation of `left`'s logical row `li` and
  // `right` directly, cell by cell (no intermediate Row).
  void AppendConcat(const ColumnBatch& left, size_t li, const Row& right) {
    assert(!has_selection_ && "AppendRow under an installed selection");
    const size_t lw = left.num_columns();
    assert(lw + right.size() == cols_.size());
    const size_t phys = left.PhysicalIndex(li);
    for (size_t c = 0; c < lw; ++c) {
      cols_[c].Append(left.column(c).GetValue(phys));
    }
    for (size_t c = 0; c < right.size(); ++c) cols_[lw + c].Append(right[c]);
    ++count_;
  }
  // Left-outer pad: `left` row `li` concatenated with `pad` NULLs.
  void AppendConcatPad(const ColumnBatch& left, size_t li, size_t pad) {
    assert(!has_selection_ && "AppendRow under an installed selection");
    const size_t lw = left.num_columns();
    assert(lw + pad == cols_.size());
    const size_t phys = left.PhysicalIndex(li);
    for (size_t c = 0; c < lw; ++c) {
      cols_[c].Append(left.column(c).GetValue(phys));
    }
    for (size_t c = 0; c < pad; ++c) cols_[lw + c].Append(Value::Null());
    ++count_;
  }

  // Removes the most recently appended row (join residual rejection).
  // Illegal once a selection is installed.
  void PopRow() {
    assert(!has_selection_ && "PopRow under an installed selection");
    assert(count_ > 0);
    for (ColumnVector& col : cols_) col.PopBack();
    --count_;
  }

  // Bulk fill: swaps `src` (one equal-length Value vector per column) into
  // the owned columns; the displaced storage rides back in *src for reuse.
  void AdoptOwnedColumns(std::vector<std::vector<Value>>* src, size_t n) {
    ResetOwned(src->size());
    for (size_t c = 0; c < cols_.size(); ++c) {
      assert((*src)[c].size() == n);
      cols_[c].SwapValues(&(*src)[c]);
    }
    count_ = n;
  }

  // --- Producer API: view mode ----------------------------------------------
  // Empties the batch and sizes it for `width` view columns; follow with
  // BindViewColumn per column and AdoptSelection for the slot ids.
  void BeginViews(size_t width) {
    Clear();
    if (cols_.size() != width) cols_.resize(width);
  }
  void BindViewColumn(size_t c, const TableColumn* col) {
    cols_[c].BindView(col);
  }
  // Keeps only the view columns named by `projection`, in order (view
  // bindings are pointer-cheap; owned columns must not be projected this way).
  void ApplyProjection(const std::vector<int>& projection);

  // --- Selection ------------------------------------------------------------
  bool has_selection() const { return has_selection_; }

  // Installs a selection of physical indexes (ascending). An in-place filter
  // builds the narrowed vector with PhysicalIndex() and installs it here.
  void SetSelection(std::vector<uint32_t> selection) {
    selection_ = std::move(selection);
    has_selection_ = true;
  }
  // Swap-installs the selection (scan hot path: the displaced storage rides
  // back in *selection, so the scan's slot buffer and the batch's selection
  // ping-pong with zero steady-state allocation).
  void AdoptSelection(std::vector<uint32_t>* selection) {
    selection_.swap(*selection);
    has_selection_ = true;
  }

  // Keeps only the first `n` logical rows.
  void TruncateLogical(size_t n) {
    if (n >= size()) return;
    if (has_selection_) {
      selection_.resize(n);
    } else {
      count_ = n;
    }
  }

  // Drops the first `n` logical rows.
  void DropFrontLogical(size_t n);

  // Empties the batch. Column storage and mode are reconfigured by the next
  // producer fill (ResetOwned / BeginViews).
  void Clear() {
    count_ = 0;
    has_selection_ = false;
    selection_.clear();
  }

 private:
  std::vector<ColumnVector> cols_;
  size_t count_ = 0;  // physical rows in owned columns; 0 in view mode
  std::vector<uint32_t> selection_;
  bool has_selection_ = false;
  // Scratch for ApplyProjection (storage reuse).
  std::vector<ColumnVector> proj_scratch_;
};

}  // namespace seltrig

#endif  // SELTRIG_EXEC_COLUMN_BATCH_H_
