// Volcano-style physical operators. Each operator is built from a logical
// node by the Executor and pulls rows from its children via Next().

#ifndef SELTRIG_EXEC_OPERATORS_H_
#define SELTRIG_EXEC_OPERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"
#include "storage/table.h"
#include "types/value.h"

namespace seltrig {

class PhysicalOperator {
 public:
  PhysicalOperator(ExecContext* ctx, std::vector<const Row*> outer_rows)
      : ctx_(ctx), outer_rows_(std::move(outer_rows)) {}
  virtual ~PhysicalOperator();

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  // Prepares the operator (and its children) for iteration.
  virtual Status Init() = 0;
  // Produces the next row into *row; returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;

 protected:
  // Evaluation context for expressions over `row`.
  EvalContext MakeEvalContext(const Row* row) const {
    EvalContext ec;
    ec.row = row;
    ec.outer_rows = outer_rows_;
    ec.exec = ctx_;
    return ec;
  }

  ExecContext* ctx_;
  std::vector<const Row*> outer_rows_;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

// Scan over a base table or virtual relation, applying the pushed
// single-table filter and the context's scan exclusions (offline auditing).
// When the filter contains an equality conjunct `column = <row-independent
// expression>` (a constant, or a correlated outer reference), the scan probes
// a lazily-built secondary hash index instead of reading every row -- the
// index-lookup path that makes correlated EXISTS subqueries (e.g. TPC-H Q22)
// tractable.
class SeqScanOp : public PhysicalOperator {
 public:
  SeqScanOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
            const LogicalScan& node, Table* table);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  const LogicalScan& node_;
  Table* table_;  // null for virtual scans
  size_t cursor_ = 0;
  // Exclusions relevant to this scan, resolved to column indexes.
  std::vector<std::pair<int, Value>> exclusions_;
  // Index-lookup mode: the candidate row ids to examine.
  bool index_mode_ = false;
  std::vector<size_t> candidates_;
};

class FilterOp : public PhysicalOperator {
 public:
  FilterOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
           const LogicalFilter& node, OperatorPtr child);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  const LogicalFilter& node_;
  OperatorPtr child_;
};

class ProjectOp : public PhysicalOperator {
 public:
  ProjectOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
            const LogicalProject& node, OperatorPtr child);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  const LogicalProject& node_;
  OperatorPtr child_;
  Row input_;
};

// Hash join over extracted equi-key conjuncts, with residual predicate.
// Builds on the right child, probes with the left. Supports inner and left
// outer joins.
class HashJoinOp : public PhysicalOperator {
 public:
  HashJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
             const LogicalJoin& node, OperatorPtr left, OperatorPtr right,
             std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
             ExprPtr residual);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  Result<bool> AdvanceLeft();

  const LogicalJoin& node_;
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;   // bound against the left child
  std::vector<ExprPtr> right_keys_;  // bound against the right child alone
  ExprPtr residual_;                 // over the concatenated row; nullable

  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> hash_table_;
  size_t right_width_ = 0;
  Row left_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_idx_ = 0;
  bool left_matched_ = false;
  bool left_valid_ = false;
};

// Nested-loop join for non-equi conditions and cross joins; materializes the
// right child once. Supports inner, left outer, and cross joins.
class NLJoinOp : public PhysicalOperator {
 public:
  NLJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
           const LogicalJoin& node, OperatorPtr left, OperatorPtr right);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  const LogicalJoin& node_;
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Row> right_rows_;
  size_t right_width_ = 0;
  Row left_row_;
  size_t right_idx_ = 0;
  bool left_matched_ = false;
  bool left_valid_ = false;
};

class HashAggregateOp : public PhysicalOperator {
 public:
  HashAggregateOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                  const LogicalAggregate& node, OperatorPtr child);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  struct AggState {
    int64_t count = 0;
    double sum_double = 0.0;
    int64_t sum_int = 0;
    bool saw_value = false;
    Value min_max;
    std::unique_ptr<std::unordered_set<Value, ValueHash, ValueEq>> distinct;
  };

  Status Accumulate(std::vector<AggState>* states, const Row& input);
  Value Finalize(const AggregateSpec& spec, const AggState& state) const;

  const LogicalAggregate& node_;
  OperatorPtr child_;
  std::vector<Row> results_;
  size_t cursor_ = 0;
};

class SortOp : public PhysicalOperator {
 public:
  SortOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
         const LogicalSort& node, OperatorPtr child);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  const LogicalSort& node_;
  OperatorPtr child_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

class LimitOp : public PhysicalOperator {
 public:
  LimitOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
          const LogicalLimit& node, OperatorPtr child);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  const LogicalLimit& node_;
  OperatorPtr child_;
  int64_t produced_ = 0;
  int64_t skipped_ = 0;
};

class DistinctOp : public PhysicalOperator {
 public:
  DistinctOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
             OperatorPtr child);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  OperatorPtr child_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
};

class ValuesOp : public PhysicalOperator {
 public:
  ValuesOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
           const LogicalValues& node);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  const LogicalValues& node_;
  size_t cursor_ = 0;
};

// The physical audit operator (Section IV-A2): a pass-through "data viewer"
// that probes the sensitive-ID hash set with the partition-by column of each
// row and records hits into the ACCESSED state. When built without an ID view
// it evaluates the audit expression's predicate directly (the naive design
// ablated in the paper).
class PhysicalAuditOp : public PhysicalOperator {
 public:
  PhysicalAuditOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                  const LogicalAudit& node, OperatorPtr child);
  Status Init() override;
  Result<bool> Next(Row* row) override;

 private:
  const LogicalAudit& node_;
  OperatorPtr child_;
};

}  // namespace seltrig

#endif  // SELTRIG_EXEC_OPERATORS_H_
