// Vectorized physical operators. Each operator is built from a logical node
// by the Executor and pulls *batches* of rows from its children via
// NextBatch(); per-tuple virtual-call, evaluation-context, and audit-probe
// costs are amortized over ExecOptions::batch_size rows.
//
// Contract: NextBatch(out) returns false at end of stream; a true return
// means the stream continues and `out` holds zero or more logical rows
// (in-place operators like Filter may narrow a child batch to emptiness —
// callers keep pulling until false). Every operator is batch-to-batch; the
// row-at-a-time migration seam (RowOperator/RowAtATimeAdapter) is gone.

#ifndef SELTRIG_EXEC_OPERATORS_H_
#define SELTRIG_EXEC_OPERATORS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/column_batch.h"
#include "exec/int64_hash_table.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"
#include "storage/table.h"
#include "types/value.h"

namespace seltrig {

// Per-operator runtime counters, surfaced by the shell's `.profile on` as an
// EXPLAIN-ANALYZE-style annotated tree. Row/batch counts are always
// maintained (two adds per batch); wall-clock time is only sampled when the
// ExecContext has profiling enabled.
struct OperatorProfile {
  uint64_t batches = 0;   // NextBatch calls that returned true
  uint64_t rows_out = 0;  // logical rows produced
  uint64_t init_ns = 0;   // time inside Init (materialization, build sides)
  uint64_t next_ns = 0;   // cumulative time inside NextBatch (incl. children)
};

class PhysicalOperator {
 public:
  PhysicalOperator(ExecContext* ctx, std::vector<const Row*> outer_rows)
      : ctx_(ctx),
        outer_rows_(std::move(outer_rows)),
        batch_capacity_(ctx->batch_size()) {}
  virtual ~PhysicalOperator();

  PhysicalOperator(const PhysicalOperator&) = delete;
  PhysicalOperator& operator=(const PhysicalOperator&) = delete;

  // Prepares the operator (and its children) for iteration.
  Status Init();
  // Produces the next batch into *out (cleared first). Returns false at end
  // of stream; true otherwise, with >= 0 logical rows in *out.
  Result<bool> NextBatch(ColumnBatch* out);

  // One-line label for profile trees, e.g. "SeqScan(customer)".
  virtual std::string DebugName() const = 0;

  // Maximum logical rows this operator places in one output batch. The
  // executor pins it to 1 on lazy spines that must replicate row-at-a-time
  // flow exactly (audit operators below an early-stopping LIMIT/max_rows).
  size_t batch_capacity() const { return batch_capacity_; }
  void set_batch_capacity(size_t capacity) {
    batch_capacity_ = capacity == 0 ? 1 : capacity;
  }

  const OperatorProfile& profile() const { return profile_; }
  const std::vector<const PhysicalOperator*>& profile_children() const {
    return profile_children_;
  }

  // The logical node this operator was lowered from (for PhysicalGatherOp:
  // the root of its logical spine). Set by Executor::BuildNode on every
  // operator it constructs; the plan validator (plan/plan_validator.h) walks
  // the physical tree through it and fails closed when it is missing.
  const LogicalOperator* logical_node() const { return logical_node_; }
  void set_logical_node(const LogicalOperator* node) { logical_node_ = node; }

  // Extra profile-tree lines this operator contributes below its own line
  // (before its children). PhysicalGatherOp reports the per-worker spine
  // operators here — summed across workers — since worker pipelines are torn
  // down before the profile is rendered.
  virtual void AppendProfileLines(int indent, std::string* out) const {
    (void)indent;
    (void)out;
  }

 protected:
  virtual Status InitImpl() = 0;
  virtual Result<bool> NextBatchImpl(ColumnBatch* out) = 0;

  // Evaluation context for expressions over `row`. Hot paths construct this
  // once per operator (InitImpl) and repoint `.row` per tuple; the context
  // copies the correlation stack, which must not happen per row.
  EvalContext MakeEvalContext(const Row* row) const {
    EvalContext ec;
    ec.row = row;
    ec.outer_rows = outer_rows_;
    ec.exec = ctx_;
    return ec;
  }

  ExecContext* ctx_;
  std::vector<const Row*> outer_rows_;
  size_t batch_capacity_;
  const LogicalOperator* logical_node_ = nullptr;
  OperatorProfile profile_;
  // Child operators, registered by subclass constructors for profile trees.
  std::vector<const PhysicalOperator*> profile_children_;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

// Renders the operator tree with its runtime counters (after execution).
std::string FormatOperatorProfile(const PhysicalOperator& root);

// Finds an equality conjunct `column = <row-invariant expr>` in a scan filter
// — the shape SeqScanOp turns into a secondary-index probe. Returns the
// column index, or -1. Exposed so the parallel-scan eligibility check
// (exec/gather.cc) can prove a scan will NOT take the index path: an index
// probe examines a different slot set than a full scan, so rows_scanned
// would no longer be thread-count-invariant.
int FindIndexableScanColumn(const Expr& pred);

// Scan over a base table or virtual relation, applying the pushed
// single-table filter and the context's scan exclusions (offline auditing).
// Fills batches through Table::ScanLiveRange (no per-row virtual calls into
// storage). When the filter contains an equality conjunct `column =
// <row-independent expression>` (a constant, or a correlated outer
// reference), the scan probes a lazily-built secondary hash index instead of
// reading every row -- the index-lookup path that makes correlated EXISTS
// subqueries (e.g. TPC-H Q22) tractable.
class SeqScanOp : public PhysicalOperator {
 public:
  SeqScanOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
            const LogicalScan& node, Table* table);
  std::string DebugName() const override;

  // Restricts the scan to the slot range [begin, end) — one morsel of a
  // parallel scan. Range mode never probes the secondary index (the morsel
  // owns its slots outright; eligibility already excluded indexable filters)
  // and is only meaningful for base-table scans.
  void set_slot_range(size_t begin, size_t end) {
    slot_begin_ = begin;
    slot_end_ = end;
    range_mode_ = true;
  }

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  // Row-materializing emit (virtual scans, index probes, and the row-pipeline
  // escape hatch): applies exclusions + filter to `src` and appends the
  // (projected) row to `out` when it passes.
  Result<bool> EmitIfPassing(const Row& src, ColumnBatch* out);
  // Columnar emit: binds zero-copy views over the table columns, installs the
  // live-slot selection, then narrows it by exclusions and the fused filter.
  Result<bool> FillColumnarBatch(ColumnBatch* out);
  // Owned-batch width for the materializing paths.
  size_t OutputWidth(size_t src_width) const {
    return node_.projection.empty() ? src_width : node_.projection.size();
  }

  const LogicalScan& node_;
  Table* table_;  // null for virtual scans
  size_t cursor_ = 0;
  EvalContext eval_ctx_;
  // Compiled `column <cmp> constant` fast path for the fused filter.
  std::optional<SimplePredicate> simple_filter_;
  // Exclusions relevant to this scan, resolved to column indexes.
  std::vector<std::pair<int, Value>> exclusions_;
  // Index-lookup mode: the candidate row ids to examine.
  bool index_mode_ = false;
  std::vector<size_t> candidates_;
  // Morsel range (set_slot_range); when inactive the scan covers the table.
  bool range_mode_ = false;
  size_t slot_begin_ = 0;
  size_t slot_end_ = 0;
  // Scratch buffers: live slot ids from Table::ScanLiveRange (ping-ponged
  // with the batch's selection via AdoptSelection), exclusion narrowing,
  // and the reused row-materialization buffers.
  std::vector<uint32_t> scan_slots_;
  std::vector<uint32_t> keep_scratch_;
  Row row_scratch_;
  Row row_proj_scratch_;
};

// In-place predicate over the child's batches: rows that fail are dropped
// from the selection vector; row storage is never copied.
class FilterOp : public PhysicalOperator {
 public:
  FilterOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
           const LogicalFilter& node, OperatorPtr child);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  const LogicalFilter& node_;
  OperatorPtr child_;
  EvalContext eval_ctx_;
  // Compiled `column <cmp> constant` fast path for the predicate.
  std::optional<SimplePredicate> simple_pred_;
};

// Evaluates the projection expressions column-at-a-time over the child's
// batch (EvalExprBatch) and swaps the results in as the batch's owned
// columns — one output column per expression, no per-row Row temporaries.
class ProjectOp : public PhysicalOperator {
 public:
  ProjectOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
            const LogicalProject& node, OperatorPtr child);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  const LogicalProject& node_;
  OperatorPtr child_;
  EvalContext eval_ctx_;
  // Per-expression output columns for the current batch (EvalExprBatch);
  // swapped into the output batch via AdoptOwnedColumns and back for reuse.
  std::vector<std::vector<Value>> cols_;
};

// Hash join over extracted equi-key conjuncts, with residual predicate.
// Builds on the right child (moving rows out of the child's batches, with
// bucket capacity reserved from the build side's estimated cardinality),
// probes with batches of the left. Supports inner and left outer joins.
class HashJoinOp : public PhysicalOperator {
 public:
  HashJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
             const LogicalJoin& node, OperatorPtr left, OperatorPtr right,
             std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
             ExprPtr residual);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  // Advances to the next probe-side row; false at end of the left stream.
  Result<bool> AdvanceLeft();
  // Migrates the int64 fast-path table into the generic Row-keyed table
  // (first non-integer build key).
  void DegradeToGenericTable();

  const LogicalJoin& node_;
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;   // bound against the left child
  std::vector<ExprPtr> right_keys_;  // bound against the right child alone
  ExprPtr residual_;                 // over the concatenated row; nullable

  // Single-int64-key fast path (the common TPC-H shape: one surrogate-key
  // equi conjunct): raw open-addressing index over the build keys with
  // per-slot bucket lists. Engaged for one-key joins; degrades to the
  // generic table the moment a non-kInt build key appears, so mixed-type
  // equality keeps Value::Compare semantics exactly.
  bool int64_path_ = false;
  Int64HashIndex int_index_;
  std::vector<std::vector<Row>> int_buckets_;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> hash_table_;
  size_t right_width_ = 0;
  EvalContext eval_ctx_;
  ColumnBatch left_batch_;
  size_t left_pos_ = 0;
  bool left_done_ = false;
  // Current probe row: logical index into left_batch_; inactive between rows.
  bool have_left_ = false;
  size_t left_li_ = 0;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_idx_ = 0;
  bool left_matched_ = false;
  Row key_scratch_;
};

// Nested-loop join for non-equi conditions and cross joins; materializes the
// right child once, then streams batches of the left, emitting each
// qualifying pair directly into the output batch (append-then-pop on
// condition failure, mirroring the hash join's residual handling). Supports
// inner, left outer, and cross joins.
class NLJoinOp : public PhysicalOperator {
 public:
  NLJoinOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
           const LogicalJoin& node, OperatorPtr left, OperatorPtr right);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  // Advances to the next probe-side row; false at end of the left stream.
  Result<bool> AdvanceLeft();

  const LogicalJoin& node_;
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Row> right_rows_;
  size_t right_width_ = 0;
  EvalContext eval_ctx_;
  ColumnBatch left_batch_;
  size_t left_pos_ = 0;
  bool left_done_ = false;
  // Current probe row: logical index into left_batch_; inactive between rows.
  bool have_left_ = false;
  size_t left_li_ = 0;
  size_t right_idx_ = 0;
  bool left_matched_ = false;
};

class HashAggregateOp : public PhysicalOperator {
 public:
  HashAggregateOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                  const LogicalAggregate& node, OperatorPtr child);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  struct AggState {
    int64_t count = 0;
    double sum_double = 0.0;
    int64_t sum_int = 0;
    bool saw_value = false;
    Value min_max;
    std::unique_ptr<std::unordered_set<Value, ValueHash, ValueEq>> distinct;
  };

  // Folds the row currently bound in `ec` into `states`.
  Status Accumulate(std::vector<AggState>* states, EvalContext& ec);
  Value Finalize(const AggregateSpec& spec, const AggState& state) const;

  const LogicalAggregate& node_;
  OperatorPtr child_;
  std::vector<Row> results_;
  size_t cursor_ = 0;
};

class SortOp : public PhysicalOperator {
 public:
  SortOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
         const LogicalSort& node, OperatorPtr child);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  const LogicalSort& node_;
  OperatorPtr child_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

// OFFSET/LIMIT at batch granularity: trims the child's batches in place via
// the selection vector (an offset or limit boundary falling mid-batch cuts
// the batch, never the stream invariants).
class LimitOp : public PhysicalOperator {
 public:
  LimitOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
          const LogicalLimit& node, OperatorPtr child);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  const LogicalLimit& node_;
  OperatorPtr child_;
  int64_t produced_ = 0;
  int64_t skipped_ = 0;
};

class DistinctOp : public PhysicalOperator {
 public:
  DistinctOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
             OperatorPtr child);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  OperatorPtr child_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
  Row row_scratch_;
};

class ValuesOp : public PhysicalOperator {
 public:
  ValuesOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
           const LogicalValues& node);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  const LogicalValues& node_;
  size_t cursor_ = 0;
  EvalContext eval_ctx_;
  Row row_scratch_;
};

// The physical audit operator (Section IV-A2): a pass-through "data viewer"
// that probes the sensitive-ID hash set with the partition-by column of each
// row and records hits into the ACCESSED state. Probing is per batch: a
// Bloom pre-screen over the ID view (SensitiveIdView::Screen) first checks
// whether the batch can contain any sensitive ID at all and skips the exact
// probes entirely when it cannot — the common case for selective queries.
// When built without an ID view it evaluates the audit expression's
// predicate directly (the naive design ablated in the paper).
class PhysicalAuditOp : public PhysicalOperator {
 public:
  PhysicalAuditOp(ExecContext* ctx, std::vector<const Row*> outer_rows,
                  const LogicalAudit& node, OperatorPtr child);
  std::string DebugName() const override;

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  Status RecordHit(const Value& key);

  const LogicalAudit& node_;
  OperatorPtr child_;
  EvalContext eval_ctx_;
};

}  // namespace seltrig

#endif  // SELTRIG_EXEC_OPERATORS_H_
