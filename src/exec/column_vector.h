// ColumnVector: one column of a ColumnBatch flowing through the vectorized
// pipeline (exec/column_batch.h).
//
// A vector is in one of two modes:
//
//  - **view**: a zero-copy binding to a table column (storage/column_store.h)
//    — typed array + null bitmap + string dictionary. Scans bind views;
//    physical row indexes are table slot ids and the batch's selection vector
//    holds the live slots. A view stays valid until the next mutation of the
//    table, the same lifetime the old `const Row*` scan pointers had.
//
//  - **owned**: a generic Value array the producer appends to (joins,
//    aggregates, sorts, VALUES, and the row-pipeline escape hatch
//    ExecOptions::columnar=false). Storage is retained across Reset() so a
//    refilled batch reaches a steady state with zero heap allocation.
//
// Cell reads through GetValue() return the exact stored Value either way
// (column_store.h's exactness contract), so audit probes and row images are
// independent of the mode.

#ifndef SELTRIG_EXEC_COLUMN_VECTOR_H_
#define SELTRIG_EXEC_COLUMN_VECTOR_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "storage/column_store.h"
#include "types/value.h"

namespace seltrig {

class ColumnVector {
 public:
  ColumnVector() = default;

  // --- Mode -----------------------------------------------------------------
  bool is_view() const { return view_ != nullptr; }
  // The bound table column; null in owned mode.
  const TableColumn* view() const { return view_; }

  // Binds table storage; previous owned storage is kept for later reuse.
  void BindView(const TableColumn* col) { view_ = col; }

  // Switches to owned mode and empties it (capacity retained).
  void ResetOwned() {
    view_ = nullptr;
    values_.clear();
  }

  // --- Owned producer API -----------------------------------------------------
  void Append(Value v) {
    assert(!is_view());
    values_.push_back(std::move(v));
  }
  void PopBack() {
    assert(!is_view());
    values_.pop_back();
  }
  size_t owned_size() const { return values_.size(); }
  // Swaps the owned storage with `vals` (bulk fill from EvalExprBatch output;
  // the displaced storage rides back to the caller for reuse).
  void SwapValues(std::vector<Value>* vals) {
    assert(!is_view());
    values_.swap(*vals);
  }
  const std::vector<Value>& owned_values() const { return values_; }

  // --- Cell access (physical index) ------------------------------------------
  Value GetValue(size_t phys) const {
    return view_ != nullptr ? view_->Get(phys) : values_[phys];
  }
  // Appends the cell to *out without an intermediate temporary.
  void AppendValueTo(size_t phys, Row* out) const {
    if (view_ != nullptr) {
      view_->AppendTo(phys, out);
    } else {
      out->push_back(values_[phys]);
    }
  }
  // Moves the cell out (owned mode) or copies it (view mode — table storage
  // is never mutated through a batch).
  void MoveValueTo(size_t phys, Row* out) {
    if (view_ != nullptr) {
      view_->AppendTo(phys, out);
    } else {
      out->push_back(std::move(values_[phys]));
    }
  }

 private:
  const TableColumn* view_ = nullptr;
  std::vector<Value> values_;  // owned-mode storage, reused across resets
};

}  // namespace seltrig

#endif  // SELTRIG_EXEC_COLUMN_VECTOR_H_
