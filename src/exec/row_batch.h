// RowBatch: the unit of data flow in the vectorized execution pipeline.
//
// A batch is a reusable container of physical rows plus an optional selection
// vector. Producers (scans, joins) append physical rows; in-place operators
// (filter, audit, limit, distinct) narrow the *selection* without touching or
// copying row storage. Consumers only ever see the logical view: `size()`
// logical rows addressed through `row(i)` / `mutable_row(i)`.
//
// Row storage is retained across `Clear()` calls, so a batch that is refilled
// every iteration reaches a steady state with zero heap allocation.

#ifndef SELTRIG_EXEC_ROW_BATCH_H_
#define SELTRIG_EXEC_ROW_BATCH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "types/value.h"

namespace seltrig {

class RowBatch {
 public:
  // Default logical capacity of the pipeline (ExecOptions::batch_size).
  static constexpr size_t kDefaultCapacity = 1024;

  RowBatch() = default;
  explicit RowBatch(size_t reserve_rows) { rows_.reserve(reserve_rows); }

  RowBatch(const RowBatch&) = delete;
  RowBatch& operator=(const RowBatch&) = delete;

  // --- Logical (selected) view ----------------------------------------------
  size_t size() const { return has_selection_ ? selection_.size() : count_; }
  bool empty() const { return size() == 0; }

  const Row& row(size_t i) const { return rows_[PhysicalIndex(i)]; }
  Row& mutable_row(size_t i) { return rows_[PhysicalIndex(i)]; }

  // Physical index backing logical row `i` (stable across selection changes;
  // used to build narrowed selections).
  size_t PhysicalIndex(size_t i) const {
    return has_selection_ ? selection_[i] : i;
  }

  // --- Producer API ---------------------------------------------------------
  // Appending is only legal while no selection is installed: an append under
  // a selection would silently corrupt the logical view (the new physical row
  // is invisible, and a later PopRow would drop the wrong row), so the
  // producer API asserts against it in debug builds. ColumnBatch
  // (exec/column_batch.h) carries the same contract.

  // Returns a cleared slot to fill in place, reusing previous storage.
  Row* AppendRow() {
    assert(!has_selection_ && "AppendRow under an installed selection");
    if (count_ < rows_.size()) {
      rows_[count_].clear();
    } else {
      rows_.emplace_back();
    }
    return &rows_[count_++];
  }

  void AppendCopy(const Row& src) { *AppendRow() = src; }
  void AppendMove(Row&& src) { *AppendRow() = std::move(src); }

  // Removes the most recently appended row (join residual rejection).
  void PopRow() {
    assert(!has_selection_ && "PopRow under an installed selection");
    assert(count_ > 0);
    --count_;
  }

  // --- Selection ------------------------------------------------------------
  bool has_selection() const { return has_selection_; }

  // Installs a selection of physical indexes (ascending). An in-place filter
  // builds the narrowed vector with PhysicalIndex() and installs it here.
  void SetSelection(std::vector<uint32_t> selection) {
    selection_ = std::move(selection);
    has_selection_ = true;
  }

  // Keeps only the first `n` logical rows.
  void TruncateLogical(size_t n) {
    if (n >= size()) return;
    if (has_selection_) {
      selection_.resize(n);
    } else {
      count_ = n;
    }
  }

  // Drops the first `n` logical rows.
  void DropFrontLogical(size_t n) {
    if (n == 0) return;
    if (n >= size()) {
      TruncateLogical(0);
      return;
    }
    if (!has_selection_) {
      selection_.clear();
      selection_.reserve(count_ - n);
      for (size_t i = n; i < count_; ++i) {
        selection_.push_back(static_cast<uint32_t>(i));
      }
      has_selection_ = true;
    } else {
      selection_.erase(selection_.begin(),
                       selection_.begin() + static_cast<ptrdiff_t>(n));
    }
  }

  // Empties the batch (logical and physical), retaining row storage.
  void Clear() {
    count_ = 0;
    has_selection_ = false;
    selection_.clear();
  }

 private:
  size_t count_ = 0;       // physical rows in use; rows_.size() >= count_
  std::vector<Row> rows_;  // storage, reused across Clear()
  std::vector<uint32_t> selection_;
  bool has_selection_ = false;
};

}  // namespace seltrig

#endif  // SELTRIG_EXEC_ROW_BATCH_H_
