// Morsel-driven parallel scan (docs/CONCURRENCY.md). A scan→filter→project→
// audit spine over one base table is split into contiguous slot-range morsels
// handed out to a shared worker pool; each worker runs a private copy of the
// spine with thread-local ExecStats and a thread-local ACCESSED partition.
// PhysicalGatherOp merges everything deterministically after the workers
// join, so result rows, ACCESSED, and rows_scanned are bit-for-bit identical
// to the serial execution at any thread count.

#ifndef SELTRIG_EXEC_GATHER_H_
#define SELTRIG_EXEC_GATHER_H_

#include <string>
#include <vector>

#include "exec/operators.h"

namespace seltrig {

// Slots per morsel. Small enough that a 40k-row table yields ~10 work units
// for load balancing, large enough to amortize per-morsel pipeline setup.
inline constexpr size_t kMorselSlots = 4096;

// Eligibility probe: returns the base-table scan at the bottom of `node` iff
// the whole tree is a parallelizable spine — a chain of Filter/Project/Audit
// over a Scan of a real table — and nothing in it is order- or
// pacing-sensitive. Returns nullptr (→ serial execution) when the tree
// contains any other operator, a virtual-table scan, a subquery (would need
// the executor's subquery runner and its shared materialization cache), or a
// scan filter with an indexable equality conjunct (the index probe examines
// a different slot set than a full scan, breaking rows_scanned invariance).
const LogicalScan* ParallelSpineScan(const LogicalOperator& node);

// Replaces an eligible spine: fans morsels out to ThreadPool::Shared(),
// materializes every worker's output, then streams the concatenation in
// morsel order. The executor mounts it only for uncorrelated,
// uncapped-spine plans when ExecContext::num_threads() > 1 and any attached
// ACCESSED registry is uncapped (see Executor::BuildNode).
class PhysicalGatherOp : public PhysicalOperator {
 public:
  PhysicalGatherOp(ExecContext* ctx, const LogicalOperator& spine,
                   const LogicalScan& scan, Table* table);
  std::string DebugName() const override;

  // Reports the per-worker spine operators, summed across workers, since the
  // worker pipelines are torn down before the profile tree is rendered.
  void AppendProfileLines(int indent, std::string* out) const override;

  // The logical spine this gather replaces. The plan validator walks it in
  // place of physical children (worker pipelines are private to InitImpl).
  const LogicalOperator& spine() const { return spine_; }

 protected:
  Status InitImpl() override;
  Result<bool> NextBatchImpl(ColumnBatch* out) override;

 private:
  const LogicalOperator& spine_;
  const LogicalScan& scan_;
  Table* table_;

  std::vector<Row> rows_;  // concatenated worker output, morsel order
  size_t cursor_ = 0;
  int workers_used_ = 0;

  // One entry per spine position (root first), profiles summed over workers.
  struct SpineStat {
    std::string name;
    OperatorProfile profile;
  };
  std::vector<SpineStat> spine_stats_;
};

}  // namespace seltrig

#endif  // SELTRIG_EXEC_GATHER_H_
