#include "exec/gather.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

#include "audit/accessed_state.h"
#include "common/thread_pool.h"
#include "expr/analysis.h"

namespace seltrig {

const LogicalScan* ParallelSpineScan(const LogicalOperator& node) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      if (scan.virtual_rows != nullptr) return nullptr;
      if (scan.filter != nullptr) {
        if (ContainsSubquery(*scan.filter)) return nullptr;
        if (FindIndexableScanColumn(*scan.filter) >= 0) return nullptr;
      }
      return &scan;
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const LogicalFilter&>(node);
      if (filter.predicate != nullptr && ContainsSubquery(*filter.predicate)) {
        return nullptr;
      }
      return ParallelSpineScan(*node.children[0]);
    }
    case PlanKind::kProject: {
      const auto& project = static_cast<const LogicalProject&>(node);
      for (const ExprPtr& e : project.exprs) {
        if (e != nullptr && ContainsSubquery(*e)) return nullptr;
      }
      return ParallelSpineScan(*node.children[0]);
    }
    case PlanKind::kAudit: {
      const auto& audit = static_cast<const LogicalAudit&>(node);
      if (audit.fallback_predicate != nullptr &&
          ContainsSubquery(*audit.fallback_predicate)) {
        return nullptr;
      }
      return ParallelSpineScan(*node.children[0]);
    }
    default:
      // Joins, aggregates, sorts, limits, distinct, values: serial path.
      return nullptr;
  }
}

namespace {

// Builds a worker-private copy of the spine over the slot range [begin, end).
// Only the node kinds ParallelSpineScan admits can appear here.
OperatorPtr BuildSpine(ExecContext* ctx, const LogicalOperator& node,
                       Table* table, size_t begin, size_t end) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      auto op = std::make_unique<SeqScanOp>(ctx, std::vector<const Row*>{},
                                            scan, table);
      op->set_slot_range(begin, end);
      return op;
    }
    case PlanKind::kFilter: {
      const auto& filter = static_cast<const LogicalFilter&>(node);
      return std::make_unique<FilterOp>(
          ctx, std::vector<const Row*>{}, filter,
          BuildSpine(ctx, *node.children[0], table, begin, end));
    }
    case PlanKind::kProject: {
      const auto& project = static_cast<const LogicalProject&>(node);
      return std::make_unique<ProjectOp>(
          ctx, std::vector<const Row*>{}, project,
          BuildSpine(ctx, *node.children[0], table, begin, end));
    }
    case PlanKind::kAudit: {
      const auto& audit = static_cast<const LogicalAudit&>(node);
      return std::make_unique<PhysicalAuditOp>(
          ctx, std::vector<const Row*>{}, audit,
          BuildSpine(ctx, *node.children[0], table, begin, end));
    }
    default:
      return nullptr;  // unreachable: eligibility checked the tree
  }
}

}  // namespace

PhysicalGatherOp::PhysicalGatherOp(ExecContext* ctx,
                                   const LogicalOperator& spine,
                                   const LogicalScan& scan, Table* table)
    : PhysicalOperator(ctx, {}), spine_(spine), scan_(scan), table_(table) {}

std::string PhysicalGatherOp::DebugName() const {
  return "Gather(threads=" + std::to_string(workers_used_ > 0
                                                ? workers_used_
                                                : ctx_->num_threads()) +
         ")";
}

void PhysicalGatherOp::AppendProfileLines(int indent, std::string* out) const {
  for (const SpineStat& s : spine_stats_) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%*s%s  rows=%llu batches=%llu init=%.3fms next=%.3fms "
                  "[sum of %d workers]\n",
                  indent * 2, "", s.name.c_str(),
                  static_cast<unsigned long long>(s.profile.rows_out),
                  static_cast<unsigned long long>(s.profile.batches),
                  static_cast<double>(s.profile.init_ns) / 1e6,
                  static_cast<double>(s.profile.next_ns) / 1e6, workers_used_);
    *out += line;
    ++indent;
  }
}

Status PhysicalGatherOp::InitImpl() {
  rows_.clear();
  cursor_ = 0;
  spine_stats_.clear();

  const size_t slots = table_->slot_count();
  const size_t morsel_count = (slots + kMorselSlots - 1) / kMorselSlots;
  if (morsel_count == 0) {
    workers_used_ = 0;
    return Status::OK();
  }
  const int workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(ctx_->num_threads(), 1)), morsel_count));
  workers_used_ = workers;

  struct WorkerState {
    std::unique_ptr<ExecContext> ctx;
    AccessedStateRegistry registry;
    Status status = Status::OK();
    std::vector<SpineStat> stats;
  };
  std::vector<WorkerState> states(static_cast<size_t>(workers));
  // Output buffer per morsel: concatenating in morsel order reproduces the
  // serial scan order exactly, independent of which worker ran which morsel.
  std::vector<std::vector<Row>> morsel_rows(morsel_count);
  std::atomic<size_t> next_morsel{0};
  const bool track_accessed = ctx_->accessed() != nullptr;

  for (auto& ws : states) {
    ws.ctx = std::make_unique<ExecContext>(ctx_->catalog(), ctx_->session());
    for (const ScanExclusion& e : ctx_->exclusions()) ws.ctx->AddExclusion(e);
    ws.ctx->set_batch_size(ctx_->batch_size());
    ws.ctx->set_columnar(ctx_->columnar());
    ws.ctx->set_collect_profile(ctx_->collect_profile());
    // Thread-local ACCESSED partition, uncapped: the deterministic merge
    // below re-applies the union; eligibility guaranteed no cap is active.
    if (track_accessed) ws.ctx->set_accessed(&ws.registry);
  }

  auto run_worker = [&](int w) {
    WorkerState& ws = states[static_cast<size_t>(w)];
    while (true) {
      const size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
      if (m >= morsel_count) return;
      const size_t begin = m * kMorselSlots;
      const size_t end = std::min(begin + kMorselSlots, slots);
      OperatorPtr root = BuildSpine(ws.ctx.get(), spine_, table_, begin, end);
      if (root == nullptr) {
        ws.status = Status::Internal("gather: unbuildable spine node");
        return;
      }
      Status init = root->Init();
      if (!init.ok()) {
        if (ws.status.ok()) ws.status = init;
        return;
      }
      std::vector<Row>& out_rows = morsel_rows[m];
      ColumnBatch batch;
      while (true) {
        Result<bool> has = root->NextBatch(&batch);
        if (!has.ok()) {
          if (ws.status.ok()) ws.status = has.status();
          return;
        }
        if (!*has) break;
        for (size_t i = 0; i < batch.size(); ++i) {
          out_rows.emplace_back();
          batch.MoveRowTo(i, &out_rows.back());
        }
      }
      // Fold this morsel's per-operator profiles into the worker's running
      // sums (root first) before the pipeline is destroyed.
      const PhysicalOperator* op = root.get();
      for (size_t pos = 0; op != nullptr; ++pos) {
        if (ws.stats.size() <= pos) ws.stats.push_back({op->DebugName(), {}});
        OperatorProfile& agg = ws.stats[pos].profile;
        agg.batches += op->profile().batches;
        agg.rows_out += op->profile().rows_out;
        agg.init_ns += op->profile().init_ns;
        agg.next_ns += op->profile().next_ns;
        op = op->profile_children().empty() ? nullptr
                                            : op->profile_children()[0];
      }
    }
  };

  ThreadPool::Shared().RunAndWait(workers, run_worker);

  // --- Deterministic merge (all on the calling thread) -----------------------
  // Errors: first failing worker by index wins, so the surfaced error does
  // not depend on scheduling.
  for (const WorkerState& ws : states) {
    if (!ws.status.ok()) return ws.status;
  }
  // Stats are sums over a fixed partition of the slots, so each total is
  // identical to the serial run's regardless of morsel assignment.
  for (WorkerState& ws : states) {
    ExecStats& total = ctx_->stats();
    const ExecStats& s = ws.ctx->stats();
    total.rows_scanned += s.rows_scanned;
    total.rows_through_audit_ops += s.rows_through_audit_ops;
    total.audit_probe_hits += s.audit_probe_hits;
    total.subquery_executions += s.subquery_executions;
    total.audit_batches_prescreened += s.audit_batches_prescreened;
  }
  // ACCESSED: union the thread-local partitions into the query's registry in
  // worker-index order. Set union is commutative and the registry is
  // uncapped, so the merged state equals the serial state bit for bit.
  if (track_accessed) {
    for (WorkerState& ws : states) {
      for (const auto& [name, state] : ws.registry.states()) {
        AccessedState& dst = ctx_->accessed()->GetOrCreate(name);
        for (const Value& id : state.ids()) dst.Record(id);
      }
    }
  }
  // Worker profiles: sum position-wise across workers (every worker ran the
  // same spine shape).
  for (const WorkerState& ws : states) {
    for (size_t pos = 0; pos < ws.stats.size(); ++pos) {
      if (spine_stats_.size() <= pos) {
        spine_stats_.push_back({ws.stats[pos].name, {}});
      }
      OperatorProfile& agg = spine_stats_[pos].profile;
      agg.batches += ws.stats[pos].profile.batches;
      agg.rows_out += ws.stats[pos].profile.rows_out;
      agg.init_ns += ws.stats[pos].profile.init_ns;
      agg.next_ns += ws.stats[pos].profile.next_ns;
    }
  }

  size_t total_rows = 0;
  for (const auto& m : morsel_rows) total_rows += m.size();
  rows_.reserve(total_rows);
  for (auto& m : morsel_rows) {
    for (Row& r : m) rows_.push_back(std::move(r));
  }
  return Status::OK();
}

Result<bool> PhysicalGatherOp::NextBatchImpl(ColumnBatch* out) {
  if (cursor_ >= rows_.size()) return false;
  out->ResetOwned(rows_[cursor_].size());
  const size_t n = std::min(batch_capacity_, rows_.size() - cursor_);
  for (size_t i = 0; i < n; ++i) {
    out->AppendRow(std::move(rows_[cursor_++]));
  }
  return true;
}

}  // namespace seltrig
