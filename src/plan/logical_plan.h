// Logical query plans. The binder produces these; the optimizer rewrites
// them; audit placement instruments them; the executor lowers them to
// physical operators.

#ifndef SELTRIG_PLAN_LOGICAL_PLAN_H_
#define SELTRIG_PLAN_LOGICAL_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/schema.h"

namespace seltrig {

class BloomFilter;      // common/bloom_filter.h
class SensitiveIdView;  // audit/sensitive_id_view.h

enum class PlanKind : uint8_t {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
  kValues,
  kAudit,
};

enum class JoinType : uint8_t { kInner, kLeft, kCross };

enum class AggKind : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

// One aggregate computed by a LogicalAggregate, e.g. SUM(l_extendedprice).
struct AggregateSpec {
  AggKind kind = AggKind::kCountStar;
  bool distinct = false;
  ExprPtr arg;  // null for COUNT(*)
  std::string name;
  TypeId result_type = TypeId::kInt;

  AggregateSpec Clone() const;
};

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

// Base class. `children` and `schema` are public for the benefit of the
// rewrite passes (optimizer, audit placement), which restructure trees
// heavily; all nodes are passive data plus a virtual Clone/Describe.
class LogicalOperator {
 public:
  explicit LogicalOperator(PlanKind kind) : kind_(kind) {}
  virtual ~LogicalOperator();

  LogicalOperator(const LogicalOperator&) = delete;
  LogicalOperator& operator=(const LogicalOperator&) = delete;

  PlanKind kind() const { return kind_; }

  // One-line description, e.g. "HashJoin (c_custkey = o_custkey)".
  virtual std::string Describe() const = 0;

  // Deep copy of the node tree. Expressions are deep-copied; plans inside
  // subquery expressions are shared (placement re-clones them explicitly).
  virtual std::shared_ptr<LogicalOperator> Clone() const = 0;

  std::vector<std::shared_ptr<LogicalOperator>> children;
  Schema schema;

 protected:
  void CloneCommonInto(LogicalOperator* copy) const;

 private:
  PlanKind kind_;
};

using PlanPtr = std::shared_ptr<LogicalOperator>;

// Base-table scan, optionally with a pushed-down single-table predicate
// (bound against the table schema).
class LogicalScan : public LogicalOperator {
 public:
  LogicalScan() : LogicalOperator(PlanKind::kScan) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  std::string table_name;  // lower-case catalog name
  std::string alias;       // lower-case binding qualifier
  // Catalog table's schema_version() at bind time (0 for virtual tables).
  // The plan validator fails a plan closed when this no longer matches the
  // live catalog at execute time — a stale plan surviving an ALTER TABLE
  // would read columns by now-wrong indexes.
  uint64_t schema_version = 0;
  // Pushed single-table predicate, always bound against the FULL base
  // schema (it is evaluated before the output projection is applied).
  ExprPtr filter;  // nullable
  // When non-null the scan reads this in-memory relation instead of the
  // catalog table (virtual tables: ACCESSED, NEW/OLD row sets). The pointed-to
  // rows must outlive every execution of the plan.
  const std::vector<Row>* virtual_rows = nullptr;
  // Output projection installed by column pruning: base-schema column indexes
  // to emit, in order. Empty = emit every column. `schema` always describes
  // the projected output.
  std::vector<int> projection;

  // Base-schema index of output column `out`, accounting for the projection.
  int BaseColumn(int out) const {
    return projection.empty() ? out : projection[static_cast<size_t>(out)];
  }
};

class LogicalFilter : public LogicalOperator {
 public:
  LogicalFilter() : LogicalOperator(PlanKind::kFilter) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  ExprPtr predicate;
  // True for filters lowered from audit operators (the unsafe
  // "audit-as-filter" mode reproducing Section IV-B). Guarded optimizer rules
  // must not reason about such predicates.
  bool audit_derived = false;
};

class LogicalProject : public LogicalOperator {
 public:
  LogicalProject() : LogicalOperator(PlanKind::kProject) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  std::vector<ExprPtr> exprs;  // one per output column; schema names them
};

class LogicalJoin : public LogicalOperator {
 public:
  LogicalJoin() : LogicalOperator(PlanKind::kJoin) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  JoinType join_type = JoinType::kInner;
  ExprPtr condition;  // bound against Concat(left, right); null for cross
};

class LogicalAggregate : public LogicalOperator {
 public:
  LogicalAggregate() : LogicalOperator(PlanKind::kAggregate) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  std::vector<ExprPtr> group_exprs;
  std::vector<AggregateSpec> aggregates;
};

class LogicalSort : public LogicalOperator {
 public:
  LogicalSort() : LogicalOperator(PlanKind::kSort) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  std::vector<SortKey> keys;
};

class LogicalLimit : public LogicalOperator {
 public:
  LogicalLimit() : LogicalOperator(PlanKind::kLimit) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  int64_t limit = -1;  // -1 = unlimited
  int64_t offset = 0;
};

class LogicalDistinct : public LogicalOperator {
 public:
  LogicalDistinct() : LogicalOperator(PlanKind::kDistinct) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;
};

// Constant relation (INSERT ... VALUES, SELECT without FROM).
class LogicalValues : public LogicalOperator {
 public:
  LogicalValues() : LogicalOperator(PlanKind::kValues) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  std::vector<std::vector<ExprPtr>> rows;
};

// The audit operator (Section III-B): a schema-preserving no-op that probes
// the sensitive-ID view with `key_column` of every passing row and records
// hits in the ACCESSED state for `audit_name`.
class LogicalAudit : public LogicalOperator {
 public:
  LogicalAudit() : LogicalOperator(PlanKind::kAudit) {}
  std::string Describe() const override;
  PlanPtr Clone() const override;

  std::string audit_name;
  int key_column = -1;
  // Borrowed from the AuditManager; outlives any plan referencing it. When
  // null the operator evaluates `fallback_predicate` instead (the naive
  // physical design ablated in Section IV-A).
  const SensitiveIdView* id_view = nullptr;
  ExprPtr fallback_predicate;  // bound against child output; nullable
  // When set, the operator probes this Bloom summary instead of the exact
  // ID view (Section IV-A2's big-set fallback; Bloom collisions become audit
  // false positives, never false negatives).
  std::shared_ptr<const BloomFilter> bloom;
};

// Renders the plan as an indented tree (EXPLAIN-style).
std::string PlanToString(const LogicalOperator& root, bool with_schema = false);

// Invokes `fn` on every expression slot of `node` (not of its children).
// Used by rewrite passes and correlation analysis.
void VisitNodeExprs(LogicalOperator& node, const std::function<void(ExprPtr&)>& fn);
void VisitNodeExprs(const LogicalOperator& node,
                    const std::function<void(const Expr&)>& fn);

// The maximum number of scope levels the plan's outer references escape
// beyond the plan itself (recursing into nested subquery plans). 0 means the
// plan is self-contained; >0 means it is correlated with enclosing queries.
int MaxEscapeLevel(const LogicalOperator& plan);

}  // namespace seltrig

#endif  // SELTRIG_PLAN_LOGICAL_PLAN_H_
