#include "plan/logical_plan.h"

#include "common/bloom_filter.h"

namespace seltrig {

LogicalOperator::~LogicalOperator() = default;

void LogicalOperator::CloneCommonInto(LogicalOperator* copy) const {
  copy->schema = schema;
  copy->children.reserve(children.size());
  for (const auto& c : children) copy->children.push_back(c->Clone());
}

AggregateSpec AggregateSpec::Clone() const {
  AggregateSpec copy;
  copy.kind = kind;
  copy.distinct = distinct;
  copy.arg = arg ? arg->Clone() : nullptr;
  copy.name = name;
  copy.result_type = result_type;
  return copy;
}

namespace {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCountStar:
      return "COUNT(*)";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

}  // namespace

std::string LogicalScan::Describe() const {
  std::string out = "Scan " + table_name;
  if (alias != table_name && !alias.empty()) out += " AS " + alias;
  if (filter != nullptr) out += " filter=" + filter->ToString();
  if (!projection.empty()) {
    out += " cols=[";
    for (size_t i = 0; i < projection.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(projection[i]);
    }
    out += "]";
  }
  return out;
}

PlanPtr LogicalScan::Clone() const {
  auto copy = std::make_shared<LogicalScan>();
  CloneCommonInto(copy.get());
  copy->table_name = table_name;
  copy->alias = alias;
  copy->schema_version = schema_version;
  copy->filter = filter ? filter->Clone() : nullptr;
  copy->virtual_rows = virtual_rows;
  copy->projection = projection;
  return copy;
}

std::string LogicalFilter::Describe() const {
  std::string out = "Filter " + predicate->ToString();
  if (audit_derived) out += " [audit-derived]";
  return out;
}

PlanPtr LogicalFilter::Clone() const {
  auto copy = std::make_shared<LogicalFilter>();
  CloneCommonInto(copy.get());
  copy->predicate = predicate->Clone();
  copy->audit_derived = audit_derived;
  return copy;
}

std::string LogicalProject::Describe() const {
  std::string out = "Project ";
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs[i]->ToString();
  }
  return out;
}

PlanPtr LogicalProject::Clone() const {
  auto copy = std::make_shared<LogicalProject>();
  CloneCommonInto(copy.get());
  copy->exprs.reserve(exprs.size());
  for (const auto& e : exprs) copy->exprs.push_back(e->Clone());
  return copy;
}

std::string LogicalJoin::Describe() const {
  std::string out;
  switch (join_type) {
    case JoinType::kInner:
      out = "Join";
      break;
    case JoinType::kLeft:
      out = "LeftJoin";
      break;
    case JoinType::kCross:
      out = "CrossJoin";
      break;
  }
  if (condition != nullptr) out += " " + condition->ToString();
  return out;
}

PlanPtr LogicalJoin::Clone() const {
  auto copy = std::make_shared<LogicalJoin>();
  CloneCommonInto(copy.get());
  copy->join_type = join_type;
  copy->condition = condition ? condition->Clone() : nullptr;
  return copy;
}

std::string LogicalAggregate::Describe() const {
  std::string out = "Aggregate group=[";
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs[i]->ToString();
  }
  out += "] aggs=[";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggKindName(aggregates[i].kind);
    if (aggregates[i].arg != nullptr) {
      out += "(";
      if (aggregates[i].distinct) out += "DISTINCT ";
      out += aggregates[i].arg->ToString() + ")";
    }
  }
  return out + "]";
}

PlanPtr LogicalAggregate::Clone() const {
  auto copy = std::make_shared<LogicalAggregate>();
  CloneCommonInto(copy.get());
  copy->group_exprs.reserve(group_exprs.size());
  for (const auto& e : group_exprs) copy->group_exprs.push_back(e->Clone());
  copy->aggregates.reserve(aggregates.size());
  for (const auto& a : aggregates) copy->aggregates.push_back(a.Clone());
  return copy;
}

std::string LogicalSort::Describe() const {
  std::string out = "Sort ";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].expr->ToString();
    out += keys[i].ascending ? " ASC" : " DESC";
  }
  return out;
}

PlanPtr LogicalSort::Clone() const {
  auto copy = std::make_shared<LogicalSort>();
  CloneCommonInto(copy.get());
  copy->keys.reserve(keys.size());
  for (const auto& k : keys) {
    copy->keys.push_back(SortKey{k.expr->Clone(), k.ascending});
  }
  return copy;
}

std::string LogicalLimit::Describe() const {
  return "Limit " + std::to_string(limit) +
         (offset > 0 ? " OFFSET " + std::to_string(offset) : "");
}

PlanPtr LogicalLimit::Clone() const {
  auto copy = std::make_shared<LogicalLimit>();
  CloneCommonInto(copy.get());
  copy->limit = limit;
  copy->offset = offset;
  return copy;
}

std::string LogicalDistinct::Describe() const { return "Distinct"; }

PlanPtr LogicalDistinct::Clone() const {
  auto copy = std::make_shared<LogicalDistinct>();
  CloneCommonInto(copy.get());
  return copy;
}

std::string LogicalValues::Describe() const {
  return "Values (" + std::to_string(rows.size()) + " rows)";
}

PlanPtr LogicalValues::Clone() const {
  auto copy = std::make_shared<LogicalValues>();
  CloneCommonInto(copy.get());
  copy->rows.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<ExprPtr> r;
    r.reserve(row.size());
    for (const auto& e : row) r.push_back(e->Clone());
    copy->rows.push_back(std::move(r));
  }
  return copy;
}

std::string LogicalAudit::Describe() const {
  std::string mode;
  if (bloom != nullptr) {
    mode = " (bloom)";
  } else if (id_view == nullptr) {
    mode = " (predicate mode)";
  }
  return "AuditOp [" + audit_name + "] key=#" + std::to_string(key_column) + mode;
}

PlanPtr LogicalAudit::Clone() const {
  auto copy = std::make_shared<LogicalAudit>();
  CloneCommonInto(copy.get());
  copy->audit_name = audit_name;
  copy->key_column = key_column;
  copy->id_view = id_view;
  copy->fallback_predicate = fallback_predicate ? fallback_predicate->Clone() : nullptr;
  copy->bloom = bloom;
  return copy;
}

namespace {

void PrintNode(const LogicalOperator& node, int depth, bool with_schema,
               std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.Describe());
  if (with_schema) {
    out->append("  [");
    out->append(node.schema.ToString());
    out->append("]");
  }
  out->append("\n");
  for (const auto& c : node.children) {
    PrintNode(*c, depth + 1, with_schema, out);
  }
}

}  // namespace

std::string PlanToString(const LogicalOperator& root, bool with_schema) {
  std::string out;
  PrintNode(root, 0, with_schema, &out);
  return out;
}

void VisitNodeExprs(LogicalOperator& node, const std::function<void(ExprPtr&)>& fn) {
  auto apply = [&fn](ExprPtr& e) {
    if (e != nullptr) fn(e);
  };
  switch (node.kind()) {
    case PlanKind::kScan:
      apply(static_cast<LogicalScan&>(node).filter);
      break;
    case PlanKind::kFilter:
      apply(static_cast<LogicalFilter&>(node).predicate);
      break;
    case PlanKind::kProject:
      for (auto& e : static_cast<LogicalProject&>(node).exprs) apply(e);
      break;
    case PlanKind::kJoin:
      apply(static_cast<LogicalJoin&>(node).condition);
      break;
    case PlanKind::kAggregate: {
      auto& agg = static_cast<LogicalAggregate&>(node);
      for (auto& e : agg.group_exprs) apply(e);
      for (auto& a : agg.aggregates) apply(a.arg);
      break;
    }
    case PlanKind::kSort:
      for (auto& k : static_cast<LogicalSort&>(node).keys) apply(k.expr);
      break;
    case PlanKind::kValues:
      for (auto& row : static_cast<LogicalValues&>(node).rows) {
        for (auto& e : row) apply(e);
      }
      break;
    case PlanKind::kAudit:
      apply(static_cast<LogicalAudit&>(node).fallback_predicate);
      break;
    case PlanKind::kLimit:
    case PlanKind::kDistinct:
      break;
  }
}

void VisitNodeExprs(const LogicalOperator& node,
                    const std::function<void(const Expr&)>& fn) {
  VisitNodeExprs(const_cast<LogicalOperator&>(node), [&fn](ExprPtr& e) {
    fn(*e);
  });
}

namespace {

int ExprEscapeLevel(const Expr& e) {
  int level = 0;
  if (e.kind == ExprKind::kOuterColumnRef) {
    level = e.levels_up;
  } else if (e.kind == ExprKind::kSubquery && e.subquery_plan != nullptr) {
    // References escaping the nested plan by k levels escape this expression's
    // scope by k - 1 levels (the nested plan consumes one level).
    level = MaxEscapeLevel(*e.subquery_plan) - 1;
    if (level < 0) level = 0;
  }
  for (const auto& c : e.children) {
    int cl = ExprEscapeLevel(*c);
    if (cl > level) level = cl;
  }
  return level;
}

}  // namespace

int MaxEscapeLevel(const LogicalOperator& plan) {
  int level = 0;
  VisitNodeExprs(plan, [&level](const Expr& e) {
    int l = ExprEscapeLevel(e);
    if (l > level) level = l;
  });
  for (const auto& c : plan.children) {
    int cl = MaxEscapeLevel(*c);
    if (cl > level) level = cl;
  }
  return level;
}

}  // namespace seltrig
