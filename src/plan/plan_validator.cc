#include "plan/plan_validator.h"

#include <utility>

#include "catalog/catalog.h"
#include "exec/gather.h"
#include "storage/table.h"
#include "exec/operators.h"
#include "plan/logical_plan.h"

namespace seltrig {

namespace {

Status Violation(const char* invariant, const std::string& detail) {
  return Status::Internal(std::string("plan validator [") + invariant +
                          "]: " + detail + " (failing closed)");
}

// An audit operator on the current root-to-leaf path, plus whether the path
// below it has crossed an operator it does not commute with. Descent copies
// the vector per child, so sibling branches track their crossings
// independently (plans are small; clarity over allocation counts here).
struct ActiveAudit {
  const std::string* name;
  bool crossed = false;
  const char* crossed_what = "";
};

void MarkCrossed(std::vector<ActiveAudit>* actives, const char* what) {
  for (ActiveAudit& a : *actives) {
    if (!a.crossed) {
      a.crossed = true;
      a.crossed_what = what;
    }
  }
}

class Validator {
 public:
  Validator(const PlanValidation* validation, const PlanExecutionInfo& info)
      : validation_(validation), info_(info) {}

  Status Run(const PhysicalOperator& root) {
    SELTRIG_RETURN_IF_ERROR(WalkPlacement(root, {}));
    if (info_.max_rows >= 0 && SpineHasAudit(root)) {
      SELTRIG_RETURN_IF_ERROR(
          CheckExactSpine(root, "the max_rows prefix-abort"));
    }
    return WalkLimits(root);
  }

 private:
  // --- Invariants 1 + 2 + gather mounting --------------------------------

  Status WalkPlacement(const PhysicalOperator& op,
                       std::vector<ActiveAudit> actives) {
    const LogicalOperator* node = op.logical_node();
    if (node == nullptr) {
      return Violation("introspection", "physical operator '" + op.DebugName() +
                                            "' carries no logical node");
    }
    if (const auto* gather = dynamic_cast<const PhysicalGatherOp*>(&op)) {
      SELTRIG_RETURN_IF_ERROR(CheckGatherMount());
      return WalkGatherSpine(gather->spine(), std::move(actives));
    }
    switch (node->kind()) {
      case PlanKind::kAudit:
        actives.push_back(
            {&static_cast<const LogicalAudit&>(*node).audit_name});
        break;
      case PlanKind::kScan:
        return CheckScan(static_cast<const LogicalScan&>(*node), actives);
      case PlanKind::kAggregate:
        MarkCrossed(&actives, "an aggregate");
        break;
      case PlanKind::kLimit:
        MarkCrossed(&actives, "a LIMIT");
        break;
      case PlanKind::kDistinct:
        MarkCrossed(&actives, "a DISTINCT");
        break;
      default:
        break;
    }
    const auto& children = op.profile_children();
    for (size_t i = 0; i < children.size(); ++i) {
      std::vector<ActiveAudit> child_actives = actives;
      // An audit above a left outer join does not observe the null-supplying
      // side's unmatched rows (their key is null-extended away), so it does
      // not commute into that branch.
      if (node->kind() == PlanKind::kJoin && i == 1 &&
          static_cast<const LogicalJoin&>(*node).join_type == JoinType::kLeft) {
        MarkCrossed(&child_actives,
                    "the null-supplying side of a left outer join");
      }
      SELTRIG_RETURN_IF_ERROR(
          WalkPlacement(*children[i], std::move(child_actives)));
    }
    return Status::OK();
  }

  // Worker pipelines are private to the gather's InitImpl, so the placement
  // walk continues over its logical spine, which lowers 1:1.
  Status WalkGatherSpine(const LogicalOperator& node,
                         std::vector<ActiveAudit> actives) {
    switch (node.kind()) {
      case PlanKind::kAudit:
        actives.push_back({&static_cast<const LogicalAudit&>(node).audit_name});
        break;
      case PlanKind::kFilter:
      case PlanKind::kProject:
        break;
      case PlanKind::kScan:
        return CheckScan(static_cast<const LogicalScan&>(node), actives);
      default:
        return Violation("gather-safety",
                         "parallel spine contains non-streaming operator '" +
                             node.Describe() + "'");
    }
    return WalkGatherSpine(*node.children[0], std::move(actives));
  }

  Status CheckScan(const LogicalScan& scan,
                   const std::vector<ActiveAudit>& actives) const {
    if (scan.virtual_rows != nullptr) return Status::OK();
    // Invariant 5 (universal): a plan bound before an ALTER TABLE carries
    // column indexes of the old schema; executing it would read the wrong
    // columns without any error. Stale plans fail closed.
    if (info_.catalog != nullptr && scan.schema_version != 0) {
      Result<Table*> table = info_.catalog->GetTable(scan.table_name);
      if (!table.ok()) {
        return Violation("schema-version",
                         "scan of table '" + scan.table_name +
                             "' which no longer exists in the catalog");
      }
      if ((*table)->schema_version() != scan.schema_version) {
        return Violation(
            "schema-version",
            "scan of table '" + scan.table_name + "' was bound at schema "
            "version " + std::to_string(scan.schema_version) +
                " but the catalog is at version " +
                std::to_string((*table)->schema_version()) +
                " (plan is stale; re-bind the statement)");
      }
    }
    if (validation_ == nullptr) return Status::OK();
    for (const AuditExpectation& expected : validation_->expected) {
      if (expected.sensitive_table != scan.table_name) continue;
      // The innermost (nearest-ancestor) audit for this expression is the one
      // covering this scan; outer same-name audits cover other branches.
      const ActiveAudit* nearest = nullptr;
      for (auto it = actives.rbegin(); it != actives.rend(); ++it) {
        if (*it->name == expected.audit_name) {
          nearest = &*it;
          break;
        }
      }
      if (nearest == nullptr) {
        if (validation_->check_domination) {
          return Violation("audit-domination",
                           "scan of sensitive table '" + scan.table_name +
                               "' is not dominated by an audit operator for "
                               "expression '" +
                               expected.audit_name + "'");
        }
        continue;
      }
      if (nearest->crossed && validation_->check_commutativity) {
        return Violation(
            "audit-commutativity",
            "audit operator '" + expected.audit_name + "' sits above " +
                nearest->crossed_what +
                " on the path to its sensitive scan of '" + scan.table_name +
                "'");
      }
    }
    return Status::OK();
  }

  Status CheckGatherMount() const {
    if (info_.correlated) {
      return Violation("gather-safety",
                       "parallel gather mounted for a correlated execution");
    }
    if (info_.accessed_capacity > 0) {
      return Violation("gather-safety",
                       "parallel gather mounted under a capped ACCESSED "
                       "registry (merge order would decide what overflows)");
    }
    return Status::OK();
  }

  // --- Invariant 3: exact-spine capacity ---------------------------------

  // Mirrors the executor's LazySpineHasAudit over the built physical tree.
  bool SpineHasAudit(const PhysicalOperator& op) const {
    if (const auto* gather = dynamic_cast<const PhysicalGatherOp*>(&op)) {
      const LogicalOperator* node = &gather->spine();
      while (node != nullptr) {
        if (node->kind() == PlanKind::kAudit) return true;
        node = node->children.empty() ? nullptr : node->children[0].get();
      }
      return false;
    }
    const LogicalOperator* node = op.logical_node();
    if (node == nullptr) return false;
    switch (node->kind()) {
      case PlanKind::kAudit:
        return true;
      case PlanKind::kFilter:
      case PlanKind::kProject:
      case PlanKind::kDistinct:
      case PlanKind::kLimit:
      case PlanKind::kJoin:  // only the probe side streams
        return !op.profile_children().empty() &&
               SpineHasAudit(*op.profile_children()[0]);
      default:
        return false;
    }
  }

  // Every operator on the streaming spine of an audited early stop must run
  // at batch capacity 1 — including the terminal producer (scan, or a
  // pipeline breaker whose output pacing the audit observes). Descent stops
  // below breakers: their subtrees run to exhaustion during Init and never
  // observe pull pacing.
  Status CheckExactSpine(const PhysicalOperator& op, const char* why) const {
    if (dynamic_cast<const PhysicalGatherOp*>(&op) != nullptr) {
      return Violation("exact-spine-cap",
                       std::string("parallel gather mounted on the audited "
                                   "spine below ") +
                           why);
    }
    if (op.batch_capacity() != 1) {
      return Violation(
          "exact-spine-cap",
          "operator '" + op.DebugName() + "' has batch capacity " +
              std::to_string(op.batch_capacity()) +
              " on an audited spine below " + why + " (must be 1)");
    }
    const LogicalOperator* node = op.logical_node();
    if (node == nullptr) return Status::OK();  // rejected by WalkPlacement
    switch (node->kind()) {
      case PlanKind::kFilter:
      case PlanKind::kProject:
      case PlanKind::kDistinct:
      case PlanKind::kLimit:
      case PlanKind::kAudit:
      case PlanKind::kJoin:
        if (!op.profile_children().empty()) {
          return CheckExactSpine(*op.profile_children()[0], why);
        }
        return Status::OK();
      default:
        return Status::OK();
    }
  }

  Status WalkLimits(const PhysicalOperator& op) const {
    const LogicalOperator* node = op.logical_node();
    if (node != nullptr && node->kind() == PlanKind::kLimit &&
        static_cast<const LogicalLimit&>(*node).limit >= 0 &&
        !op.profile_children().empty() &&
        SpineHasAudit(*op.profile_children()[0])) {
      SELTRIG_RETURN_IF_ERROR(
          CheckExactSpine(*op.profile_children()[0], "an audited LIMIT"));
    }
    for (const PhysicalOperator* child : op.profile_children()) {
      SELTRIG_RETURN_IF_ERROR(WalkLimits(*child));
    }
    return Status::OK();
  }

  const PlanValidation* validation_;
  const PlanExecutionInfo& info_;
};

}  // namespace

Status ValidatePhysicalPlan(const PhysicalOperator& root,
                            const PlanValidation* validation,
                            const PlanExecutionInfo& info) {
  return Validator(validation, info).Run(root);
}

}  // namespace seltrig
