// Plan-invariant linter (docs/STATIC_ANALYSIS.md): a post-build pass over the
// physical operator tree that re-checks what the Algorithm 1 placement pass
// and the executor's lowering promised. The placement heuristics, the
// audit-aware optimizer, and the spine-capacity machinery each maintain these
// invariants locally; the validator is the global, fail-closed backstop — a
// violated invariant means the statement would run with silently broken
// auditing, so it returns kInternal and the statement aborts instead.
//
// Invariants checked against an instrumented plan (PlanValidation present):
//   1. Audit domination — every scan of a sensitive table is dominated by an
//      audit operator for its expression on the root-to-leaf path.
//   2. Audit commutativity — no audit operator sits above a non-commutative
//      operator (aggregate, LIMIT, DISTINCT, the null-supplying side of a
//      left outer join) on the path down to its sensitive scan. Audits never
//      cross subquery boundaries by construction (each subquery plan is
//      instrumented separately), so paths here are within one plan tree.
// Both are skipped under PlacementHeuristic::kHighestNode, the ablation that
// deliberately places above non-commutative nodes and may legally drop the
// audit when no node exposes the partition key.
//
// Invariants checked on every plan (subquery plans included):
//   3. Exact-spine capacity — below an early-stopping consumer (a finite
//      LIMIT, or the root under a max_rows prefix-abort) whose lazy spine
//      contains an audit operator, every operator on the streaming spine has
//      batch capacity 1, reproducing row-at-a-time flow bit for bit.
//   4. Gather safety — the morsel-parallel gather is never mounted for a
//      correlated execution, with a capped ACCESSED registry, or anywhere
//      inside a capacity-1 exact spine.
//
// The Executor runs the validator on every plan it executes in debug builds,
// and behind ExecOptions::validate_plans in release builds.

#ifndef SELTRIG_PLAN_PLAN_VALIDATOR_H_
#define SELTRIG_PLAN_PLAN_VALIDATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace seltrig {

class Catalog;
class PhysicalOperator;

// One audit expression the session instrumented the plan for.
struct AuditExpectation {
  std::string audit_name;
  std::string sensitive_table;  // lower-case catalog name
};

// What the planning pipeline promised about an instrumented plan. Filled by
// Session::PrepareSelectPlan and installed on the ExecContext for the
// top-level plan; subquery plans executed through the same context get only
// the universal checks (their audit operators are placed independently).
struct PlanValidation {
  std::vector<AuditExpectation> expected;
  // Invariants 1 and 2 above; off under the kHighestNode ablation.
  bool check_domination = true;
  bool check_commutativity = true;
};

// Per-execution facts the universal checks depend on.
struct PlanExecutionInfo {
  // Client prefix-abort budget (ExecOptions::max_rows); -1 = unlimited.
  int64_t max_rows = -1;
  // Executing with a non-empty outer-row correlation stack.
  bool correlated = false;
  // ACCESSED cardinality cap of the attached registry; 0 = uncapped or none.
  size_t accessed_capacity = 0;
  // Live catalog for the schema-version staleness check (invariant 5): every
  // catalog scan's bind-time schema_version must still match the table's
  // current version, or the plan predates an ALTER TABLE and its column
  // indexes are wrong. Null skips the check (hand-built test plans).
  const Catalog* catalog = nullptr;
};

// Validates the built physical tree `root`. `validation` carries the
// placement expectations for this plan, or null to run only the universal
// checks. Returns OK or a kInternal status naming the violated invariant.
Status ValidatePhysicalPlan(const PhysicalOperator& root,
                            const PlanValidation* validation,
                            const PlanExecutionInfo& info);

}  // namespace seltrig

#endif  // SELTRIG_PLAN_PLAN_VALIDATOR_H_
