#include "replication/election.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>

#include "common/fault_injector.h"

namespace seltrig {

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

// Election frames never queue unboundedly: a stalled node must shed old
// traffic (a vote for a long-finished campaign is noise) rather than grow.
constexpr size_t kMaxInboxFrames = 4096;

// Bus endpoints deliver into an inbox: a bounded frame queue with a closed
// flag, shared between senders and the owning Receive loop.
struct Inbox {
  Mutex mutex;
  std::condition_variable_any cv;  // waits hold mutex
  std::deque<Frame> frames SELTRIG_GUARDED_BY(mutex);
  bool closed SELTRIG_GUARDED_BY(mutex) = false;
};

void InboxPush(Inbox* inbox, const Frame& frame) {
  MutexLock lock(&inbox->mutex);
  if (inbox->closed) return;
  if (inbox->frames.size() >= kMaxInboxFrames) inbox->frames.pop_front();
  inbox->frames.push_back(frame);
  inbox->cv.notify_all();
}

Result<Frame> InboxPop(Inbox* inbox, int64_t timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  MutexLock lock(&inbox->mutex);
  for (;;) {
    if (!inbox->frames.empty()) {
      Frame frame = inbox->frames.front();
      inbox->frames.pop_front();
      return frame;
    }
    if (inbox->closed) return Status::Unavailable("election bus closed");
    if (timeout_ms <= 0 ||
        inbox->cv.wait_until(inbox->mutex, deadline) ==
            std::cv_status::timeout) {
      if (!inbox->frames.empty()) continue;
      return Status::DeadlineExceeded("no election frame");
    }
  }
}

void InboxClose(Inbox* inbox) {
  MutexLock lock(&inbox->mutex);
  inbox->closed = true;
  inbox->cv.notify_all();
}

}  // namespace

// ---------------------------------------------------------------------------
// In-process mesh: a map of inboxes shared by every endpoint.

struct ElectionMeshState {
  Mutex mutex;
  std::map<std::string, std::shared_ptr<Inbox>> inboxes
      SELTRIG_GUARDED_BY(mutex);
};

namespace {

using MeshState = ElectionMeshState;

class InProcessBusEndpoint : public ElectionBus {
 public:
  InProcessBusEndpoint(std::shared_ptr<MeshState> mesh, std::string id,
                       std::shared_ptr<Inbox> inbox)
      : mesh_(std::move(mesh)), id_(std::move(id)), inbox_(std::move(inbox)) {}

  ~InProcessBusEndpoint() override { Close(); }

  Status Send(const std::string& peer, const Frame& frame) override {
    if (!fault::Maybe(fault_points::kElectionPartition).ok()) return Status::OK();  // cut
    std::shared_ptr<Inbox> target;
    {
      MutexLock lock(&mesh_->mutex);
      auto it = mesh_->inboxes.find(peer);
      if (it == mesh_->inboxes.end()) {
        return Status::Unavailable("no such election peer: " + peer);
      }
      target = it->second;
    }
    InboxPush(target.get(), frame);
    return Status::OK();
  }

  Result<Frame> Receive(int64_t timeout_ms) override {
    return InboxPop(inbox_.get(), timeout_ms);
  }

  void Close() override { InboxClose(inbox_.get()); }

 private:
  const std::shared_ptr<MeshState> mesh_;
  const std::string id_;
  const std::shared_ptr<Inbox> inbox_;
};

// ---------------------------------------------------------------------------
// Socket bus: a LocalSocketServer for inbound links (one reader thread per
// accepted connection feeding the inbox) and lazily-dialed, cached outbound
// channels per peer.

class SocketElectionBus : public ElectionBus {
 public:
  SocketElectionBus(std::unique_ptr<LocalSocketServer> server,
                    std::map<std::string, std::string> peer_paths)
      : server_(std::move(server)),
        peer_paths_(std::move(peer_paths)),
        inbox_(std::make_shared<Inbox>()) {
    accept_thread_ = std::thread(&SocketElectionBus::AcceptLoop, this);
  }

  ~SocketElectionBus() override {
    Close();
    if (accept_thread_.joinable()) accept_thread_.join();
    for (Reader& reader : readers_) {
      if (reader.thread.joinable()) reader.thread.join();
    }
  }

  Status Send(const std::string& peer, const Frame& frame) override {
    if (!fault::Maybe(fault_points::kElectionPartition).ok()) return Status::OK();  // cut
    auto it = peer_paths_.find(peer);
    if (it == peer_paths_.end()) {
      return Status::Unavailable("no such election peer: " + peer);
    }
    std::shared_ptr<FrameChannel> channel;
    {
      MutexLock lock(&mutex_);
      if (closed_) return Status::Unavailable("election bus closed");
      auto cached = outbound_.find(peer);
      if (cached != outbound_.end()) channel = cached->second;
    }
    if (channel == nullptr) {
      Result<std::shared_ptr<FrameChannel>> dialed =
          ConnectLocalSocket(it->second);
      if (!dialed.ok()) return dialed.status();
      channel = *dialed;
      MutexLock lock(&mutex_);
      if (closed_) {
        channel->Close();
        return Status::Unavailable("election bus closed");
      }
      outbound_[peer] = channel;
    }
    Status sent = channel->Send(frame);
    if (!sent.ok()) {
      // Drop the dead link; the next Send redials (the peer may have
      // restarted under the same path).
      channel->Close();
      MutexLock lock(&mutex_);
      auto cached = outbound_.find(peer);
      if (cached != outbound_.end() && cached->second == channel) {
        outbound_.erase(cached);
      }
    }
    return sent;
  }

  Result<Frame> Receive(int64_t timeout_ms) override {
    return InboxPop(inbox_.get(), timeout_ms);
  }

  void Close() override {
    std::map<std::string, std::shared_ptr<FrameChannel>> outbound;
    std::vector<std::shared_ptr<FrameChannel>> inbound;
    {
      MutexLock lock(&mutex_);
      if (closed_) return;
      closed_ = true;
      outbound.swap(outbound_);
      inbound.swap(inbound_);
    }
    server_->Close();
    for (auto& [peer, channel] : outbound) channel->Close();
    for (auto& channel : inbound) channel->Close();
    InboxClose(inbox_.get());
  }

 private:
  void AcceptLoop() {
    for (;;) {
      {
        MutexLock lock(&mutex_);
        if (closed_) return;
      }
      // Reap readers whose connections died: reconnect churn (every leader
      // change and peer restart redials) must not accumulate dead thread
      // handles for the life of the bus. A reader with `done` set is at most
      // instants from exiting, so the join never blocks meaningfully.
      for (auto it = readers_.begin(); it != readers_.end();) {
        if (it->done->load(std::memory_order_acquire)) {
          if (it->thread.joinable()) it->thread.join();
          it = readers_.erase(it);
        } else {
          ++it;
        }
      }
      Result<std::shared_ptr<FrameChannel>> accepted = server_->Accept(100);
      if (!accepted.ok()) {
        if (accepted.status().code() == ErrorCode::kDeadlineExceeded) continue;
        return;  // server closed
      }
      auto done = std::make_shared<std::atomic<bool>>(false);
      MutexLock lock(&mutex_);
      if (closed_) {
        (*accepted)->Close();
        return;
      }
      inbound_.push_back(*accepted);
      readers_.push_back(Reader{
          std::thread(&SocketElectionBus::ReadLoop, this, *accepted, done),
          done});
    }
  }

  void ReadLoop(std::shared_ptr<FrameChannel> channel,
                std::shared_ptr<std::atomic<bool>> done) {
    for (;;) {
      Result<Frame> frame = channel->Receive(200);
      if (frame.ok()) {
        InboxPush(inbox_.get(), *frame);
        continue;
      }
      if (frame.status().code() == ErrorCode::kDeadlineExceeded) {
        MutexLock lock(&mutex_);
        if (closed_) break;
        continue;
      }
      break;  // peer closed or stream died; peer will redial
    }
    channel->Close();
    {
      // Drop our inbound_ entry so closed channels do not accumulate
      // either. (Close() may have swapped inbound_ out already; then the
      // entry is gone and this is a no-op.)
      MutexLock lock(&mutex_);
      auto it = std::find(inbound_.begin(), inbound_.end(), channel);
      if (it != inbound_.end()) inbound_.erase(it);
    }
    // Last: after this store AcceptLoop may join and destroy the handle.
    done->store(true, std::memory_order_release);
  }

  const std::unique_ptr<LocalSocketServer> server_;
  const std::map<std::string, std::string> peer_paths_;
  const std::shared_ptr<Inbox> inbox_;

  Mutex mutex_;
  bool closed_ SELTRIG_GUARDED_BY(mutex_) = false;
  std::map<std::string, std::shared_ptr<FrameChannel>> outbound_
      SELTRIG_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<FrameChannel>> inbound_
      SELTRIG_GUARDED_BY(mutex_);

  // One reader per accepted connection; `done` is set by ReadLoop as its
  // very last action. Touched only by the AcceptLoop thread (spawn + reap)
  // and the destructor after accept_thread_ is joined.
  struct Reader {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Reader> readers_;
  std::thread accept_thread_;
};

}  // namespace

ElectionMesh::ElectionMesh() : impl_(std::make_shared<ElectionMeshState>()) {}

std::unique_ptr<ElectionBus> ElectionMesh::Endpoint(const std::string& id) {
  auto inbox = std::make_shared<Inbox>();
  {
    MutexLock lock(&impl_->mutex);
    impl_->inboxes[id] = inbox;  // a restart replaces the closed inbox
  }
  return std::make_unique<InProcessBusEndpoint>(impl_, id, std::move(inbox));
}

std::vector<std::unique_ptr<ElectionBus>> CreateInProcessElectionMesh(
    const std::vector<std::string>& ids) {
  ElectionMesh mesh;
  std::vector<std::unique_ptr<ElectionBus>> endpoints;
  endpoints.reserve(ids.size());
  for (const std::string& id : ids) endpoints.push_back(mesh.Endpoint(id));
  return endpoints;
}

Result<std::unique_ptr<ElectionBus>> CreateSocketElectionBus(
    const std::string& listen_path,
    std::map<std::string, std::string> peer_paths) {
  SELTRIG_ASSIGN_OR_RETURN(std::unique_ptr<LocalSocketServer> server,
                           LocalSocketServer::Listen(listen_path));
  return std::unique_ptr<ElectionBus>(
      new SocketElectionBus(std::move(server), std::move(peer_paths)));
}

const char* ElectionRoleName(ElectionRole role) {
  switch (role) {
    case ElectionRole::kFollower:
      return "follower";
    case ElectionRole::kCandidate:
      return "candidate";
    case ElectionRole::kLeader:
      return "leader";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ElectionNode

ElectionNode::ElectionNode(ElectionOptions options,
                           std::unique_ptr<ElectionBus> bus,
                           ReplicationConnect replication_connect)
    : options_(std::move(options)),
      cluster_size_(options_.peers.size() + 1),
      quorum_(cluster_size_ / 2 + 1),
      bus_(std::move(bus)),
      replication_connect_(std::move(replication_connect)),
      // The same deterministic jitter idiom as the shipper: seed mixed with
      // the node identity, so every node draws a distinct, replayable
      // timeout sequence for a fixed --seed.
      rng_(options_.seed * 0x9E3779B97F4A7C15ull + 1 +
           std::hash<std::string>{}(options_.id)),
      election_timeout_ms_(options_.election_timeout_min_ms) {}

Result<std::unique_ptr<ElectionNode>> ElectionNode::Start(
    ElectionOptions options, std::unique_ptr<ElectionBus> bus,
    ReplicationConnect replication_connect) {
  std::unique_ptr<ElectionNode> node(new ElectionNode(
      std::move(options), std::move(bus), std::move(replication_connect)));

  SELTRIG_ASSIGN_OR_RETURN(std::unique_ptr<ReplicaApplier> applier,
                           ReplicaApplier::Open(node->options_.dir,
                                                node->options_.applier));
  {
    MutexLock lock(&node->mutex_);
    node->applier_ = std::move(applier);
    node->term_ = node->applier_->applied().epoch;
    // Crash-revote safety: a vote granted before the crash binds this node
    // after it, both as "never vote twice in that epoch" and as the record
    // fence it promised the candidate.
    Result<VoteRecord> vote =
        ReadPersistedVote(node->options_.dir + "/wal");
    if (vote.ok()) {
      node->has_vote_ = true;
      node->vote_ = *vote;
      node->term_ = std::max(node->term_, node->vote_.epoch);
      node->applier_->RaiseEpochFloor(node->vote_.epoch);
    }
    // Startup grace: give an existing leader one full timeout to be heard
    // before anyone campaigns.
    node->last_heartbeat_ms_ = NowMs();
  }
  node->election_timeout_ms_ = node->RandomElectionTimeout();

  if (!node->options_.replication_listen_path.empty()) {
    SELTRIG_ASSIGN_OR_RETURN(
        node->replication_server_,
        LocalSocketServer::Listen(node->options_.replication_listen_path));
    node->replication_thread_ =
        std::thread(&ElectionNode::RunReplicationServer, node.get());
  }
  node->thread_ = std::thread(&ElectionNode::RunStateMachine, node.get());
  return node;
}

ElectionNode::~ElectionNode() { Stop(); }

void ElectionNode::Stop() {
  {
    MutexLock lock(&mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  bus_->Close();
  if (replication_server_ != nullptr) replication_server_->Close();
  if (thread_.joinable()) thread_.join();
  if (replication_thread_.joinable()) replication_thread_.join();

  std::unique_ptr<LogShipper> shipper;
  std::shared_ptr<ReplicaApplier> applier;
  std::shared_ptr<Database> db;
  {
    MutexLock lock(&mutex_);
    shipper = std::move(shipper_);
    applier = std::move(applier_);
    db = std::move(leader_db_);
  }
  if (shipper != nullptr) shipper->Stop();
  if (applier != nullptr) applier->Stop();
}

ElectionInfo ElectionNode::info() const {
  MutexLock lock(&mutex_);
  ElectionInfo info = counters_;
  info.role = role_;
  info.term = term_;
  info.leader_id = leader_id_;
  info.position = LocalPositionLocked();
  info.epoch = info.position.epoch;
  info.ms_since_heartbeat =
      last_heartbeat_ms_ < 0 ? -1 : NowMs() - last_heartbeat_ms_;
  return info;
}

std::shared_ptr<Database> ElectionNode::leader_database() const {
  MutexLock lock(&mutex_);
  return role_ == ElectionRole::kLeader ? leader_db_ : nullptr;
}

std::shared_ptr<Database> ElectionNode::follower_database() const {
  MutexLock lock(&mutex_);
  return applier_ != nullptr ? applier_->database() : nullptr;
}

std::vector<FollowerStatus> ElectionNode::FollowerStatuses() const {
  MutexLock lock(&mutex_);
  if (shipper_ == nullptr) return {};
  return shipper_->Followers();
}

Result<std::shared_ptr<FrameChannel>> ElectionNode::AcceptReplication() {
  MutexLock lock(&mutex_);
  if (stopping_ || promoting_ || role_ == ElectionRole::kLeader ||
      applier_ == nullptr) {
    return Status::Unavailable("node " + options_.id +
                               " is not accepting replication");
  }
  ChannelPair pair = CreateInProcessChannelPair();
  applier_->Stop();
  applier_->Start(pair.follower_end);
  return pair.primary_end;
}

bool ElectionNode::WaitForRole(ElectionRole role, int64_t timeout_ms) const {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (info().role == role) return true;
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

WalPosition ElectionNode::LocalPositionLocked() const {
  if (role_ == ElectionRole::kLeader && leader_db_ != nullptr) {
    return leader_db_->wal()->current_position();
  }
  if (applier_ != nullptr) return applier_->applied();
  return WalPosition{};
}

uint64_t ElectionNode::NextRandom() {
  rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
  return rng_ >> 33;
}

int64_t ElectionNode::RandomElectionTimeout() {
  const int64_t span = std::max<int64_t>(
      1, options_.election_timeout_max_ms - options_.election_timeout_min_ms);
  return options_.election_timeout_min_ms +
         static_cast<int64_t>(NextRandom() % static_cast<uint64_t>(span));
}

void ElectionNode::SendElectionFrame(const std::string& peer,
                                     const Frame& frame,
                                     bool is_vote_traffic) {
  if (is_vote_traffic && !fault::Maybe(fault_points::kElectionVoteDrop).ok()) {
    return;  // the frame is lost; the campaign retries on its timeout
  }
  (void)bus_->Send(peer, frame);
}

void ElectionNode::BroadcastToPeers(const Frame& frame, bool is_vote_traffic) {
  // Vote-request spread: stagger the per-peer sends by a small seeded delay
  // so simultaneous campaigns across nodes do not stay phase-locked (the
  // same role randomized timeouts play between campaigns, within one).
  const int64_t spread_ms =
      is_vote_traffic ? static_cast<int64_t>(NextRandom() % 4) : 0;
  bool first = true;
  for (const std::string& peer : options_.peers) {
    if (!first && spread_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(spread_ms));
    }
    first = false;
    SendElectionFrame(peer, frame, is_vote_traffic);
  }
}

void ElectionNode::RunStateMachine() {
  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (stopping_) return;
    }

    // Drain inbound election traffic; block at most one poll interval.
    Result<Frame> frame = bus_->Receive(options_.poll_interval_ms);
    if (frame.ok()) {
      HandleFrame(*frame);
      for (int drained = 0; drained < 64; ++drained) {
        Result<Frame> more = bus_->Receive(0);
        if (!more.ok()) break;
        HandleFrame(*more);
      }
    } else if (frame.status().code() == ErrorCode::kUnavailable) {
      continue;  // bus closed; the stopping_ check above exits
    }

    const int64_t now = NowMs();
    ElectionRole role;
    bool liveness_expired = false;
    bool campaign_expired = false;
    bool fenced_out = false;
    bool heartbeat_due = false;
    {
      MutexLock lock(&mutex_);
      role = role_;
      switch (role_) {
        case ElectionRole::kFollower:
          liveness_expired =
              now - last_heartbeat_ms_ > election_timeout_ms_;
          break;
        case ElectionRole::kCandidate:
          campaign_expired = now > campaign_deadline_ms_;
          break;
        case ElectionRole::kLeader:
          heartbeat_due = now - last_heartbeat_ms_ >=
                          options_.heartbeat_interval_ms;
          break;
      }
    }

    switch (role) {
      case ElectionRole::kFollower: {
        // The liveness check is the `election.timeout` fault point: firing
        // forces an immediate campaign regardless of the timer — the
        // injected form of "this follower believes the leader is gone".
        if (!fault::Maybe(fault_points::kElectionTimeout).ok()) liveness_expired = true;
        if (liveness_expired) StartCampaign();
        break;
      }
      case ElectionRole::kCandidate:
        if (campaign_expired) AbandonCampaign();
        break;
      case ElectionRole::kLeader: {
        Frame heartbeat;
        {
          MutexLock lock(&mutex_);
          if (role_ != ElectionRole::kLeader || leader_db_ == nullptr) break;
          if (heartbeat_due) last_heartbeat_ms_ = now;
          // A follower NAKed our records with a newer fence epoch: a new
          // leader exists and this one just has not heard it on the bus yet.
          if (shipper_ != nullptr) {
            for (const FollowerStatus& status : shipper_->Followers()) {
              if (status.fenced_out) fenced_out = true;
            }
          }
          if (heartbeat_due && !fenced_out) {
            const WalPosition tip = leader_db_->wal()->current_position();
            heartbeat.type = FrameType::kHeartbeat;
            heartbeat.epoch = tip.epoch;
            heartbeat.seq = tip.seq;
            heartbeat.offset = tip.offset;
            heartbeat.name = options_.id;
          }
        }
        if (fenced_out) {
          StepDown(0);
        } else if (heartbeat_due) {
          BroadcastToPeers(heartbeat, /*is_vote_traffic=*/false);
        }
        break;
      }
    }
  }
}

void ElectionNode::HandleFrame(const Frame& frame) {
  // seltrig-lint: dispatch(FrameType)
  switch (frame.type) {
    case FrameType::kHeartbeat:
      HandleHeartbeat(frame);
      break;
    case FrameType::kPreVote:
      HandlePreVote(frame);
      break;
    case FrameType::kVoteRequest:
      HandleVoteRequest(frame);
      break;
    case FrameType::kVoteGrant:
      HandleVoteGrant(frame);
      break;
    case FrameType::kHello:
    case FrameType::kRecord:
    case FrameType::kAck:
    case FrameType::kNak:
    case FrameType::kSnapshotStart:
    case FrameType::kSnapshotFile:
    case FrameType::kSnapshotDone:
    case FrameType::kSegmentSeal:
      break;  // replication frames do not travel on the election bus
  }
}

void ElectionNode::HandleHeartbeat(const Frame& frame) {
  uint64_t depose_epoch = 0;
  {
    MutexLock lock(&mutex_);
    if (role_ == ElectionRole::kLeader) {
      const uint64_t my_epoch =
          leader_db_ != nullptr ? leader_db_->wal()->current_position().epoch
                                : 0;
      if (frame.epoch > my_epoch) depose_epoch = frame.epoch;
    } else if (frame.epoch >= term_) {
      // A current leader (a deposed one heartbeats below our term and is
      // ignored — its liveness must not suppress elections).
      term_ = std::max(term_, frame.epoch);
      leader_id_ = frame.name;
      last_heartbeat_ms_ = NowMs();
      if (role_ == ElectionRole::kCandidate) role_ = ElectionRole::kFollower;
    }
  }
  if (depose_epoch != 0) StepDown(depose_epoch);
}

void ElectionNode::HandlePreVote(const Frame& frame) {
  const WalPosition candidate_position{frame.prev_seq, frame.seq,
                                       frame.offset};
  Frame grant;
  bool send_grant = false;
  {
    MutexLock lock(&mutex_);
    if (role_ == ElectionRole::kLeader) return;  // I am provably alive
    if (frame.epoch <= term_) return;  // campaigning for a spent epoch
    // Pre-vote leader stickiness: only a node that ALSO believes the leader
    // is gone pre-grants, so one flaky link cannot start real elections.
    const bool timed_out =
        NowMs() - last_heartbeat_ms_ > election_timeout_ms_;
    if (!timed_out) return;
    if (candidate_position < LocalPositionLocked()) {
      ++counters_.stale_candidates_rejected;
      return;
    }
    ++counters_.pre_votes_granted;
    grant.type = FrameType::kVoteGrant;
    grant.epoch = frame.epoch;
    grant.name = options_.id;
    grant.payload = "pre";
    send_grant = true;
  }
  if (send_grant) {
    SendElectionFrame(frame.name, grant, /*is_vote_traffic=*/true);
  }
}

void ElectionNode::HandleVoteRequest(const Frame& frame) {
  const WalPosition candidate_position{frame.prev_seq, frame.seq,
                                       frame.offset};
  uint64_t depose_epoch = 0;
  Frame grant;
  bool send_grant = false;
  {
    MutexLock lock(&mutex_);
    if (role_ == ElectionRole::kLeader) {
      // A real election at a newer epoch means a quorum already pre-voted
      // that this leader is gone; stop leading and let it finish. (No grant
      // from this frame: the node votes only once it is a follower again.)
      const uint64_t my_epoch =
          leader_db_ != nullptr ? leader_db_->wal()->current_position().epoch
                                : 0;
      if (frame.epoch > my_epoch) depose_epoch = frame.epoch;
    } else {
      do {
        if (frame.epoch <= term_ &&
            !(has_vote_ && vote_.epoch == frame.epoch &&
              vote_.candidate == frame.name)) {
          break;  // spent epoch (re-grants for our own recorded vote are ok)
        }
        const WalPosition mine = LocalPositionLocked();
        if (frame.epoch <= mine.epoch) break;  // cannot unseat applied epoch
        if (has_vote_ && vote_.epoch >= frame.epoch &&
            !(vote_.epoch == frame.epoch && vote_.candidate == frame.name)) {
          break;  // already promised this (or a newer) epoch to someone else
        }
        if (candidate_position < mine) {
          // The up-to-dateness gate: granting here could elect a leader
          // missing sync-acked records.
          ++counters_.stale_candidates_rejected;
          break;
        }
        // Durability before the grant leaves this machine: a crash between
        // the two must lose the grant, never the vote.
        if (!PersistVote(options_.dir + "/wal",
                         VoteRecord{frame.epoch, frame.name})
                 .ok()) {
          break;
        }
        has_vote_ = true;
        vote_ = VoteRecord{frame.epoch, frame.name};
        term_ = std::max(term_, frame.epoch);
        // The vote is also a fence promise: no pre-election leader may
        // extend our journal past this point (see RaiseEpochFloor).
        if (applier_ != nullptr) applier_->RaiseEpochFloor(frame.epoch);
        // Granting resets the election timer (we just endorsed a leader
        // hopeful; give it time to win before campaigning ourselves).
        last_heartbeat_ms_ = NowMs();
        if (role_ == ElectionRole::kCandidate) role_ = ElectionRole::kFollower;
        ++counters_.votes_granted;
        grant.type = FrameType::kVoteGrant;
        grant.epoch = frame.epoch;
        grant.name = options_.id;
        grant.payload = "real";
        send_grant = true;
      } while (false);
    }
  }
  if (depose_epoch != 0) StepDown(depose_epoch);
  if (send_grant) {
    SendElectionFrame(frame.name, grant, /*is_vote_traffic=*/true);
  }
}

void ElectionNode::HandleVoteGrant(const Frame& frame) {
  bool quorum_prevote = false;
  bool quorum_real = false;
  {
    MutexLock lock(&mutex_);
    if (role_ != ElectionRole::kCandidate) return;
    if (frame.epoch != campaign_epoch_) return;  // a stale campaign's grant
    const bool pre = frame.payload == "pre";
    if (pre != prevote_phase_) return;
    if (std::find(grants_.begin(), grants_.end(), frame.name) !=
        grants_.end()) {
      return;  // duplicate (resent or injected-duplicate) grant
    }
    grants_.push_back(frame.name);
    if (grants_.size() >= quorum_) {
      if (prevote_phase_) {
        quorum_prevote = true;
      } else {
        quorum_real = true;
      }
    }
  }
  if (quorum_prevote) EnterRealElection();
  if (quorum_real) WinElection();
}

void ElectionNode::StartCampaign() {
  Frame prevote;
  {
    MutexLock lock(&mutex_);
    if (role_ != ElectionRole::kFollower || stopping_) return;
    role_ = ElectionRole::kCandidate;
    prevote_phase_ = true;
    campaign_epoch_ = term_ + 1;
    campaign_position_ = LocalPositionLocked();
    // `election.stale_candidate`: campaign while claiming an empty journal —
    // a healthy cluster must reject this candidate at the up-to-dateness
    // gate, or the fault-matrix run fails its acked-prefix assertion.
    if (!fault::Maybe(fault_points::kElectionStaleCandidate).ok()) {
      campaign_position_ = WalPosition{};
    }
    grants_.assign(1, options_.id);  // self pre-grant
    campaign_deadline_ms_ = NowMs() + RandomElectionTimeout();
    ++counters_.elections_started;
    prevote.type = FrameType::kPreVote;
    prevote.epoch = campaign_epoch_;
    prevote.seq = campaign_position_.seq;
    prevote.offset = campaign_position_.offset;
    prevote.prev_seq = campaign_position_.epoch;
    prevote.name = options_.id;
  }
  BroadcastToPeers(prevote, /*is_vote_traffic=*/true);
  // Single-node cluster: the self pre-grant already is a quorum.
  bool quorum;
  {
    MutexLock lock(&mutex_);
    quorum = role_ == ElectionRole::kCandidate && prevote_phase_ &&
             grants_.size() >= quorum_;
  }
  if (quorum) EnterRealElection();
}

void ElectionNode::EnterRealElection() {
  Frame request;
  {
    MutexLock lock(&mutex_);
    if (role_ != ElectionRole::kCandidate || !prevote_phase_) return;
    // The single-vote rule binds candidates too: if this node already
    // granted campaign_epoch_ (or newer) to another candidate, it cannot
    // also vote for itself there.
    if (has_vote_ && vote_.epoch >= campaign_epoch_ &&
        !(vote_.epoch == campaign_epoch_ && vote_.candidate == options_.id)) {
      role_ = ElectionRole::kFollower;
      last_heartbeat_ms_ = NowMs();
      return;
    }
    if (!PersistVote(options_.dir + "/wal",
                     VoteRecord{campaign_epoch_, options_.id})
             .ok()) {
      role_ = ElectionRole::kFollower;
      last_heartbeat_ms_ = NowMs();
      return;
    }
    has_vote_ = true;
    vote_ = VoteRecord{campaign_epoch_, options_.id};
    term_ = std::max(term_, campaign_epoch_);
    if (applier_ != nullptr) applier_->RaiseEpochFloor(campaign_epoch_);
    prevote_phase_ = false;
    grants_.assign(1, options_.id);  // self vote
    request.type = FrameType::kVoteRequest;
    request.epoch = campaign_epoch_;
    request.seq = campaign_position_.seq;
    request.offset = campaign_position_.offset;
    request.prev_seq = campaign_position_.epoch;
    request.name = options_.id;
  }
  BroadcastToPeers(request, /*is_vote_traffic=*/true);
  bool quorum;
  {
    MutexLock lock(&mutex_);
    quorum = role_ == ElectionRole::kCandidate && !prevote_phase_ &&
             grants_.size() >= quorum_;
  }
  if (quorum) WinElection();
}

void ElectionNode::WinElection() {
  std::shared_ptr<ReplicaApplier> applier;
  uint64_t epoch = 0;
  {
    MutexLock lock(&mutex_);
    if (role_ != ElectionRole::kCandidate || prevote_phase_) return;
    if (applier_ == nullptr) return;
    applier = applier_;
    epoch = campaign_epoch_;
    // Promote runs with mutex_ released while role_ is still kCandidate;
    // without this flag a stale shipper connection arriving in that window
    // would Stop()/Start() the applier and race its receive loop against
    // the promotion.
    promoting_ = true;
  }
  // Zero operator involvement: the quorum IS the promotion authority.
  Result<std::shared_ptr<Database>> promoted = applier->Promote(epoch);
  {
    MutexLock lock(&mutex_);
    promoting_ = false;
    if (!promoted.ok()) {
      // Promotion failed (e.g. the journal directory went bad); stand down
      // and let another node win. The applier survives a failed Promote and
      // can resume receiving.
      counters_.health = promoted.status();
      role_ = ElectionRole::kFollower;
      last_heartbeat_ms_ = NowMs();
      return;
    }
    leader_db_ = *promoted;
    applier_.reset();
    role_ = ElectionRole::kLeader;
    leader_id_ = options_.id;
    term_ = std::max(term_, epoch);
    // First heartbeat is immediately due, without making the reported
    // heartbeat age (info().ms_since_heartbeat, the `.replica` view) a
    // bogus NowMs()-since-epoch value until it broadcasts.
    last_heartbeat_ms_ = NowMs() - options_.heartbeat_interval_ms;
    ShipperOptions shipper_options = options_.shipper;
    shipper_options.jitter_seed =
        options_.seed * 0x9E3779B97F4A7C15ull + epoch;
    shipper_ =
        std::make_unique<LogShipper>(leader_db_.get(), shipper_options);
    for (const std::string& peer : options_.peers) {
      ReplicationConnect connect = replication_connect_;
      shipper_->AddFollower(
          peer, [connect, peer]() { return connect(peer); });
    }
  }
}

void ElectionNode::AbandonCampaign() {
  MutexLock lock(&mutex_);
  if (role_ != ElectionRole::kCandidate) return;
  // Back to follower with a fresh randomized timeout — the randomness that
  // breaks repeated split votes. term_ keeps any bump from the real phase,
  // so the next campaign escalates past the epoch that just split.
  role_ = ElectionRole::kFollower;
  last_heartbeat_ms_ = NowMs();
  election_timeout_ms_ = RandomElectionTimeout();
}

void ElectionNode::StepDown(uint64_t observed_epoch) {
  std::unique_ptr<LogShipper> shipper;
  std::shared_ptr<Database> db;
  {
    MutexLock lock(&mutex_);
    if (role_ != ElectionRole::kLeader) return;
    ++counters_.steps_down;
    shipper = std::move(shipper_);
    db = std::move(leader_db_);
    role_ = ElectionRole::kFollower;
    leader_id_.clear();
    term_ = std::max(term_, observed_epoch);
    last_heartbeat_ms_ = NowMs();
    election_timeout_ms_ = RandomElectionTimeout();
  }
  // The shipper references the database; destroy it first.
  if (shipper != nullptr) shipper->Stop();
  shipper.reset();
  // Wait for drivers to release leader_database() holds: the Database
  // destructor closes the journal writer, and the directory must be fully
  // quiescent before it reopens as a follower. This is why the API contract
  // says to hold the pointer only across single statements.
  std::weak_ptr<Database> weak = db;
  db.reset();
  while (!weak.expired()) {
    {
      MutexLock lock(&mutex_);
      if (stopping_) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<std::unique_ptr<ReplicaApplier>> reopened =
      ReplicaApplier::Open(options_.dir, options_.applier);
  MutexLock lock(&mutex_);
  if (!reopened.ok()) {
    counters_.health = reopened.status();
    return;
  }
  applier_ = std::move(*reopened);
  // Re-arm the fence for any vote this node granted while (or before)
  // leading; the journal epoch alone may be older than the promise.
  if (has_vote_) applier_->RaiseEpochFloor(vote_.epoch);
}

void ElectionNode::RunReplicationServer() {
  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (stopping_) return;
    }
    Result<std::shared_ptr<FrameChannel>> accepted =
        replication_server_->Accept(100);
    if (!accepted.ok()) {
      if (accepted.status().code() == ErrorCode::kDeadlineExceeded) continue;
      return;  // server closed
    }
    MutexLock lock(&mutex_);
    if (stopping_ || promoting_ || role_ == ElectionRole::kLeader ||
        applier_ == nullptr) {
      (*accepted)->Close();  // not a follower right now; the leader retries
      continue;
    }
    applier_->Stop();
    applier_->Start(*accepted);
  }
}

}  // namespace seltrig
