#include "replication/applier.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "engine/recovery.h"

namespace seltrig {

ReplicaApplier::ReplicaApplier(std::string dir, ApplierOptions options)
    : dir_(std::move(dir)), options_(options) {}

ReplicaApplier::~ReplicaApplier() { Stop(); }

Result<std::unique_ptr<ReplicaApplier>> ReplicaApplier::Open(
    const std::string& dir, ApplierOptions options) {
  auto applier =
      std::unique_ptr<ReplicaApplier>(new ReplicaApplier(dir, options));

  RecoveryStats rstats;
  RecoverOptions ropts;
  ropts.enable_wal = false;  // the applier persists segments itself
  SELTRIG_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                           RecoverDatabase(dir, &rstats, ropts));

  // The local tail after recovery = this follower's verified prefix: the
  // recovery replay applied exactly the records below it (any torn tail was
  // truncated away).
  applier->epoch_ = rstats.max_epoch;
  SELTRIG_ASSIGN_OR_RETURN(std::vector<WalSegment> segments,
                           ListWalSegments(dir + "/wal"));
  if (!segments.empty()) {
    SELTRIG_ASSIGN_OR_RETURN(WalSegmentContents contents,
                             ReadWalSegment(segments.back().path));
    applier->seq_ = segments.back().seq;
    applier->offset_ = contents.valid_bytes;
    applier->epoch_ = std::max(applier->epoch_, contents.epoch);
  } else {
    // Fresh follower (or all history superseded by the snapshot): resume at
    // the snapshot's journal cut, or the very first segment.
    applier->seq_ = std::max<uint64_t>(rstats.snapshot_wal_seq, 1);
    applier->offset_ = 0;
  }
  {
    MutexLock lock(&applier->mutex_);
    applier->db_ = std::shared_ptr<Database>(std::move(db));
    applier->applied_ =
        WalPosition{applier->epoch_, applier->seq_, applier->offset_};
  }
  return applier;
}

void ReplicaApplier::Start(std::shared_ptr<FrameChannel> channel) {
  Stop();
  {
    MutexLock lock(&mutex_);
    // A promoted applier is finished: its database is a primary now, and a
    // stale shipper connection must never restart the receive loop over it
    // (records at or above the vote floor would pass the epoch fence).
    if (promoted_) {
      channel->Close();
      return;
    }
    stopping_ = false;
  }
  channel_ = channel;
  thread_ = std::thread(&ReplicaApplier::Run, this, std::move(channel));
}

void ReplicaApplier::Stop() {
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  if (channel_ != nullptr) channel_->Close();
  if (thread_.joinable()) thread_.join();
  channel_.reset();
}

std::shared_ptr<Database> ReplicaApplier::database() const {
  MutexLock lock(&mutex_);
  return db_;
}

WalPosition ReplicaApplier::applied() const {
  MutexLock lock(&mutex_);
  return applied_;
}

ReplicaApplier::Stats ReplicaApplier::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

Status ReplicaApplier::health() const {
  MutexLock lock(&mutex_);
  return health_;
}

Result<std::shared_ptr<Database>> ReplicaApplier::Promote(uint64_t epoch) {
  Stop();
  MutexLock lock(&mutex_);
  if (promoted_) {
    return Status::InvalidArgument("replica already promoted");
  }
  SELTRIG_RETURN_IF_ERROR(health_);
  if (epoch == 0) epoch = epoch_ + 1;
  if (epoch <= epoch_) {
    return Status::InvalidArgument(
        "promotion epoch " + std::to_string(epoch) +
        " does not exceed the applied epoch " + std::to_string(epoch_));
  }
  // Everything the applier persisted is applied (that is the acceptance
  // discipline), so there is no prefix to cut: re-arm the journal directly
  // under the promotion epoch. Segments a deposed primary keeps writing
  // under epoch_ are rejected against it from here on.
  segment_.Close();
  SELTRIG_RETURN_IF_ERROR(db_->EnableWal(dir_, epoch));
  promoted_ = true;
  return db_;
}

void ReplicaApplier::RaiseEpochFloor(uint64_t epoch) {
  uint64_t current = epoch_floor_.load(std::memory_order_relaxed);
  while (current < epoch && !epoch_floor_.compare_exchange_weak(
                                current, epoch, std::memory_order_relaxed)) {
  }
}

void ReplicaApplier::Run(std::shared_ptr<FrameChannel> channel) {
  // Announce the resume point; the shipper tails from exactly here.
  Frame hello;
  hello.type = FrameType::kHello;
  hello.epoch = epoch_;
  hello.seq = seq_;
  hello.offset = offset_;
  if (!channel->Send(hello).ok()) return;

  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (stopping_) return;
    }
    Result<Frame> received = channel->Receive(options_.receive_timeout_ms);
    if (received.status().code() == ErrorCode::kDeadlineExceeded) continue;
    if (!received.ok()) return;  // channel died; owner reconnects via Start
    Status handled = Status::OK();
    // seltrig-lint: dispatch(FrameType)
    switch (received->type) {
      case FrameType::kRecord:
        handled = HandleRecord(channel.get(), *received);
        break;
      case FrameType::kHeartbeat:
        // Liveness reply: our current verified position.
        handled = SendAck(channel.get());
        break;
      case FrameType::kSnapshotStart: {
        staging_dir_ = dir_ + "/snapshot.incoming";
        std::error_code ec;
        std::filesystem::remove_all(staging_dir_, ec);
        std::filesystem::create_directories(staging_dir_, ec);
        in_snapshot_ = !ec;
        break;
      }
      case FrameType::kSnapshotFile:
        handled = HandleSnapshotFile(*received);
        break;
      case FrameType::kSnapshotDone:
        handled = InstallSnapshot(received->seq, received->epoch, channel.get());
        break;
      case FrameType::kSegmentSeal:
        handled = HandleSegmentSeal(channel.get(), *received);
        break;
      case FrameType::kHello:
      case FrameType::kAck:
      case FrameType::kNak:
        break;  // follower-to-primary frames; a primary never sends these
      case FrameType::kPreVote:
      case FrameType::kVoteRequest:
      case FrameType::kVoteGrant:
        break;  // election traffic travels on the election bus, not here
    }
    if (!handled.ok()) {
      // kUnavailable out of a handler is the channel dying under us — an ack
      // or nak hitting a socket the crashed primary abandoned, or a torn
      // snapshot stream — a reconnection event, exactly like the
      // receive-side death above. health_ is reserved for unrecoverable
      // local conditions (apply divergence): poisoning it with a transport
      // error would make Promote() refuse forever, and a cluster that keeps
      // electing this otherwise-intact follower livelocks on its failed
      // promotions instead of failing over.
      if (handled.code() == ErrorCode::kUnavailable) return;
      MutexLock lock(&mutex_);
      health_ = handled;
      return;
    }
  }
}

Status ReplicaApplier::HandleRecord(FrameChannel* channel, const Frame& frame) {
  // Receive-side fault: the frame is lost after arrival (as if dropped in
  // transit); gap detection and NAK reseek recover.
  if (!fault::Maybe(fault_points::kReplicationRecv).ok()) return Status::OK();

  const uint64_t epoch_fence =
      std::max(epoch_, epoch_floor_.load(std::memory_order_relaxed));
  // Judge the SENDER, not the record: frame.epoch is the record's origin
  // epoch, and a post-failover leader legitimately relays committed records
  // written under earlier epochs (the tail of a pre-failover segment this
  // follower still needs). Its frame.authority carries its live epoch and
  // passes the fence; a deposed primary resending its fork claims only its
  // own stale epoch in both fields and stays fenced out.
  if (std::max(frame.epoch, frame.authority) < epoch_fence) {
    // A deposed primary writing under a pre-failover epoch — or, when the
    // floor is the binding bound, under an epoch this node already granted a
    // vote against. Never accept: the failover (or the vote promise) decided
    // against these commits.
    {
      MutexLock lock(&mutex_);
      ++stats_.epoch_rejected;
    }
    return SendNak(channel,
                   "stale epoch " + std::to_string(frame.epoch) +
                       " (follower at " + std::to_string(epoch_fence) + ")",
                   epoch_fence);
  }

  // The frame names the position it continues from (prev_*); the record is
  // acceptable only if that is exactly our local tail. This closes the
  // reorder hazard at segment boundaries: a first-record-of-next-segment
  // frame overtaking the last records of the current one carries a prev
  // position past our tail and is NAKed, not applied. Offset 0 and
  // just-past-header name the same point (nothing sits between them), so
  // both sides are normalized before comparing.
  auto norm = [](uint64_t off) {
    return off == 0 ? kWalSegmentHeaderSize : off;
  };
  const uint64_t local_offset = norm(offset_);
  const uint64_t prev_offset = norm(frame.prev_offset);
  const bool prev_below =
      frame.prev_seq < seq_ ||
      (frame.prev_seq == seq_ && prev_offset < local_offset);
  if (frame.prev_seq == seq_ && prev_offset == local_offset) {
    // continue below
  } else if (prev_below) {
    {
      // Scoped: SendAck takes mutex_ itself.
      MutexLock lock(&mutex_);
      ++stats_.duplicates_dropped;
    }
    return SendAck(channel);  // re-ack so the shipper's window drains
  } else {
    {
      MutexLock lock(&mutex_);
      ++stats_.gaps_nakked;
    }
    return SendNak(channel, "gap: record continues from segment " +
                                std::to_string(frame.prev_seq) + " offset " +
                                std::to_string(frame.prev_offset));
  }

  // Apply-side fault: refuse the record before it has any effect.
  if (!fault::Maybe(fault_points::kReplicationApply).ok()) {
    return SendNak(channel, "apply refused by fault injection");
  }

  // Verify before persisting: a record is either durable+applied+acked or
  // it never happened locally.
  Result<std::vector<WalOp>> ops = DecodeWalRecord(frame.payload);
  if (!ops.ok()) {
    return SendNak(channel, "record does not verify: " + ops.status().ToString());
  }

  // Schema-version fencing: a DDL record stamped with version V may only be
  // applied to a table currently at V - 1. A gap means this follower missed a
  // schema change (or records arrived out of order past the prev-continuity
  // check, e.g. after a buggy retransmission) — applying anyway would execute
  // the ALTER against the wrong baseline and silently diverge every later
  // physical op. NAK so the shipper reseeks instead.
  for (const WalOp& op : *ops) {
    if (op.kind != WalOp::Kind::kDdl) continue;
    std::shared_ptr<Database> db = database();
    Result<Table*> table = db->catalog()->GetTable(op.table);
    if (!table.ok()) {
      return SendNak(channel, "ddl for unknown table '" + op.table + "'");
    }
    if ((*table)->schema_version() + 1 != op.schema_version) {
      return SendNak(channel,
                     "schema version gap on table '" + op.table + "': local " +
                         std::to_string((*table)->schema_version()) +
                         ", record expects " +
                         std::to_string(op.schema_version - 1));
    }
  }

  if (frame.seq != seq_ || !segment_.is_open()) {
    SELTRIG_RETURN_IF_ERROR(OpenSegment(frame.seq, frame.epoch));
  }
  if (frame.offset != offset_) {
    // Same continuation point but a different byte offset can only mean the
    // segment layouts diverged — refuse loudly.
    return Status::DataLoss("record offset " + std::to_string(frame.offset) +
                            " does not match local tail " +
                            std::to_string(offset_) + " in segment " +
                            std::to_string(seq_));
  }
  epoch_ = frame.epoch;
  SELTRIG_RETURN_IF_ERROR(
      segment_.Append(frame.payload.data(), frame.payload.size()));
  if (options_.fsync_before_ack) {
    SELTRIG_RETURN_IF_ERROR(segment_.Sync());
  }
  offset_ += frame.payload.size();

  // Apply to the live database. A failure here is divergence (the record
  // was verified and the primary applied it) — fatal, surfaced via health().
  std::shared_ptr<Database> db = database();
  SELTRIG_RETURN_IF_ERROR(ApplyWalCommit(db.get(), *ops, /*live=*/true));
  {
    MutexLock lock(&mutex_);
    applied_ = WalPosition{epoch_, seq_, offset_};
    ++stats_.records_applied;
  }
  return SendAck(channel);
}

Status ReplicaApplier::HandleSegmentSeal(FrameChannel* channel,
                                         const Frame& frame) {
  // Same arrival fault as records: the seal is lost after arrival and the
  // shipper's ack-staleness retransmission recovers.
  if (!fault::Maybe(fault_points::kReplicationRecv).ok()) return Status::OK();

  const uint64_t epoch_fence =
      std::max(epoch_, epoch_floor_.load(std::memory_order_relaxed));
  if (std::max(frame.epoch, frame.authority) < epoch_fence) {
    {
      MutexLock lock(&mutex_);
      ++stats_.epoch_rejected;
    }
    return SendNak(channel,
                   "stale epoch " + std::to_string(frame.epoch) +
                       " (follower at " + std::to_string(epoch_fence) + ")",
                   epoch_fence);
  }

  // The seal names the position it continues from; accept only at our exact
  // tail — the same continuity rule as kRecord. A seal for a boundary we
  // already crossed is a duplicate (re-ack); one past our tail is a gap
  // (NAK reseeks the shipper, which then ships the missing records — or a
  // snapshot, if a checkpoint already truncated them).
  auto norm = [](uint64_t off) {
    return off == 0 ? kWalSegmentHeaderSize : off;
  };
  const uint64_t local_offset = norm(offset_);
  const uint64_t prev_offset = norm(frame.prev_offset);
  const bool prev_below =
      frame.prev_seq < seq_ ||
      (frame.prev_seq == seq_ && prev_offset < local_offset);
  if (frame.prev_seq == seq_ && prev_offset == local_offset) {
    // continue below
  } else if (prev_below) {
    {
      MutexLock lock(&mutex_);
      ++stats_.duplicates_dropped;
    }
    return SendAck(channel);
  } else {
    {
      MutexLock lock(&mutex_);
      ++stats_.gaps_nakked;
    }
    return SendNak(channel, "gap: seal continues from segment " +
                                std::to_string(frame.prev_seq) + " offset " +
                                std::to_string(frame.prev_offset));
  }

  // Materialize the named segment, byte-identical to the primary's (the
  // frame carries its header epoch), and move the tail onto it.
  SELTRIG_RETURN_IF_ERROR(OpenSegment(frame.seq, frame.epoch));
  if (offset_ != frame.offset) {
    // A preexisting local segment of a different length: the layouts
    // diverged — refuse loudly, exactly as the record path does.
    return Status::DataLoss("sealed segment " + std::to_string(frame.seq) +
                            " opens at offset " + std::to_string(offset_) +
                            ", seal names " + std::to_string(frame.offset));
  }
  if (options_.fsync_before_ack) {
    SELTRIG_RETURN_IF_ERROR(segment_.Sync());
  }
  epoch_ = std::max(epoch_, frame.epoch);
  {
    MutexLock lock(&mutex_);
    applied_ = WalPosition{epoch_, seq_, offset_};
  }
  return SendAck(channel);
}

Status ReplicaApplier::HandleSnapshotFile(const Frame& frame) {
  if (!in_snapshot_) return Status::OK();  // stray frame; Start/Done bracket it
  if (frame.name.empty() || frame.name.find('/') != std::string::npos ||
      frame.name == ".." ) {
    return Status::DataLoss("snapshot file with unsafe name '" + frame.name + "'");
  }
  const std::string path = staging_dir_ + "/" + frame.name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::ExecutionError("cannot write " + path);
  out.write(frame.payload.data(),
            static_cast<std::streamsize>(frame.payload.size()));
  out.close();
  if (!out) return Status::ExecutionError("short write to " + path);
  return SyncFile(path);
}

Status ReplicaApplier::InstallSnapshot(uint64_t cut_seq, uint64_t cut_epoch,
                                       FrameChannel* channel) {
  if (!in_snapshot_) return Status::OK();
  in_snapshot_ = false;
  SELTRIG_RETURN_IF_ERROR(SyncDirectory(staging_dir_));

  // Swap the staged snapshot in and drop the superseded local journal: the
  // snapshot covers everything below the cut, and everything at or above it
  // will be re-shipped from the cut.
  segment_.Close();
  const std::string snapshot_dir = dir_ + "/snapshot";
  std::error_code ec;
  std::filesystem::remove_all(snapshot_dir, ec);
  std::filesystem::rename(staging_dir_, snapshot_dir, ec);
  if (ec) {
    return Status::ExecutionError("cannot install snapshot at " + snapshot_dir);
  }
  SELTRIG_RETURN_IF_ERROR(SyncDirectory(dir_));
  SELTRIG_ASSIGN_OR_RETURN(std::vector<WalSegment> segments,
                           ListWalSegments(dir_ + "/wal"));
  for (const WalSegment& segment : segments) {
    std::filesystem::remove(segment.path, ec);
  }
  // Advisory: recovery tolerates resurrected pre-snapshot segments (they
  // are behind the snapshot cut and are skipped), so this sync is not load-
  // bearing for correctness.
  (void)SyncDirectory(dir_ + "/wal");

  // Rebuild the follower database from the installed snapshot.
  RecoveryStats rstats;
  RecoverOptions ropts;
  ropts.enable_wal = false;
  SELTRIG_ASSIGN_OR_RETURN(std::unique_ptr<Database> rebuilt,
                           RecoverDatabase(dir_, &rstats, ropts));
  seq_ = std::max<uint64_t>(cut_seq, 1);
  offset_ = 0;
  epoch_ = std::max(epoch_, rstats.max_epoch);
  // Materialize the cut segment now, byte-identical to the primary's (the
  // done frame names the cut segment's header epoch). The snapshot's cut
  // may BE the primary's tip — a checkpoint-fresh segment holding no
  // records — and waiting for a first record to open the segment would
  // strand this follower one segment header short of the primary's
  // position for as long as the workload stays quiet.
  SELTRIG_RETURN_IF_ERROR(OpenSegment(seq_, cut_epoch));
  epoch_ = std::max(epoch_, cut_epoch);
  {
    MutexLock lock(&mutex_);
    db_ = std::shared_ptr<Database>(std::move(rebuilt));
    applied_ = WalPosition{epoch_, seq_, offset_};
    ++stats_.snapshots_installed;
  }

  // Re-announce: the shipper resumes tailing from the cut.
  Frame hello;
  hello.type = FrameType::kHello;
  hello.epoch = epoch_;
  hello.seq = seq_;
  hello.offset = offset_;
  return channel->Send(hello);
}

Status ReplicaApplier::SendAck(FrameChannel* channel) {
  // A fired ack fault models a lost ack: the shipper resends, and the
  // duplicate path re-acks.
  if (!fault::Maybe(fault_points::kReplicationAck).ok()) return Status::OK();
  Frame ack;
  ack.type = FrameType::kAck;
  ack.epoch = epoch_;
  ack.seq = seq_;
  ack.offset = offset_;
  {
    MutexLock lock(&mutex_);
    ++stats_.acks_sent;
  }
  return channel->Send(ack);
}

Status ReplicaApplier::SendNak(FrameChannel* channel, const std::string& reason,
                               uint64_t fence_epoch) {
  Frame nak;
  nak.type = FrameType::kNak;
  // A stale-epoch rejection names the fence (applied epoch or a granted
  // vote's floor, whichever is higher) so the deposed shipper sees a NEWER
  // epoch and parks terminally; every other NAK names the applied epoch —
  // its position doubles as an implicit ack and must be the truth.
  nak.epoch = fence_epoch != 0 ? fence_epoch : epoch_;
  nak.seq = seq_;
  nak.offset = offset_;
  nak.name = reason;
  return channel->Send(nak);
}

Status ReplicaApplier::OpenSegment(uint64_t seq, uint64_t epoch) {
  const std::string wal_dir = dir_ + "/wal";
  std::error_code ec;
  std::filesystem::create_directories(wal_dir, ec);
  if (ec) return Status::ExecutionError("cannot create " + wal_dir);
  const std::string path = wal_dir + "/" + WalSegmentFileName(seq);
  const bool existed = std::filesystem::exists(path, ec);
  const uint64_t size = existed ? std::filesystem::file_size(path, ec) : 0;
  SELTRIG_ASSIGN_OR_RETURN(segment_, AppendFile::Open(path));
  if (size == 0) {
    std::string header = WalSegmentHeader(seq, epoch);
    SELTRIG_RETURN_IF_ERROR(segment_.Append(header.data(), header.size()));
    SELTRIG_RETURN_IF_ERROR(segment_.Sync());
    SELTRIG_RETURN_IF_ERROR(SyncDirectory(wal_dir));
    offset_ = header.size();
  } else {
    offset_ = size;
  }
  seq_ = seq;
  return Status::OK();
}

}  // namespace seltrig
