// LogShipper: the primary side of replication (docs/REPLICATION.md).
//
// One shipping thread per follower tail-follows the primary's journal with
// WalTailReader and streams raw records over the follower's FrameChannel.
// The robustness envelope lives here:
//
//   - reconnect with exponential backoff + deterministic jitter when the
//     follower is unreachable (the primary keeps committing throughout);
//   - a bounded in-flight window (records sent but not yet acked) as
//     backpressure, so a slow follower never makes the shipper read
//     unboundedly ahead;
//   - heartbeats while idle and an ack-staleness timeout: a follower that
//     stops acking is marked DEGRADED — excluded from synchronous ack waits
//     — and automatically rejoins once its acks catch back up to the
//     primary's position;
//   - snapshot catch-up: when the tail reader hits a checkpoint-truncated
//     segment (kNotFound), the shipper streams the primary's snapshot
//     directory and resumes tailing from the snapshot's journal cut.
//
// Ack modes: kAsync never blocks commits. kSync makes the primary's
// statement acknowledgement wait (via Database::ReplicationWaiter, installed
// by this class) until every non-degraded follower acked the statement's
// journal position — the acked-prefix guarantee: a client that saw a sync
// statement acknowledged knows every healthy follower holds it durably, so
// promoting any healthy follower preserves every acknowledged statement,
// audit rows included. Degradation trades that guarantee for availability,
// per follower, and is visible in Followers().

#ifndef SELTRIG_REPLICATION_SHIPPER_H_
#define SELTRIG_REPLICATION_SHIPPER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/database.h"
#include "replication/transport.h"
#include "storage/wal.h"

namespace seltrig {

enum class ReplicationAckMode : uint8_t { kAsync, kSync };

struct ShipperOptions {
  ReplicationAckMode ack_mode = ReplicationAckMode::kAsync;
  // Idle-liveness probe interval.
  int64_t heartbeat_interval_ms = 50;
  // A follower whose last ack is older than this is degraded; this also
  // bounds how long a kSync statement waits before degrading the laggard and
  // acknowledging anyway (availability over the sync guarantee).
  int64_t ack_timeout_ms = 1000;
  // Backpressure: records sent but unacked before the shipper stops reading
  // ahead.
  uint64_t max_in_flight_records = 64;
  // Reconnect backoff: initial, doubling to max, with deterministic jitter
  // derived from `jitter_seed` and the follower index.
  int64_t initial_backoff_ms = 5;
  int64_t max_backoff_ms = 500;
  uint64_t jitter_seed = 1;
  // Poll granularity of the shipping loop when idle.
  int64_t poll_interval_ms = 5;
};

struct FollowerStatus {
  std::string name;
  bool connected = false;
  // Excluded from kSync ack waits until its acks catch up (unreachable,
  // torn channel, or ack staleness past ack_timeout_ms).
  bool degraded = false;
  WalPosition acked;
  // Milliseconds since this follower last acked (or implicitly acked via a
  // HELLO/NAK position); -1 before the first one. The `.replica` lag view.
  int64_t ms_since_last_ack = -1;
  uint64_t records_sent = 0;
  uint64_t records_acked = 0;
  uint64_t naks_received = 0;
  uint64_t snapshots_sent = 0;
  // Forced snapshot resyncs after a positional fork was detected: the
  // follower resumed from a journal position this primary never wrote (an
  // un-acked suffix from a deposed reign). Always 0 in healthy clusters.
  uint64_t forced_resyncs = 0;
  uint64_t reconnects = 0;
  // Non-empty when the shipper hit an unrecoverable condition for this
  // follower (e.g. local journal corruption under the tail reader).
  std::string last_error;
  // True once this follower NAKed a record under a NEWER epoch (the shipper
  // parked with kFencedOut): a failover deposed this primary. Structured so
  // the election layer's step-down check never parses last_error text.
  bool fenced_out = false;
};

class LogShipper : public ReplicationWaiter {
 public:
  // Returns a fresh channel to the follower; called on every (re)connect.
  using ChannelFactory = std::function<Result<std::shared_ptr<FrameChannel>>()>;

  // `db` must have its WAL enabled and outlive the shipper. Installs itself
  // as the database's replication waiter.
  LogShipper(Database* db, ShipperOptions options);
  ~LogShipper() override;

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  // Starts a shipping thread for one follower. Call any time; shipping
  // begins once `connect` yields a channel and the follower says HELLO.
  void AddFollower(std::string name, ChannelFactory connect);

  // Stops every shipping thread and uninstalls the replication waiter.
  // Idempotent; the destructor calls it.
  void Stop();

  // ReplicationWaiter: called by sessions after local durability. kAsync:
  // returns immediately. kSync: blocks until every non-degraded follower
  // acked `pos`, degrading followers that keep it waiting past
  // ack_timeout_ms.
  Status WaitReplicated(const WalPosition& pos) override;

  std::vector<FollowerStatus> Followers() const SELTRIG_EXCLUDES(mutex_);

  // True when every follower (degraded or not) has acked the primary's
  // current end-of-journal position. Test/ops convenience.
  bool AllCaughtUp() const SELTRIG_EXCLUDES(mutex_);

 private:
  struct Follower {
    std::string name;
    ChannelFactory connect;
    std::thread thread;
    FollowerStatus status;  // guarded by LogShipper::mutex_
    // Positions of sent-but-unacked records (end offsets), oldest first.
    std::vector<WalPosition> in_flight;  // guarded by LogShipper::mutex_
    // Monotonic ms timestamp of the last (implicit) ack; -1 before any.
    int64_t last_ack_at_ms = -1;  // guarded by LogShipper::mutex_
  };

  // The per-follower thread body: reconnect loop around ServeConnection.
  void Run(Follower* follower);
  // Ships over one live channel until it dies or Stop(). Returns why.
  Status ServeConnection(Follower* follower, FrameChannel* channel);
  // Drains pending inbound frames (acks, naks, hellos) without blocking
  // longer than `timeout_ms`. Updates cursor/in-flight via *reader; sets
  // *reseeked when a follower-named position moved the cursor, so the ship
  // loop re-validates it against the local journal before trusting it.
  Status DrainInbound(Follower* follower, FrameChannel* channel,
                      WalTailReader* reader, bool* have_cursor,
                      bool* reseeked, int64_t timeout_ms);
  // Streams the snapshot directory and reseeks *reader to its journal cut.
  Status SendSnapshot(Follower* follower, FrameChannel* channel,
                      WalTailReader* reader);
  // Fork resolution: the follower's journal position does not exist in this
  // primary's journal (it extends a deposed leader's un-acked suffix).
  // Overwrite the follower wholesale with a snapshot catch-up — checkpointing
  // first if no snapshot exists yet — so it rejoins on the canonical history
  // and the forked suffix is never acked.
  Status ForceResync(Follower* follower, FrameChannel* channel,
                     WalTailReader* reader);

  void SetConnected(Follower* follower, bool connected) SELTRIG_EXCLUDES(mutex_);
  void NoteError(Follower* follower, const Status& error) SELTRIG_EXCLUDES(mutex_);

  Database* const db_;
  const ShipperOptions options_;

  mutable Mutex mutex_;
  std::condition_variable_any ack_cv_;  // waits hold mutex_
  std::vector<std::unique_ptr<Follower>> followers_ SELTRIG_GUARDED_BY(mutex_);
  bool stopping_ SELTRIG_GUARDED_BY(mutex_) = false;
};

}  // namespace seltrig

#endif  // SELTRIG_REPLICATION_SHIPPER_H_
