#include "replication/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <optional>
#include <utility>

#include <condition_variable>

#include "common/fault_injector.h"
#include "common/mutex.h"

namespace seltrig {

namespace {

// Consults the transport fault points for one outbound frame. A point
// "fires" by returning non-OK from fault::Maybe; the transport consumes the
// error and performs the corresponding misbehavior instead of surfacing it.
struct SendPlan {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  bool torn = false;
};

SendPlan PlanSendFaults() {
  SendPlan plan;
  // A kDelay schedule sleeps inside Maybe; an error schedule on this point
  // is a no-op by design (the point only models latency).
  (void)fault::Maybe(fault_points::kReplicationDelay);
  if (!fault::Maybe(fault_points::kReplicationDrop).ok()) plan.drop = true;
  if (!fault::Maybe(fault_points::kReplicationDuplicate).ok()) plan.duplicate = true;
  if (!fault::Maybe(fault_points::kReplicationReorder).ok()) plan.reorder = true;
  if (!fault::Maybe(fault_points::kReplicationTorn).ok()) plan.torn = true;
  return plan;
}

// --- In-process transport ---------------------------------------------------

struct QueuePairState {
  Mutex mutex;
  std::condition_variable_any cv;
  std::deque<Frame> to_follower SELTRIG_GUARDED_BY(mutex);
  std::deque<Frame> to_primary SELTRIG_GUARDED_BY(mutex);
  bool closed SELTRIG_GUARDED_BY(mutex) = false;
};

class InProcessChannel : public FrameChannel {
 public:
  InProcessChannel(std::shared_ptr<QueuePairState> state, bool primary_end)
      : state_(std::move(state)), primary_end_(primary_end) {}

  ~InProcessChannel() override { Close(); }

  Status Send(const Frame& frame) override {
    SendPlan plan = PlanSendFaults();
    if (plan.torn) {
      // The in-process analog of a connection dying mid-write: the frame is
      // lost and the channel is dead. (A truncated frame never decodes, so
      // the peer cannot tell the difference from a byte transport.)
      Close();
      return Status::Unavailable("replication channel torn mid-frame");
    }
    if (plan.drop) return Status::OK();
    MutexLock lock(&state_->mutex);
    if (state_->closed) return Status::Unavailable("replication channel closed");
    std::deque<Frame>& queue =
        primary_end_ ? state_->to_follower : state_->to_primary;
    if (plan.reorder) {
      // Hold this frame; it rides behind the NEXT send (swapping the pair).
      if (held_.has_value()) queue.push_back(*std::exchange(held_, std::nullopt));
      held_ = frame;
    } else {
      queue.push_back(frame);
      if (plan.duplicate) queue.push_back(frame);
      if (held_.has_value()) queue.push_back(*std::exchange(held_, std::nullopt));
    }
    state_->cv.notify_all();
    return Status::OK();
  }

  Result<Frame> Receive(int64_t timeout_ms) override {
    MutexLock lock(&state_->mutex);
    std::deque<Frame>& queue =
        primary_end_ ? state_->to_primary : state_->to_follower;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
    while (queue.empty()) {
      if (state_->closed) {
        return Status::Unavailable("replication channel closed");
      }
      if (timeout_ms == 0) return Status::DeadlineExceeded("no frame pending");
      if (timeout_ms > 0) {
        if (state_->cv.wait_until(state_->mutex, deadline) ==
            std::cv_status::timeout) {
          if (!queue.empty()) break;
          if (state_->closed) {
            return Status::Unavailable("replication channel closed");
          }
          return Status::DeadlineExceeded("no frame within " +
                                          std::to_string(timeout_ms) + "ms");
        }
      } else {
        state_->cv.wait(state_->mutex);
      }
    }
    Frame frame = std::move(queue.front());
    queue.pop_front();
    return frame;
  }

  void Close() override {
    MutexLock lock(&state_->mutex);
    state_->closed = true;
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<QueuePairState> state_;
  const bool primary_end_;
  // Frame held back by a fired replication.reorder (guarded by state_->mutex;
  // only this endpoint's Send touches it).
  std::optional<Frame> held_;
};

// --- Local socket transport -------------------------------------------------

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Waits for readability. OK / kDeadlineExceeded / kUnavailable.
Status PollReadable(int fd, int64_t timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int timeout = timeout_ms < 0 ? -1
                               : static_cast<int>(timeout_ms > INT32_MAX
                                                      ? INT32_MAX
                                                      : timeout_ms);
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("poll"));
    }
    if (rc == 0) return Status::DeadlineExceeded("socket poll timed out");
    return Status::OK();
  }
}

class SocketChannel : public FrameChannel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}

  ~SocketChannel() override {
    Close();
    if (fd_ >= 0) ::close(fd_);
  }

  Status Send(const Frame& frame) override {
    SendPlan plan = PlanSendFaults();
    std::string bytes = EncodeFrame(frame);
    MutexLock lock(&send_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("replication channel closed");
    }
    if (plan.torn) {
      // Push a prefix of the frame onto the wire, then kill the connection:
      // the peer reads a partial envelope and treats the stream as dead.
      (void)WriteAll(bytes.data(), bytes.size() / 2);
      CloseLocked();
      return Status::Unavailable("replication channel torn mid-frame");
    }
    if (plan.drop) return Status::OK();
    if (plan.reorder) {
      if (!held_.empty()) {
        std::string previous = std::move(held_);
        held_.clear();
        SELTRIG_RETURN_IF_ERROR(WriteAll(previous.data(), previous.size()));
      }
      held_ = std::move(bytes);
      return Status::OK();
    }
    SELTRIG_RETURN_IF_ERROR(WriteAll(bytes.data(), bytes.size()));
    if (plan.duplicate) {
      SELTRIG_RETURN_IF_ERROR(WriteAll(bytes.data(), bytes.size()));
    }
    if (!held_.empty()) {
      std::string previous = std::move(held_);
      held_.clear();
      SELTRIG_RETURN_IF_ERROR(WriteAll(previous.data(), previous.size()));
    }
    return Status::OK();
  }

  Result<Frame> Receive(int64_t timeout_ms) override {
    MutexLock lock(&recv_mutex_);
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
      // A full frame already buffered?
      if (buffer_.size() >= kFrameEnvelopeSize) {
        uint32_t length = 0;
        std::memcpy(&length, buffer_.data(), sizeof(length));
        if (length > kMaxFrameBody) {
          return Status::DataLoss("replication frame length out of range");
        }
        const size_t total = kFrameEnvelopeSize + length;
        if (buffer_.size() >= total) {
          Result<Frame> frame =
              DecodeFrame(std::string_view(buffer_.data(), total));
          buffer_.erase(0, total);
          return frame;
        }
      }
      if (closed_.load(std::memory_order_acquire)) {
        return Status::Unavailable("replication channel closed");
      }
      int64_t remaining = timeout_ms;
      if (timeout_ms > 0) {
        auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        remaining = timeout_ms - elapsed;
        if (remaining <= 0) {
          return Status::DeadlineExceeded("no frame within " +
                                          std::to_string(timeout_ms) + "ms");
        }
      }
      SELTRIG_RETURN_IF_ERROR(PollReadable(fd_, remaining));
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(Errno("recv"));
      }
      if (n == 0) {
        // Peer closed. Left-over partial bytes are a torn frame — dead
        // stream either way.
        return Status::Unavailable("replication peer closed the connection");
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() override {
    MutexLock lock(&send_mutex_);
    CloseLocked();
  }

 private:
  Status WriteAll(const char* data, size_t size) SELTRIG_REQUIRES(send_mutex_) {
    size_t written = 0;
    while (written < size) {
      // MSG_NOSIGNAL: a dead peer yields EPIPE, not SIGPIPE.
      ssize_t n = ::send(fd_, data + written, size - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        CloseLocked();
        return Status::Unavailable(Errno("send"));
      }
      written += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  void CloseLocked() SELTRIG_REQUIRES(send_mutex_) {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      // shutdown (not close) so a Receive blocked in poll on another thread
      // wakes with EOF instead of racing a reused descriptor.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  const int fd_;
  std::atomic<bool> closed_{false};
  Mutex send_mutex_;
  Mutex recv_mutex_;
  std::string held_ SELTRIG_GUARDED_BY(send_mutex_);  // replication.reorder
  std::string buffer_;  // guarded by recv_mutex_ (annotation omitted: local use)
};

}  // namespace

ChannelPair CreateInProcessChannelPair() {
  auto state = std::make_shared<QueuePairState>();
  ChannelPair pair;
  pair.primary_end = std::make_shared<InProcessChannel>(state, /*primary_end=*/true);
  pair.follower_end =
      std::make_shared<InProcessChannel>(state, /*primary_end=*/false);
  return pair;
}

LocalSocketServer::~LocalSocketServer() { Close(); }

Result<std::unique_ptr<LocalSocketServer>> LocalSocketServer::Listen(
    const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket"));
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status error = Status::Unavailable(Errno("bind " + path));
    ::close(fd);
    return error;
  }
  if (::listen(fd, 8) != 0) {
    Status error = Status::Unavailable(Errno("listen " + path));
    ::close(fd);
    return error;
  }
  auto server = std::unique_ptr<LocalSocketServer>(new LocalSocketServer());
  server->fd_ = fd;
  server->path_ = path;
  return server;
}

Result<std::shared_ptr<FrameChannel>> LocalSocketServer::Accept(
    int64_t timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("server closed");
  SELTRIG_RETURN_IF_ERROR(PollReadable(fd_, timeout_ms));
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Status::Unavailable(Errno("accept"));
  return std::static_pointer_cast<FrameChannel>(
      std::make_shared<SocketChannel>(fd));
}

void LocalSocketServer::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    fd_ = -1;
  }
}

Result<std::shared_ptr<FrameChannel>> ConnectLocalSocket(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(Errno("socket"));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status error = Status::Unavailable(Errno("connect " + path));
    ::close(fd);
    return error;
  }
  return std::static_pointer_cast<FrameChannel>(
      std::make_shared<SocketChannel>(fd));
}

}  // namespace seltrig
