// Replication wire protocol (docs/REPLICATION.md): the frames a primary's
// LogShipper and a follower's ReplicaApplier exchange over a FrameChannel.
//
// Frame layout on byte transports:
//   u32 LE body length | u32 LE CRC32C(body) | body
//   body: type (u8) | epoch (u64 LE) | seq (u64 LE) | offset (u64 LE) |
//         prev_seq (u64 LE) | prev_offset (u64 LE) | authority (u64 LE) |
//         name (u32-length-prefixed bytes) | payload (u32-length-prefixed)
//
// The protocol is deliberately position-driven rather than windowed: every
// kRecord carries the exact journal position of the record it ships plus the
// position it continues from (prev_*), and the follower accepts it only when
// prev_* equals its own local tail. Anything else is a duplicate (re-acked
// and dropped) or a gap (answered with kNak at the follower's position,
// which reseeks the shipper). Carrying prev_* rather than inferring
// continuity from offsets is what makes segment boundaries safe under
// reordering: the first record of a new segment names the old segment's
// final position, so it cannot overtake records it is supposed to follow.
// That makes the pair self-healing under dropped, duplicated, and reordered
// frames without sequence-number bookkeeping on either side.

#ifndef SELTRIG_REPLICATION_WIRE_H_
#define SELTRIG_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace seltrig {

enum class FrameType : uint8_t {
  // Follower -> primary, after (re)connecting or installing a snapshot:
  // "resume shipping from (epoch, seq, offset)". Also sent mid-stream to
  // reseek after local recovery.
  kHello = 1,
  // Primary -> follower: one raw journal record (payload = the record bytes
  // verbatim; epoch/seq/offset = where its header starts on the primary).
  kRecord = 2,
  // Primary -> follower when idle: liveness probe carrying the primary's
  // current end-of-journal position. The follower answers with kAck.
  kHeartbeat = 3,
  // Follower -> primary: "everything up to (epoch, seq, offset) is applied
  // (and durable, in fsync-before-ack mode)".
  kAck = 4,
  // Follower -> primary: "I could not accept that; resume from my position
  // (epoch, seq, offset)". `name` carries a human-readable reason.
  kNak = 5,
  // Primary -> follower: snapshot catch-up bracket. Start clears the
  // follower's staging area; each kSnapshotFile carries one snapshot file
  // (name = file name relative to the snapshot directory, payload =
  // contents); Done (seq = the snapshot's journal cut) installs it.
  kSnapshotStart = 6,
  kSnapshotFile = 7,
  kSnapshotDone = 8,
  // Election traffic (replication/election.h). A candidate that believes the
  // leader is gone first polls with kPreVote ("WOULD you vote for me at this
  // epoch, given my journal position?"), and only on a quorum of pre-grants
  // campaigns for real with kVoteRequest. Both carry the candidate's proposed
  // epoch in `epoch`, its journal tail in `seq`/`offset` (prev_seq carries
  // the tail's epoch, so voters compare full (epoch, seq, offset) positions)
  // and its node id in `name`. A voter answers either with kVoteGrant —
  // `payload` is "pre" for a pre-grant, "real" for a durable, persisted vote
  // — or with silence; elections are retried on a randomized timeout, so a
  // rejection frame is unnecessary.
  kPreVote = 9,
  kVoteRequest = 10,
  kVoteGrant = 11,
  // Primary -> follower: "segment prev_seq is complete at prev_offset; the
  // journal continues in segment `seq` (header epoch `epoch`) at `offset`,
  // just past its header". Sent when the shipper's reader crosses a clean
  // segment boundary with no record to carry it — a checkpoint cuts to a
  // fresh, record-free tip segment, and under a quiet workload no record
  // would ever tell the follower to open it; without the seal a fully
  // caught-up follower parks at the old segment's end forever. The follower
  // validates prev_* against its exact tail, the same rule as kRecord.
  kSegmentSeal = 12,
};

const char* FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  uint64_t epoch = 0;
  uint64_t seq = 0;
  uint64_t offset = 0;
  // For kRecord: the journal position this record continues from — the
  // previous record's end (same segment), or the tail of the segment the
  // reader advanced past (segment boundary). Zero for other frame types.
  uint64_t prev_seq = 0;
  uint64_t prev_offset = 0;
  // The sender's own current epoch — its claim to be acting for a live
  // leadership. For kRecord this is distinct from `epoch`, which is the
  // record's ORIGIN epoch (a new leader legitimately relays committed
  // records written under earlier epochs, and the follower needs the origin
  // epoch to reproduce byte-identical segment headers). The follower's
  // stale-epoch fence judges the sender by max(epoch, authority), so a
  // deposed leader resending its fork is still rejected while a current
  // leader relaying history is not.
  uint64_t authority = 0;
  std::string name;
  std::string payload;
};

// Serializes `frame` with the length + checksum envelope above.
std::string EncodeFrame(const Frame& frame);

// Decodes a full frame (envelope included). kDataLoss on any framing or
// checksum violation.
Result<Frame> DecodeFrame(std::string_view bytes);

// Envelope prefix size: u32 length + u32 crc.
inline constexpr size_t kFrameEnvelopeSize = 8;
// Frames larger than this are rejected (a torn length field must not turn
// into a multi-gigabyte allocation). Snapshot files are shipped one frame
// per file and snapshots of this engine are small; raise if that changes.
inline constexpr uint32_t kMaxFrameBody = 1u << 30;

}  // namespace seltrig

#endif  // SELTRIG_REPLICATION_WIRE_H_
