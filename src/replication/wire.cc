#include "replication/wire.h"

#include "common/checksum.h"
#include "common/codec.h"

namespace seltrig {

using codec::GetString;
using codec::GetU32;
using codec::GetU64;
using codec::PutString;
using codec::PutU32;
using codec::PutU64;

const char* FrameTypeName(FrameType type) {
  // seltrig-lint: dispatch(FrameType)
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kRecord:
      return "RECORD";
    case FrameType::kHeartbeat:
      return "HEARTBEAT";
    case FrameType::kAck:
      return "ACK";
    case FrameType::kNak:
      return "NAK";
    case FrameType::kSnapshotStart:
      return "SNAPSHOT_START";
    case FrameType::kSnapshotFile:
      return "SNAPSHOT_FILE";
    case FrameType::kSnapshotDone:
      return "SNAPSHOT_DONE";
    case FrameType::kPreVote:
      return "PRE_VOTE";
    case FrameType::kVoteRequest:
      return "VOTE_REQUEST";
    case FrameType::kVoteGrant:
      return "VOTE_GRANT";
    case FrameType::kSegmentSeal:
      return "SEGMENT_SEAL";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(const Frame& frame) {
  std::string body;
  body.push_back(static_cast<char>(frame.type));
  PutU64(&body, frame.epoch);
  PutU64(&body, frame.seq);
  PutU64(&body, frame.offset);
  PutU64(&body, frame.prev_seq);
  PutU64(&body, frame.prev_offset);
  PutU64(&body, frame.authority);
  PutString(&body, frame.name);
  PutString(&body, frame.payload);

  std::string out;
  out.reserve(kFrameEnvelopeSize + body.size());
  PutU32(&out, static_cast<uint32_t>(body.size()));
  PutU32(&out, Crc32c(body));
  out.append(body);
  return out;
}

Result<Frame> DecodeFrame(std::string_view bytes) {
  size_t offset = 0;
  uint32_t length = 0;
  uint32_t crc = 0;
  if (!GetU32(bytes, &offset, &length) || !GetU32(bytes, &offset, &crc) ||
      length > kMaxFrameBody ||
      bytes.size() != kFrameEnvelopeSize + static_cast<size_t>(length)) {
    return Status::DataLoss("malformed replication frame envelope");
  }
  std::string_view body = bytes.substr(kFrameEnvelopeSize);
  if (Crc32c(body) != crc) {
    return Status::DataLoss("replication frame checksum mismatch");
  }

  Frame frame;
  size_t pos = 0;
  if (body.empty()) return Status::DataLoss("empty replication frame body");
  const uint8_t type = static_cast<uint8_t>(body[pos++]);
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kSegmentSeal)) {
    return Status::DataLoss("unknown replication frame type " +
                            std::to_string(type));
  }
  frame.type = static_cast<FrameType>(type);
  if (!GetU64(body, &pos, &frame.epoch) || !GetU64(body, &pos, &frame.seq) ||
      !GetU64(body, &pos, &frame.offset) ||
      !GetU64(body, &pos, &frame.prev_seq) ||
      !GetU64(body, &pos, &frame.prev_offset) ||
      !GetU64(body, &pos, &frame.authority) ||
      !GetString(body, &pos, &frame.name) ||
      !GetString(body, &pos, &frame.payload) || pos != body.size()) {
    return Status::DataLoss("replication frame body does not decode");
  }
  return frame;
}

}  // namespace seltrig
