#include "replication/shipper.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "common/fault_injector.h"
#include "common/file_util.h"
#include "engine/snapshot.h"

namespace seltrig {

namespace {

using Clock = std::chrono::steady_clock;

int64_t MsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

LogShipper::LogShipper(Database* db, ShipperOptions options)
    : db_(db), options_(options) {
  db_->set_replication_waiter(this);
}

LogShipper::~LogShipper() { Stop(); }

void LogShipper::AddFollower(std::string name, ChannelFactory connect) {
  Follower* raw = nullptr;
  {
    MutexLock lock(&mutex_);
    if (stopping_) return;
    auto follower = std::make_unique<Follower>();
    follower->name = name;
    follower->connect = std::move(connect);
    follower->status.name = std::move(name);
    followers_.push_back(std::move(follower));
    raw = followers_.back().get();
  }
  raw->thread = std::thread(&LogShipper::Run, this, raw);
}

void LogShipper::Stop() {
  {
    MutexLock lock(&mutex_);
    if (stopping_) return;
    stopping_ = true;
    ack_cv_.notify_all();
  }
  // Sessions blocked in WaitReplicated were woken above; new statements no
  // longer consult this shipper.
  db_->set_replication_waiter(nullptr);
  // followers_ is append-only and frozen once stopping_ is set, so the
  // threads can be joined without holding the mutex (they take it
  // themselves).
  for (auto& follower : followers_) {
    if (follower->thread.joinable()) follower->thread.join();
  }
}

Status LogShipper::WaitReplicated(const WalPosition& pos) {
  if (options_.ack_mode == ReplicationAckMode::kAsync) return Status::OK();
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.ack_timeout_ms);
  MutexLock lock(&mutex_);
  for (;;) {
    if (stopping_) return Status::OK();
    bool all_acked = true;
    for (const auto& follower : followers_) {
      if (!follower->status.degraded && !(pos <= follower->status.acked)) {
        all_acked = false;
        break;
      }
    }
    if (all_acked) return Status::OK();
    if (ack_cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
      // Availability over the sync guarantee: degrade the laggards (they
      // rejoin when caught up) and acknowledge. The statement is locally
      // durable either way; what is lost is only the promise that THIS
      // statement already sits on every follower.
      for (const auto& follower : followers_) {
        if (!follower->status.degraded && !(pos <= follower->status.acked)) {
          follower->status.degraded = true;
        }
      }
      ack_cv_.notify_all();
      return Status::OK();
    }
  }
}

std::vector<FollowerStatus> LogShipper::Followers() const {
  const int64_t now = NowMs();
  MutexLock lock(&mutex_);
  std::vector<FollowerStatus> out;
  out.reserve(followers_.size());
  for (const auto& follower : followers_) {
    out.push_back(follower->status);
    out.back().ms_since_last_ack =
        follower->last_ack_at_ms < 0 ? -1 : now - follower->last_ack_at_ms;
  }
  return out;
}

bool LogShipper::AllCaughtUp() const {
  const WalPosition tip = db_->wal()->current_position();
  MutexLock lock(&mutex_);
  for (const auto& follower : followers_) {
    if (!(tip <= follower->status.acked)) return false;
  }
  return true;
}

void LogShipper::SetConnected(Follower* follower, bool connected) {
  MutexLock lock(&mutex_);
  follower->status.connected = connected;
  if (!connected) {
    // A dead channel cannot carry acks; the follower is out of the sync
    // quorum until it reconnects and catches up.
    follower->status.degraded = true;
    follower->in_flight.clear();
    ack_cv_.notify_all();
  }
}

void LogShipper::NoteError(Follower* follower, const Status& error) {
  MutexLock lock(&mutex_);
  follower->status.last_error = error.ToString();
  if (error.code() == ErrorCode::kFencedOut) {
    follower->status.fenced_out = true;
  }
}

void LogShipper::Run(Follower* follower) {
  int64_t backoff_ms = options_.initial_backoff_ms;
  // Deterministic per-follower jitter stream (no wall-clock entropy).
  uint64_t rng = options_.jitter_seed * 0x9E3779B97F4A7C15ull + 1 +
                 std::hash<std::string>{}(follower->name);
  auto sleep_backoff = [&]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const int64_t jitter = static_cast<int64_t>((rng >> 33) %
                                                (backoff_ms / 2 + 1));
    MutexLock lock(&mutex_);
    ack_cv_.wait_for(mutex_, std::chrono::milliseconds(backoff_ms + jitter),
                     [this]() SELTRIG_REQUIRES(mutex_) { return stopping_; });
    backoff_ms = std::min(backoff_ms * 2, options_.max_backoff_ms);
  };

  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (stopping_) return;
    }
    Result<std::shared_ptr<FrameChannel>> channel = follower->connect();
    if (!channel.ok()) {
      sleep_backoff();
      continue;
    }
    SetConnected(follower, true);
    backoff_ms = options_.initial_backoff_ms;
    Status served = ServeConnection(follower, channel->get());
    (*channel)->Close();
    SetConnected(follower, false);
    {
      MutexLock lock(&mutex_);
      ++follower->status.reconnects;
      if (stopping_) return;
    }
    if (!served.ok() && (served.code() == ErrorCode::kDataLoss ||
                         served.code() == ErrorCode::kFencedOut)) {
      // The PRIMARY's journal failed under the tail reader, or a follower
      // fenced this primary out under a newer epoch — nothing a reconnect
      // can fix. Park this follower with the error visible.
      NoteError(follower, served);
      return;
    }
    if (!served.ok()) NoteError(follower, served);
    sleep_backoff();
  }
}

Status LogShipper::ServeConnection(Follower* follower, FrameChannel* channel) {
  WalTailReader reader(db_->wal()->wal_dir());
  bool have_cursor = false;  // set by the follower's HELLO
  // Set whenever a follower-NAMED position moved the cursor: that position
  // must be validated against the local journal before shipping from it,
  // because a follower whose journal forked (an un-acked suffix from a
  // deposed reign) names positions this primary never wrote.
  bool verify_cursor = false;
  auto last_send = Clock::now();
  // Ack PROGRESS, not ack arrival: a follower that missed the tail of a
  // burst still acks heartbeats at its stale position, so "any ack arrived"
  // would keep a wedged stream looking healthy forever.
  WalPosition last_acked;
  auto last_progress = Clock::now();

  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (stopping_) return Status::OK();
    }

    // 1. Drain whatever the follower sent (acks, naks, hellos) — without
    // blocking; step 5 blocks when there is nothing to ship.
    Status drained = DrainInbound(follower, channel, &reader, &have_cursor,
                                  &verify_cursor, 0);
    if (!drained.ok() && drained.code() != ErrorCode::kDeadlineExceeded) {
      return drained;
    }

    // 2. Ship records while the in-flight window has room.
    bool progressed = false;
    while (have_cursor) {
      {
        MutexLock lock(&mutex_);
        if (stopping_) return Status::OK();
        if (follower->in_flight.size() >= options_.max_in_flight_records) break;
      }
      if (verify_cursor) {
        // Fork detection. A follower's named position can exceed this
        // primary's journal only when the follower's journal diverged: a
        // deposed leader extended its local segments with records no quorum
        // acked, then rejoined. (Divergence is always positional — a new
        // leader's promotion rotates to a fresh segment, so the two
        // histories never disagree WITHIN a shared byte range; see
        // docs/REPLICATION.md.) Overwrite the follower with a snapshot of
        // the canonical history instead of shipping from a position we do
        // not have — but ONLY a follower at our epoch or below can be the
        // stale side. A follower naming a NEWER epoch means this shipper is
        // the deposed one; resyncing it would overwrite canonical history
        // with ours. Ship from the newest segment instead and let the
        // applier's persisted epoch judge (the fencing NAK parks us
        // terminally).
        verify_cursor = false;
        const WalPosition tip = db_->wal()->current_position();
        bool beyond = reader.seq() > tip.seq ||
                      (reader.seq() == tip.seq && reader.offset() > tip.offset);
        if (!beyond && reader.seq() < tip.seq) {
          std::error_code ec;
          const uint64_t size = std::filesystem::file_size(
              db_->wal()->wal_dir() + "/" + WalSegmentFileName(reader.seq()),
              ec);
          // A missing segment is checkpoint truncation, not a fork; the
          // kNotFound path below snapshots it anyway.
          beyond = !ec && reader.offset() > size;
        }
        if (beyond) {
          uint64_t follower_epoch;
          {
            MutexLock lock(&mutex_);
            follower_epoch = follower->status.acked.epoch;
          }
          if (follower_epoch > tip.epoch) {
            reader.Seek(tip.seq, 0);
            continue;
          }
          SELTRIG_RETURN_IF_ERROR(ForceResync(follower, channel, &reader));
          have_cursor = false;
          progressed = true;
          last_send = Clock::now();
          break;
        }
      }
      // The cursor before Next is the position this record continues from:
      // the previous record's end, or — across a segment advance — the tail
      // of the segment the reader left. The follower accepts the record only
      // when this equals its own tail, which keeps segment boundaries safe
      // under frame reordering.
      const uint64_t prev_seq = reader.seq();
      const uint64_t prev_offset = reader.offset();
      WalTailReader::RecordRef record;
      Status next = reader.Next(&record);
      if (next.code() == ErrorCode::kUnavailable) {
        // At the tail — but the reader may have crossed a clean segment end
        // into a record-free tip segment on the way (a checkpoint rotates to
        // a fresh segment before it deletes the history below it). A record
        // would carry the boundary in its prev position; with no record ever
        // coming, seal it explicitly, or a fully caught-up follower parks at
        // the old segment's end for as long as the workload stays quiet.
        if (reader.seq() != prev_seq && reader.header_read()) {
          Frame seal;
          seal.type = FrameType::kSegmentSeal;
          seal.epoch = reader.epoch();
          seal.seq = reader.seq();
          seal.offset = reader.offset();
          seal.prev_seq = prev_seq;
          seal.prev_offset = prev_offset;
          seal.authority = db_->wal()->current_position().epoch;
          SELTRIG_RETURN_IF_ERROR(channel->Send(seal));
          progressed = true;
          last_send = Clock::now();
          // Tracked in flight like a record: if the seal is lost, the ack
          // staleness path reseeks and resends it.
          MutexLock lock(&mutex_);
          follower->in_flight.push_back(
              WalPosition{reader.epoch(), reader.seq(), reader.offset()});
        }
        break;  // at the tail
      }
      if (next.code() == ErrorCode::kNotFound) {
        const WalPosition tip = db_->wal()->current_position();
        if (reader.seq() > tip.seq) {
          // The follower resumed from a segment past anything this primary
          // ever wrote: its journal forked under a deposed leader. Replace
          // it with the canonical history (same reasoning and same epoch
          // gate as the verify_cursor check above; this catches a cursor
          // that moved without a follower-named reseek).
          uint64_t follower_epoch;
          {
            MutexLock lock(&mutex_);
            follower_epoch = follower->status.acked.epoch;
          }
          if (follower_epoch > tip.epoch) {
            reader.Seek(tip.seq, 0);
            continue;
          }
          SELTRIG_RETURN_IF_ERROR(ForceResync(follower, channel, &reader));
          have_cursor = false;
          progressed = true;
          last_send = Clock::now();
          break;
        }
        // A checkpoint truncated the journal behind this follower: catch it
        // up from the snapshot, then wait for its post-install HELLO.
        SELTRIG_RETURN_IF_ERROR(SendSnapshot(follower, channel, &reader));
        have_cursor = false;
        progressed = true;
        last_send = Clock::now();
        break;
      }
      SELTRIG_RETURN_IF_ERROR(next);  // kDataLoss: fatal, handled by Run
      SELTRIG_RETURN_IF_ERROR(fault::Maybe(fault_points::kReplicationSend));
      Frame frame;
      frame.type = FrameType::kRecord;
      frame.epoch = record.epoch;
      frame.seq = record.seq;
      frame.offset = record.offset;
      frame.prev_seq = prev_seq;
      frame.prev_offset = prev_offset;
      // Origin epoch above; the fence judges us by our live epoch, so a
      // post-failover leader can relay pre-failover committed records.
      frame.authority = db_->wal()->current_position().epoch;
      frame.payload = std::move(record.bytes);
      SELTRIG_RETURN_IF_ERROR(channel->Send(frame));
      progressed = true;
      last_send = Clock::now();
      {
        MutexLock lock(&mutex_);
        ++follower->status.records_sent;
        follower->in_flight.push_back(
            WalPosition{record.epoch, record.seq, record.end_offset});
      }
    }

    // 3. Heartbeat when the stream has been quiet for an interval.
    if (MsSince(last_send) >= options_.heartbeat_interval_ms) {
      Frame heartbeat;
      heartbeat.type = FrameType::kHeartbeat;
      const WalPosition tip = db_->wal()->current_position();
      heartbeat.epoch = tip.epoch;
      heartbeat.seq = tip.seq;
      heartbeat.offset = tip.offset;
      heartbeat.authority = tip.epoch;
      SELTRIG_RETURN_IF_ERROR(channel->Send(heartbeat));
      last_send = Clock::now();
    }

    // 4. Ack staleness: outstanding records with no ack PROGRESS for the
    // timeout means those records were lost (a NAK needs a later frame to
    // expose the gap; after a dropped burst tail none is coming). Degrade
    // the follower so sync commits stop waiting, then go-back-N: reseek to
    // its acked position and resend. Duplicates are dropped and re-acked by
    // the applier, so retransmission is always safe; the follower rejoins
    // the sync quorum when its acks catch back up.
    bool retransmit = false;
    WalPosition resume;
    {
      MutexLock lock(&mutex_);
      if (follower->in_flight.empty() || last_acked < follower->status.acked) {
        last_acked = follower->status.acked;
        last_progress = Clock::now();
      } else if (MsSince(last_progress) > options_.ack_timeout_ms) {
        if (!follower->status.degraded) {
          follower->status.degraded = true;
          ack_cv_.notify_all();
        }
        resume = follower->status.acked;
        follower->in_flight.clear();
        retransmit = true;
      }
    }
    if (retransmit) {
      if (resume.seq == 0) {
        // No ack has ever named a position: nothing to resume from.
        // Reconnect; the follower's fresh HELLO restores the cursor.
        return Status::Unavailable("no ack progress and no resume point");
      }
      reader.Seek(resume.seq, resume.offset);
      have_cursor = true;
      last_progress = Clock::now();
    }

    // 5. Nothing shipped this round: block briefly on inbound traffic so an
    // idle shipper costs a poll, not a spin.
    if (!progressed) {
      Status idle = DrainInbound(follower, channel, &reader, &have_cursor,
                                 &verify_cursor, options_.poll_interval_ms);
      if (!idle.ok() && idle.code() != ErrorCode::kDeadlineExceeded) {
        return idle;
      }
    }
  }
}

Status LogShipper::DrainInbound(Follower* follower, FrameChannel* channel,
                                WalTailReader* reader, bool* have_cursor,
                                bool* reseeked, int64_t timeout_ms) {
  bool got_any = false;
  for (bool first = true;; first = false) {
    Result<Frame> received = channel->Receive(first ? timeout_ms : 0);
    if (received.status().code() == ErrorCode::kDeadlineExceeded) {
      return got_any ? Status::OK()
                     : Status::DeadlineExceeded("no inbound frames");
    }
    SELTRIG_RETURN_IF_ERROR(received.status());
    const Frame& frame = *received;
    const WalPosition pos{frame.epoch, frame.seq, frame.offset};
    // seltrig-lint: dispatch(FrameType)
    switch (frame.type) {
      case FrameType::kHello:
      case FrameType::kNak: {
        if (frame.type == FrameType::kNak &&
            frame.epoch > db_->wal()->current_position().epoch) {
          // The follower rejected a record under a NEWER epoch: a failover
          // this primary has not heard about deposed it. Permanent for this
          // journal — park the follower with the fencing visible instead of
          // resending forever. (The follower's state is untouched; its count
          // of rejected records is the audit trail of the attempt.)
          {
            MutexLock lock(&mutex_);
            ++follower->status.naks_received;
          }
          return Status::FencedOut(
              "follower " + follower->name + " is at epoch " +
              std::to_string(frame.epoch) + "; this primary was deposed");
        }
        // Reseek to where the follower wants the stream: its resume point
        // after (re)connect / snapshot install, or the position a gap or
        // rejection left it at. Everything in flight is now meaningless.
        reader->Seek(frame.seq, frame.offset);
        *have_cursor = true;
        *reseeked = true;
        MutexLock lock(&mutex_);
        follower->in_flight.clear();
        if (frame.type == FrameType::kNak) ++follower->status.naks_received;
        // The follower's own position is an implicit ack.
        if (follower->status.acked < pos) follower->status.acked = pos;
        follower->last_ack_at_ms = NowMs();
        ack_cv_.notify_all();
        break;
      }
      case FrameType::kAck: {
        if (!*have_cursor) {
          // A dropped HELLO must not wedge the stream: heartbeat acks keep
          // arriving (so the connection never looks stale), but without a
          // cursor nothing ships. The ack names the follower's applied tail,
          // which is exactly the resume point a HELLO would have named.
          reader->Seek(frame.seq, frame.offset);
          *have_cursor = true;
          *reseeked = true;
        }
        MutexLock lock(&mutex_);
        if (follower->status.acked < pos) follower->status.acked = pos;
        follower->last_ack_at_ms = NowMs();
        auto& in_flight = follower->in_flight;
        while (!in_flight.empty() && in_flight.front() <= pos) {
          in_flight.erase(in_flight.begin());
          ++follower->status.records_acked;
        }
        if (follower->status.degraded) {
          // Rejoin the sync quorum once fully caught up.
          if (db_->wal()->current_position() <= follower->status.acked) {
            follower->status.degraded = false;
          }
        }
        ack_cv_.notify_all();
        break;
      }
      case FrameType::kRecord:
      case FrameType::kHeartbeat:
      case FrameType::kSnapshotStart:
      case FrameType::kSnapshotFile:
      case FrameType::kSnapshotDone:
      case FrameType::kSegmentSeal:
        break;  // primary-to-follower frames; a follower never sends these
      case FrameType::kPreVote:
      case FrameType::kVoteRequest:
      case FrameType::kVoteGrant:
        break;  // election traffic travels on the election bus, not here
    }
    got_any = true;
  }
}

Status LogShipper::SendSnapshot(Follower* follower, FrameChannel* channel,
                                WalTailReader* reader) {
  const std::string snapshot_dir = db_->data_dir() + "/snapshot";
  SELTRIG_ASSIGN_OR_RETURN(SnapshotManifest manifest,
                           ReadSnapshotManifest(snapshot_dir));
  if (manifest.wal_seq == 0) {
    return Status::Unavailable("snapshot at " + snapshot_dir +
                               " records no journal cut");
  }
  const uint64_t authority = db_->wal()->current_position().epoch;
  Frame start;
  start.type = FrameType::kSnapshotStart;
  start.authority = authority;
  SELTRIG_RETURN_IF_ERROR(channel->Send(start));

  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(snapshot_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    // A checkpoint may swap the snapshot out underneath this read; the
    // resulting error tears down the connection and the reconnect retries
    // against the new snapshot.
    SELTRIG_ASSIGN_OR_RETURN(std::string contents,
                             ReadFileToString(entry.path().string()));
    Frame file;
    file.type = FrameType::kSnapshotFile;
    file.authority = authority;
    file.name = entry.path().filename().string();
    file.payload = std::move(contents);
    SELTRIG_RETURN_IF_ERROR(channel->Send(file));
  }
  if (ec) {
    return Status::Unavailable("cannot list snapshot directory " + snapshot_dir);
  }
  Frame done;
  done.type = FrameType::kSnapshotDone;
  done.seq = manifest.wal_seq;
  // The cut segment's header epoch rides on the done frame so the follower
  // can materialize that segment at install time. Without it the follower
  // parks at (old epoch, cut, 0) waiting for a first record to open the
  // segment — and when the cut is a checkpoint-fresh tip under a quiet
  // workload, no record ever comes and the rejoiner never reaches the
  // leader's position. (If a concurrent checkpoint swapped the segment out
  // underneath this read, the error tears down the connection and the
  // reconnect retries against the new snapshot, same as the file reads
  // above.)
  SELTRIG_ASSIGN_OR_RETURN(
      done.epoch, ReadWalSegmentEpoch(db_->wal()->wal_dir() + "/" +
                                      WalSegmentFileName(manifest.wal_seq)));
  done.authority = authority;
  SELTRIG_RETURN_IF_ERROR(channel->Send(done));

  reader->Seek(manifest.wal_seq, 0);
  MutexLock lock(&mutex_);
  ++follower->status.snapshots_sent;
  follower->in_flight.clear();
  return Status::OK();
}

Status LogShipper::ForceResync(Follower* follower, FrameChannel* channel,
                               WalTailReader* reader) {
  {
    MutexLock lock(&mutex_);
    ++follower->status.forced_resyncs;
    // The forked follower's named positions are not positions in THIS
    // journal; until it re-HELLOs from the snapshot cut its acked position
    // must not admit it to the sync quorum. (Epoch-major WalPosition
    // ordering already keeps forked acks below any new-epoch commit; this
    // resets the bookkeeping for the rebuild.)
    follower->status.acked = WalPosition{};
    follower->status.degraded = true;
    follower->in_flight.clear();
    ack_cv_.notify_all();
  }
  Status sent = SendSnapshot(follower, channel, reader);
  if (sent.ok()) return sent;
  if (sent.code() != ErrorCode::kNotFound &&
      sent.code() != ErrorCode::kUnavailable) {
    return sent;
  }
  // No snapshot yet (a primary that never checkpointed): cut one now — the
  // checkpoint IS the canonical history up to this moment — then ship it.
  SELTRIG_RETURN_IF_ERROR(db_->Checkpoint());
  return SendSnapshot(follower, channel, reader);
}

}  // namespace seltrig
