// Raft-style leader election over the epoch-fenced WAL shipping of
// docs/REPLICATION.md — the layer that turns operator-driven failover
// (Database::Promote) into automatic, partition-tolerant failover.
//
// Every node runs an ElectionNode. All nodes start as followers; the leader
// broadcasts kHeartbeat frames over an ElectionBus (the same wire protocol
// as replication, carried on FrameChannels), and a follower that misses
// heartbeats for a randomized, seeded election timeout campaigns:
//
//   1. PRE-VOTE (kPreVote): "WOULD you vote for me at epoch term+1, given my
//      journal position?" A voter pre-grants only when its own timeout has
//      expired too, so a node partitioned away from a healthy leader cannot
//      bump epochs and force a real election when it heals (the classic
//      pre-vote disruption fix). Pre-grants are not persisted.
//   2. ELECTION (kVoteRequest): on a pre-vote quorum the candidate persists
//      a vote for itself (storage/wal.h PersistVote — durable BEFORE any
//      grant leaves a machine, so a crashed voter never votes twice in one
//      epoch) and campaigns for real. A voter grants at most one candidate
//      per epoch, only a candidate whose (epoch, seq, offset) journal
//      position is >= its own (the up-to-dateness gate: the winner provably
//      holds every record any quorum ever sync-acked), and raises its
//      applier's epoch floor before granting — the vote doubles as a fence
//      against the old leader extending this node's journal afterward.
//   3. PROMOTION: a quorum of real grants wins. The winner promotes through
//      the existing path — ReplicaApplier::Promote(epoch), i.e.
//      EnableWal(dir, won epoch) — and starts a LogShipper to every peer.
//
// Safety is the composition of three already-shipped mechanisms plus the
// vote rule: (a) at most one candidate can assemble a quorum per epoch
// (durable single vote + quorum overlap), (b) a deposed leader's records are
// NAKed by epoch fencing and its shipper parks kFencedOut, (c) a rejoining
// minority whose journal forked (un-acked suffix written while partitioned)
// is detected positionally by the shipper and resynced via a forced snapshot
// catch-up — it never acks a forked suffix as part of the new history.
// Split-brain is therefore structurally impossible: two leaders would need
// two overlapping quorums to each grant a vote for the same epoch.
//
// Fault points (docs/ROBUSTNESS.md): `election.timeout` (liveness check —
// firing forces an immediate campaign), `election.vote_drop` (drop one
// outbound election frame), `election.partition` (drop a bus send: a severed
// link), `election.stale_candidate` (campaign with a zeroed journal position
// — must lose the up-to-dateness gate).

#ifndef SELTRIG_REPLICATION_ELECTION_H_
#define SELTRIG_REPLICATION_ELECTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "replication/applier.h"
#include "replication/shipper.h"
#include "replication/transport.h"
#include "storage/wal.h"

namespace seltrig {

// Best-effort election datagram layer: frames addressed by node id, no
// delivery or ordering guarantee (elections are retried on timeouts, so a
// lost frame only costs time). Send consults `election.partition`.
class ElectionBus {
 public:
  virtual ~ElectionBus() = default;

  // Delivers `frame` to `peer` best-effort. A non-OK status means the peer
  // is currently unreachable; the caller never retries inline.
  virtual Status Send(const std::string& peer, const Frame& frame) = 0;

  // Blocks up to `timeout_ms` for the next inbound frame from any peer.
  // kDeadlineExceeded on timeout, kUnavailable once closed.
  virtual Result<Frame> Receive(int64_t timeout_ms) = 0;

  // Unblocks Receive and severs every link. Idempotent.
  virtual void Close() = 0;
};

// Shared state of an in-process election network (the test transport).
// Endpoint(id) mints the bus endpoint for `id`, replacing any previous one
// under that id — a "restarted" node gets a fresh, open inbox while peers
// keep addressing it by the same name.
struct ElectionMeshState;  // election.cc

class ElectionMesh {
 public:
  ElectionMesh();
  std::unique_ptr<ElectionBus> Endpoint(const std::string& id);

 private:
  std::shared_ptr<ElectionMeshState> impl_;
};

// Convenience: one endpoint per id over a fresh mesh, in input order.
std::vector<std::unique_ptr<ElectionBus>> CreateInProcessElectionMesh(
    const std::vector<std::string>& ids);

// A unix-socket bus for multi-process clusters: listens on `listen_path`,
// dials `peer_paths[id]` lazily per Send (reconnecting after failures).
Result<std::unique_ptr<ElectionBus>> CreateSocketElectionBus(
    const std::string& listen_path,
    std::map<std::string, std::string> peer_paths);

enum class ElectionRole : uint8_t { kFollower, kCandidate, kLeader };

const char* ElectionRoleName(ElectionRole role);

struct ElectionOptions {
  // This node's id (its bus address) and durable directory.
  std::string id;
  std::string dir;
  // The other cluster members' ids. Quorum = (peers + self) / 2 + 1.
  std::vector<std::string> peers;

  // Leader liveness cadence and the randomized follower timeout range.
  int64_t heartbeat_interval_ms = 25;
  int64_t election_timeout_min_ms = 150;
  int64_t election_timeout_max_ms = 300;
  // State-machine poll granularity (bounds Stop() latency).
  int64_t poll_interval_ms = 5;

  // Seeds the timeout and vote-spread jitter streams (mixed with the node
  // id), so a cluster run replays deterministically for a fixed seed — the
  // crashtest passes --seed through here.
  uint64_t seed = 1;

  // Applied when this node is (or becomes) each role. shipper.jitter_seed
  // is overridden from `seed`.
  ApplierOptions applier;
  ShipperOptions shipper;

  // Non-empty: accept follower-side replication connections on this unix
  // socket path (each accepted channel restarts the applier's receive
  // loop). Empty: in-process wiring via AcceptReplication().
  std::string replication_listen_path;
};

struct ElectionInfo {
  ElectionRole role = ElectionRole::kFollower;
  // The journal epoch this node is at (leader: its writer's epoch;
  // follower: last applied record's epoch).
  uint64_t epoch = 0;
  // Highest epoch seen in any message or vote — the next campaign runs at
  // term + 1. Always >= epoch.
  uint64_t term = 0;
  std::string leader_id;  // last leader heard from ("" = none yet)
  // Milliseconds since the last accepted leader heartbeat (leader: since it
  // last broadcast one). -1 = never.
  int64_t ms_since_heartbeat = -1;
  WalPosition position;  // journal tail used in up-to-dateness comparisons
  uint64_t elections_started = 0;
  uint64_t pre_votes_granted = 0;
  uint64_t votes_granted = 0;
  uint64_t stale_candidates_rejected = 0;
  uint64_t steps_down = 0;
  Status health = Status::OK();
};

class ElectionNode {
 public:
  // Returns a fresh replication channel to `peer`'s follower endpoint;
  // called by the shipper on every (re)connect while this node leads.
  using ReplicationConnect =
      std::function<Result<std::shared_ptr<FrameChannel>>(const std::string&)>;

  // Recovers the follower database from options.dir, re-reads any persisted
  // vote (crash-revote safety), and starts the election state machine. The
  // node owns `bus` from here on.
  static Result<std::unique_ptr<ElectionNode>> Start(
      ElectionOptions options, std::unique_ptr<ElectionBus> bus,
      ReplicationConnect replication_connect);

  ~ElectionNode();

  ElectionNode(const ElectionNode&) = delete;
  ElectionNode& operator=(const ElectionNode&) = delete;

  // Stops the state machine, shipper/applier, and transports. Idempotent.
  void Stop();

  ElectionInfo info() const SELTRIG_EXCLUDES(mutex_);

  // The writable database while this node leads, nullptr otherwise. Hold
  // the shared_ptr only across individual statements: a step-down waits for
  // outstanding holds to drain before it reopens the directory as a
  // follower, so a long-lived copy deadlocks the state machine.
  std::shared_ptr<Database> leader_database() const SELTRIG_EXCLUDES(mutex_);

  // The follower database for local reads, nullptr while leading.
  std::shared_ptr<Database> follower_database() const SELTRIG_EXCLUDES(mutex_);

  // Shipper follower statuses while leading (empty otherwise).
  std::vector<FollowerStatus> FollowerStatuses() const SELTRIG_EXCLUDES(mutex_);

  // In-process replication attach: peers' shippers call this as their
  // ChannelFactory. Restarts the applier's receive loop on a fresh channel
  // pair and returns the shipper's end. kUnavailable while not a follower.
  Result<std::shared_ptr<FrameChannel>> AcceptReplication()
      SELTRIG_EXCLUDES(mutex_);

  // Test/harness helper: waits until info().role == role.
  bool WaitForRole(ElectionRole role, int64_t timeout_ms) const;

 private:
  ElectionNode(ElectionOptions options, std::unique_ptr<ElectionBus> bus,
               ReplicationConnect replication_connect);

  void RunStateMachine();
  void RunReplicationServer();

  // One inbound election frame, dispatched under no lock (takes mutex_ as
  // needed).
  void HandleFrame(const Frame& frame);
  void HandleHeartbeat(const Frame& frame);
  void HandlePreVote(const Frame& frame);
  void HandleVoteRequest(const Frame& frame);
  void HandleVoteGrant(const Frame& frame);

  // This node's journal position for up-to-dateness checks (leader: the
  // writer tip; follower: the applied tail).
  WalPosition LocalPositionLocked() const SELTRIG_REQUIRES(mutex_);

  // Starts the pre-vote phase of a campaign.
  void StartCampaign() SELTRIG_EXCLUDES(mutex_);
  // Pre-vote quorum reached: persist the self-vote and campaign for real.
  void EnterRealElection() SELTRIG_EXCLUDES(mutex_);
  // Real-vote quorum reached: promote and start shipping.
  void WinElection() SELTRIG_EXCLUDES(mutex_);
  void AbandonCampaign() SELTRIG_EXCLUDES(mutex_);
  // Leader only: another leader at a newer epoch exists (higher-epoch frame
  // or a kFencedOut follower status). Rejoin as follower.
  void StepDown(uint64_t observed_epoch) SELTRIG_EXCLUDES(mutex_);

  // Sends one election frame through the bus, subject to election.vote_drop
  // for vote traffic.
  void SendElectionFrame(const std::string& peer, const Frame& frame,
                         bool is_vote_traffic);
  void BroadcastToPeers(const Frame& frame, bool is_vote_traffic);

  // Next value of the seeded jitter stream.
  uint64_t NextRandom();
  int64_t RandomElectionTimeout();

  const ElectionOptions options_;
  const size_t cluster_size_;
  const size_t quorum_;
  std::unique_ptr<ElectionBus> bus_;
  const ReplicationConnect replication_connect_;

  mutable Mutex mutex_;
  ElectionRole role_ SELTRIG_GUARDED_BY(mutex_) = ElectionRole::kFollower;
  uint64_t term_ SELTRIG_GUARDED_BY(mutex_) = 0;
  std::string leader_id_ SELTRIG_GUARDED_BY(mutex_);
  // Durable single-vote rule state (mirrors <dir>/wal/VOTE).
  bool has_vote_ SELTRIG_GUARDED_BY(mutex_) = false;
  VoteRecord vote_ SELTRIG_GUARDED_BY(mutex_);
  // Monotonic timestamp (ms) of the last accepted heartbeat / sent one.
  int64_t last_heartbeat_ms_ SELTRIG_GUARDED_BY(mutex_) = -1;
  // Campaign state (meaningful while role_ == kCandidate).
  bool prevote_phase_ SELTRIG_GUARDED_BY(mutex_) = true;
  uint64_t campaign_epoch_ SELTRIG_GUARDED_BY(mutex_) = 0;
  WalPosition campaign_position_ SELTRIG_GUARDED_BY(mutex_);
  std::vector<std::string> grants_ SELTRIG_GUARDED_BY(mutex_);
  int64_t campaign_deadline_ms_ SELTRIG_GUARDED_BY(mutex_) = 0;

  std::shared_ptr<ReplicaApplier> applier_ SELTRIG_GUARDED_BY(mutex_);
  std::shared_ptr<Database> leader_db_ SELTRIG_GUARDED_BY(mutex_);
  std::unique_ptr<LogShipper> shipper_ SELTRIG_GUARDED_BY(mutex_);

  ElectionInfo counters_ SELTRIG_GUARDED_BY(mutex_);  // counter fields only
  // True while WinElection runs Promote with mutex_ released (role_ still
  // kCandidate): blocks AcceptReplication/RunReplicationServer from
  // restarting the receive loop of the applier being promoted.
  bool promoting_ SELTRIG_GUARDED_BY(mutex_) = false;
  bool stopping_ SELTRIG_GUARDED_BY(mutex_) = false;

  uint64_t rng_;  // state-machine thread only
  int64_t election_timeout_ms_;  // current randomized timeout (state thread)

  std::unique_ptr<LocalSocketServer> replication_server_;
  std::thread replication_thread_;
  std::thread thread_;
};

}  // namespace seltrig

#endif  // SELTRIG_REPLICATION_ELECTION_H_
