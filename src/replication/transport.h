// Pluggable frame transports for replication (docs/REPLICATION.md).
//
// A FrameChannel is one endpoint of a bidirectional, ordered (per direction,
// absent injected faults) frame stream between a primary and one follower.
// Two implementations ship:
//
//   - in-process queue pair (CreateInProcessChannelPair): the test transport;
//     both endpoints live in one process and exchange frames through bounded
//     deques.
//   - local stream socket (LocalSocketServer / ConnectLocalSocket): a
//     unix-domain socket carrying EncodeFrame bytes, for processes sharing a
//     host.
//
// Fault injection: every Send first consults the transport fault points, in
// this order — `replication.delay` (stall the send; arm with a kDelay
// schedule), `replication.drop` (discard the frame), `replication.duplicate`
// (deliver it twice), `replication.reorder` (hold the frame and emit it
// after the NEXT send, swapping the pair), `replication.torn` (deliver a
// truncated prefix of the encoded frame, then fail the channel — the socket
// analog of a connection dying mid-write; the in-process transport closes
// the channel, which the peer observes identically since a torn frame never
// decodes). The point fires by returning non-OK from fault::Maybe; the
// transport consumes the error and performs the behavior instead of
// propagating it. The shipper/applier pair recovers from all of these via
// position checks, NAK reseeks, and reconnects — which is exactly what
// tests/replication and the crashtest replication mode exercise.

#ifndef SELTRIG_REPLICATION_TRANSPORT_H_
#define SELTRIG_REPLICATION_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "replication/wire.h"

namespace seltrig {

class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  // Delivers `frame` to the peer, subject to the fault points above.
  // kUnavailable once the channel is closed or failed.
  virtual Status Send(const Frame& frame) = 0;

  // Blocks up to `timeout_ms` (0 = poll, < 0 = forever) for the next frame.
  // kDeadlineExceeded on timeout, kUnavailable when the peer closed or the
  // stream died, kDataLoss when bytes arrived but do not decode (the caller
  // should treat the channel as dead).
  virtual Result<Frame> Receive(int64_t timeout_ms) = 0;

  // Closes this endpoint; the peer's pending and future Receives return
  // kUnavailable once drained. Idempotent, callable from any thread (used to
  // unblock a Receive on another thread).
  virtual void Close() = 0;
};

// An in-process endpoint pair: frames Sent on `primary_end` arrive at
// `follower_end` and vice versa.
struct ChannelPair {
  std::shared_ptr<FrameChannel> primary_end;
  std::shared_ptr<FrameChannel> follower_end;
};
ChannelPair CreateInProcessChannelPair();

// Listening end of the local-socket transport. The path length is bounded by
// sockaddr_un (~100 bytes); keep socket paths short.
class LocalSocketServer {
 public:
  ~LocalSocketServer();
  LocalSocketServer(const LocalSocketServer&) = delete;
  LocalSocketServer& operator=(const LocalSocketServer&) = delete;

  // Binds and listens on `path` (an existing socket file is replaced).
  static Result<std::unique_ptr<LocalSocketServer>> Listen(const std::string& path);

  // Accepts one connection. Timeout semantics as in FrameChannel::Receive.
  Result<std::shared_ptr<FrameChannel>> Accept(int64_t timeout_ms);

  void Close();
  const std::string& path() const { return path_; }

 private:
  LocalSocketServer() = default;
  int fd_ = -1;
  std::string path_;
};

// Connects to a LocalSocketServer at `path`.
Result<std::shared_ptr<FrameChannel>> ConnectLocalSocket(const std::string& path);

}  // namespace seltrig

#endif  // SELTRIG_REPLICATION_TRANSPORT_H_
